"""Scaled-down validation: the paper's experiments re-run through the exact
discrete-event simulator (hundreds of ranks, real message passing, phantom
particle blocks).

These confirm, at a size Python can simulate message-by-message, the same
shapes the analytic model produces at 24K-32K cores: communication falling
superlinearly with c, collectives growing, and the cutoff runs' boundary
load imbalance.
"""

import pytest

from benchmarks.conftest import emit
from repro.core import run_allpairs_virtual, run_cutoff_virtual
from repro.experiments import FIG2, FIG6, render_figure, validate_figure
from repro.machines import Hopper, Intrepid


@pytest.mark.benchmark(group="validation")
def test_fig2_shape_event_simulation(benchmark):
    """Fig 2 at 1/96 scale: 256 simulated Hopper cores, 8,192 particles."""
    res = benchmark.pedantic(
        lambda: validate_figure(FIG2["2a"], p=256, n=8192, cs=(1, 2, 4, 8, 16)),
        rounds=1, iterations=1,
    )
    emit(render_figure(res))
    comm = [b.communication for b in res.breakdowns.values()]
    assert all(a > b for a, b in zip(comm[:3], comm[1:4]))
    computes = [b.get("compute") for b in res.breakdowns.values()]
    assert max(computes) <= 1.01 * min(computes)


@pytest.mark.benchmark(group="validation")
def test_fig6_shape_event_simulation(benchmark):
    """Fig 6a at small scale, including the re-assignment phase."""
    res = benchmark.pedantic(
        lambda: validate_figure(FIG6["6a"], p=128, n=8192, cs=(1, 2, 4, 8)),
        rounds=1, iterations=1,
    )
    emit(render_figure(res))
    rows = list(res.breakdowns.values())
    # Shift (point-to-point) time falls with replication; at this tiny
    # scale the collectives' imbalance waits dominate total communication,
    # so the full comm optimum only emerges at larger machines.
    shifts = [b.get("shift") for b in rows]
    assert shifts[2] < shifts[0]
    assert all(b.get("reassign") > 0 for b in rows)


@pytest.mark.benchmark(group="validation")
def test_intrepid_tree_network_event_simulation(benchmark):
    """The c=1 tree/no-tree gap, via actual hardware-collective simulation."""
    from repro.core import run_particle_allgather
    from repro.physics import ParticleSet

    ps = ParticleSet.uniform_random(2048, 2, 1.0, seed=0)

    def run():
        tree = run_particle_allgather(
            Intrepid(64, cores_per_node=4), ps, use_tree=True
        )
        soft = run_particle_allgather(
            Intrepid(64, cores_per_node=4, tree=False), ps
        )
        return tree, soft

    tree, soft = benchmark.pedantic(run, rounds=1, iterations=1)
    t, s = tree.report.max_time("allgather"), soft.report.max_time("allgather")
    emit(f"allgather on 64 Intrepid cores: tree={t * 1e6:.1f}us, "
         f"torus={s * 1e6:.1f}us ({s / t:.1f}x slower)")
    assert t < s


@pytest.mark.benchmark(group="validation")
def test_superlinear_shift_reduction(benchmark):
    """Equation 5's c^2 latency reduction, measured on simulated messages."""
    m = Hopper(192, cores_per_node=12)

    def run():
        return {
            c: run_allpairs_virtual(m, 8192, c).report.max_messages("shift")
            for c in (1, 2, 4, 8)
        }

    msgs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"shift messages per rank: {msgs}")
    assert msgs[1] / msgs[4] >= 12  # ~c^2 = 16 with skew slack
    assert msgs[2] / msgs[8] >= 12


@pytest.mark.benchmark(group="validation")
def test_strong_scaling_shape_event_simulation(benchmark):
    """Figure 3's story through exact simulation: fixed n, growing p —
    the replicated configurations hold their efficiency while c=1 decays."""
    n = 8192
    sizes = (32, 64, 128, 256)

    def run():
        out = {}
        for c in (1, 4):
            series = []
            for p in sizes:
                m = Hopper(p, cores_per_node=8)
                r = run_allpairs_virtual(m, n, c)
                series.append((p, r.elapsed))
            out[c] = series
        return out

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    def efficiency(sery):
        p0, t0 = sery[0]
        return [(p, (t0 * p0) / (t * p)) for p, t in sery]

    for c, sery in series.items():
        eff = efficiency(sery)
        emit(f"c={c}: " + "  ".join(f"p={p}:{e:.3f}" for p, e in eff))
    eff1 = dict(efficiency(series[1]))
    eff4 = dict(efficiency(series[4]))
    assert eff4[256] > eff1[256]  # replication preserves scaling
    assert eff1[256] < eff1[32] * 1.01  # c=1 decays (or at best flat)


@pytest.mark.benchmark(group="validation")
def test_cutoff_boundary_imbalance(benchmark):
    """Boundary teams scan fewer pairs — the paper's load-imbalance source."""
    m = Hopper(96, cores_per_node=12)

    def run():
        return run_cutoff_virtual(m, 8192, 1, rcut=0.25, box_length=1.0, dim=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    pairs = {r.col: r.npairs for r in result.results}
    corner, interior = pairs[0], pairs[48]
    emit(f"scanned pairs: corner team={corner}, interior team={interior}")
    assert corner < 0.7 * interior

"""Benchmarks of the reproduction's extensions beyond the paper.

* **Symmetric forces** — the optimization the paper explicitly skips
  ("we do not apply optimizations to exploit the symmetry"): halves the
  evaluated pairs and shortens the shift loop.
* **Periodic boundaries** — removes the boundary load imbalance the paper
  blames for its cutoff runs' inefficiency; measured directly as the
  disappearance of the per-team work spread and the shift-phase waiting.
"""

import pytest

from benchmarks.conftest import emit
from repro.core import (
    run_allpairs_virtual,
    run_cutoff,
    run_cutoff_virtual,
    run_symmetric_virtual,
)
from repro.machines import GenericTorus, Hopper
from repro.physics import ForceLaw, ParticleSet, two_phase


@pytest.mark.benchmark(group="extensions")
def test_symmetric_variant_halves_computation(benchmark):
    m = Hopper(96, cores_per_node=12)
    n = 8192

    def run():
        std = run_allpairs_virtual(m, n, 2)
        sym = run_symmetric_virtual(m, n, 2)
        return std, sym

    std, sym = benchmark.pedantic(run, rounds=1, iterations=1)
    scans_std = sum(r.npairs for r in std.results)
    scans_sym = sum(r.npairs for r in sym.results)
    t_std, t_sym = std.elapsed, sym.elapsed
    emit(f"pair evaluations: standard={scans_std}, symmetric={scans_sym} "
         f"({scans_std / scans_sym:.3f}x fewer); simulated step time "
         f"{t_std * 1e3:.3f} -> {t_sym * 1e3:.3f} ms "
         f"({t_std / t_sym:.2f}x)")
    assert scans_sym < 0.51 * scans_std
    assert t_sym < t_std


@pytest.mark.benchmark(group="extensions")
def test_symmetric_at_paper_scale(benchmark):
    """What-if: Figure 2b's workload (Hopper, 24,576 cores, 196,608
    particles) with force symmetry exploited — the optimization the paper
    skipped.  Roughly halves the step; the optimal c stays at 16."""
    from repro.model import allpairs_breakdown, symmetric_breakdown

    m = Hopper(24576)
    n, cs = 196608, (1, 4, 16, 64)

    def run():
        std = {c: allpairs_breakdown(m, n, c) for c in cs}
        sym = {c: symmetric_breakdown(m, n, c) for c in cs}
        return std, sym

    std, sym = benchmark.pedantic(run, rounds=1, iterations=1)
    for c in cs:
        emit(f"c={c:3d}: standard {std[c].total * 1e3:8.2f} ms -> symmetric "
             f"{sym[c].total * 1e3:8.2f} ms "
             f"({std[c].total / sym[c].total:.2f}x)")
    best_std = min(std.values(), key=lambda b: b.total)
    best_sym = min(sym.values(), key=lambda b: b.total)
    emit(f"best step: {best_std.total * 1e3:.2f} -> {best_sym.total * 1e3:.2f} ms "
         f"({best_std.total / best_sym.total:.2f}x end-to-end)")
    assert best_sym.total < 0.65 * best_std.total
    assert min(sym, key=lambda c: sym[c].total) == 16


@pytest.mark.benchmark(group="extensions")
def test_periodic_boundaries_remove_load_imbalance(benchmark):
    m = Hopper(96, cores_per_node=12)
    n = 9216  # divisible by the 96 teams: equal blocks isolate the window effect

    def run():
        refl = run_cutoff_virtual(m, n, 1, rcut=0.25, box_length=1.0, dim=1,
                                  periodic=False)
        per = run_cutoff_virtual(m, n, 1, rcut=0.25, box_length=1.0, dim=1,
                                 periodic=True)
        return refl, per

    refl, per = benchmark.pedantic(run, rounds=1, iterations=1)
    spread_refl = max(r.npairs for r in refl.results) - min(
        r.npairs for r in refl.results
    )
    spread_per = max(r.npairs for r in per.results) - min(
        r.npairs for r in per.results
    )
    shift_refl = refl.report.max_time("shift")
    shift_per = per.report.max_time("shift")
    emit(f"per-team scan spread: reflective={spread_refl}, periodic="
         f"{spread_per}; max shift phase {shift_refl * 1e3:.3f} -> "
         f"{shift_per * 1e3:.3f} ms")
    assert spread_per == 0
    assert spread_refl > 0
    assert shift_per < shift_refl


@pytest.mark.benchmark(group="extensions")
def test_weighted_decomposition_rebalances_clusters(benchmark):
    """Equal-count (quantile) team boundaries fix the imbalance that
    clustered workloads inflict on the paper's equal-cell decomposition."""
    from repro.core import run_cutoff as _run_cutoff
    from repro.physics import weighted_geometry

    m = GenericTorus(nranks=16, cores_per_node=4)
    law = ForceLaw()
    ps = two_phase(800, 1, 1.0, dense_fraction=0.85, dense_extent=0.2, seed=1)

    def run():
        eq = _run_cutoff(m, ps, 1, rcut=0.1, box_length=1.0, law=law)
        g = weighted_geometry(ps, (16,), 1.0)
        wt = _run_cutoff(m, ps, 1, rcut=0.1, box_length=1.0, law=law,
                         geometry=g)
        return eq, wt

    eq, wt = benchmark.pedantic(run, rounds=1, iterations=1)

    def imbalance(r):
        scans = [x.npairs for x in r.run.results]
        return max(scans) / (sum(scans) / len(scans))

    emit(f"scan imbalance: equal cells {imbalance(eq):.2f}x, weighted "
         f"{imbalance(wt):.2f}x; simulated step {eq.run.elapsed * 1e3:.3f} "
         f"-> {wt.run.elapsed * 1e3:.3f} ms")
    assert imbalance(wt) < imbalance(eq) / 2
    assert wt.run.elapsed < eq.run.elapsed


@pytest.mark.benchmark(group="extensions")
def test_nonuniform_distribution_breaks_load_balance(benchmark):
    """The paper keeps the particle distribution 'nearly uniform over
    time'; this quantifies why.  A clustered workload on the same machine
    concentrates the compute on a few teams and the waiting spreads into
    the shift/reduce phases."""
    m = GenericTorus(nranks=16, cores_per_node=4)
    law = ForceLaw()
    n = 1024
    uniform = ParticleSet.uniform_random(n, 2, 1.0, seed=0)
    clustered = two_phase(n, 2, 1.0, dense_fraction=0.85, dense_extent=0.25,
                          seed=0)

    def run():
        u = run_cutoff(m, uniform, 2, rcut=0.3, box_length=1.0, law=law)
        c = run_cutoff(m, clustered, 2, rcut=0.3, box_length=1.0, law=law)
        return u, c

    u, c = benchmark.pedantic(run, rounds=1, iterations=1)

    def imbalance(run_result):
        per_rank = [r.npairs for r in run_result.run.results]
        return max(per_rank) / max(1.0, sum(per_rank) / len(per_rank))

    iu, ic = imbalance(u), imbalance(c)
    emit(f"compute imbalance (max/mean scans): uniform={iu:.2f}, "
         f"clustered={ic:.2f}; simulated step {u.run.elapsed * 1e3:.3f} -> "
         f"{c.run.elapsed * 1e3:.3f} ms")
    assert ic > 2 * iu
    assert c.run.elapsed > u.run.elapsed

"""Pinned perf-trajectory benches, bridged into pytest-benchmark.

These are the exact bench definitions from ``tools/perftrack.py`` — the
harness that writes the committed ``BENCH_<tag>.json`` trajectory — run
through pytest-benchmark so they appear alongside the other suites::

    pytest benchmarks/bench_perf.py --benchmark-only

The parameters come from the perftrack registry (smoke-sized here so the
suite stays CI-fast); the committed trajectory numbers always come from
``tools/perftrack.py`` itself, whose full-mode parameters are frozen for
cross-PR comparability.
"""

import sys
from pathlib import Path

import pytest

_TOOLS = Path(__file__).resolve().parent.parent / "tools"
if str(_TOOLS) not in sys.path:
    sys.path.insert(0, str(_TOOLS))

from perftrack import BENCHES  # noqa: E402


@pytest.mark.benchmark(group="perftrack")
@pytest.mark.parametrize("name", sorted(BENCHES))
def test_perftrack_bench(benchmark, name):
    """Each pinned perftrack bench, at smoke size, through pytest-benchmark."""
    spec = BENCHES[name](smoke=True)
    benchmark.extra_info["metric"] = spec["metric"]
    benchmark.extra_info["ops"] = spec["ops"]
    benchmark(spec["runner"])

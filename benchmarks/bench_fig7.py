"""Figure 7: strong-scaling efficiency with a cutoff radius (r_c = L/4).

7a/7b: Hopper, 196,608 particles, 96-24,576 cores, 1-D and 2-D; 7c/7d:
Intrepid, 262,144 particles, 2,048-32,768 cores.  At the largest machine
sizes the best replication factor roughly doubles the efficiency of the
non-replicating (c = 1) configuration.
"""

import pytest

from benchmarks.conftest import attach_scaling, emit
from repro.experiments import FIG7, render_figure, run_figure


def _ratio_at_largest(res):
    biggest = res.config.machine_sizes[-1]
    by_c = {c: dict(s) for c, s in res.efficiency.items()}
    best = max(v.get(biggest, 0.0) for v in by_c.values())
    return best / by_c[1][biggest]


@pytest.mark.benchmark(group="figure7")
def test_fig7a(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG7["7a"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_scaling(benchmark, res)
    ratio = _ratio_at_largest(res)
    benchmark.extra_info["best_over_c1_at_largest"] = round(ratio, 3)
    emit(f"best-c / c=1 efficiency at 24,576 cores: {ratio:.2f}x (paper: ~2x)")
    assert ratio > 2.0


@pytest.mark.benchmark(group="figure7")
def test_fig7b(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG7["7b"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_scaling(benchmark, res)
    ratio = _ratio_at_largest(res)
    benchmark.extra_info["best_over_c1_at_largest"] = round(ratio, 3)
    assert ratio > 2.0
    # Sub-optimal on smaller machines (window granularity + imbalance).
    c4 = dict(res.efficiency[4])
    assert c4[96] < c4[6144]


@pytest.mark.benchmark(group="figure7")
def test_fig7c(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG7["7c"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_scaling(benchmark, res)
    ratio = _ratio_at_largest(res)
    benchmark.extra_info["best_over_c1_at_largest"] = round(ratio, 3)
    emit(f"best-c / c=1 efficiency at 32,768 cores: {ratio:.2f}x (paper: ~2x)")
    assert ratio > 1.5


@pytest.mark.benchmark(group="figure7")
def test_fig7d(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG7["7d"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_scaling(benchmark, res)
    ratio = _ratio_at_largest(res)
    benchmark.extra_info["best_over_c1_at_largest"] = round(ratio, 3)
    # Our weakest panel: replication still wins, by a smaller factor
    # (recorded in EXPERIMENTS.md).
    assert ratio > 1.05

"""Fault-injection benchmarks: what does replication-aware recovery cost?

Two questions, both as functions of the replication factor ``c``:

* **virtual overhead** — how much longer is the simulated makespan of a
  step that absorbs one rank death, relative to the fault-free step?  The
  recovery work (failure sync, hole-map ring, block re-fetch, ordered
  replay, degraded reduce) is charged to the ``recover`` trace phase, so
  the overhead is directly attributable.
* **host throughput** — how fast does the engine execute the faulty run
  (wall clock), i.e. what fault injection costs the reproduction itself.

Replication bounds data *loss*, not recompute time: a death early in the
step makes the acting leader replay the victim's whole update sequence
serially on top of its own, so the virtual overhead approaches 2x for a
single full-step death regardless of ``c``.  What ``c`` buys is the
*ability* to recover at all (every block has ``c`` live copies) and a
cheaper recovery transfer round (fewer, larger teams at high ``c``).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core import run_allpairs_virtual
from repro.machines import GenericTorus
from repro.simmpi import FaultSchedule, KillRank
from repro.simmpi.tracing import RECOVER_PHASE

#: One mid-shift death on a row-1 rank (exists for every c >= 2).
_N = 4096
_P = 16


def _kill_schedule(c: int) -> FaultSchedule:
    grid_cols = _P // c
    victim = grid_cols  # row 1, column 0 under the "rows" layout
    return FaultSchedule(events=(KillRank(victim, after_ops=6),))


@pytest.mark.benchmark(group="faults")
@pytest.mark.parametrize("c", [2, 4, 8])
def test_recovery_overhead_vs_c(benchmark, c):
    """Simulated cost of absorbing one rank death, per replication factor."""
    machine = GenericTorus(nranks=_P, cores_per_node=4)

    clean = run_allpairs_virtual(machine, _N, c)

    def run():
        return run_allpairs_virtual(machine, _N, c,
                                    faults=_kill_schedule(c))

    faulty = benchmark.pedantic(run, rounds=3, iterations=1)
    assert faulty.deaths, "the kill schedule must actually fire"

    overhead = faulty.elapsed / clean.elapsed - 1.0
    recover_s = faulty.report.max_time(RECOVER_PHASE)
    benchmark.extra_info["virtual_overhead_pct"] = round(100 * overhead, 2)
    benchmark.extra_info["recover_phase_ms"] = round(recover_s * 1e3, 4)
    emit(f"c={c}: clean {clean.elapsed * 1e3:.3f} ms -> faulty "
         f"{faulty.elapsed * 1e3:.3f} ms (+{100 * overhead:.1f}%), "
         f"max recover phase {recover_s * 1e3:.3f} ms")


@pytest.mark.benchmark(group="faults")
def test_fault_free_schedule_is_free(benchmark):
    """An attached-but-empty schedule must not change the virtual clocks."""
    machine = GenericTorus(nranks=_P, cores_per_node=4)
    baseline = run_allpairs_virtual(machine, _N, 4)

    def run():
        return run_allpairs_virtual(machine, _N, 4, faults=FaultSchedule())

    result = benchmark(run)
    assert result.elapsed == baseline.elapsed
    assert np.isclose(result.elapsed, baseline.elapsed, rtol=0, atol=0)
    emit(f"empty schedule: elapsed {result.elapsed * 1e3:.3f} ms "
         f"(identical to no-schedule run)")

"""Figure 2: execution-time breakdown vs. replication factor (all-pairs).

Regenerates all four panels at the paper's exact machine/problem sizes
(2a: Hopper 6,144 cores / 24,576 particles; 2b: Hopper 24,576 / 196,608;
2c: Intrepid 8,192 / 32,768 with the tree/no-tree c=1 baselines;
2d: Intrepid 32,768 / 262,144) and checks the panel's headline shape.
"""

import pytest

from benchmarks.conftest import attach_breakdown, emit
from repro.experiments import FIG2, render_figure, run_figure


@pytest.mark.benchmark(group="figure2")
def test_fig2a(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG2["2a"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_breakdown(benchmark, res)
    comm = list(res.comm_series().values())
    # Monotonically decreasing communication, as the paper reports.
    assert all(a >= b * 0.999 for a, b in zip(comm, comm[1:]))


@pytest.mark.benchmark(group="figure2")
def test_fig2b(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG2["2b"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_breakdown(benchmark, res)
    comm = res.comm_series()
    # Optimum at c=16; c=64 costs more again (collective/p2p balance).
    assert min(comm, key=comm.get) == "c=16"
    assert comm["c=64"] > comm["c=16"]
    assert res.best_label() == "c=16"


@pytest.mark.benchmark(group="figure2")
def test_fig2c(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG2["2c"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_breakdown(benchmark, res)
    rows = res.breakdowns
    assert rows["c=1 (tree)"].total < rows["c=1 (no-tree)"].total
    ca_best = min(b.total for k, b in rows.items() if "tree" not in k)
    assert ca_best < rows["c=1 (tree)"].total


@pytest.mark.benchmark(group="figure2")
def test_fig2d(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG2["2d"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_breakdown(benchmark, res)
    rows = res.breakdowns
    naive_comm = rows["c=1 (no-tree)"].communication
    best_comm = min(b.communication for k, b in rows.items() if "tree" not in k)
    reduction = 1.0 - best_comm / naive_comm
    benchmark.extra_info["comm_reduction_vs_no_tree"] = round(reduction, 4)
    emit(f"communication reduction vs c=1 (no-tree): {100 * reduction:.2f}% "
         f"(paper: 99.5%)")
    assert reduction > 0.95

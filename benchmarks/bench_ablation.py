"""Ablations of the design choices DESIGN.md calls out.

Each ablation switches off one machine-model ingredient and reports how a
headline result changes — evidence for *why* that ingredient is in the
model:

* ``collective_contention`` — without it, collectives scale almost
  logarithmically and the comm-optimal c drifts to the largest value,
  contradicting the paper's Figure 2b;
* ``route_congestion`` — without it, long-stride collective trees are as
  cheap as neighbor shifts;
* the dedicated tree network — without it, the Intrepid c=1 baseline pays
  the full torus cost (the paper's no-tree bars);
* rendezvous vs. eager protocol in the event engine — eager decouples the
  send side, shrinking the waiting the paper's load-imbalance discussion
  describes.
"""

import dataclasses

import pytest

from benchmarks.conftest import emit
from repro.core import run_cutoff_virtual
from repro.machines import Hopper, Intrepid
from repro.model import allgather_baseline_breakdown, allpairs_breakdown


def _comm_optimum(machine, n, cs):
    comm = {c: allpairs_breakdown(machine, n, c).communication for c in cs}
    return min(comm, key=comm.get), comm


@pytest.mark.benchmark(group="ablation")
def test_collective_contention_creates_the_c16_optimum(benchmark):
    cs = (1, 2, 4, 8, 16, 32, 64)

    def run():
        base = Hopper(24576)
        off = dataclasses.replace(base, collective_contention=0.0)
        return _comm_optimum(base, 196608, cs), _comm_optimum(off, 196608, cs)

    (with_c, comm_w), (without_c, comm_wo) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(f"comm-optimal c with collective contention: {with_c}; without: "
         f"{without_c}")
    assert with_c == 16
    assert without_c >= with_c  # never drifts below 16
    # Contention only adds cost at c > 1, and hits the largest c hardest —
    # this is what makes c=64 communication clearly exceed c=16's.
    assert comm_w[1] == comm_wo[1]
    assert comm_w[64] > 1.5 * comm_wo[64]
    assert comm_w[64] > 2 * comm_w[16]


@pytest.mark.benchmark(group="ablation")
def test_route_congestion_prices_long_strides(benchmark):
    def run():
        base = Hopper(24576)
        flat = dataclasses.replace(base, route_congestion=0.0)
        b_base = allpairs_breakdown(base, 196608, 64)
        b_flat = allpairs_breakdown(flat, 196608, 64)
        return b_base, b_flat

    b_base, b_flat = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"c=64 bcast: congested={b_base.get('bcast') * 1e3:.3f}ms, "
         f"flat={b_flat.get('bcast') * 1e3:.3f}ms")
    assert b_base.get("bcast") > 1.5 * b_flat.get("bcast")


@pytest.mark.benchmark(group="ablation")
def test_tree_network_ablation(benchmark):
    def run():
        tree = allgather_baseline_breakdown(
            Intrepid(32768), 262144, use_tree=True
        )
        no_tree = allgather_baseline_breakdown(
            Intrepid(32768, tree=False), 262144, use_tree=False
        )
        return tree, no_tree

    tree, no_tree = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = no_tree.communication / tree.communication
    emit(f"torus allgather is {ratio:.1f}x the tree network's time")
    assert ratio > 3.0


@pytest.mark.benchmark(group="ablation")
def test_rank_layout_tradeoff(benchmark):
    """Mapping team members contiguously ('teams' layout) makes the
    collectives nearly free (intra-node) but stretches every shift; the
    analyzed 'rows' mapping with a tuned c still wins overall."""
    m = Hopper(24576)
    n, cs = 196608, (4, 16, 64)

    def run():
        rows = {c: allpairs_breakdown(m, n, c, layout="rows") for c in cs}
        teams = {c: allpairs_breakdown(m, n, c, layout="teams") for c in cs}
        return rows, teams

    rows, teams = benchmark.pedantic(run, rounds=1, iterations=1)
    for c in cs:
        emit(f"c={c:3d}: rows comm={rows[c].communication * 1e3:8.3f}ms "
             f"(coll {1e3 * (rows[c].get('bcast') + rows[c].get('reduce')):.3f}) | "
             f"teams comm={teams[c].communication * 1e3:8.3f}ms "
             f"(coll {1e3 * (teams[c].get('bcast') + teams[c].get('reduce')):.3f})")
    # Collectives collapse under the teams layout...
    assert teams[16].get("bcast") < rows[16].get("bcast") / 10
    # ...but the best tuned configuration still uses the rows mapping.
    best_rows = min(b.communication for b in rows.values())
    best_teams = min(b.communication for b in teams.values())
    assert best_rows < best_teams


@pytest.mark.benchmark(group="ablation")
def test_eager_protocol_shrinks_imbalance_waits(benchmark):
    """Rendezvous couples ranks tightly; eager buffering absorbs some of
    the boundary teams' waiting in the cutoff shifts."""
    m = Hopper(96, cores_per_node=12)

    def run():
        rendezvous = run_cutoff_virtual(m, 8192, 2, rcut=0.25, box_length=1.0,
                                        dim=1, eager_threshold=0)
        eager = run_cutoff_virtual(m, 8192, 2, rcut=0.25, box_length=1.0,
                                   dim=1, eager_threshold=1 << 30)
        return rendezvous, eager

    rdv, eag = benchmark.pedantic(run, rounds=1, iterations=1)
    s_r = rdv.report.max_time("shift")
    s_e = eag.report.max_time("shift")
    emit(f"max shift phase: rendezvous={s_r * 1e3:.3f}ms, "
         f"eager={s_e * 1e3:.3f}ms")
    assert s_e <= s_r * 1.001

"""Figure 6: execution-time breakdown vs. replication factor with a cutoff
radius (r_c = L/4), including the per-step re-assignment cost.

6a/6b: Hopper 24,576 cores, 196,608 particles, 1-D and 2-D decompositions;
6c/6d: Intrepid 32,768 cores, 262,144 particles.
"""

import pytest

from benchmarks.conftest import attach_breakdown, emit
from repro.experiments import FIG6, render_figure, run_figure


def _common_checks(res):
    rows = res.breakdowns
    labels = list(rows)
    # Expected decrease in communication for small c.
    comm = res.comm_series()
    assert comm[labels[2]] < comm[labels[0]]
    # The largest replication factor never gives the best total time.
    assert res.best_label() != labels[-1]
    # Re-assignment cost appears in every configuration.
    assert all(b.get("reassign") > 0 for b in rows.values())


@pytest.mark.benchmark(group="figure6")
def test_fig6a(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG6["6a"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_breakdown(benchmark, res)
    _common_checks(res)
    rows = res.breakdowns
    # Reduction cost grows considerably for large c (Section IV-D).
    assert rows["c=64"].get("reduce") > 5 * rows["c=4"].get("reduce")
    # Shift cost stagnates (load imbalance) instead of approaching zero.
    assert rows["c=64"].get("shift") > rows["c=16"].get("shift") / 4


@pytest.mark.benchmark(group="figure6")
def test_fig6b(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG6["6b"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_breakdown(benchmark, res)
    _common_checks(res)


@pytest.mark.benchmark(group="figure6")
def test_fig6c(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG6["6c"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_breakdown(benchmark, res)
    _common_checks(res)


@pytest.mark.benchmark(group="figure6")
def test_fig6d(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG6["6d"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_breakdown(benchmark, res)
    _common_checks(res)

"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark prints the regenerated series (the rows the paper plots)
and attaches headline numbers to the pytest-benchmark ``extra_info`` so
they land in the benchmark report.  Run with ``-s`` to see the tables
inline::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a regenerated figure table (works under captured output)."""
    sys.stdout.write("\n" + text + "\n")


def attach_breakdown(benchmark, result) -> None:
    """Record a breakdown figure's headline numbers."""
    series = {k: round(b.total * 1e3, 4) for k, b in result.breakdowns.items()}
    benchmark.extra_info["total_ms"] = series
    benchmark.extra_info["comm_ms"] = {
        k: round(b.communication * 1e3, 4) for k, b in result.breakdowns.items()
    }
    benchmark.extra_info["best"] = result.best_label()


def attach_scaling(benchmark, result) -> None:
    """Record a scaling figure's efficiency series."""
    benchmark.extra_info["efficiency"] = {
        str(c): {str(p): round(e, 4) for p, e in series}
        for c, series in result.efficiency.items()
    }

"""Figure 3: strong-scaling efficiency of the all-pairs algorithm.

3a: Hopper, 196,608 particles, 1,536-24,576 cores; 3b: Intrepid, 262,144
particles, 2,048-32,768 cores.  Relative efficiency vs. one core per
replication factor; with the right c, scaling is nearly perfect while
c = 1 collapses.
"""

import pytest

from benchmarks.conftest import attach_scaling, emit
from repro.experiments import FIG3, render_figure, run_figure


@pytest.mark.benchmark(group="figure3")
def test_fig3a(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG3["3a"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_scaling(benchmark, res)
    biggest = FIG3["3a"].machine_sizes[-1]
    best = max(dict(s).get(biggest, 0.0) for s in res.efficiency.values())
    c1 = dict(res.efficiency[1])[biggest]
    assert best > 0.85  # nearly perfect scaling with the right c
    assert c1 < 0.5  # the non-replicated algorithm collapses


@pytest.mark.benchmark(group="figure3")
def test_fig3b(benchmark):
    res = benchmark.pedantic(lambda: run_figure(FIG3["3b"]), rounds=1, iterations=1)
    emit(render_figure(res))
    attach_scaling(benchmark, res)
    biggest = FIG3["3b"].machine_sizes[-1]
    best = max(dict(s).get(biggest, 0.0) for s in res.efficiency.values())
    c1 = dict(res.efficiency[1])[biggest]
    assert best > 0.85
    assert best > c1

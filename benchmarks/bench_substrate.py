"""Microbenchmarks of the substrate itself (wall-clock performance).

These time the *host* execution of the simulated-MPI engine, the force
kernel and the analytic model — the quantities that determine how large a
virtual machine this reproduction can turn around.  They use real repeated
measurement (not ``pedantic``), since they are genuine performance tests.
"""

import numpy as np
import pytest

from repro.machines import GenericTorus, Hopper
from repro.model import allpairs_breakdown, cutoff_breakdown
from repro.physics import ForceLaw, pairwise_forces
from repro.simmpi import Engine


@pytest.mark.benchmark(group="substrate")
def test_engine_ring_throughput(benchmark):
    """Message throughput of the event engine (p=64, 64 ring steps)."""
    machine = GenericTorus(nranks=64, cores_per_node=4)

    def program(comm):
        x = comm.rank
        for _ in range(64):
            x = yield from comm.sendrecv(
                (comm.rank + 1) % comm.size, x, (comm.rank - 1) % comm.size
            )
        return x

    def run():
        return Engine(machine).run(program)

    result = benchmark(run)
    assert result.results[0] == 0


@pytest.mark.benchmark(group="substrate")
def test_engine_allreduce_throughput(benchmark):
    machine = GenericTorus(nranks=256, cores_per_node=4)

    def program(comm):
        v = yield from comm.allreduce(comm.rank, lambda a, b: a + b)
        return v

    result = benchmark(lambda: Engine(machine).run(program))
    assert result.results[0] == 256 * 255 // 2


@pytest.mark.benchmark(group="substrate")
def test_engine_thousand_rank_ca_step(benchmark):
    """A full CA interaction step on 1,024 simulated ranks (c=8):
    demonstrates the engine's headroom for mid-scale exact simulation."""
    from repro.core import run_allpairs_virtual

    machine = GenericTorus(nranks=1024, cores_per_node=4)

    def run():
        return run_allpairs_virtual(machine, 16384, 8)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sum(r.npairs for r in result.results) == 16384 * 16384


@pytest.mark.benchmark(group="substrate")
def test_force_kernel_throughput(benchmark):
    """Vectorized pair kernel: 512x512 candidate pairs."""
    law = ForceLaw()
    rng = np.random.default_rng(0)
    t = rng.random((512, 2))
    s = rng.random((512, 2))

    def run():
        out, npairs = pairwise_forces(law, t, s)
        return npairs

    assert benchmark(run) == 512 * 512


@pytest.mark.benchmark(group="substrate")
def test_analytic_model_paper_scale(benchmark):
    """One paper-scale breakdown (Hopper, 24,576 cores) per call."""
    machine = Hopper(24576)

    def run():
        return allpairs_breakdown(machine, 196608, 16)

    b = benchmark(run)
    assert b.total > 0


@pytest.mark.benchmark(group="substrate")
def test_analytic_cutoff_model_paper_scale(benchmark):
    machine = Hopper(24576)

    def run():
        return cutoff_breakdown(machine, 196608, 4, rcut=0.25,
                                box_length=1.0, dim=2)

    b = benchmark(run)
    assert b.total > 0

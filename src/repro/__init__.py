"""repro — a reproduction of "A Communication-Optimal N-Body Algorithm for
Direct Interactions" (Driscoll, Georganas, Koanantakool, Solomonik, Yelick;
IEEE IPDPS 2013).

The package provides, from the bottom up:

* :mod:`repro.simmpi` — a deterministic discrete-event simulated MPI
  (generator-coroutine ranks, rendezvous point-to-point, software tree
  collectives, hardware-collective hooks, per-phase tracing);
* :mod:`repro.machines` — machine models of the paper's platforms (Hopper
  Cray XE-6, Intrepid BlueGene/P with its collective tree network) plus
  generic test machines;
* :mod:`repro.physics` — the paper's test problem: particles in a
  reflective box under a repulsive inverse-square force, with optional
  cutoff, vectorized kernels and serial references;
* :mod:`repro.core` — the paper's contribution: the communication-avoiding
  all-pairs algorithm (Algorithm 1), the cutoff algorithm in 1-D and its
  d-dimensional generalization (Algorithm 2 / Section IV-C), the
  particle/force/spatial decomposition baselines, a multi-timestep driver
  with spatial re-assignment, and a runtime autotuner for the replication
  factor;
* :mod:`repro.theory` — the communication lower bounds and optimality
  proofs as executable checks;
* :mod:`repro.model` — a closed-form analytic performance model,
  cross-validated against the event simulator, that regenerates the
  paper's 24K/32K-core experiments;
* :mod:`repro.experiments` — drivers for every evaluation figure.

Quickstart::

    from repro.core import run_allpairs
    from repro.machines import GenericMachine
    from repro.physics import ParticleSet

    particles = ParticleSet.uniform_random(512, dim=2, box_length=1.0)
    out = run_allpairs(GenericMachine(nranks=16), particles, c=4)
    print(out.report.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Resilient RunSpec sweeps: cache lookup first, supervised execution after.

The ``python -m repro sweep`` engine.  A *sweep* is a batch of run
descriptors — plain dicts naming a registered algorithm and its
configuration knobs — executed through the supervised parallel executor
(:func:`repro.core.parallel.run_supervised`: per-task retry / timeout /
crash recovery) with a durable content-addressed result cache
(:class:`repro.core.runcache.RunCache`) consulted *before* any compute:

1. every descriptor is normalized (defaults filled, unknown keys
   rejected) and fingerprinted — :func:`task_fingerprint` is a pure
   function of the normalized descriptor;
2. the cache is asked once per *unique* fingerprint; hits become
   ``status="cached"`` outcomes without touching an engine, and
   duplicate descriptors in the same batch are single-flighted into
   ``status="coalesced"`` outcomes sharing the first instance's result;
3. the misses run through the supervised executor (``workers``,
   ``retry``, ``task_timeout``); successful results are stored back;
4. tasks that failed every attempt land in a replayable JSON quarantine
   artifact (:func:`replay_quarantine` re-runs exactly those units).

Because each sweep point is a pure function of its descriptor (the
workload is synthesized from ``seed``), the merged report is
**bitwise-identical** however it was produced: serially, across any
number of workers, with tasks retried after injected crashes, or served
from a cache written by an earlier (even interrupted) sweep.  The
integration suite locks all four paths against each other.

Result records are self-contained plain data (force/id arrays travel as
raw bytes + dtype + shape), so they pickle compactly into the cache and
compare bitwise across processes.  The cache namespace is versioned
(:data:`SWEEP_NAMESPACE`); bump it whenever the record schema changes so
stale entries miss instead of mis-decoding.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.core.parallel import (
    RetryPolicy, TaskOutcome, as_retry_policy, load_quarantine,
    run_supervised, write_quarantine,
)
from repro.core.runcache import MISS, RunCache, resolve_cache

__all__ = [
    "SWEEP_NAMESPACE",
    "SweepReport",
    "expand_grid",
    "normalize_task",
    "replay_quarantine",
    "run_sweep",
    "sweep_task",
    "task_fingerprint",
]

#: Cache namespace — versions the result-record schema (see module doc).
SWEEP_NAMESPACE = "sweep-v1"

#: Descriptor fields, their defaults, and their normalizers.  ``None``
#: defaults stay ``None`` (optional knobs); everything else is coerced so
#: equivalent spellings (``16`` vs ``16.0`` vs ``"16"``) fingerprint
#: identically.
_FIELDS: dict = {
    "algorithm": (None, str),
    "machine": ("generic", str),
    "p": (16, int),
    "c": (1, int),
    "n": (64, int),
    "seed": (0, int),
    "rcut": (None, float),
    "dim": (None, int),
    "hyper_k": (None, int),
    "engine_tier": ("event", str),
}

_MACHINES = ("generic", "torus", "hopper", "intrepid")


def normalize_task(desc: dict) -> dict:
    """Canonical form of a sweep descriptor: defaults filled, types fixed.

    Unknown keys and a missing ``algorithm`` are rejected loudly (a typo
    must not silently fingerprint as a different run).  The result is a
    plain dict in fixed field order, safe to JSON-roundtrip — quarantine
    replay feeds these back in unchanged.
    """
    unknown = sorted(set(desc) - set(_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown sweep descriptor keys {unknown} "
            f"(known: {sorted(_FIELDS)})")
    out: dict = {}
    for name, (default, coerce) in _FIELDS.items():
        value = desc.get(name, default)
        out[name] = None if value is None else coerce(value)
    if not out["algorithm"]:
        raise ValueError(f"sweep descriptor needs an 'algorithm': {desc!r}")
    if out["machine"] not in _MACHINES:
        raise ValueError(f"unknown machine {out['machine']!r} "
                         f"(known: {list(_MACHINES)})")
    if out["engine_tier"] not in ("event", "heuristic"):
        raise ValueError(f"engine_tier must be 'event' or 'heuristic', "
                         f"got {out['engine_tier']!r}")
    return out


def task_fingerprint(desc: dict) -> str:
    """The content-address key of one sweep point.

    A pure function of the *normalized* descriptor (same idiom as
    :func:`repro.core.checkpoint.simulation_fingerprint`: joined
    ``key=value`` parts), so logically-equal descriptors share a cache
    entry regardless of spelling or key order.
    """
    d = normalize_task(desc)
    parts = [f"{k}={d[k]!r}" for k in _FIELDS]
    return SWEEP_NAMESPACE + ";" + ";".join(parts)


def _build_machine(name: str, p: int):
    """Instantiate the named machine model at ``p`` ranks."""
    from repro.machines import GenericMachine, GenericTorus, Hopper, Intrepid

    factory = {"generic": GenericMachine, "torus": GenericTorus,
               "hopper": Hopper, "intrepid": Intrepid}[name]
    return factory(p)


def sweep_task(desc: dict) -> dict:
    """Run one sweep point — the (pure) parallel work unit.

    Returns the self-contained result record: comm-volume/makespan
    scalars plus the force/id arrays as raw bytes (``None`` for modeled
    or heuristic-tier runs, which compute no forces).  A pure function
    of the normalized descriptor, which is what makes the run cache and
    the service's single-flight coalescing sound — the record is
    bitwise-identical however and wherever it is recomputed.  Shared
    with :mod:`repro.service`, whose jobs are exactly these records.
    """
    from repro.core.runner import RunSpec, run

    spec = RunSpec(
        machine=_build_machine(desc["machine"], desc["p"]),
        algorithm=desc["algorithm"],
        n=desc["n"],
        c=desc["c"],
        seed=desc["seed"],
        rcut=desc["rcut"],
        dim=desc["dim"],
        hyper_k=desc["hyper_k"],
        engine_tier=desc["engine_tier"],
    )
    out = run(spec)
    report = out.report
    record = {
        "algorithm": desc["algorithm"],
        "fingerprint": task_fingerprint(desc),
        "elapsed": float(out.run.elapsed),
        "critical_messages": int(report.critical_messages()),
        "critical_bytes": int(report.critical_bytes()),
        "forces": None,
        "forces_dtype": None,
        "forces_shape": None,
        "ids": None,
        "ids_dtype": None,
    }
    if out.forces is not None:
        record["forces"] = out.forces.tobytes()
        record["forces_dtype"] = str(out.forces.dtype)
        record["forces_shape"] = list(out.forces.shape)
        record["ids"] = out.ids.tobytes()
        record["ids_dtype"] = str(out.ids.dtype)
    return record


#: Backward-compatible private alias (pre-service name of the work unit).
_sweep_task = sweep_task


@dataclass
class SweepReport:
    """Every sweep point's outcome plus cache/quarantine accounting."""

    tasks: list[dict]
    outcomes: list[TaskOutcome]
    cache_stats: object | None = None
    quarantine: str | None = None

    @property
    def failures(self) -> list[TaskOutcome]:
        """Outcomes that produced no value (failed / timeout / crashed)."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def cached(self) -> list[TaskOutcome]:
        """Outcomes served from the run cache without recomputation."""
        return [o for o in self.outcomes if o.status == "cached"]

    @property
    def coalesced(self) -> list[TaskOutcome]:
        """In-batch duplicates served another point's result (single-flight)."""
        return [o for o in self.outcomes if o.status == "coalesced"]

    @property
    def computed(self) -> list[TaskOutcome]:
        """Outcomes that actually executed an engine run."""
        return [o for o in self.outcomes if o.status == "ok"]

    @property
    def ok(self) -> bool:
        """Whether every sweep point produced a value."""
        return not self.failures

    def describe_task(self, i: int) -> str:
        """One log line for sweep point ``i``: status, config, attempts."""
        d, o = self.tasks[i], self.outcomes[i]
        knobs = " ".join(
            f"{k}={d[k]}" for k in ("p", "c", "n", "seed") )
        extra = "".join(
            f" {k}={d[k]}" for k in ("rcut", "dim", "hyper_k")
            if d[k] is not None)
        tier = "" if d["engine_tier"] == "event" else f" tier={d['engine_tier']}"
        line = (f"task {i:3d} [{o.status:7s}] {d['algorithm']:16s} "
                f"{knobs}{extra}{tier}")
        if o.attempts > 1 or (o.attempts and o.status != "ok"):
            line += f" attempts={o.attempts}"
        if not o.ok:
            last = (o.error or "").strip().splitlines()
            line += f" — {last[-1] if last else 'no detail'}"
        return line

    def summary(self) -> str:
        """Per-task log lines plus the tally and cache accounting."""
        lines = [self.describe_task(i) for i in range(len(self.tasks))]
        counts: dict[str, int] = {}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        tally = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        lines.append(f"sweep: {len(self.tasks)} tasks ({tally})")
        if self.cache_stats is not None:
            lines.append(f"cache: {self.cache_stats.describe()}")
        if self.quarantine:
            lines.append(f"quarantine: {self.quarantine} (replay with "
                         f"repro.experiments.sweep.replay_quarantine)")
        return "\n".join(lines)


def run_sweep(
    tasks,
    *,
    workers: int = 0,
    retry: RetryPolicy | int | None = None,
    task_timeout: float | None = None,
    cache: RunCache | str | None = None,
    quarantine: str | None = None,
) -> SweepReport:
    """Run a batch of sweep descriptors resiliently; see module docstring.

    ``cache`` (a directory path or :class:`RunCache`) is consulted per
    fingerprint before anything executes — an interrupted sweep re-run
    with the same cache resumes from whatever completed earlier, and a
    fully warm cache serves the whole sweep with zero engine recomputes.
    ``retry`` / ``task_timeout`` / ``workers`` go to
    :func:`~repro.core.parallel.run_supervised`; ``quarantine`` names the
    JSON artifact for tasks that failed every attempt.  Never raises on
    task failure — inspect :attr:`SweepReport.failures` /
    :attr:`SweepReport.ok`.

    Duplicate descriptors within one batch are **single-flighted**: only
    the first instance of a fingerprint consults the cache and (on a
    miss) executes; the duplicates share its in-memory result as
    ``status="coalesced"`` outcomes.  That keeps the
    :class:`~repro.core.runcache.CacheStats` accounting exact — one
    lookup and at most one store per unique fingerprint, and a freshly
    stored entry is never immediately re-read to serve its own batch
    (which would double-count the computation as a cache hit).
    """
    descs = [normalize_task(t) for t in tasks]
    store = resolve_cache(cache, namespace=SWEEP_NAMESPACE)
    outcomes: list[TaskOutcome | None] = [None] * len(descs)
    misses: list[int] = []
    first_by_fp: dict[str, int] = {}
    followers: dict[int, list[int]] = {}
    for i, d in enumerate(descs):
        fp = task_fingerprint(d)
        leader = first_by_fp.get(fp)
        if leader is not None:
            # Single-flight: defer until the leader's outcome is known.
            followers.setdefault(leader, []).append(i)
            continue
        first_by_fp[fp] = i
        if store is not None:
            hit = store.get(fp)
            if hit is not MISS:
                outcomes[i] = TaskOutcome(index=i, status="cached",
                                          value=hit, attempts=0)
                continue
        misses.append(i)
    if misses:
        ran = run_supervised(sweep_task, [descs[i] for i in misses],
                             workers=workers, retry=retry,
                             task_timeout=task_timeout)
        for i, outcome in zip(misses, ran):
            outcome.index = i
            outcomes[i] = outcome
            if outcome.status == "ok" and store is not None:
                store.put(task_fingerprint(descs[i]), outcome.value)
    for leader, dupes in followers.items():
        lead = outcomes[leader]
        for i in dupes:
            if lead is not None and lead.ok:
                outcomes[i] = TaskOutcome(index=i, status="coalesced",
                                          value=lead.value, attempts=0)
            else:
                # The leader failed; the duplicate shares its fate (same
                # fingerprint, same bits) without consuming attempts.
                outcomes[i] = TaskOutcome(
                    index=i, status=lead.status if lead else "failed",
                    error=lead.error if lead else None, attempts=0)
    done: list[TaskOutcome] = outcomes  # type: ignore[assignment]
    quarantine_path = None
    if quarantine:
        quarantine_path = write_quarantine(quarantine, descs, done)
    return SweepReport(tasks=descs, outcomes=done,
                       cache_stats=None if store is None else store.stats,
                       quarantine=quarantine_path)


def replay_quarantine(path: str, **kwargs) -> SweepReport:
    """Re-run exactly the quarantined sweep points from an artifact.

    The artifact's ``task`` payloads are normalized descriptors, so they
    feed straight back into :func:`run_sweep` (all of whose keyword
    arguments pass through — replay with more retries, a longer timeout,
    or a cache as appropriate).
    """
    entries = load_quarantine(path)
    return run_sweep([e["task"] for e in entries], **kwargs)


def expand_grid(
    algorithms,
    *,
    ps=(16,),
    cs=(1,),
    ns=(64,),
    seeds=(0,),
    rcut: float | None = None,
    dim: int | None = None,
    hyper_k: int | None = None,
    engine_tier: str = "event",
    machine: str = "generic",
) -> tuple[list[dict], dict]:
    """The cross product of sweep knobs as descriptors, capability-aware.

    Mirrors the compare harness's skip logic: algorithms without a
    replication knob run once at ``c=1`` (duplicate grid points are
    dropped, so ``cs=(1, 2, 4)`` doesn't run a baseline three times);
    cutoff-windowed algorithms are skipped with a reason when ``rcut`` is
    missing, square-p algorithms when some ``p`` is not square.  Returns
    ``(tasks, skipped)`` where ``skipped`` maps algorithm name to the
    reason it was (partially) excluded.
    """
    from repro.core.runner import get_algorithm

    tasks: list[dict] = []
    skipped: dict[str, str] = {}
    seen: set[str] = set()
    for name in algorithms:
        alg = get_algorithm(name)
        if alg.needs_rcut and rcut is None:
            skipped[name] = "needs a cutoff radius (pass rcut=...)"
            continue
        for p in ps:
            q = int(round(p ** 0.5))
            if alg.square_p and q * q != p:
                skipped[name] = f"needs a square rank count (skipped p={p})"
                continue
            for c in cs:
                c_eff = c if alg.supports_c else 1
                for n in ns:
                    for seed in seeds:
                        desc = normalize_task({
                            "algorithm": name, "machine": machine,
                            "p": p, "c": c_eff, "n": n, "seed": seed,
                            "rcut": rcut if alg.needs_rcut else None,
                            "dim": dim, "hyper_k": hyper_k,
                            "engine_tier": engine_tier,
                        })
                        fp = task_fingerprint(desc)
                        if fp not in seen:
                            seen.add(fp)
                            tasks.append(desc)
    return tasks, skipped

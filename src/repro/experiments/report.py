"""Text rendering of regenerated figures (the rows/series the paper plots).

The benchmark harness prints these tables so a run of ``pytest benchmarks/
--benchmark-only`` reproduces, in text form, every figure of the paper's
evaluation section.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult
from repro.model.phases import PhaseBreakdown

__all__ = ["render_breakdown", "render_scaling", "render_figure"]

_PHASES = ("compute", "shift", "reduce", "bcast", "reassign", "allgather")


def render_breakdown(res: FigureResult) -> str:
    """Stacked-bar figure as a table: one row per replication factor."""
    cfg = res.config
    used = [ph for ph in _PHASES
            if any(b.get(ph) > 0 for b in res.breakdowns.values())]
    header = f"{'config':>14} | {'total(ms)':>10} {'comm(ms)':>10} | " + " ".join(
        f"{ph + '(ms)':>12}" for ph in used
    )
    lines = [f"Figure {cfg.figure}: {cfg.title}", header, "-" * len(header)]
    for label, b in res.breakdowns.items():
        cells = " ".join(f"{b.get(ph) * 1e3:>12.4f}" for ph in used)
        lines.append(
            f"{label:>14} | {b.total * 1e3:>10.3f} {b.communication * 1e3:>10.3f} | {cells}"
        )
    best = res.best_label()
    lines.append(f"best total: {best}")
    return "\n".join(lines)


def render_scaling(res: FigureResult) -> str:
    """Efficiency figure as a table: rows are c, columns machine sizes."""
    cfg = res.config
    sizes = list(cfg.machine_sizes)
    header = f"{'c':>6} | " + " ".join(f"{p:>8}" for p in sizes)
    lines = [f"Figure {cfg.figure}: {cfg.title}",
             "(relative efficiency vs. one core)", header, "-" * len(header)]
    for c, series in res.efficiency.items():
        by_p = dict(series)
        row = " ".join(
            f"{by_p[p]:>8.3f}" if p in by_p else f"{'-':>8}" for p in sizes
        )
        lines.append(f"{c:>6} | {row}")
    return "\n".join(lines)


def render_figure(res: FigureResult) -> str:
    """Render a figure result as text (phase breakdown or scaling table)."""
    if res.breakdowns:
        return render_breakdown(res)
    return render_scaling(res)

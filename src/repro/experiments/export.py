"""Machine-readable export of regenerated figures (CSV / JSON).

Feeds external plotting: ``python -m repro figures 2b --format csv`` emits
one row per (configuration, phase) for breakdown figures and one row per
(c, machine size) for scaling figures.
"""

from __future__ import annotations

import io
import json

from repro.experiments.figures import FigureResult

__all__ = ["export_csv", "export_json"]

_PHASES = ("compute", "shift", "reduce", "bcast", "reassign", "allgather",
           "return")


def export_csv(res: FigureResult) -> str:
    """CSV rows of the figure's series."""
    out = io.StringIO()
    if res.breakdowns:
        out.write("figure,config,phase,seconds\n")
        for label, b in res.breakdowns.items():
            for ph in _PHASES:
                v = b.get(ph)
                if v > 0:
                    out.write(f"{res.config.figure},{label},{ph},{v!r}\n")
            out.write(f"{res.config.figure},{label},total,{b.total!r}\n")
    else:
        out.write("figure,c,machine_size,efficiency\n")
        for c, series in res.efficiency.items():
            for p, e in series:
                out.write(f"{res.config.figure},{c},{p},{e!r}\n")
    return out.getvalue()


def export_json(res: FigureResult) -> str:
    """JSON document of the figure's series plus its configuration."""
    doc: dict = {
        "figure": res.config.figure,
        "title": res.config.title,
        "machine": res.config.machine_name,
        "n": res.config.n,
        "kind": res.config.kind,
    }
    if res.breakdowns:
        doc["breakdowns"] = {
            label: {"phases": dict(b.phases), "total": b.total,
                    "communication": b.communication}
            for label, b in res.breakdowns.items()
        }
    else:
        doc["efficiency"] = {
            str(c): [[p, e] for p, e in series]
            for c, series in res.efficiency.items()
        }
    return json.dumps(doc, indent=1, sort_keys=True)

"""Experiment harness: the paper's evaluation figures as runnable configs,
drivers, and text renderers."""

from repro.experiments.configs import (
    FIG2,
    FIG3,
    FIG6,
    FIG7,
    PAPER_FIGURES,
    FigureConfig,
)
from repro.experiments.charts import chart_breakdown, chart_figure, chart_scaling
from repro.experiments.compare import (
    AlgorithmComparison,
    ComparisonResult,
    compare_algorithms,
    render_comparison,
)
from repro.experiments.figures import FigureResult, run_figure, validate_figure
from repro.experiments.export import export_csv, export_json
from repro.experiments.gantt import render_gantt
from repro.experiments.report import (
    render_breakdown,
    render_figure,
    render_scaling,
)
from repro.experiments.schedfuzz import (
    SchedFuzzCheck,
    SchedFuzzReport,
    run_schedfuzz,
)
from repro.experiments.sweep import (
    SweepReport,
    expand_grid,
    replay_quarantine,
    run_sweep,
)

__all__ = [
    "FIG2",
    "FIG3",
    "FIG6",
    "FIG7",
    "PAPER_FIGURES",
    "AlgorithmComparison",
    "ComparisonResult",
    "FigureConfig",
    "FigureResult",
    "chart_breakdown",
    "compare_algorithms",
    "render_comparison",
    "chart_figure",
    "chart_scaling",
    "export_csv",
    "export_json",
    "render_breakdown",
    "render_gantt",
    "render_figure",
    "render_scaling",
    "run_figure",
    "run_schedfuzz",
    "run_sweep",
    "replay_quarantine",
    "expand_grid",
    "SchedFuzzCheck",
    "SchedFuzzReport",
    "SweepReport",
    "validate_figure",
]

"""Schedule fuzzer: adversarial interleaving exploration over the registry.

The engine promises that *scheduling order is unobservable*: every virtual
time is computed from posting timestamps, every reduction folds in a fixed
order, so any interleaving the cooperative scheduler could legally choose
must produce bitwise-identical physics and identical traffic.  This
harness turns that promise into a fuzzable, replayable contract.

For every registered algorithm (functional *and* modeled), one **FIFO
baseline** run is taken at the metrics-lock configuration, then ``N``
perturbed runs execute under derived
:class:`~repro.simmpi.schedule.SchedulePolicy` seeds (a deterministic
mix of ``random:SEED`` and ``adversarial:SEED`` policies).  Each explored
schedule must match the baseline on every observable:

* **forces** — bitwise (:func:`numpy.array_equal`), plus particle ids;
* **virtual time** — the makespan and every rank's final clock, exactly;
* **trace invariants** — per-rank, per-phase seconds / messages / bytes
  (sent and received) / retries, exactly;
* **comm volume** — run totals and critical-path counts; when the
  baseline configuration matches ``benchmarks/METRICS_LOCK.json`` the
  totals are additionally checked against the committed lock, so a
  schedule-dependent traffic change cannot hide behind a stale baseline;
* **pool / zero-copy integrity** — the engine audits its request free
  list and matching queues after every perturbed run
  (:meth:`~repro.simmpi.engine.Engine.check_invariants`) and raises on
  violation, which the harness records as a failure.

Every trial is a pure function of ``(algorithm, seed, schedule index)``:
the schedule seed is derived as ``SeedSequence([seed, index])``, so any
failure is replayable byte-for-byte from the ``(algorithm, seed,
schedule_seed)`` triple the report and the JSON bad-trace artifact both
record.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.runner import RunSpec, get_algorithm, list_algorithms, run

__all__ = ["SchedFuzzCheck", "SchedFuzzReport", "derive_schedule",
           "run_schedfuzz"]

#: The pinned fuzz configuration — deliberately the metrics-lock pin
#: (``tools/metrics_gate.py``), so measured comm volumes can be checked
#: against the committed lock as well as against the FIFO baseline.
PINNED = {"p": 16, "n": 64, "c": 2, "rcut": 0.3, "seed": 0}

_LOCK_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / \
    "METRICS_LOCK.json"


def derive_schedule(seed: int, index: int) -> str:
    """The schedule spec explored at ``index`` for campaign ``seed``.

    A pure function (SeedSequence-derived seed; every third trial is
    adversarial, the rest random), so a failing trial replays from its
    ``(seed, index)`` pair alone.
    """
    sseed = int(np.random.SeedSequence([seed, index]).generate_state(1)[0])
    family = "adversarial" if index % 3 == 2 else "random"
    return f"{family}:{sseed}"


@dataclass
class SchedFuzzCheck:
    """One (algorithm, explored schedule) verdict."""

    algorithm: str
    index: int
    seed: int
    schedule_seed: int
    schedule: str            # full policy spec, e.g. "random:123456"
    outcome: str = "ok"      # "ok" | "failed"
    detail: str = ""

    @property
    def triple(self) -> tuple[str, int, int]:
        """The replay handle: ``(algorithm, seed, schedule_seed)``."""
        return (self.algorithm, self.seed, self.schedule_seed)

    def describe(self) -> str:
        """One log line naming the replay triple and the verdict."""
        base = (f"{self.algorithm:22s} #{self.index:<3d} "
                f"[{self.outcome:6s}] {self.schedule}")
        if self.detail:
            base += f" — {self.detail}"
        return base


@dataclass
class SchedFuzzReport:
    """Campaign outcome: per-check verdicts plus replay bookkeeping."""

    seed: int
    schedules: int
    config: dict = field(default_factory=dict)
    checks: list[SchedFuzzCheck] = field(default_factory=list)
    artifacts: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[SchedFuzzCheck]:
        return [c for c in self.checks if c.outcome == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """Failure lines (all of them), the tally, and replay commands."""
        lines = [c.describe() for c in self.failures]
        algorithms = sorted({c.algorithm for c in self.checks})
        lines.append(
            f"schedfuzz seed={self.seed}: {len(self.checks)} schedules "
            f"explored over {len(algorithms)} algorithms "
            f"({len(self.failures)} failed)"
        )
        for line in self.skipped:
            lines.append(f"skipped: {line}")
        for c in self.failures:
            lines.append(
                f"REPLAY {c.triple}: python -m repro schedfuzz "
                f"--algorithms {c.algorithm} --seed {c.seed} "
                f"--first-schedule {c.index} --schedules 1"
            )
        for path in self.artifacts:
            lines.append(f"artifact: {path}")
        return "\n".join(lines)


def _spec(machine_cls, name: str, config: dict, schedule=None) -> RunSpec:
    """A registry-respecting RunSpec at the pinned configuration."""
    alg = get_algorithm(name)
    return RunSpec(
        machine=machine_cls(nranks=config["p"]),
        algorithm=name,
        n=config["n"],
        c=config["c"] if alg.supports_c else 1,
        rcut=config["rcut"] if alg.needs_rcut else None,
        seed=config["seed"],
        schedule=schedule,
    )


def _signature(out) -> dict:
    """Every schedule-independent observable of one run, exactly.

    Forces are kept as raw bytes (+shape) so the comparison is bitwise by
    construction; trace totals include the retry fields so a fault-laced
    fuzz cannot silently shift retransmit accounting between schedules.
    """
    forces = None
    if out.forces is not None:
        forces = (out.forces.shape, out.forces.tobytes(),
                  out.ids.tobytes())
    report = out.run.report
    phases = {
        tr.rank: {
            label: (pt.seconds, pt.messages_sent, pt.messages_received,
                    pt.bytes_sent, pt.bytes_received, pt.retries,
                    pt.redelivered)
            for label, pt in tr.phases.items()
        }
        for tr in report.traces
    }
    return {
        "forces": forces,
        "elapsed": out.run.elapsed,
        "clocks": tuple(out.run.clocks),
        "nops": out.run.nops,
        "phases": phases,
        "volume": _volume(out),
    }


def _volume(out) -> dict:
    """Run-total and critical-path comm volume (metrics-gate schema)."""
    report = out.run.report
    total_messages = 0
    total_bytes = 0
    for tr in report.traces:
        for tot in tr.phases.values():
            total_messages += tot.messages_sent
            total_bytes += tot.bytes_sent
    return {
        "critical_messages": int(report.critical_messages()),
        "critical_bytes": int(report.critical_bytes()),
        "total_messages": int(total_messages),
        "total_bytes": int(total_bytes),
    }


def _diff_signatures(base: dict, got: dict) -> str | None:
    """First divergence between two run signatures, or ``None``."""
    bf, gf = base["forces"], got["forces"]
    if (bf is None) != (gf is None):
        return "one run produced forces, the other did not"
    if bf is not None and bf != gf:
        a = np.frombuffer(bf[1], dtype=np.float64)
        b = np.frombuffer(gf[1], dtype=np.float64)
        detail = "shapes differ" if bf[0] != gf[0] else (
            f"max |delta|={float(np.max(np.abs(a - b))):.3e} over "
            f"{int(np.sum(a != b))} lanes")
        if bf[2] != gf[2]:
            detail += "; particle ids differ"
        return f"forces diverged ({detail})"
    for key in ("elapsed", "clocks", "nops"):
        if base[key] != got[key]:
            return f"{key} diverged: {base[key]!r} != {got[key]!r}"
    if base["volume"] != got["volume"]:
        return (f"comm volume diverged: baseline {base['volume']} vs "
                f"{got['volume']}")
    if base["phases"] != got["phases"]:
        for rank in sorted(set(base["phases"]) | set(got["phases"])):
            if base["phases"].get(rank) != got["phases"].get(rank):
                return (f"rank {rank} phase totals diverged: "
                        f"{base['phases'].get(rank)!r} != "
                        f"{got['phases'].get(rank)!r}")
    return None


def _check_lock(name: str, volume: dict, config: dict,
                lock_path) -> str | None:
    """Baseline comm volume vs the committed metrics lock (when pinned)."""
    path = Path(lock_path) if lock_path is not None else _LOCK_PATH
    if not path.exists():
        return None
    lock = json.loads(path.read_text())
    if lock.get("config") != config or name not in lock.get("algorithms", {}):
        return None
    locked = lock["algorithms"][name]
    for key, want in locked.items():
        if volume.get(key) != want:
            return (f"baseline {key}={volume.get(key)} != locked {want} "
                    f"({path.name})")
    return None


def _baseline_task(task: tuple) -> dict:
    """Parallel work unit: one FIFO baseline signature for ``(name, cfg)``."""
    from repro.machines import GenericMachine

    name, cfg = task
    return _signature(run(_spec(GenericMachine, name, cfg)))


def _perturbed_task(task: tuple) -> tuple[str, object]:
    """Parallel work unit: one perturbed run for ``(name, cfg, spec_str)``.

    Returns ``("ok", signature)`` or ``("raised", detail)`` — a raising
    perturbed run is a recorded *finding*, exactly as in the serial loop,
    not a worker crash.
    """
    from repro.machines import GenericMachine

    name, cfg, spec_str = task
    try:
        got = run(_spec(GenericMachine, name, cfg, schedule=spec_str))
        return ("ok", _signature(got))
    except Exception as exc:
        return ("raised", f"perturbed run raised {type(exc).__name__}: {exc}")


def _dump_artifact(directory: str, check: SchedFuzzCheck, config: dict,
                   baseline: dict | None, got: dict | None) -> str:
    """Persist a failing check as a replayable JSON bad-trace artifact."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory,
        f"schedfuzz-{check.algorithm}-seed{check.seed}-"
        f"schedule{check.index:03d}.json",
    )

    def _jsonable(sig):
        if sig is None:
            return None
        out = dict(sig)
        if out.get("forces") is not None:
            shape, blob, ids = out["forces"]
            out["forces"] = {
                "shape": list(shape),
                "values": np.frombuffer(blob, dtype=np.float64).tolist(),
                "ids": np.frombuffer(ids, dtype=np.int64).tolist(),
            }
        out["phases"] = {str(r): {l: list(t) for l, t in ph.items()}
                         for r, ph in out["phases"].items()}
        out["clocks"] = list(out["clocks"])
        return out

    with open(path, "w") as fh:
        json.dump({
            "algorithm": check.algorithm,
            "seed": check.seed,
            "schedule_seed": check.schedule_seed,
            "schedule": check.schedule,
            "index": check.index,
            "config": config,
            "detail": check.detail,
            "replay": (f"python -m repro schedfuzz --algorithms "
                       f"{check.algorithm} --seed {check.seed} "
                       f"--first-schedule {check.index} --schedules 1"),
            "baseline": _jsonable(baseline),
            "perturbed": _jsonable(got),
        }, fh, indent=1, default=str)
    return path


#: Run-cache namespace for run signatures (bump on schema change).
SCHEDFUZZ_NAMESPACE = "schedfuzz-v1"


def _sig_key(name: str, cfg: dict, schedule: str | None) -> str:
    """Cache fingerprint of one run signature (``schedule=None`` = FIFO)."""
    return (f"sig;alg={name};cfg={json.dumps(cfg, sort_keys=True)};"
            f"schedule={schedule or 'fifo'}")


def run_schedfuzz(
    algorithms: list[str] | None = None,
    *,
    schedules: int = 100,
    seed: int = 0,
    first_schedule: int = 0,
    config: dict | None = None,
    out_dir: str | None = None,
    time_budget: float | None = None,
    lock_path=None,
    workers: int = 0,
    retry=None,
    task_timeout: float | None = None,
    cache=None,
) -> SchedFuzzReport:
    """Fuzz ``schedules`` interleavings per algorithm; see module docstring.

    ``algorithms`` defaults to the whole registry.  ``first_schedule``
    offsets the explored indices (schedule ``i`` is a pure function of
    ``(seed, i)``), so one failing schedule replays alone.  ``config``
    overrides the pinned ``{p, n, c, rcut, seed}`` measurement point
    (volumes are then no longer checked against the metrics lock).
    ``time_budget`` (wall seconds) stops the campaign early, recording
    what was skipped.

    ``workers > 0`` fans the campaign out over spawned worker processes
    (:func:`repro.core.parallel.parallel_map`): first all FIFO baselines,
    then every perturbed schedule, with verdicts merged in the serial
    ``(algorithm, index)`` order — every check is a pure function of its
    ``(algorithm, seed, index)`` triple, so the report is identical to
    the serial run.  With a ``time_budget`` the cutoff is checked between
    waves of ``4 * workers`` runs, so *which* trailing schedules get
    skipped may differ from the serial run.

    ``retry`` / ``task_timeout`` govern the executor's crash/hang
    recovery for the worker fleet (see
    :func:`repro.core.parallel.run_supervised`); a run the executor
    loses beyond every retry is recorded as a failed check naming the
    executor, never an aborted campaign.  ``cache`` (a directory path or
    :class:`~repro.core.runcache.RunCache`) stores run *signatures* keyed
    on ``(algorithm, config, schedule)`` — verdicts are always re-judged
    from the signatures, so a cached campaign still detects divergence
    and still honors a changed metrics lock.
    """
    from repro.core.runcache import MISS, resolve_cache
    from repro.machines import GenericMachine

    cfg = dict(PINNED if config is None else config)
    report = SchedFuzzReport(seed=seed, schedules=schedules, config=cfg)
    names = list(algorithms) if algorithms is not None else list_algorithms()
    artifact_dir = out_dir or tempfile.mkdtemp(prefix="schedfuzz-")
    store = resolve_cache(cache, namespace=SCHEDFUZZ_NAMESPACE)
    t0 = time.monotonic()
    if workers > 0:
        return _run_parallel(report, names, cfg, schedules=schedules,
                             seed=seed, first_schedule=first_schedule,
                             artifact_dir=artifact_dir,
                             time_budget=time_budget, lock_path=lock_path,
                             workers=workers, t0=t0, retry=retry,
                             task_timeout=task_timeout, store=store)
    for name in names:
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            report.skipped.append(f"{name}: time budget exhausted")
            continue
        base_sig = (store.get(_sig_key(name, cfg, None))
                    if store is not None else MISS)
        if base_sig is MISS:
            baseline = run(_spec(GenericMachine, name, cfg))
            base_sig = _signature(baseline)
            if store is not None:
                store.put(_sig_key(name, cfg, None), base_sig)
        lock_problem = _check_lock(name, base_sig["volume"], cfg, lock_path)
        for index in range(first_schedule, first_schedule + schedules):
            spec_str = derive_schedule(seed, index)
            sseed = int(spec_str.partition(":")[2])
            check = SchedFuzzCheck(algorithm=name, index=index, seed=seed,
                                   schedule_seed=sseed, schedule=spec_str)
            report.checks.append(check)
            if time_budget is not None and time.monotonic() - t0 > time_budget:
                report.skipped.append(
                    f"{name}: schedules {index}.. skipped (time budget)")
                report.checks.pop()
                break
            if lock_problem:
                # The baseline itself is off the committed lock; every
                # schedule inherits the failure rather than masking it.
                check.outcome = "failed"
                check.detail = lock_problem
                report.artifacts.append(_dump_artifact(
                    artifact_dir, check, cfg, base_sig, None))
                continue
            got_sig = None
            cached_sig = (store.get(_sig_key(name, cfg, spec_str))
                          if store is not None else MISS)
            if cached_sig is not MISS:
                got_sig = cached_sig
                mismatch = _diff_signatures(base_sig, got_sig)
            else:
                try:
                    got = run(_spec(GenericMachine, name, cfg,
                                    schedule=spec_str))
                    got_sig = _signature(got)
                    if store is not None:
                        store.put(_sig_key(name, cfg, spec_str), got_sig)
                    mismatch = _diff_signatures(base_sig, got_sig)
                except Exception as exc:
                    mismatch = (f"perturbed run raised "
                                f"{type(exc).__name__}: {exc}")
            if mismatch:
                check.outcome = "failed"
                check.detail = mismatch
                report.artifacts.append(_dump_artifact(
                    artifact_dir, check, cfg, base_sig, got_sig))
    return report


def _lost_in_executor(outcome) -> str:
    """A check/skip detail line for a task the executor lost."""
    last = (outcome.error or "").strip().splitlines()
    return (f"run lost in executor: {outcome.status} after "
            f"{outcome.attempts} attempt(s) — "
            f"{last[-1] if last else 'no detail'}")


def _run_parallel(report: SchedFuzzReport, names: list[str], cfg: dict, *,
                  schedules: int, seed: int, first_schedule: int,
                  artifact_dir: str, time_budget, lock_path, workers: int,
                  t0: float, retry=None, task_timeout=None,
                  store=None) -> SchedFuzzReport:
    """The ``workers > 0`` campaign body: fan out, merge in serial order."""
    from repro.core.parallel import parallel_map
    from repro.core.runcache import MISS

    def _exhausted() -> bool:
        return time_budget is not None and time.monotonic() - t0 > time_budget

    live: list[str] = []
    for name in names:
        if _exhausted():
            report.skipped.append(f"{name}: time budget exhausted")
        else:
            live.append(name)
    base_sigs: dict[str, dict] = {}
    base_problems: dict[str, str] = {}
    need_base = []
    for nm in live:
        hit = (store.get(_sig_key(nm, cfg, None))
               if store is not None else MISS)
        if hit is not MISS:
            base_sigs[nm] = hit
        else:
            need_base.append(nm)
    if need_base:
        outs = parallel_map(_baseline_task, [(nm, cfg) for nm in need_base],
                            workers=workers, retry=retry,
                            task_timeout=task_timeout, on_error="collect")
        for nm, outcome in zip(need_base, outs):
            if outcome.ok:
                base_sigs[nm] = outcome.value
                if store is not None:
                    store.put(_sig_key(nm, cfg, None), outcome.value)
            else:
                # No baseline means nothing to judge against: every
                # check of this algorithm fails naming the loss, like a
                # lock problem — the campaign itself keeps going.
                base_problems[nm] = f"baseline {_lost_in_executor(outcome)}"
    lock_problems = {
        nm: (base_problems.get(nm)
             or _check_lock(nm, base_sigs[nm]["volume"], cfg, lock_path))
        for nm in live
    }
    indices = list(range(first_schedule, first_schedule + schedules))
    # Lock-failed algorithms never run perturbed schedules (the serial
    # loop fails each check outright); everyone else fans out in waves so
    # a time budget can stop between them.  Cache-served signatures never
    # fan out either — their verdicts are re-judged below.
    results: dict[tuple[str, int], tuple[str, object]] = {}
    pending = []
    for nm in live:
        if lock_problems[nm]:
            continue
        for idx in indices:
            hit = (store.get(_sig_key(nm, cfg, derive_schedule(seed, idx)))
                   if store is not None else MISS)
            if hit is not MISS:
                results[(nm, idx)] = ("ok", hit)
            else:
                pending.append((nm, idx))
    # Without a time budget there is nothing to check between waves — one
    # pool over all runs amortizes the spawn start-up cost best.
    wave = (len(pending) if time_budget is None
            else max(1, int(workers)) * 4)
    skipped_from: dict[str, int] = {}
    pos = 0
    while pos < len(pending):
        if _exhausted():
            for nm, idx in pending[pos:]:
                skipped_from.setdefault(nm, idx)
            break
        batch = pending[pos:pos + wave]
        outs = parallel_map(
            _perturbed_task,
            [(nm, cfg, derive_schedule(seed, idx)) for nm, idx in batch],
            workers=workers, retry=retry, task_timeout=task_timeout,
            on_error="collect")
        for (nm, idx), outcome in zip(batch, outs):
            if outcome.ok:
                results[(nm, idx)] = outcome.value
                status, value = outcome.value
                if status == "ok" and store is not None:
                    store.put(_sig_key(nm, cfg, derive_schedule(seed, idx)),
                              value)
            else:
                results[(nm, idx)] = ("raised", _lost_in_executor(outcome))
        pos += len(batch)
    for name in live:
        base_sig = base_sigs.get(name)
        lock_problem = lock_problems[name]
        for index in indices:
            if name in skipped_from and index >= skipped_from[name]:
                report.skipped.append(
                    f"{name}: schedules {index}.. skipped (time budget)")
                break
            spec_str = derive_schedule(seed, index)
            sseed = int(spec_str.partition(":")[2])
            check = SchedFuzzCheck(algorithm=name, index=index, seed=seed,
                                   schedule_seed=sseed, schedule=spec_str)
            report.checks.append(check)
            if lock_problem:
                check.outcome = "failed"
                check.detail = lock_problem
                report.artifacts.append(_dump_artifact(
                    artifact_dir, check, cfg, base_sig, None))
                continue
            status, value = results[(name, index)]
            got_sig = value if status == "ok" else None
            mismatch = (value if status != "ok"
                        else _diff_signatures(base_sig, got_sig))
            if mismatch:
                check.outcome = "failed"
                check.detail = mismatch
                report.artifacts.append(_dump_artifact(
                    artifact_dir, check, cfg, base_sig, got_sig))
    return report

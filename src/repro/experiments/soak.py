"""Chaos soak harness: randomized fault + checkpoint/restart campaigns.

Each trial builds a randomized multi-step simulation (machine size,
replication, all-pairs or cutoff decomposition, uniform or clustered
workload, run length), runs it three ways and demands bitwise
agreement:

1. **Reference** — fault-free, uninterrupted.
2. **Chaos** — under a randomized :class:`~repro.simmpi.faults.FaultSchedule`
   (rank kills bounded so every team keeps a survivor, plus probabilistic
   drops / delays / checksummed corruption), writing checkpoints as it goes.
   Final positions, velocities and forces must equal the reference exactly.
3. **Resume** — restart from a mid-run checkpoint of the chaos run
   (randomly fault-free or under the same schedule again) and replay to the
   end.  The resumed final state must equal the reference exactly.

A third trial flavor covers the systolic schedule family
(``systolic_ring`` / ``half_systolic`` / ``hyper_systolic``): these run
at ``c = 1`` with no replicas to recover a kill from, so their trials
draw transient-only schedules (drops / delays / checksummed corruption)
and demand the single-step registry run's forces equal the fault-free
run bit for bit — the engine's retry protocol under chaos, on the
shared communication-schedule IR.

Documented-unrecoverable outcomes (a death outside the recoverable window,
an exhausted retransmit budget — see ``docs/fault-model.md``) are *declared
losses*: the run failed loudly, which is the contract; they are counted and
reported but are not soak failures.  Any bitwise mismatch or undeclared
exception is a failure; the trial's full configuration (derived from
``seed`` + trial index, so every failure is replayable) and a recorded
engine timeline are dumped as JSON artifacts.

Everything is deterministic in ``seed``: ``run_soak(trials=N, seed=S)``
twice produces identical reports.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.allpairs import allpairs_config
from repro.core.checkpoint import CheckpointPolicy
from repro.core.cutoff import cutoff_config
from repro.core.decomposition import team_blocks_even, team_blocks_spatial
from repro.core.driver import SimulationConfig, run_simulation
from repro.machines import GenericMachine
from repro.physics.forces import ForceLaw
from repro.physics.particles import ParticleSet
from repro.physics.workloads import gaussian_clusters
from repro.simmpi.errors import SimMPIError
from repro.simmpi.faults import FaultSchedule, KillRank

__all__ = ["SoakReport", "SoakTrial", "run_soak"]

#: Exception types that are a *declared* loss of the run, not a soak
#: failure: the fault model documents them as the loud-failure contract
#: (death outside the recoverable window raises, exhausted retransmit
#: budgets raise, a particle outrunning its region raises).
_DECLARED = (SimMPIError, ValueError, RuntimeError)


@dataclass
class SoakTrial:
    """One trial's configuration and verdict."""

    index: int
    seed: int
    algorithm: str            # "allpairs" | "cutoff" | systolic family
    p: int
    c: int
    n: int
    dim: int
    nsteps: int
    rcut: float | None
    workload: str             # "uniform" | "clustered"
    schedule: str             # repr of the fault schedule
    schedule_policy: str = "fifo"   # scheduler policy spec the trial ran under
    outcome: str = "ok"       # "ok" | "declared" | "failed" | "skipped"
    detail: str = ""
    checkpoints: int = 0
    resumed_from: int | None = None
    resume_faulty: bool = False
    deaths: int = 0

    def describe(self) -> str:
        """One log line: trial index, outcome, configuration and detail."""
        base = (f"trial {self.index:3d} [{self.outcome:8s}] "
                f"{self.algorithm:8s} p={self.p} c={self.c} n={self.n} "
                f"dim={self.dim} steps={self.nsteps} {self.workload:9s} "
                f"deaths={self.deaths} ckpts={self.checkpoints}")
        if self.schedule_policy != "fifo":
            base += f" sched={self.schedule_policy}"
        if self.resumed_from is not None:
            base += (f" resume@{self.resumed_from}"
                     f"{'+faults' if self.resume_faulty else ''}")
        if self.detail:
            base += f" — {self.detail}"
        return base


@dataclass
class SoakReport:
    """Every trial's verdict plus campaign-level accounting."""

    seed: int
    trials: list[SoakTrial] = field(default_factory=list)
    artifacts: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[SoakTrial]:
        return [t for t in self.trials if t.outcome == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """Per-trial log lines plus the outcome tally and replay commands."""
        counts: dict[str, int] = {}
        for t in self.trials:
            counts[t.outcome] = counts.get(t.outcome, 0) + 1
        lines = [t.describe() for t in self.trials]
        tally = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        lines.append(f"soak seed={self.seed}: {len(self.trials)} trials ({tally})")
        for t in self.failures:
            sched = ("" if t.schedule_policy == "fifo"
                     else f", schedule={t.schedule_policy!r}")
            lines.append(
                f"REPLAY: run_soak(trials=1, seed={self.seed}, "
                f"first_trial={t.index}{sched}) reproduces trial {t.index}"
            )
        for path in self.artifacts:
            lines.append(f"artifact: {path}")
        return "\n".join(lines)


def _random_schedule(rng: np.random.Generator, grid, *,
                     with_kills: bool) -> FaultSchedule:
    """A randomized schedule every team can survive."""
    events: list = []
    if with_kills and rng.random() < 0.8:
        nteams_hit = int(rng.integers(1, min(3, grid.nteams) + 1))
        cols = rng.choice(grid.nteams, size=nteams_hit, replace=False)
        for col in cols:
            # One victim per team keeps c-1 >= 1 survivors everywhere.
            row = int(rng.integers(grid.c))
            events.append(KillRank(grid.rank_at(row, int(col)),
                                   after_ops=int(rng.integers(5, 120))))
    return FaultSchedule(
        events=tuple(events),
        seed=int(rng.integers(2**31)),
        drop_prob=float(rng.choice([0.0, 0.005, 0.02])),
        delay_prob=float(rng.choice([0.0, 0.05])),
        corrupt_prob=float(rng.choice([0.0, 0.005, 0.02])),
        delay_seconds=1e-5,
        max_retries=8,
        retry_backoff=float(rng.choice([1.0, 1.5, 2.0])),
        checksum=True,
        detect_seconds=float(rng.choice([0.0, 1e-5])),
    )


def _dump_artifact(directory: str, trial: SoakTrial, machine, scfg,
                   blocks, faults, schedule=None) -> str:
    """Persist a failing trial's config and a recorded timeline as JSON.

    The artifact records the scheduler policy spec alongside the fault
    schedule (both inside ``trial`` and as a top-level key), so a failure
    found under a perturbed interleaving replays under the *same*
    interleaving.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"soak-failure-trial{trial.index:03d}.json")
    timeline = None
    try:
        from repro.simmpi.tracing import timeline_to_json

        rerun = run_simulation(machine, scfg, blocks, faults=faults,
                               schedule=schedule,
                               engine_opts={"record_events": True})
        timeline = json.loads(timeline_to_json(rerun.run.events))
    except Exception as exc:  # the rerun may legitimately raise
        timeline = f"timeline rerun raised: {exc!r}"
    with open(path, "w") as fh:
        json.dump({"trial": trial.__dict__, "schedule": trial.schedule,
                   "schedule_policy": trial.schedule_policy,
                   "timeline": timeline}, fh, indent=1, default=str)
    return path


def _check_state(got, ref, what: str) -> str | None:
    """Bitwise comparison; a mismatch description or ``None``."""
    for name, a, b in (("pos", got.particles.pos, ref.particles.pos),
                       ("vel", got.particles.vel, ref.particles.vel),
                       ("ids", got.particles.ids, ref.particles.ids),
                       ("forces", got.forces, ref.forces)):
        if not np.array_equal(a, b):
            dev = float(np.max(np.abs(np.asarray(a) - np.asarray(b))))
            return f"{what}: {name} mismatch vs reference (max |delta|={dev:.3e})"
    return None


def _systolic_trial(rng: np.random.Generator, seed: int, index: int,
                    p: int, schedule, artifact_dir: str,
                    skip: bool) -> tuple[SoakTrial, list[str]]:
    """One systolic-family trial: transient chaos, bitwise force check.

    The family runs at ``c = 1`` — a kill would be unrecoverable by
    construction — so the schedule is transient-only and the contract is
    that the engine's retry protocol makes the chaos run's forces equal
    the fault-free run's exactly.
    """
    from repro.core.runner import RunSpec, run

    artifacts: list[str] = []
    algorithm = str(rng.choice(
        ["systolic_ring", "half_systolic", "hyper_systolic"]))
    dim = int(rng.choice([1, 2]))
    n = int(rng.integers(40, 97))
    workload = str(rng.choice(["uniform", "clustered"]))
    trial = SoakTrial(index=index, seed=seed, algorithm=algorithm, p=p,
                      c=1, n=n, dim=dim, nsteps=1, rcut=None,
                      workload=workload, schedule="",
                      schedule_policy="fifo" if schedule is None
                      else str(schedule))
    if skip:
        trial.outcome = "skipped"
        trial.detail = "time budget exhausted"
        return trial, artifacts

    wl_seed = int(rng.integers(2**31))
    if workload == "uniform":
        particles = ParticleSet.uniform_random(n, dim, 1.0,
                                               max_speed=0.05, seed=wl_seed)
    else:
        particles = gaussian_clusters(n, dim, 1.0, nclusters=3,
                                      spread=0.08, max_speed=0.05,
                                      seed=wl_seed)
    machine = GenericMachine(nranks=p)
    grid = allpairs_config(p, 1).grid
    faults = _random_schedule(rng, grid, with_kills=False)
    trial.schedule = repr(faults)
    law = ForceLaw(k=1e-5, softening=5e-3)

    reference = run(RunSpec(machine=machine, algorithm=algorithm,
                            particles=particles, law=law))
    try:
        chaos = run(RunSpec(machine=machine, algorithm=algorithm,
                            particles=particles, law=law, faults=faults,
                            schedule=schedule))
    except _DECLARED as exc:
        trial.outcome = "declared"
        trial.detail = f"{type(exc).__name__}: {exc}"
        return trial, artifacts
    except Exception as exc:
        trial.outcome = "failed"
        trial.detail = f"undeclared {type(exc).__name__}: {exc}"
    else:
        if not (np.array_equal(chaos.ids, reference.ids)
                and np.array_equal(chaos.forces, reference.forces)):
            dev = float(np.max(np.abs(chaos.forces - reference.forces)))
            trial.outcome = "failed"
            trial.detail = (f"chaos run: forces mismatch vs fault-free "
                            f"run (max |delta|={dev:.3e})")
    if trial.outcome == "failed":
        os.makedirs(artifact_dir, exist_ok=True)
        path = os.path.join(artifact_dir, f"trial-{index:04d}.json")
        with open(path, "w") as fh:
            json.dump({"trial": trial.__dict__, "schedule": trial.schedule,
                       "schedule_policy": trial.schedule_policy}, fh,
                      indent=1, default=str)
        artifacts.append(path)
    return trial, artifacts


def _run_trial(task: tuple) -> tuple[SoakTrial, list[str]]:
    """One soak trial, pure in its task tuple — the parallel work unit.

    ``task`` is ``(seed, index, with_kills, schedule, artifact_dir,
    skip)``; the trial re-derives its entire configuration from
    ``(seed, index)``, so the serial loop and any worker process produce
    bitwise-identical trials.  ``skip=True`` still draws the
    configuration (so skipped trials report what they *would* have run)
    but executes nothing.  Returns the trial verdict plus any failure
    artifact paths written under ``artifact_dir``.
    """
    seed, index, with_kills, schedule, artifact_dir, skip = task
    artifacts: list[str] = []
    rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
    p = int(rng.choice([8, 12, 16]))
    c = int(rng.choice({8: [2, 4], 12: [2, 3], 16: [2, 4]}[p]))
    algorithm = str(rng.choice(["allpairs", "cutoff", "systolic"]))
    if algorithm == "systolic":
        return _systolic_trial(rng, seed, index, p, schedule,
                               artifact_dir, skip)
    dim = 2 if algorithm == "cutoff" else int(rng.choice([1, 2]))
    n = int(rng.integers(40, 97))
    nsteps = int(rng.integers(3, 7))
    rcut = float(rng.uniform(0.3, 0.45)) if algorithm == "cutoff" else None
    workload = str(rng.choice(["uniform", "clustered"]))
    trial = SoakTrial(index=index, seed=seed, algorithm=algorithm, p=p,
                      c=c, n=n, dim=dim, nsteps=nsteps, rcut=rcut,
                      workload=workload, schedule="",
                      schedule_policy="fifo" if schedule is None
                      else str(schedule))
    if skip:
        trial.outcome = "skipped"
        trial.detail = "time budget exhausted"
        return trial, artifacts

    wl_seed = int(rng.integers(2**31))
    if workload == "uniform":
        particles = ParticleSet.uniform_random(n, dim, 1.0,
                                               max_speed=0.05, seed=wl_seed)
    else:
        particles = gaussian_clusters(n, dim, 1.0, nclusters=3,
                                      spread=0.08, max_speed=0.05,
                                      seed=wl_seed)
    if algorithm == "cutoff":
        cfg = cutoff_config(p, c, rcut=rcut, box_length=1.0, dim=dim)
        blocks = team_blocks_spatial(particles, cfg.geometry)
    else:
        cfg = allpairs_config(p, c)
        blocks = team_blocks_even(particles, cfg.grid.nteams)
    machine = GenericMachine(nranks=p)
    scfg = SimulationConfig(cfg=cfg, law=ForceLaw(k=1e-5, softening=5e-3),
                            dt=5e-4, nsteps=nsteps, box_length=1.0)
    faults = _random_schedule(rng, cfg.grid, with_kills=with_kills)
    trial.schedule = repr(faults)
    resume_faulty = bool(rng.random() < 0.5)

    reference = run_simulation(machine, scfg, blocks)

    with tempfile.TemporaryDirectory(prefix="soak-ckpt-") as ckpt_dir:
        policy = CheckpointPolicy(directory=ckpt_dir,
                                  every=int(rng.choice([1, 2])))
        try:
            chaos = run_simulation(machine, scfg, blocks, faults=faults,
                                   checkpoint=policy, schedule=schedule)
        except _DECLARED as exc:
            trial.outcome = "declared"
            trial.detail = f"{type(exc).__name__}: {exc}"
            return trial, artifacts
        except Exception as exc:
            trial.outcome = "failed"
            trial.detail = f"undeclared {type(exc).__name__}: {exc}"
            artifacts.append(_dump_artifact(
                artifact_dir, trial, machine, scfg, blocks, faults,
                schedule))
            return trial, artifacts
        trial.checkpoints = len(chaos.checkpoints)
        trial.deaths = len(chaos.run.deaths)
        mismatch = _check_state(chaos, reference, "chaos run")
        if mismatch:
            trial.outcome = "failed"
            trial.detail = mismatch
            artifacts.append(_dump_artifact(
                artifact_dir, trial, machine, scfg, blocks, faults,
                schedule))
            return trial, artifacts

        midrun = [(s, path) for s, path in chaos.checkpoints
                  if 0 < s < nsteps]
        if not midrun:
            trial.detail = "no mid-run checkpoint survived; resume skipped"
            return trial, artifacts
        step, path = midrun[int(rng.integers(len(midrun)))]
        trial.resumed_from = step
        trial.resume_faulty = resume_faulty
        try:
            resumed = run_simulation(
                machine, scfg, resume_from=path,
                faults=faults if resume_faulty else None,
                schedule=schedule,
            )
        except _DECLARED as exc:
            trial.outcome = "declared"
            trial.detail = f"resume: {type(exc).__name__}: {exc}"
            return trial, artifacts
        except Exception as exc:
            trial.outcome = "failed"
            trial.detail = f"resume: undeclared {type(exc).__name__}: {exc}"
            artifacts.append(_dump_artifact(
                artifact_dir, trial, machine, scfg, blocks, faults,
                schedule))
            return trial, artifacts
        mismatch = _check_state(resumed, reference, f"resume@{step}")
        if mismatch:
            trial.outcome = "failed"
            trial.detail = mismatch
            artifacts.append(_dump_artifact(
                artifact_dir, trial, machine, scfg, blocks, faults,
                schedule))
    return trial, artifacts


#: Run-cache namespace for soak trial verdicts (bump on schema change).
SOAK_NAMESPACE = "soak-v1"


def _executor_casualty(index: int, seed: int, sched_spec: str,
                       outcome) -> SoakTrial:
    """A failed trial record for a task the *executor* lost.

    When a trial's worker crashed / hung / raised beyond every retry,
    there is no in-trial verdict to report — synthesize one so the
    campaign stays complete and loud instead of aborting.
    """
    last = (outcome.error or "").strip().splitlines()
    return SoakTrial(
        index=index, seed=seed, algorithm="(executor)", p=0, c=0, n=0,
        dim=0, nsteps=0, rcut=None, workload="-", schedule="",
        schedule_policy=sched_spec, outcome="failed",
        detail=(f"executor: {outcome.status} after {outcome.attempts} "
                f"attempt(s) — {last[-1] if last else 'no detail'}"))


def run_soak(
    trials: int = 10,
    *,
    seed: int = 0,
    first_trial: int = 0,
    with_kills: bool = True,
    out_dir: str | None = None,
    time_budget: float | None = None,
    schedule=None,
    workers: int = 0,
    retry=None,
    task_timeout: float | None = None,
    cache=None,
) -> SoakReport:
    """Run ``trials`` randomized chaos trials; see the module docstring.

    ``first_trial`` offsets the trial indices (trial ``i`` is a pure
    function of ``(seed, i)``), so a failing trial from a long campaign can
    be replayed alone.  ``out_dir`` receives failure artifacts (default: a
    temporary directory).  ``time_budget`` (wall seconds) stops the
    campaign early, marking the remaining trials ``skipped``.

    ``schedule`` (a :class:`~repro.simmpi.schedule.SchedulePolicy` spec
    string, e.g. ``"adversarial"`` or ``"random:7"``) perturbs the
    engine's scheduler free choices for the chaos and resume runs — the
    fault-free reference always runs FIFO, so the bitwise comparison
    simultaneously exercises fault recovery *and* schedule independence.
    The policy spec is recorded on every trial and in failure artifacts.

    ``workers > 0`` executes trials across that many supervised worker
    processes (:func:`repro.core.parallel.run_supervised`).  Trials are
    pure in ``(seed, index)``, so the report is bitwise-identical to the
    serial run — including trials retried after a worker crash; with a
    ``time_budget`` the cutoff is checked between waves of
    ``4 * workers`` trials rather than before every trial, so *which*
    trials get skipped may differ from the serial run (the trials that do
    run are still identical).

    ``retry`` (a :class:`~repro.core.parallel.RetryPolicy` or an int max
    attempts) and ``task_timeout`` (seconds) govern the executor's
    crash/hang recovery for the worker fleet; a trial its worker loses
    beyond every retry is reported as a failed ``(executor)`` trial and
    quarantined to ``<out_dir>/quarantine.json`` instead of sinking the
    campaign.  Both are executor-level knobs: with ``workers=0`` the
    trial function runs in-process and never raises, so they are no-ops.

    ``cache`` (a directory path or :class:`~repro.core.runcache.RunCache`)
    serves previously-settled verdicts: a trial that completed ``ok`` or
    ``declared`` in an earlier campaign with the same ``(seed, index,
    with_kills, schedule)`` is not re-simulated.  Failed and skipped
    trials are never cached — they recompute (and re-dump artifacts)
    every time.
    """
    from repro.core.parallel import parallel_map, write_quarantine
    from repro.core.runcache import MISS, resolve_cache

    report = SoakReport(seed=seed)
    t0 = time.monotonic()
    artifact_dir = out_dir or tempfile.mkdtemp(prefix="chaos-soak-")
    indices = list(range(first_trial, first_trial + trials))
    sched_spec = "fifo" if schedule is None else str(schedule)
    store = resolve_cache(cache, namespace=SOAK_NAMESPACE)

    def _key(index: int) -> str:
        return (f"seed={seed};index={index};kills={with_kills};"
                f"schedule={sched_spec}")

    cached: dict[int, SoakTrial] = {}
    if store is not None:
        for index in indices:
            hit = store.get(_key(index))
            if hit is not MISS:
                cached[index] = hit
    todo = [i for i in indices if i not in cached]

    results: dict[int, tuple[SoakTrial, list[str]]] = {}
    poisoned_tasks: list = []
    poisoned_outcomes: list = []

    def _exhausted() -> bool:
        return time_budget is not None and time.monotonic() - t0 > time_budget

    def _absorb(index: int, trial: SoakTrial, artifacts: list[str]) -> None:
        results[index] = (trial, artifacts)
        if (store is not None and trial.outcome in ("ok", "declared")
                and not artifacts):
            store.put(_key(index), trial)

    if workers <= 0:
        for index in todo:
            trial, artifacts = _run_trial(
                (seed, index, with_kills, schedule, artifact_dir,
                 _exhausted()))
            _absorb(index, trial, artifacts)
    else:
        # Without a time budget there is nothing to check between waves —
        # one fleet over all trials amortizes the spawn start-up cost best.
        wave = (len(todo) if time_budget is None
                else max(1, int(workers)) * 4)
        pos = 0
        while pos < len(todo):
            exhausted = _exhausted()
            batch = todo[pos:] if exhausted else todo[pos:pos + wave]
            tasks = [(seed, i, with_kills, schedule, artifact_dir, exhausted)
                     for i in batch]
            if exhausted:
                # Skipped trials only draw their configuration — no point
                # paying worker start-up for them.
                for task in tasks:
                    trial, artifacts = _run_trial(task)
                    _absorb(task[1], trial, artifacts)
            else:
                outs = parallel_map(_run_trial, tasks, workers=workers,
                                    retry=retry, task_timeout=task_timeout,
                                    on_error="collect")
                for task, outcome in zip(tasks, outs):
                    index = task[1]
                    if outcome.ok:
                        trial, artifacts = outcome.value
                        _absorb(index, trial, artifacts)
                    else:
                        outcome.index = len(poisoned_tasks)
                        poisoned_tasks.append(task)
                        poisoned_outcomes.append(outcome)
                        results[index] = (_executor_casualty(
                            index, seed, sched_spec, outcome), [])
            pos += len(batch)

    if poisoned_tasks:
        qpath = write_quarantine(
            os.path.join(artifact_dir, "quarantine.json"),
            poisoned_tasks, poisoned_outcomes)
        if qpath:
            report.artifacts.append(qpath)
    for index in indices:
        trial, artifacts = ((cached[index], []) if index in cached
                            else results[index])
        report.trials.append(trial)
        report.artifacts.extend(artifacts)
    return report

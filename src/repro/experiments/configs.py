"""The paper's experiment configurations (Section III-C and IV-D).

Each figure in the evaluation is described by a declarative config the
figure drivers consume.  Machine sizes and particle counts are the paper's
exact values (Hopper runs carry the factor of 3 from its 24-core nodes, as
footnote 1 explains).  The scaled-down *validation* variants exercise the
same algorithm paths through the event simulator at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.machines import Hopper, Intrepid

__all__ = [
    "FigureConfig",
    "FIG2",
    "FIG3",
    "FIG6",
    "FIG7",
    "PAPER_FIGURES",
]

#: The paper chose the cutoff radius as 1/4 of the simulation space "to
#: allow reasonably many choices of c".
CUTOFF_FRACTION = 0.25

#: Box length used in the reproductions (dimensionless units).
BOX_LENGTH = 1.0


@dataclass(frozen=True)
class FigureConfig:
    """One evaluation-figure panel."""

    figure: str  # e.g. "2a"
    title: str
    machine_factory: Callable[[int], object]
    machine_name: str
    #: machine sizes (cores); single entry for breakdown figures.
    machine_sizes: tuple[int, ...]
    n: int
    cs: tuple[int, ...]
    kind: str  # 'allpairs-breakdown' | 'allpairs-scaling' |
    #          'cutoff-breakdown' | 'cutoff-scaling'
    dim: int = 2
    cutoff: bool = False
    #: include the Intrepid c=1 tree/no-tree baseline bars.
    tree_baseline: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def rcut(self) -> float:
        return CUTOFF_FRACTION * BOX_LENGTH

    @property
    def box_length(self) -> float:
        return BOX_LENGTH


def _hopper(p: int):
    return Hopper(p)


def _intrepid(p: int):
    return Intrepid(p)


FIG2: dict[str, FigureConfig] = {
    "2a": FigureConfig(
        figure="2a",
        title="Execution Time vs. Replication Factor (Hopper, 6,144 cores, "
              "24,576 particles)",
        machine_factory=_hopper, machine_name="hopper",
        machine_sizes=(6144,), n=24576, cs=(1, 2, 4, 8, 16, 32),
        kind="allpairs-breakdown",
    ),
    "2b": FigureConfig(
        figure="2b",
        title="Execution Time vs. Replication Factor (Hopper, 24,576 cores, "
              "196,608 particles)",
        machine_factory=_hopper, machine_name="hopper",
        machine_sizes=(24576,), n=196608, cs=(1, 2, 4, 8, 16, 32, 64),
        kind="allpairs-breakdown",
    ),
    "2c": FigureConfig(
        figure="2c",
        title="Execution Time vs. Replication Factor (Intrepid, 8,192 cores, "
              "32,768 particles)",
        machine_factory=_intrepid, machine_name="intrepid",
        machine_sizes=(8192,), n=32768, cs=(2, 4, 8, 16, 32, 64),
        kind="allpairs-breakdown", tree_baseline=True,
    ),
    "2d": FigureConfig(
        figure="2d",
        title="Execution Time vs. Replication Factor (Intrepid, 32,768 cores, "
              "262,144 particles)",
        machine_factory=_intrepid, machine_name="intrepid",
        machine_sizes=(32768,), n=262144, cs=(2, 4, 8, 16, 32, 64, 128),
        kind="allpairs-breakdown", tree_baseline=True,
    ),
}

FIG3: dict[str, FigureConfig] = {
    "3a": FigureConfig(
        figure="3a",
        title="Parallel Efficiency on Hopper (196,608 particles)",
        machine_factory=_hopper, machine_name="hopper",
        machine_sizes=(1536, 3072, 6144, 12288, 24576), n=196608,
        cs=(1, 2, 4, 8, 16, 32, 64),
        kind="allpairs-scaling",
    ),
    "3b": FigureConfig(
        figure="3b",
        title="Parallel Efficiency on Intrepid (262,144 particles)",
        machine_factory=_intrepid, machine_name="intrepid",
        machine_sizes=(2048, 4096, 8192, 16384, 32768), n=262144,
        cs=(1, 2, 4, 8, 16, 32, 64),
        kind="allpairs-scaling",
    ),
}

FIG6: dict[str, FigureConfig] = {
    "6a": FigureConfig(
        figure="6a",
        title="1D-cutoff, Hopper, 24,576 cores, 196,608 particles",
        machine_factory=_hopper, machine_name="hopper",
        machine_sizes=(24576,), n=196608, cs=(1, 2, 4, 8, 16, 32, 64),
        kind="cutoff-breakdown", dim=1, cutoff=True,
    ),
    "6b": FigureConfig(
        figure="6b",
        title="2D-cutoff, Hopper, 24,576 cores, 196,608 particles",
        machine_factory=_hopper, machine_name="hopper",
        machine_sizes=(24576,), n=196608, cs=(1, 2, 4, 8, 16, 32, 64, 128),
        kind="cutoff-breakdown", dim=2, cutoff=True,
    ),
    "6c": FigureConfig(
        figure="6c",
        title="1D-cutoff, Intrepid, 32,768 cores, 262,144 particles",
        machine_factory=_intrepid, machine_name="intrepid",
        machine_sizes=(32768,), n=262144, cs=(1, 2, 4, 8, 16, 32, 64),
        kind="cutoff-breakdown", dim=1, cutoff=True,
    ),
    "6d": FigureConfig(
        figure="6d",
        title="2D-cutoff, Intrepid, 32,768 cores, 262,144 particles",
        machine_factory=_intrepid, machine_name="intrepid",
        machine_sizes=(32768,), n=262144, cs=(1, 2, 4, 8, 16, 32, 64),
        kind="cutoff-breakdown", dim=2, cutoff=True,
    ),
}

FIG7: dict[str, FigureConfig] = {
    "7a": FigureConfig(
        figure="7a",
        title="Parallel Efficiency, 1D-cutoff, Hopper (196,608 particles)",
        machine_factory=_hopper, machine_name="hopper",
        machine_sizes=(96, 192, 384, 768, 1536, 3072, 6144, 12288, 24576),
        n=196608, cs=(1, 4, 16, 64),
        kind="cutoff-scaling", dim=1, cutoff=True,
    ),
    "7b": FigureConfig(
        figure="7b",
        title="Parallel Efficiency, 2D-cutoff, Hopper (196,608 particles)",
        machine_factory=_hopper, machine_name="hopper",
        machine_sizes=(96, 192, 384, 768, 1536, 3072, 6144, 12288, 24576),
        n=196608, cs=(1, 4, 16, 64),
        kind="cutoff-scaling", dim=2, cutoff=True,
    ),
    "7c": FigureConfig(
        figure="7c",
        title="Parallel Efficiency, 1D-cutoff, Intrepid (262,144 particles)",
        machine_factory=_intrepid, machine_name="intrepid",
        machine_sizes=(2048, 4096, 8192, 16384, 32768), n=262144,
        cs=(1, 4, 16, 64),
        kind="cutoff-scaling", dim=1, cutoff=True,
    ),
    "7d": FigureConfig(
        figure="7d",
        title="Parallel Efficiency, 2D-cutoff, Intrepid (262,144 particles)",
        machine_factory=_intrepid, machine_name="intrepid",
        machine_sizes=(2048, 4096, 8192, 16384, 32768), n=262144,
        cs=(1, 4, 16, 64),
        kind="cutoff-scaling", dim=2, cutoff=True,
    ),
}

#: All evaluation panels, keyed by figure id.
PAPER_FIGURES: dict[str, FigureConfig] = {**FIG2, **FIG3, **FIG6, **FIG7}

"""Figure drivers: regenerate every evaluation figure's data series.

Each driver takes a :class:`~repro.experiments.configs.FigureConfig` and
returns a :class:`FigureResult` holding the series the paper plots:

* breakdown figures (2, 6): one stacked phase breakdown per replication
  factor (plus the tree / no-tree baseline bars on Intrepid);
* scaling figures (3, 7): per-``c`` efficiency series over machine sizes.

Paper-scale series come from the analytic model; every driver can also run
a scaled-down *validation* of the same experiment through the discrete-
event simulator (real communication structure, phantom particle blocks) to
confirm the shapes at a size Python can simulate exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.allpairs import run_allpairs_virtual
from repro.core.cutoff import cutoff_config, run_cutoff_virtual
from repro.core.driver import run_simulation_virtual
from repro.experiments.configs import FigureConfig
from repro.machines import Hopper, Intrepid
from repro.model import (
    PhaseBreakdown,
    allgather_baseline_breakdown,
    allpairs_breakdown,
    allpairs_efficiency,
    cutoff_breakdown,
    cutoff_efficiency,
)

__all__ = ["FigureResult", "run_figure", "validate_figure"]

#: Phase stacking order used when rendering breakdown figures.
PHASE_ORDER = ("reassign", "reduce", "shift", "allgather", "compute", "bcast")


@dataclass
class FigureResult:
    """Regenerated data of one figure panel."""

    config: FigureConfig
    #: breakdown figures: label -> PhaseBreakdown (labels like 'c=4',
    #: 'c=1 (tree)').  Scaling figures: empty.
    breakdowns: dict[str, PhaseBreakdown] = field(default_factory=dict)
    #: scaling figures: c -> [(p, efficiency)].  Breakdown figures: empty.
    efficiency: dict[int, list[tuple[int, float]]] = field(default_factory=dict)

    # -- claims the experiment harness checks -----------------------------

    def comm_series(self) -> dict[str, float]:
        """Communication seconds per label (breakdown figures)."""
        return {k: b.communication for k, b in self.breakdowns.items()}

    def best_label(self) -> str:
        """Label with the lowest total time (breakdown figures)."""
        return min(self.breakdowns, key=lambda k: self.breakdowns[k].total)


def run_figure(cfg: FigureConfig) -> FigureResult:
    """Regenerate one panel's series at the paper's scale."""
    if cfg.kind == "allpairs-breakdown":
        return _allpairs_breakdown_figure(cfg)
    if cfg.kind == "cutoff-breakdown":
        return _cutoff_breakdown_figure(cfg)
    if cfg.kind == "allpairs-scaling":
        res = FigureResult(config=cfg)
        res.efficiency = allpairs_efficiency(
            cfg.machine_factory, cfg.n, cfg.machine_sizes, cfg.cs, dim=cfg.dim
        )
        return res
    if cfg.kind == "cutoff-scaling":
        res = FigureResult(config=cfg)
        res.efficiency = cutoff_efficiency(
            cfg.machine_factory, cfg.n, cfg.machine_sizes, cfg.cs,
            rcut=cfg.rcut, box_length=cfg.box_length, dim=cfg.dim,
        )
        return res
    raise ValueError(f"unknown figure kind {cfg.kind!r}")


def _allpairs_breakdown_figure(cfg: FigureConfig) -> FigureResult:
    (p,) = cfg.machine_sizes
    machine = cfg.machine_factory(p)
    res = FigureResult(config=cfg)
    if cfg.tree_baseline:
        res.breakdowns["c=1 (tree)"] = allgather_baseline_breakdown(
            machine, cfg.n, use_tree=True
        )
        no_tree = (
            Intrepid(p, tree=False)
            if cfg.machine_name == "intrepid"
            else machine
        )
        res.breakdowns["c=1 (no-tree)"] = allgather_baseline_breakdown(
            no_tree, cfg.n, use_tree=False
        )
    for c in cfg.cs:
        res.breakdowns[f"c={c}"] = allpairs_breakdown(machine, cfg.n, c,
                                                      dim=cfg.dim)
    return res


def _cutoff_breakdown_figure(cfg: FigureConfig) -> FigureResult:
    (p,) = cfg.machine_sizes
    machine = cfg.machine_factory(p)
    res = FigureResult(config=cfg)
    for c in cfg.cs:
        b = cutoff_breakdown(
            machine, cfg.n, c, rcut=cfg.rcut, box_length=cfg.box_length,
            dim=cfg.dim,
        )
        # The paper requires the replication to fit inside the interaction
        # window (c <= 2m); skip labels beyond it like the plots do.
        if c <= b.meta["window"]:
            res.breakdowns[f"c={c}"] = b
    return res


# ---------------------------------------------------------------------------
# Scaled-down validation through the event simulator
# ---------------------------------------------------------------------------


def validate_figure(
    cfg: FigureConfig,
    *,
    p: int = 64,
    n: int = 4096,
    cores_per_node: int = 4,
    cs: tuple[int, ...] = (1, 2, 4, 8),
) -> FigureResult:
    """Re-run the figure's experiment at event-simulation scale.

    The same machine family (scaled down), the same algorithm code, real
    message passing — used by the benchmark harness to confirm that the
    paper-scale series' *shape* (communication falling with c, phase
    trade-offs) also emerges from exact simulation.
    """
    if cfg.machine_name == "hopper":
        machine = Hopper(p, cores_per_node=cores_per_node)
    elif cfg.machine_name == "intrepid":
        machine = Intrepid(p, cores_per_node=cores_per_node)
    else:  # pragma: no cover - config error
        raise ValueError(f"unknown machine {cfg.machine_name!r}")

    res = FigureResult(config=cfg)
    for c in cs:
        if p % c:
            continue
        if not cfg.cutoff:
            run = run_allpairs_virtual(machine, n, c, dim=cfg.dim)
            res.breakdowns[f"c={c}"] = PhaseBreakdown.from_report(
                run.report, ("bcast", "shift", "compute", "reduce")
            )
        else:
            ca_cfg = cutoff_config(
                p, c, rcut=cfg.rcut, box_length=cfg.box_length, dim=cfg.dim
            )
            phys_window = 1
            for mk in ca_cfg.geometry.spanned_cells(cfg.rcut):
                phys_window *= 2 * mk + 1
            if c > phys_window:
                continue
            run = run_simulation_virtual(machine, ca_cfg, n, 1, dim=cfg.dim)
            res.breakdowns[f"c={c}"] = PhaseBreakdown.from_report(
                run.report, ("bcast", "shift", "compute", "reduce", "reassign")
            )
    return res

"""Cross-algorithm comparison harness over the registry pipeline.

Every registered functional algorithm runs the *same* workload on the same
machine through :func:`repro.core.runner.run`, and the harness tabulates
what the paper's evaluation compares: per-phase virtual times, per-rank
message and byte maxima (the latency cost ``S`` and bandwidth cost ``W``),
the virtual makespan, and force agreement against the serial reference.

Algorithms whose requirements the shared configuration cannot meet (a
cutoff-windowed method without ``rcut``, Plimpton's force decomposition on
a non-square rank count) are skipped with a recorded reason rather than
silently dropped — the rendered table lists them.

This is the ``python -m repro compare`` subcommand's engine and a
programmatic API for notebooks/scripts:

>>> result = compare_algorithms(machine, particles, c=4, rcut=0.3)
>>> print(render_comparison(result))
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.runner import (
    Run, RunSpec, fault_compat, get_algorithm, list_algorithms, run,
)
from repro.machines.base import PARTICLE_BYTES
from repro.metrics.registry import MetricsRegistry
from repro.physics.forces import ForceLaw
from repro.physics.particles import ParticleSet
from repro.physics.reference import reference_forces

__all__ = ["AlgorithmComparison", "ComparisonResult", "compare_algorithms",
           "render_comparison"]


@dataclass
class AlgorithmComparison:
    """One algorithm's row of the comparison table."""

    algorithm: str
    #: Virtual makespan of the run (seconds on the modeled machine).
    elapsed: float
    #: Max over ranks of total messages sent — the latency cost S.
    critical_messages: int
    #: Max over ranks of total bytes sent — the bandwidth cost W.
    critical_bytes: int
    #: ``critical_bytes`` in 52-byte particle words (the paper's W unit).
    critical_words: float
    #: Candidate pairs scanned by the force kernel (the flop proxy).
    interactions: int
    #: Phase label -> {max_s, mean_s, max_messages, max_bytes}.
    phase_table: dict
    #: Max absolute force deviation from the serial reference.
    max_abs_dev: float
    #: The full pipeline result (report, trace, raw engine output).
    run: Run
    #: Per-run metrics registry (comm/time/kernel series for this row).
    metrics: object | None = None


@dataclass
class ComparisonResult:
    """All compared algorithms plus the skipped ones with reasons."""

    entries: list[AlgorithmComparison]
    #: Algorithm name -> why it could not run on the shared configuration.
    skipped: dict[str, str]


def _compare_task(task: tuple) -> AlgorithmComparison:
    """One algorithm's comparison row — the parallel work unit.

    ``task`` is ``(spec, name, ref_ordered)`` where ``ref_ordered`` is the
    serial-reference force array already permuted into the run's output
    order (``None`` when there is nothing to compare against, e.g. the
    heuristic engine tier, which models traffic but computes no forces —
    the row then reports ``max_abs_dev = nan``).
    """
    spec, name, ref_ordered = task
    metrics = MetricsRegistry()
    out = run(replace(spec, metrics=metrics))
    if out.forces is None or ref_ordered is None:
        dev = float("nan")
    else:
        dev = float(np.max(np.abs(out.forces - ref_ordered)))
    report = out.report
    return AlgorithmComparison(
        algorithm=name,
        elapsed=out.run.elapsed,
        critical_messages=report.critical_messages(),
        critical_bytes=report.critical_bytes(),
        critical_words=report.critical_bytes() / PARTICLE_BYTES,
        interactions=int(metrics.value("kernel.pairs")),
        phase_table=report.phase_table(),
        max_abs_dev=dev,
        run=out,
        metrics=metrics,
    )


#: Run-cache namespace for comparison rows (bump on schema change).
COMPARE_NAMESPACE = "compare-v1"


def _row_fingerprint(spec: RunSpec, name: str, workload) -> str:
    """Content fingerprint of one comparison row (pure in its inputs).

    The workload arrays are hashed in full — a row is only served from
    cache for the *exact same* particles — alongside every spec knob
    that can change the row's numbers.
    """
    import hashlib

    h = hashlib.sha256()
    h.update(workload.pos.tobytes())
    h.update(workload.vel.tobytes())
    h.update(workload.ids.tobytes())
    parts = [
        f"alg={name}", f"machine={spec.machine!r}", f"c={spec.c}",
        f"rcut={spec.rcut!r}", f"law={spec.law!r}",
        f"hyper_k={spec.hyper_k!r}", f"dim={spec.dim!r}",
        f"box={spec.box_length!r}", f"periodic={spec.periodic}",
        f"team_dims={spec.team_dims!r}", f"geometry={spec.geometry!r}",
        f"layout={spec.layout}", f"use_tree={spec.use_tree}",
        f"eager={spec.eager_threshold}", f"scratch={spec.scratch}",
        f"faults={spec.faults!r}", f"opts={spec.engine_opts!r}",
        f"schedule={spec.schedule!r}", f"tier={spec.engine_tier}",
        f"workload={h.hexdigest()}",
    ]
    return "compare-row;" + ";".join(parts)


def compare_algorithms(
    machine,
    particles: ParticleSet | None = None,
    *,
    algorithms: list[str] | None = None,
    workers: int = 0,
    retry=None,
    task_timeout: float | None = None,
    cache=None,
    **spec_kwargs,
) -> ComparisonResult:
    """Run registered algorithms on one shared configuration and compare.

    ``algorithms`` defaults to every registered *functional* algorithm;
    remaining keyword arguments populate the shared
    :class:`~repro.core.runner.RunSpec` (``c``, ``law``, ``rcut``, ``n``,
    ``seed``, ``faults``, ``engine_opts``, ``engine_tier``, ...).  The
    replication factor is dropped to 1 for algorithms without a
    replication knob; algorithms whose requirements are unmet are skipped
    with a reason.

    Force agreement is judged per algorithm against the serial reference
    for the physics that algorithm computes: cutoff-windowed methods
    against the cutoff-limited law, unrestricted methods against the open
    law — so one call can meaningfully compare both families.  With
    ``engine_tier="heuristic"`` no forces are computed, the reference is
    skipped, and every row reports ``max_abs_dev = nan`` — the comparison
    is then purely about virtual time and comm volume.

    A ``faults=`` schedule runs every algorithm degraded, so retry /
    recovery overhead lands in each phase table.  Schedules that kill
    ranks run only on algorithms with a kill-recovery path
    (``fault_mode == "kills"``) at replication ``c >= 2``; the rest are
    skipped with the reason recorded.

    ``workers > 0`` runs the per-algorithm rows across that many spawned
    worker processes (:func:`repro.core.parallel.parallel_map`); every
    row is a pure function of its spec, so the result is identical to
    the serial sweep, in the same algorithm order.  ``retry`` (a
    :class:`~repro.core.parallel.RetryPolicy` or int max attempts) and
    ``task_timeout`` (seconds) add executor-level crash/hang recovery to
    that fleet; rows that still fail raise one aggregated
    :class:`~repro.core.parallel.WorkerError` naming every lost row.

    ``cache`` (a directory path or
    :class:`~repro.core.runcache.RunCache`) serves rows computed by an
    earlier call with the exact same workload bytes and spec knobs
    (rows accumulating into a ``pair_counter`` always recompute — the
    coverage side effect must happen).
    """
    from repro.core.parallel import parallel_map
    from repro.core.runcache import MISS, resolve_cache

    store = resolve_cache(cache, namespace=COMPARE_NAMESPACE)
    names = (list(algorithms) if algorithms is not None
             else list_algorithms(functional=True))
    base = RunSpec(machine=machine, algorithm="", particles=particles,
                   **spec_kwargs)
    workload = base.workload()
    base = replace(base, particles=workload, n=None)

    p = machine.nranks
    q = int(round(p**0.5))
    skipped: dict[str, str] = {}
    ref_cache: dict[ForceLaw, np.ndarray] = {}
    order = np.argsort(workload.ids, kind="stable")
    tasks: list[tuple] = []
    served: dict[str, AlgorithmComparison] = {}

    for name in names:
        alg = get_algorithm(name)
        if not alg.functional:
            skipped[name] = "modeled (virtual) algorithm; no forces to compare"
            continue
        if alg.needs_rcut and base.rcut is None:
            skipped[name] = "needs a cutoff radius (pass rcut=...)"
            continue
        if alg.square_p and q * q != p:
            skipped[name] = f"needs a square rank count, machine has p={p}"
            continue
        c_eff = base.c if alg.supports_c else 1
        reason = fault_compat(alg, base.faults, c_eff)
        if reason is not None:
            skipped[name] = reason
            continue
        spec = replace(base, algorithm=name, c=c_eff)
        if base.engine_tier == "heuristic":
            ref_ordered = None
        else:
            ref_law = (spec.resolved_law() if alg.needs_rcut
                       else (spec.law or ForceLaw()))
            ref = ref_cache.get(ref_law)
            if ref is None:
                ref = ref_cache[ref_law] = reference_forces(ref_law, workload)
            ref_ordered = ref[order]
        if store is not None and spec.pair_counter is None:
            hit = store.get(_row_fingerprint(spec, name, workload))
            if hit is not MISS:
                served[name] = hit
                continue
        tasks.append((spec, name, ref_ordered))

    computed = parallel_map(_compare_task, tasks, workers=workers,
                            retry=retry, task_timeout=task_timeout)
    for (spec, name, _ref), entry in zip(tasks, computed):
        served[name] = entry
        if store is not None and spec.pair_counter is None:
            store.put(_row_fingerprint(spec, name, workload), entry)
    entries = [served[name] for name in names if name in served]
    return ComparisonResult(entries=entries, skipped=skipped)


def render_comparison(result: ComparisonResult) -> str:
    """The comparison as an aligned text table plus per-phase breakdowns."""
    lines = [
        f"{'algorithm':<22} {'elapsed(s)':>12} {'S=maxmsgs':>10} "
        f"{'W=maxbytes':>12} {'W=words':>9} {'pairs':>9} {'max|dF|':>10}"
    ]
    for e in result.entries:
        lines.append(
            f"{e.algorithm:<22} {e.elapsed:>12.6f} {e.critical_messages:>10d} "
            f"{e.critical_bytes:>12d} {e.critical_words:>9.1f} "
            f"{e.interactions:>9d} {e.max_abs_dev:>10.2e}"
        )
    for name, reason in result.skipped.items():
        lines.append(f"{name:<22} skipped: {reason}")
    if result.entries:
        lines.append("")
        lines.append("phase breakdown (max seconds over ranks):")
        for e in result.entries:
            parts = " | ".join(
                f"{lab} {cell['max_s']:.6f}"
                + (f" ({cell['retries']}rx)" if cell.get("retries") else "")
                for lab, cell in e.phase_table.items()
            )
            lines.append(f"  {e.algorithm:<20} {parts}")
    return "\n".join(lines)

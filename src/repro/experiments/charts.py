"""ASCII renderings of the evaluation figures.

The paper's plots are stacked bars (Figures 2, 6) and efficiency curves
(Figures 3, 7); these helpers draw terminal equivalents so
``python -m repro figures --chart`` reproduces the figures *visually*,
not just as number tables.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult

__all__ = ["chart_breakdown", "chart_scaling", "chart_figure"]

#: Fill characters per phase, in stacking order (bottom of the paper's
#: bars first).
PHASE_GLYPHS = (
    ("compute", "#"),
    ("shift", "="),
    ("reduce", "%"),
    ("bcast", "+"),
    ("reassign", "~"),
    ("allgather", "@"),
)

_BAR_WIDTH = 60


def chart_breakdown(res: FigureResult, *, width: int = _BAR_WIDTH) -> str:
    """Horizontal stacked bars, one per configuration."""
    cfg = res.config
    total_max = max(b.total for b in res.breakdowns.values())
    lines = [f"Figure {cfg.figure}: {cfg.title}", ""]
    used = [(ph, gl) for ph, gl in PHASE_GLYPHS
            if any(b.get(ph) > 0 for b in res.breakdowns.values())]
    for label, b in res.breakdowns.items():
        bar = ""
        for ph, glyph in used:
            cells = int(round(width * b.get(ph) / total_max))
            bar += glyph * cells
        lines.append(f"{label:>14} |{bar:<{width}}| {b.total * 1e3:9.3f} ms")
    legend = "  ".join(f"{gl}={ph}" for ph, gl in used)
    lines += ["", f"legend: {legend}"]
    return "\n".join(lines)


def chart_scaling(res: FigureResult, *, height: int = 11) -> str:
    """Efficiency-vs-machine-size chart; one marker letter per c."""
    cfg = res.config
    sizes = list(cfg.machine_sizes)
    cs = [c for c, series in res.efficiency.items() if series]
    markers = {c: chr(ord("a") + i) for i, c in enumerate(cs)}
    col_w = max(len(str(p)) for p in sizes) + 2

    grid = [[" " * col_w for _ in sizes] for _ in range(height)]
    for c in cs:
        by_p = dict(res.efficiency[c])
        for j, p in enumerate(sizes):
            if p not in by_p:
                continue
            eff = min(max(by_p[p], 0.0), 1.0)
            i = int(round((1.0 - eff) * (height - 1)))
            cell = list(grid[i][j])
            mid = col_w // 2
            cell[mid] = markers[c] if cell[mid] == " " else "*"
            grid[i][j] = "".join(cell)

    lines = [f"Figure {cfg.figure}: {cfg.title}",
             "(efficiency vs machine size; '*' = overlapping series)", ""]
    for i in range(height):
        eff_label = 1.0 - i / (height - 1)
        lines.append(f"{eff_label:4.1f} |" + "".join(grid[i]))
    lines.append("     +" + "-" * (col_w * len(sizes)))
    lines.append("      " + "".join(f"{p:^{col_w}}" for p in sizes))
    legend = "  ".join(f"{markers[c]}: c={c}" for c in cs)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def chart_figure(res: FigureResult) -> str:
    """Dispatch on the figure kind."""
    if res.breakdowns:
        return chart_breakdown(res)
    return chart_scaling(res)

"""ASCII Gantt charts of recorded engine timelines.

Feed a :class:`~repro.simmpi.engine.RunResult` produced with
``Engine(record_events=True)`` to :func:`render_gantt` and get a per-rank
busy/idle picture of the run — computation, communication waits and
transfers, bucketed over virtual time.  This is the visual counterpart of
the paper's phase-breakdown bars: it shows *where in time* the shifts and
reductions sit and how load imbalance staggers ranks.
"""

from __future__ import annotations

__all__ = ["render_gantt"]

#: Glyph per event kind, in increasing display priority: when several
#: events share a time bucket, the highest-priority one is drawn.
_KIND_GLYPHS = (("wait", "."), ("xfer", "-"), ("hwcoll", "H"), ("compute", "#"))
_PRIORITY = {kind: i for i, (kind, _) in enumerate(_KIND_GLYPHS)}
_GLYPH = dict(_KIND_GLYPHS)


def render_gantt(result, *, width: int = 80, max_ranks: int = 32) -> str:
    """Render the run's timeline as one row of glyphs per rank.

    ``width`` time buckets span ``[0, result.elapsed]``.  Runs with more
    than ``max_ranks`` ranks show the first ``max_ranks`` rows (with a
    note), keeping the output terminal-sized.
    """
    events = result.events
    if not events:
        raise ValueError(
            "no events recorded — construct the Engine with "
            "record_events=True"
        )
    horizon = max(result.elapsed, max(e.t_end for e in events))
    if horizon <= 0:
        raise ValueError("nothing happened (zero-length timeline)")
    nranks = len(result.clocks)
    shown = min(nranks, max_ranks)

    rows = [[" "] * width for _ in range(shown)]
    prio = [[-1] * width for _ in range(shown)]
    for e in events:
        if e.rank >= shown or e.kind not in _GLYPH:
            continue
        b0 = int(e.t_start / horizon * width)
        b1 = int(e.t_end / horizon * width)
        b0 = min(b0, width - 1)
        b1 = min(max(b1, b0), width - 1)
        for b in range(b0, b1 + 1):
            if _PRIORITY[e.kind] > prio[e.rank][b]:
                prio[e.rank][b] = _PRIORITY[e.kind]
                rows[e.rank][b] = _GLYPH[e.kind]

    from repro.util import fmt_time

    lines = [f"timeline over {fmt_time(horizon)} "
             f"({width} buckets of {fmt_time(horizon / width)})"]
    for r in range(shown):
        lines.append(f"rank {r:>4} |{''.join(rows[r])}|")
    if shown < nranks:
        lines.append(f"... ({nranks - shown} more ranks not shown)")
    legend = "  ".join(f"{g}={k}" for k, g in _KIND_GLYPHS)
    lines.append(f"legend: {legend}  (blank = idle/posting)")
    return "\n".join(lines)

"""Server-rendered HTML dashboard for a live :class:`JobQueue`.

One self-contained page — inline CSS, no scripts, no external fetches —
so the CI smoke can upload it as a build artifact and it renders
identically from disk.  The layout follows the house data-viz rules:

* headline numbers are **stat tiles** (queue depth, submissions, the
  served-without-compute rate, computed, failed), not gauges or donuts;
* per-algorithm completions are a single-series horizontal **bar
  chart** — one hue (the categorical slot-1 blue), bars anchored to a
  shared baseline with rounded data-ends, a 2px surface gap between
  bars, and the exact value direct-labeled at each bar end in text ink
  (text never wears the series color);
* the same numbers appear again as a **table** (the accessible view),
  alongside the cache-stats and recent-jobs tables;
* status is never color alone: failed/quarantined rows pair the
  reserved status colors with a glyph and the status word.

Light and dark palettes are both declared (``prefers-color-scheme``);
the dark steps are the palette's own dark-surface values, not an
automatic inversion.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.service.jobs import Job, JobQueue

__all__ = ["render_dashboard"]

#: How many of the most recent jobs the jobs table shows.
RECENT_JOBS = 50

_STYLE = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 980px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--ink-1); }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  flex: 1 1 150px; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px; padding: 14px 16px;
}
.tile .value { font-size: 26px; font-weight: 600; }
.tile .label { color: var(--ink-2); font-size: 12px; margin-top: 2px; }
.tile .note { color: var(--ink-muted); font-size: 12px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px;
}
.barrow { display: flex; align-items: center; gap: 10px; margin: 0 0 2px; }
.barrow .name {
  flex: 0 0 170px; text-align: right; color: var(--ink-2); font-size: 13px;
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap;
}
.barrow .track {
  flex: 1 1 auto; display: flex; align-items: center; gap: 8px;
  border-left: 1px solid var(--baseline); padding: 1px 0;
}
.barrow .bar {
  height: 18px; background: var(--series-1);
  border-radius: 0 4px 4px 0; min-width: 2px;
}
.barrow .val {
  color: var(--ink-2); font-size: 12px;
  font-variant-numeric: tabular-nums;
}
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th {
  text-align: left; color: var(--ink-muted); font-weight: 500;
  border-bottom: 1px solid var(--baseline); padding: 6px 10px 6px 0;
}
td {
  padding: 6px 10px 6px 0; border-bottom: 1px solid var(--grid);
  vertical-align: top;
}
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
code {
  font: 12px/1.4 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
  color: var(--ink-2);
}
.ok { color: var(--status-good); }
.bad { color: var(--status-critical); }
.pend { color: var(--ink-muted); }
.empty { color: var(--ink-muted); }
footer { margin-top: 28px; color: var(--ink-muted); font-size: 12px; }
"""

#: Status glyph + word, so state never rides on color alone.
_STATUS = {
    "done": ("ok", "✓ done"),
    "failed": ("bad", "✕ failed"),
    "running": ("pend", "▸ running"),
    "queued": ("pend", "⋯ queued"),
}


def _esc(value) -> str:
    """HTML-escape any value's string form."""
    return html.escape(str(value))


def _tile(value: str, label: str, note: str = "") -> str:
    """One stat tile."""
    note_html = f'<div class="note">{_esc(note)}</div>' if note else ""
    return (f'<div class="tile"><div class="value">{_esc(value)}</div>'
            f'<div class="label">{_esc(label)}</div>{note_html}</div>')


def _status_cell(job: "Job") -> str:
    """The status column: glyph + word (+ quarantine flag), color-coded."""
    cls, text = _STATUS.get(job.status, ("pend", job.status))
    if job.quarantined:
        text += " (quarantined)"
    return f'<span class="{cls}">{_esc(text)}</span>'


def _knobs(task: dict) -> str:
    """The descriptor knobs as one compact code string."""
    parts = [f"p={task['p']} c={task['c']} n={task['n']} seed={task['seed']}"]
    for key in ("rcut", "dim", "hyper_k"):
        if task.get(key) is not None:
            parts.append(f"{key}={task[key]}")
    if task.get("engine_tier") != "event":
        parts.append(f"tier={task['engine_tier']}")
    if task.get("machine") != "generic":
        parts.append(f"machine={task['machine']}")
    return " ".join(parts)


def _algorithm_rows(jobs: list["Job"]) -> list[dict]:
    """Per-algorithm aggregates over completed jobs, most-completed first."""
    agg: dict[str, dict] = {}
    for job in jobs:
        row = agg.setdefault(job.task["algorithm"], {
            "algorithm": job.task["algorithm"], "done": 0, "computed": 0,
            "served": 0, "failed": 0, "elapsed": 0.0})
        if job.status == "done":
            row["done"] += 1
            if job.source == "computed":
                row["computed"] += 1
                row["elapsed"] += float(job.result["elapsed"])
            else:
                row["served"] += 1
        elif job.status == "failed":
            row["failed"] += 1
    return sorted(agg.values(),
                  key=lambda r: (-r["done"], r["algorithm"]))


def _bar_chart(rows: list[dict]) -> str:
    """The completed-jobs-by-algorithm bars (single series, direct labels)."""
    rows = [r for r in rows if r["done"] > 0]
    if not rows:
        return '<p class="empty">No completed jobs yet.</p>'
    peak = max(r["done"] for r in rows)
    out = []
    for r in rows:
        width = 100.0 * r["done"] / peak if peak else 0.0
        out.append(
            f'<div class="barrow"><div class="name">{_esc(r["algorithm"])}'
            f'</div><div class="track"><div class="bar" '
            f'style="width:{width:.2f}%"></div>'
            f'<span class="val">{r["done"]}</span></div></div>')
    return "".join(out)


def _algorithm_table(rows: list[dict]) -> str:
    """The accessible table view behind the bar chart."""
    if not rows:
        return ""
    body = []
    for r in rows:
        rate = (f"{r['computed'] / r['elapsed']:.2f}"
                if r["elapsed"] > 0 else "—")
        body.append(
            f"<tr><td>{_esc(r['algorithm'])}</td>"
            f'<td class="num">{r["done"]}</td>'
            f'<td class="num">{r["computed"]}</td>'
            f'<td class="num">{r["served"]}</td>'
            f'<td class="num">{r["failed"]}</td>'
            f'<td class="num">{r["elapsed"]:.3f}</td>'
            f'<td class="num">{_esc(rate)}</td></tr>')
    return (
        '<table><thead><tr><th>algorithm</th><th class="num">done</th>'
        '<th class="num">computed</th><th class="num">served</th>'
        '<th class="num">failed</th><th class="num">engine s</th>'
        '<th class="num">jobs/s</th></tr></thead>'
        f'<tbody>{"".join(body)}</tbody></table>')


def _jobs_table(jobs: list["Job"]) -> str:
    """The recent-jobs table (latest :data:`RECENT_JOBS`, newest first)."""
    if not jobs:
        return '<p class="empty">No jobs submitted yet.</p>'
    recent = sorted(jobs, key=lambda j: -j.seq)[:RECENT_JOBS]
    rows = []
    for job in recent:
        elapsed = (f"{job.result['elapsed']:.3f}"
                   if job.status == "done" and job.result else "—")
        source = job.source or "—"
        rows.append(
            f"<tr><td><code>{_esc(job.id)}</code></td>"
            f"<td>{_esc(job.task['algorithm'])}</td>"
            f"<td><code>{_esc(_knobs(job.task))}</code></td>"
            f"<td>{_status_cell(job)}</td><td>{_esc(source)}</td>"
            f'<td class="num">{job.attempts}</td>'
            f'<td class="num">{job.submissions}</td>'
            f'<td class="num">{elapsed}</td></tr>')
    note = ""
    if len(jobs) > RECENT_JOBS:
        note = (f'<p class="empty">Showing the latest {RECENT_JOBS} '
                f"of {len(jobs)} jobs.</p>")
    return (
        "<table><thead><tr><th>id</th><th>algorithm</th><th>config</th>"
        '<th>status</th><th>source</th><th class="num">attempts</th>'
        '<th class="num">submissions</th><th class="num">elapsed s</th>'
        f'</tr></thead><tbody>{"".join(rows)}</tbody></table>{note}')


def _failures_table(jobs: list["Job"]) -> str:
    """Failed / quarantined jobs with their last error line."""
    failed = [j for j in jobs if j.status == "failed"]
    if not failed:
        return ""
    rows = []
    for job in sorted(failed, key=lambda j: -j.seq):
        last = (job.error or "").strip().splitlines()
        rows.append(
            f"<tr><td><code>{_esc(job.id)}</code></td>"
            f"<td>{_esc(job.task['algorithm'])}</td>"
            f"<td>{_status_cell(job)}</td>"
            f"<td>{_esc(job.failure or 'failed')}</td>"
            f"<td><code>{_esc(last[-1] if last else 'no detail')}</code>"
            f"</td></tr>")
    return (
        "<h2>Failed jobs</h2><div class=\"card\">"
        "<table><thead><tr><th>id</th><th>algorithm</th><th>status</th>"
        "<th>verdict</th><th>last error line</th></tr></thead>"
        f'<tbody>{"".join(rows)}</tbody></table></div>')


def _cache_table(queue: "JobQueue") -> str:
    """The durable-cache stats table (or a no-cache note)."""
    if queue.store is None:
        return ('<p class="empty">No durable cache configured '
                "(<code>--cache DIR</code>).</p>")
    s = queue.store.stats
    return (
        '<table><thead><tr><th class="num">hits</th>'
        '<th class="num">misses</th><th class="num">stores</th>'
        '<th class="num">evictions</th><th class="num">hit rate</th>'
        "</tr></thead><tbody><tr>"
        f'<td class="num">{s.hits}</td><td class="num">{s.misses}</td>'
        f'<td class="num">{s.stores}</td><td class="num">{s.evictions}</td>'
        f'<td class="num">{100.0 * s.hit_rate:.1f}%</td>'
        "</tr></tbody></table>"
        f'<p class="empty">Cache root: <code>{_esc(queue.store.root)}</code>'
        "</p>")


def render_dashboard(queue: "JobQueue") -> str:
    """The complete ``/dashboard`` page for the queue's current state."""
    from repro.metrics import service_snapshot

    snap = service_snapshot(queue.metrics)
    jobs = queue.ordered_jobs()
    submitted = snap["service.jobs.submitted"]
    served = (snap["service.jobs.cache_hits"]
              + snap["service.jobs.coalesced"])
    served_rate = 100.0 * served / submitted if submitted else 0.0
    rows = _algorithm_rows(jobs)
    tiles = "".join([
        _tile(str(int(snap["service.queue.depth"])), "queue depth",
              "queued + running"),
        _tile(str(submitted), "submissions"),
        _tile(f"{served_rate:.1f}%", "served without compute",
              f"{served} of {submitted} (cache + coalesced)"),
        _tile(str(snap["service.jobs.computed"]), "computed"),
        _tile(str(snap["service.jobs.failed"]), "failed"),
    ])
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro serve — sweep orchestration</title>
<style>{_STYLE}</style>
</head>
<body>
<main>
<h1>repro serve</h1>
<p class="sub">Sweep-orchestration service over the durable run cache
(namespace <code>sweep-v1</code>). Reload for fresh numbers.</p>
<section class="tiles">{tiles}</section>
<h2>Completed jobs by algorithm</h2>
<div class="card">{_bar_chart(rows)}{_algorithm_table(rows)}</div>
<h2>Durable cache</h2>
<div class="card">{_cache_table(queue)}</div>
<h2>Recent jobs</h2>
<div class="card">{_jobs_table(jobs)}</div>
{_failures_table(jobs)}
<footer>Rendered by <code>python -m repro serve</code> —
see <code>docs/service.md</code> for the API.</footer>
</main>
</body>
</html>
"""

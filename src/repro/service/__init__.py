"""The sweep-orchestration service: an async job queue over the run cache.

``python -m repro serve`` boots a localhost HTTP daemon that accepts
batches of sweep descriptors (the exact schema ``repro sweep`` runs),
deduplicates them against the durable
:class:`~repro.core.runcache.RunCache` *and* against identical in-flight
jobs (single-flight coalescing), and schedules the genuinely cold work
through the supervised parallel executor — so N clients asking for
overlapping sweeps pay for each unique point exactly once, ever.

Everything is standard library (``asyncio`` streams for the server,
``urllib`` for the client); the compute, caching, retry/quarantine and
metrics machinery is reused unchanged from the rest of the codebase.
The determinism contract is inherited from
:func:`~repro.experiments.sweep.sweep_task` being a pure function of
the normalized descriptor: a job's result record is bitwise-identical
whether it was computed cold, served from the durable cache, or shared
via coalescing.

Layout:

* :mod:`repro.service.jobs` — :class:`Job` / :class:`JobQueue`: the
  submission-resolution order, the drain loop, the accounting;
* :mod:`repro.service.server` — the asyncio HTTP front end
  (:class:`ReproService`), :func:`serve` for the CLI, and
  :class:`ServiceThread` for tests/CI;
* :mod:`repro.service.dashboard` — the self-contained ``/dashboard``
  HTML renderer;
* :mod:`repro.service.client` — :class:`ServiceClient`, the stdlib
  HTTP client.

See ``docs/service.md`` for the API reference and a curl walkthrough,
and ``docs/architecture.md`` for where the service sits in the stack.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.dashboard import render_dashboard
from repro.service.jobs import Job, JobQueue, encode_record, job_id
from repro.service.server import ReproService, ServiceThread, serve

__all__ = [
    "Job",
    "JobQueue",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "encode_record",
    "job_id",
    "render_dashboard",
    "serve",
]

"""The asyncio HTTP front end: request parsing, routing, lifecycles.

Stdlib only — the wire protocol is a deliberately small HTTP/1.1 subset
(``Connection: close``, JSON bodies, no chunked encoding) implemented
directly on :func:`asyncio.start_server` streams, so the service adds no
dependencies and stays a few hundred auditable lines.  Endpoints (see
``docs/service.md`` for schemas and a walkthrough):

==============================  =========================================
``POST /jobs``                  submit a batch of sweep descriptors
``GET /jobs``                   every job, submission order
``GET /jobs/<id>``              one job's status/summary (``?wait=S``
                                long-polls up to ``S`` seconds)
``GET /jobs/<id>/record``       the full result record, arrays base64
``GET /stats``                  service counters + cache stats + tally
``GET /dashboard``              self-contained HTML dashboard
``GET /healthz``                liveness probe
==============================  =========================================

Three entry points wrap the same :class:`ReproService`:

* :func:`serve` — the blocking coroutine behind ``python -m repro
  serve``;
* :class:`ServiceThread` — a context manager running the event loop on a
  daemon thread, for tests and the CI smoke (the calling thread talks to
  the service over real HTTP, exactly like an external client);
* direct use: ``await service.start()`` / ``await service.aclose()``
  inside an existing loop.

The service binds localhost by default.  It trusts its callers the way
``repro sweep`` trusts its CLI flags — it is an orchestration sidecar,
not an internet-facing API (no TLS, no auth), and the docs say so.
"""

from __future__ import annotations

import asyncio
import json
import threading
import traceback
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.service.dashboard import render_dashboard
from repro.service.jobs import JobQueue, encode_record

__all__ = ["ReproService", "ServiceThread", "serve"]

#: Hard cap on request-body size (a batch of descriptors is tiny; this
#: only exists so a misdirected upload cannot balloon memory).
MAX_BODY = 8 * 1024 * 1024

#: Per-request read timeout (seconds) — a stuck client cannot pin a task.
READ_TIMEOUT = 30.0

#: Ceiling on ``?wait=`` long-polls so handlers always unwind.
MAX_WAIT = 60.0

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            409: "Conflict", 413: "Payload Too Large",
            500: "Internal Server Error"}


class _BadRequest(ValueError):
    """A malformed request (parse error, bad descriptor) — HTTP 400."""


class _NotFound(KeyError):
    """An unknown job id or route — HTTP 404."""


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request: ``(method, target, headers, body)``.

    Returns ``None`` when the client closed without sending anything.
    Raises :class:`_BadRequest` on malformed framing and enforces
    :data:`MAX_BODY`.
    """
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line: {line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) > 100:
            raise _BadRequest("too many request headers")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length") or 0)
    except ValueError as exc:
        raise _BadRequest("bad Content-Length") from exc
    if length > MAX_BODY:
        raise _BadRequest(f"request body over {MAX_BODY} bytes")
    body = await reader.readexactly(length) if length > 0 else b""
    return method, target, headers, body


class ReproService:
    """The HTTP server bound to one :class:`~repro.service.jobs.JobQueue`.

    ``port=0`` (the default) binds an ephemeral port; after
    :meth:`start` the resolved port is on :attr:`port` — tests and the
    CI smoke rely on this to avoid port collisions.
    """

    def __init__(self, queue: JobQueue, *, host: str = "127.0.0.1",
                 port: int = 0):
        self.queue = queue
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Start the drain loop and bind the listening socket."""
        await self.queue.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (the ``repro serve`` main loop)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting connections, then stop the queue."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.queue.aclose()

    # -- request handling ---------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """One connection: parse, route, respond, close."""
        try:
            try:
                request = await asyncio.wait_for(
                    _read_request(reader), timeout=READ_TIMEOUT)
            except asyncio.TimeoutError:
                status, ctype, body = self._error(408, "request read timed out")
            except _BadRequest as exc:
                status, ctype, body = self._error(400, str(exc))
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            else:
                if request is None:
                    return
                method, target, _headers, payload = request
                try:
                    status, ctype, body = await self._route(
                        method, target, payload)
                except _BadRequest as exc:
                    status, ctype, body = self._error(400, str(exc))
                except _NotFound as exc:
                    # KeyError wraps its message in quotes; unwrap.
                    status, ctype, body = self._error(
                        404, str(exc.args[0]) if exc.args else "not found")
                except Exception:
                    status, ctype, body = self._error(
                        500, traceback.format_exc(limit=8))
            head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n")
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    @staticmethod
    def _json(payload, status: int = 200) -> tuple[int, str, bytes]:
        """A JSON response triple."""
        body = json.dumps(payload, indent=1, sort_keys=True).encode()
        return status, "application/json", body

    @classmethod
    def _error(cls, status: int, message: str) -> tuple[int, str, bytes]:
        """A JSON error response triple."""
        return cls._json({"error": message}, status=status)

    async def _route(self, method: str, target: str,
                     payload: bytes) -> tuple[int, str, bytes]:
        """Dispatch one parsed request to its endpoint."""
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)
        if path == "/healthz":
            self._require(method, "GET")
            return self._json({"ok": True})
        if path == "/stats":
            self._require(method, "GET")
            return self._json(self.queue.stats())
        if path == "/dashboard":
            self._require(method, "GET")
            html = render_dashboard(self.queue)
            return 200, "text/html; charset=utf-8", html.encode()
        if path == "/jobs":
            if method == "POST":
                return self._submit(payload)
            self._require(method, "GET")
            return self._json(
                {"jobs": [j.summary() for j in self.queue.ordered_jobs()]})
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/record"):
                self._require(method, "GET")
                return self._record(rest[:-len("/record")])
            self._require(method, "GET")
            return await self._job(rest, query)
        raise _NotFound(f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        """Reject a mismatched HTTP method loudly."""
        if method != expected:
            raise _BadRequest(f"method {method} not allowed here "
                              f"(use {expected})")

    def _submit(self, payload: bytes) -> tuple[int, str, bytes]:
        """``POST /jobs`` — admit a batch of descriptors."""
        try:
            data = json.loads(payload or b"null")
        except ValueError as exc:
            raise _BadRequest(f"request body is not JSON: {exc}") from exc
        jobs = data.get("jobs") if isinstance(data, dict) else data
        if not isinstance(jobs, list) or not jobs:
            raise _BadRequest(
                'body must be {"jobs": [descriptor, ...]} or a bare '
                "non-empty JSON list of descriptors")
        if not all(isinstance(j, dict) for j in jobs):
            raise _BadRequest("every job must be a descriptor object")
        try:
            entries = self.queue.submit(jobs)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from exc
        return self._json({"jobs": entries})

    def _lookup(self, jid: str):
        """The job for ``jid`` or a 404."""
        job = self.queue.jobs.get(jid)
        if job is None:
            raise _NotFound(f"unknown job id {jid!r}")
        return job

    async def _job(self, jid: str, query: dict) -> tuple[int, str, bytes]:
        """``GET /jobs/<id>`` — status summary, optionally long-polled."""
        job = self._lookup(jid)
        wait = query.get("wait")
        if wait:
            try:
                seconds = min(float(wait[0]), MAX_WAIT)
            except ValueError as exc:
                raise _BadRequest(f"bad wait={wait[0]!r}") from exc
            job = await self.queue.wait(jid, timeout=seconds)
        return self._json(job.summary())

    def _record(self, jid: str) -> tuple[int, str, bytes]:
        """``GET /jobs/<id>/record`` — the full result, arrays base64."""
        job = self._lookup(jid)
        if job.status != "done" or job.result is None:
            return self._error(
                409, f"job {jid} is {job.status}, no record to serve")
        return self._json({"id": job.id, "source": job.source,
                           "record": encode_record(job.result)})


async def serve(queue: JobQueue, *, host: str = "127.0.0.1", port: int = 0,
                announce: Callable[[str], None] | None = print) -> None:
    """Run the service until cancelled — the ``repro serve`` body.

    Binds, announces the resolved address (``announce=None`` silences
    it), then serves forever; on cancellation (Ctrl-C in the CLI) the
    server and queue are closed cleanly.
    """
    service = ReproService(queue, host=host, port=port)
    await service.start()
    if announce is not None:
        announce(f"repro serve: listening on http://{service.host}:"
                 f"{service.port} (dashboard at /dashboard)")
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.aclose()


class ServiceThread:
    """A live service on a background daemon thread (tests, CI smoke).

    Context manager: entering boots an event loop + service and blocks
    until the port is bound; exiting shuts both down.  The calling
    thread then talks to the service over real HTTP (see
    :class:`repro.service.client.ServiceClient`), which exercises the
    exact code path an external client does.  :attr:`queue` is exposed
    for white-box assertions (counters, job table) — tests read it only
    after the HTTP side confirms completion, so there is no cross-thread
    race on the values asserted.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 **queue_options):
        self._host = host
        self._want_port = port
        self._queue_options = queue_options
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._failure: BaseException | None = None
        #: Resolved port after :meth:`start`.
        self.port: int | None = None
        #: The live :class:`JobQueue` (white-box test hook).
        self.queue: JobQueue | None = None

    @property
    def base_url(self) -> str:
        """The service root, e.g. ``http://127.0.0.1:43117``."""
        return f"http://{self._host}:{self.port}"

    def start(self) -> "ServiceThread":
        """Boot the loop thread; returns once the socket is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise RuntimeError("service thread failed to start in 60s")
        if self._failure is not None:
            raise RuntimeError("service thread failed to start") \
                from self._failure
        return self

    def stop(self) -> None:
        """Shut the service down and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=60.0)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        """Thread body: one ``asyncio.run`` around :meth:`_main`."""
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        """Boot queue + service, signal readiness, park until stopped."""
        self.queue = JobQueue(**self._queue_options)
        service = ReproService(self.queue, host=self._host,
                               port=self._want_port)
        await service.start()
        self.port = service.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await service.aclose()

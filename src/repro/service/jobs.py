"""The service's job model and asyncio work queue.

A *job* is one sweep point — a normalized descriptor (the exact schema
of :func:`repro.experiments.sweep.normalize_task`) plus its lifecycle
state.  The :class:`JobQueue` owns every job the service has ever seen,
keyed by a deterministic id derived from the descriptor fingerprint, and
resolves each submission in a fixed order that keeps the
:class:`~repro.core.runcache.CacheStats` accounting exact:

1. **Known job** — a submission whose fingerprint matches an existing
   job attaches to it: a queued/running job coalesces (single-flight —
   one computation serves every concurrent submitter), a completed job
   is served O(1) from its in-memory result (counted as a cache hit —
   the durable store is *not* re-read, so a store never double-counts
   the entry it just wrote), and a failed job is re-enqueued for a fresh
   attempt.
2. **Durable cache** — a first-time fingerprint consults the
   :class:`~repro.core.runcache.RunCache` (shared namespace
   :data:`~repro.experiments.sweep.SWEEP_NAMESPACE`, so ``repro sweep``
   and ``repro serve`` share entries); a hit completes the job without
   any compute.
3. **Compute** — misses queue for the drain loop, which batches them
   through :func:`repro.core.parallel.run_supervised` (retry / timeout /
   crash containment) off the event loop via ``asyncio.to_thread``.
   Successful results are stored back; terminal failures are written to
   the replayable quarantine artifact when one is configured.

Because :func:`~repro.experiments.sweep.sweep_task` is a pure function
of the normalized descriptor, a job's result record is bitwise-identical
whichever of the three paths served it — the integration suite and the
CI smoke assert exactly that.

:meth:`JobQueue.submit` is deliberately synchronous (no awaits), so an
entire batch is admitted atomically with respect to the drain loop: N
identical descriptors in one request deterministically become one
computation and N-1 coalesced submissions.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
from dataclasses import dataclass, field

from repro.core.parallel import (
    RetryPolicy, TaskOutcome, run_supervised, write_quarantine,
)
from repro.core.runcache import MISS, RunCache, resolve_cache
from repro.experiments.sweep import (
    SWEEP_NAMESPACE, normalize_task, sweep_task, task_fingerprint,
)
from repro.metrics import MetricsRegistry, install_service_metrics, service_snapshot

__all__ = ["Job", "JobQueue", "encode_record", "job_id"]


def job_id(fingerprint: str) -> str:
    """The deterministic job id for a descriptor fingerprint.

    A 16-hex-digit sha256 prefix — stable across restarts and across
    clients, so resubmitting a descriptor always addresses the same job
    (that determinism is what makes coalescing and O(1) duplicate
    detection possible without any server-side session state).
    """
    return hashlib.sha256(fingerprint.encode()).hexdigest()[:16]


def _digest(blob: bytes | None) -> str | None:
    """sha256 hex digest of an array payload (``None`` stays ``None``)."""
    return None if blob is None else hashlib.sha256(blob).hexdigest()


def encode_record(record: dict) -> dict:
    """A result record with its raw byte fields made JSON-safe.

    The sweep record carries force/id arrays as raw bytes; HTTP responses
    carry them base64-encoded under the same keys (``None`` passes
    through).  :meth:`repro.service.client.ServiceClient.record` decodes
    them back to bytes, so a round trip is bitwise-lossless.
    """
    out = dict(record)
    for key in ("forces", "ids"):
        if out.get(key) is not None:
            out[key] = base64.b64encode(out[key]).decode("ascii")
    return out


@dataclass
class Job:
    """One sweep point's lifecycle inside the service.

    ``status`` walks ``queued -> running -> done | failed``; jobs served
    from the durable cache are born ``done``.  ``source`` records how
    the result materialized (``"computed"`` or ``"cache"``); ``failure``
    preserves the underlying executor verdict (``failed`` / ``timeout``
    / ``crashed``) when ``status == "failed"``.  ``submissions`` counts
    every time this fingerprint was submitted (the coalescing tally).
    """

    id: str
    task: dict
    fingerprint: str
    seq: int
    status: str = "queued"
    source: str | None = None
    result: dict | None = None
    error: str | None = None
    failure: str | None = None
    attempts: int = 0
    submissions: int = 1
    quarantined: bool = False
    #: Set exactly once per completion; pollers with ``?wait=`` block on it.
    done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def summary(self) -> dict:
        """The JSON form ``GET /jobs/<id>`` serves (no array payloads).

        Array contents are represented by sha256 digests so clients can
        assert bitwise identity across the cold / cached / coalesced
        paths without shipping megabytes; the full record (base64
        arrays) lives at ``/jobs/<id>/record``.
        """
        out = {
            "id": self.id,
            "status": self.status,
            "source": self.source,
            "cached": self.source == "cache",
            "task": dict(self.task),
            "fingerprint": self.fingerprint,
            "attempts": self.attempts,
            "submissions": self.submissions,
            "quarantined": self.quarantined,
            "error": self.error,
            "failure": self.failure,
            "result": None,
        }
        if self.result is not None:
            r = self.result
            out["result"] = {
                "algorithm": r["algorithm"],
                "elapsed": r["elapsed"],
                "critical_messages": r["critical_messages"],
                "critical_bytes": r["critical_bytes"],
                "forces_sha256": _digest(r["forces"]),
                "forces_dtype": r["forces_dtype"],
                "forces_shape": r["forces_shape"],
                "ids_sha256": _digest(r["ids"]),
                "ids_dtype": r["ids_dtype"],
            }
        return out


class JobQueue:
    """Submission resolution, the drain loop, and the service's accounting.

    Owns the job table, the durable :class:`RunCache` (optional), the
    supervised-executor knobs, and the
    :class:`~repro.metrics.registry.MetricsRegistry` holding the
    ``service.*`` schema.  Runs entirely on one event loop: every public
    mutator is either synchronous (called from request handlers between
    awaits) or an ``async`` method of that loop, so there is no locking.
    """

    def __init__(
        self,
        *,
        cache: RunCache | str | None = None,
        workers: int = 0,
        retry: RetryPolicy | int | None = None,
        task_timeout: float | None = None,
        quarantine: str | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.metrics = install_service_metrics(
            metrics if metrics is not None else MetricsRegistry())
        self.store = resolve_cache(cache, namespace=SWEEP_NAMESPACE)
        self.workers = workers
        self.retry = retry
        self.task_timeout = task_timeout
        self.quarantine = quarantine
        #: Every job ever admitted, keyed by :func:`job_id`.
        self.jobs: dict[str, Job] = {}
        self._pending: asyncio.Queue = asyncio.Queue()
        self._runner: asyncio.Task | None = None
        self._seq = 0
        self._quarantined_tasks: list[dict] = []
        self._quarantined_outcomes: list[TaskOutcome] = []
        self._quarantine_index: dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Start the drain loop (idempotent)."""
        if self._runner is None:
            self._runner = asyncio.create_task(
                self._drain(), name="repro-service-drain")

    async def aclose(self) -> None:
        """Cancel the drain loop and wait for it to unwind."""
        if self._runner is not None:
            self._runner.cancel()
            try:
                await self._runner
            except asyncio.CancelledError:
                pass
            self._runner = None

    # -- submission ---------------------------------------------------------

    def submit(self, descriptors: list[dict]) -> list[dict]:
        """Admit a batch of descriptors; returns one entry dict per input.

        The whole batch is validated up front (``ValueError`` from
        :func:`~repro.experiments.sweep.normalize_task` rejects it
        atomically — nothing is enqueued), then admitted without any
        await point, so in-batch duplicates deterministically coalesce.
        Each entry is ``{"id", "status", "cached", "coalesced"}``.
        """
        descs = [normalize_task(d) for d in descriptors]
        entries = [self._admit(d) for d in descs]
        self._update_depth()
        return entries

    def _admit(self, desc: dict) -> dict:
        """Resolve one normalized descriptor per the module-doc order."""
        fp = task_fingerprint(desc)
        jid = job_id(fp)
        self.metrics.counter("service.jobs.submitted").inc()
        self.metrics.counter("service.jobs.submitted",
                             algorithm=desc["algorithm"]).inc()
        job = self.jobs.get(jid)
        if job is not None:
            job.submissions += 1
            if job.status in ("queued", "running"):
                self.metrics.counter("service.jobs.coalesced").inc()
                return {"id": jid, "status": job.status,
                        "cached": False, "coalesced": True}
            if job.status == "done":
                # Served from the completed job's in-memory result; the
                # durable store is NOT re-read (see module docstring).
                self.metrics.counter("service.jobs.cache_hits").inc()
                return {"id": jid, "status": "done",
                        "cached": True, "coalesced": False}
            # Failed: the submitter asked again, so grant a fresh attempt.
            job.status = "queued"
            job.error = None
            job.failure = None
            job.source = None
            job.attempts = 0
            job.done = asyncio.Event()
            self._pending.put_nowait(job)
            return {"id": jid, "status": "queued",
                    "cached": False, "coalesced": False}
        self._seq += 1
        job = Job(id=jid, task=desc, fingerprint=fp, seq=self._seq)
        self.jobs[jid] = job
        if self.store is not None:
            hit = self.store.get(fp)
            if hit is not MISS:
                job.status = "done"
                job.source = "cache"
                job.result = hit
                job.done.set()
                self.metrics.counter("service.jobs.cache_hits").inc()
                return {"id": jid, "status": "done",
                        "cached": True, "coalesced": False}
        self._pending.put_nowait(job)
        return {"id": jid, "status": "queued",
                "cached": False, "coalesced": False}

    # -- execution ----------------------------------------------------------

    async def _drain(self) -> None:
        """The forever loop: batch queued jobs through the executor."""
        while True:
            job = await self._pending.get()
            batch = [job]
            while True:
                try:
                    batch.append(self._pending.get_nowait())
                except asyncio.QueueEmpty:
                    break
            batch = [j for j in batch if j.status == "queued"]
            if not batch:
                continue
            for j in batch:
                j.status = "running"
            self._update_depth()
            outcomes = await asyncio.to_thread(
                run_supervised, sweep_task, [j.task for j in batch],
                workers=self.workers, retry=self.retry,
                task_timeout=self.task_timeout)
            self._settle(batch, outcomes)
            self._update_depth()

    def _settle(self, batch: list[Job], outcomes: list[TaskOutcome]) -> None:
        """Fold executor outcomes back into jobs; store, count, quarantine."""
        for job, outcome in zip(batch, outcomes):
            job.attempts = outcome.attempts
            if outcome.status == "ok":
                job.result = outcome.value
                job.status = "done"
                job.source = "computed"
                self.metrics.counter("service.jobs.computed").inc()
                self.metrics.counter("service.jobs.computed",
                                     algorithm=job.task["algorithm"]).inc()
                if self.store is not None:
                    self.store.put(job.fingerprint, outcome.value)
            else:
                job.status = "failed"
                job.failure = outcome.status
                job.error = outcome.error
                self.metrics.counter("service.jobs.failed").inc()
                if self.quarantine:
                    self._quarantine_job(job, outcome)
            job.done.set()

    def _quarantine_job(self, job: Job, outcome: TaskOutcome) -> None:
        """Record a terminal failure in the replayable quarantine artifact.

        The artifact is rewritten atomically after every failure and
        deduplicates by fingerprint (a resubmitted job that fails again
        replaces its entry rather than appending a duplicate), so
        ``repro.experiments.sweep.replay_quarantine`` replays each
        poisoned descriptor exactly once.
        """
        idx = self._quarantine_index.get(job.fingerprint)
        record = TaskOutcome(
            index=len(self._quarantined_tasks) if idx is None else idx,
            status=outcome.status, error=outcome.error,
            attempts=outcome.attempts)
        if idx is None:
            self._quarantine_index[job.fingerprint] = record.index
            self._quarantined_tasks.append(job.task)
            self._quarantined_outcomes.append(record)
        else:
            self._quarantined_outcomes[idx] = record
        write_quarantine(self.quarantine, self._quarantined_tasks,
                         self._quarantined_outcomes)
        job.quarantined = True

    # -- reading ------------------------------------------------------------

    def _update_depth(self) -> None:
        """Refresh the ``service.queue.depth`` gauge (queued + running)."""
        depth = sum(1 for j in self.jobs.values()
                    if j.status in ("queued", "running"))
        self.metrics.gauge("service.queue.depth").set(depth)

    def ordered_jobs(self) -> list[Job]:
        """Every job in submission order (first admitted first)."""
        return sorted(self.jobs.values(), key=lambda j: j.seq)

    async def wait(self, jid: str, timeout: float | None = None) -> Job:
        """Block until job ``jid`` completes (or ``timeout`` elapses).

        Returns the job either way — callers inspect ``status`` to tell
        "done" from "still pending after the wait".  ``KeyError`` for an
        unknown id.
        """
        job = self.jobs[jid]
        if timeout is not None and timeout <= 0:
            return job
        try:
            await asyncio.wait_for(job.done.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        return job

    def stats(self) -> dict:
        """The ``/stats`` payload: service counters, cache stats, job tally."""
        tally: dict[str, int] = {"queued": 0, "running": 0,
                                 "done": 0, "failed": 0}
        for job in self.jobs.values():
            tally[job.status] = tally.get(job.status, 0) + 1
        return {
            "service": service_snapshot(self.metrics),
            "cache": None if self.store is None else self.store.stats.to_dict(),
            "jobs": {"total": len(self.jobs), **tally},
        }

"""A stdlib HTTP client for the service — tests, tools, and scripts.

Thin ``urllib`` wrappers over the endpoints of
:mod:`repro.service.server`, so nothing outside the standard library is
needed to drive a running service.  JSON in, JSON out;
:meth:`ServiceClient.record` additionally decodes the base64 array
fields back to raw bytes, making a fetched record bitwise-comparable to
what :func:`repro.experiments.sweep.sweep_task` returned on the server.
"""

from __future__ import annotations

import base64
import json
import time
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP error response from the service.

    Carries :attr:`status` (the HTTP code) and :attr:`detail` (the
    server's ``error`` message), so callers can branch on 400 vs 404 vs
    409 without parsing strings.
    """

    def __init__(self, status: int, detail: str):
        super().__init__(f"service returned {status}: {detail}")
        self.status = status
        self.detail = detail


class ServiceClient:
    """Synchronous client bound to one service base URL.

    ``base_url`` is e.g. ``http://127.0.0.1:8321`` (no trailing slash
    needed); ``timeout`` applies per request.  Every method maps 1:1 to
    an endpoint — see ``docs/service.md`` for the payload schemas.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, payload=None):
        """One HTTP round trip; JSON-decodes ``application/json`` bodies."""
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.base_url + path, data=data,
                                     method=method, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                body = resp.read()
                ctype = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                detail = json.loads(raw).get("error", raw.decode("utf-8",
                                                                 "replace"))
            except ValueError:
                detail = raw.decode("utf-8", "replace")
            raise ServiceError(exc.code, detail) from None
        if ctype.startswith("application/json"):
            return json.loads(body)
        return body.decode()

    def health(self) -> dict:
        """``GET /healthz`` — liveness."""
        return self._request("GET", "/healthz")

    def submit(self, jobs: list[dict]) -> list[dict]:
        """``POST /jobs`` — submit descriptors; returns the entry list."""
        return self._request("POST", "/jobs", {"jobs": jobs})["jobs"]

    def jobs(self) -> list[dict]:
        """``GET /jobs`` — every job summary, submission order."""
        return self._request("GET", "/jobs")["jobs"]

    def job(self, jid: str, *, wait: float | None = None) -> dict:
        """``GET /jobs/<id>`` — one summary; ``wait`` long-polls seconds."""
        suffix = f"?wait={wait:g}" if wait is not None else ""
        return self._request("GET", f"/jobs/{jid}{suffix}")

    def record(self, jid: str) -> dict:
        """``GET /jobs/<id>/record`` — the full record, arrays as bytes."""
        payload = self._request("GET", f"/jobs/{jid}/record")
        record = payload["record"]
        for key in ("forces", "ids"):
            if record.get(key) is not None:
                record[key] = base64.b64decode(record[key])
        return payload

    def stats(self) -> dict:
        """``GET /stats`` — service counters + cache stats + job tally."""
        return self._request("GET", "/stats")

    def dashboard(self) -> str:
        """``GET /dashboard`` — the self-contained HTML page."""
        return self._request("GET", "/dashboard")

    def wait(self, jid: str, *, timeout: float = 120.0) -> dict:
        """Poll (server-side long-poll) until ``jid`` completes.

        Returns the final summary (``status`` is ``done`` or ``failed``);
        raises ``TimeoutError`` if the job is still pending after
        ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {jid} still pending after {timeout}s")
            snap = self.job(jid, wait=min(remaining, 30.0))
            if snap["status"] in ("done", "failed"):
                return snap

"""Units and human-readable formatting for times, byte counts and counts.

The performance model works in SI seconds and bytes internally; these helpers
exist only at the reporting boundary (experiment tables, logs).
"""

from __future__ import annotations

__all__ = ["KB", "MB", "GB", "US", "MS", "fmt_bytes", "fmt_count", "fmt_time"]

KB = 1024.0
MB = 1024.0**2
GB = 1024.0**3

US = 1e-6  # one microsecond, in seconds
MS = 1e-3  # one millisecond, in seconds


def fmt_time(seconds: float) -> str:
    """Format a duration with an auto-selected unit (ns / us / ms / s)."""
    if seconds != seconds:  # NaN
        return "nan"
    a = abs(seconds)
    if a >= 1.0:
        return f"{seconds:.3f} s"
    if a >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if a >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def fmt_bytes(nbytes: float) -> str:
    """Format a byte count with an auto-selected binary unit."""
    a = abs(nbytes)
    if a >= GB:
        return f"{nbytes / GB:.2f} GiB"
    if a >= MB:
        return f"{nbytes / MB:.2f} MiB"
    if a >= KB:
        return f"{nbytes / KB:.2f} KiB"
    return f"{nbytes:.0f} B"


def fmt_count(x: float) -> str:
    """Format a large count compactly (e.g. 24576 -> '24.6K')."""
    a = abs(x)
    if a >= 1e9:
        return f"{x / 1e9:.1f}G"
    if a >= 1e6:
        return f"{x / 1e6:.1f}M"
    if a >= 1e3:
        return f"{x / 1e3:.1f}K"
    return f"{x:.0f}"

"""Shared utilities: partitioning, units, RNG, validation.

These helpers are intentionally dependency-light; every other subpackage in
:mod:`repro` may import from here, but :mod:`repro.util` imports nothing from
the rest of the package.
"""

from repro.util.partition import (
    block_bounds,
    block_owner,
    block_size,
    block_starts,
    even_blocks,
)
from repro.util.rng import default_rng, spawn_rngs
from repro.util.units import (
    GB,
    KB,
    MB,
    US,
    fmt_bytes,
    fmt_count,
    fmt_time,
)
from repro.util.validation import (
    require,
    require_divides,
    require_power_of_two,
    require_positive,
)

__all__ = [
    "GB",
    "KB",
    "MB",
    "US",
    "block_bounds",
    "block_owner",
    "block_size",
    "block_starts",
    "default_rng",
    "even_blocks",
    "fmt_bytes",
    "fmt_count",
    "fmt_time",
    "require",
    "require_divides",
    "require_positive",
    "require_power_of_two",
    "spawn_rngs",
]

"""Seeded random-number helpers.

Every stochastic component in the package (initial particle placement,
synthetic workload generators, the autotuner's sampling) takes an explicit
seed or :class:`numpy.random.Generator`; these helpers centralize the
construction so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng", "spawn_rngs"]

_DEFAULT_SEED = 0xC0FFEE


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a Generator; ``None`` maps to the package-wide fixed seed.

    Passing an existing Generator returns it unchanged, so functions can
    accept ``seed: int | Generator | None`` uniformly.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, k: int) -> list[np.random.Generator]:
    """``k`` statistically independent child generators from one seed.

    ``seed=None`` does **not** mean fresh entropy: it substitutes the
    package-wide fixed seed (``_DEFAULT_SEED``), exactly like
    :func:`default_rng`, so unseeded callers stay reproducible
    run-to-run.  The children come from ``SeedSequence.spawn``; child
    ``i`` depends only on ``(seed, i)``, never on ``k``, so widening a
    harness from ``spawn_rngs(s, 10)`` to ``spawn_rngs(s, 20)`` leaves
    the first ten streams untouched.
    """
    ss = np.random.SeedSequence(_DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(s) for s in ss.spawn(k)]

"""Even block partitioning of ``n`` items over ``k`` owners.

All the decompositions in this package (team blocks of particles, spatial
regions, processor grids) reduce to splitting a range ``[0, n)`` into ``k``
contiguous blocks whose sizes differ by at most one.  The convention used
throughout is the standard "remainder first" rule: the first ``n % k`` blocks
get ``n // k + 1`` items, the rest get ``n // k``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "block_bounds",
    "block_owner",
    "block_size",
    "block_starts",
    "even_blocks",
]


def block_size(n: int, k: int, i: int) -> int:
    """Number of items in block ``i`` of an even split of ``n`` over ``k``."""
    if not 0 <= i < k:
        raise IndexError(f"block index {i} out of range for {k} blocks")
    q, r = divmod(n, k)
    return q + (1 if i < r else 0)


def block_bounds(n: int, k: int, i: int) -> tuple[int, int]:
    """Half-open item range ``[lo, hi)`` owned by block ``i``."""
    if not 0 <= i < k:
        raise IndexError(f"block index {i} out of range for {k} blocks")
    q, r = divmod(n, k)
    lo = i * q + min(i, r)
    hi = lo + q + (1 if i < r else 0)
    return lo, hi


def block_starts(n: int, k: int) -> np.ndarray:
    """Array of ``k + 1`` boundaries; block ``i`` is ``[starts[i], starts[i+1])``."""
    q, r = divmod(n, k)
    sizes = np.full(k, q, dtype=np.int64)
    sizes[:r] += 1
    starts = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(sizes, out=starts[1:])
    return starts


def block_owner(n: int, k: int, item: int) -> int:
    """Index of the block that owns ``item`` under the even split."""
    if not 0 <= item < n:
        raise IndexError(f"item {item} out of range for n={n}")
    q, r = divmod(n, k)
    # The first r blocks cover [0, r*(q+1)).
    cutover = r * (q + 1)
    if item < cutover:
        return item // (q + 1)
    if q == 0:
        raise IndexError(f"item {item} beyond the {r} non-empty blocks")
    return r + (item - cutover) // q


def even_blocks(n: int, k: int) -> list[tuple[int, int]]:
    """All ``k`` half-open block ranges of an even split of ``n``."""
    starts = block_starts(n, k)
    return [(int(starts[i]), int(starts[i + 1])) for i in range(k)]

"""Small argument-validation helpers used across the package.

These raise :class:`ValueError` with uniform messages so tests can assert on
error behaviour precisely.
"""

from __future__ import annotations

__all__ = [
    "require",
    "require_divides",
    "require_positive",
    "require_power_of_two",
]


def require(cond: bool, msg: str) -> None:
    """Raise ``ValueError(msg)`` unless ``cond``."""
    if not cond:
        raise ValueError(msg)


def require_positive(value: int | float, name: str) -> None:
    """Raise unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_divides(divisor: int, value: int, what: str) -> None:
    """Raise unless ``divisor`` divides ``value`` exactly."""
    if divisor <= 0 or value % divisor != 0:
        raise ValueError(f"{what}: {divisor} must divide {value}")


def require_power_of_two(value: int, name: str) -> None:
    """Raise unless ``value`` is a positive power of two."""
    if value <= 0 or value & (value - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {value!r}")

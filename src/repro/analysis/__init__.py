"""Post-processing of simulation output: trajectories and observables.

What a downstream MD user computes from the runs the paper's algorithm
produces: radial distribution functions, mean-squared displacements,
kinetic temperature.  Everything works on plain
:class:`~repro.physics.particles.ParticleSet` snapshots and the
:class:`Trajectory` the driver can record.
"""

from repro.analysis.observables import (
    mean_squared_displacement,
    radial_distribution,
    temperature,
)
from repro.analysis.trajectory import Trajectory

__all__ = [
    "Trajectory",
    "mean_squared_displacement",
    "radial_distribution",
    "temperature",
]

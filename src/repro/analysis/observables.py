"""Physical observables computed from snapshots and trajectories."""

from __future__ import annotations

import numpy as np

from repro.analysis.trajectory import Trajectory
from repro.physics.particles import ParticleSet
from repro.util import require

__all__ = ["mean_squared_displacement", "radial_distribution", "temperature"]


def temperature(particles: ParticleSet, *, mass: float = 1.0,
                k_boltzmann: float = 1.0) -> float:
    """Kinetic temperature via equipartition:
    ``T = m <|v|^2> / (d k_B)``."""
    n, d = particles.pos.shape
    require(n > 0, "need at least one particle")
    v2 = float(np.einsum("ij,ij->", particles.vel, particles.vel)) / n
    return mass * v2 / (d * k_boltzmann)


def mean_squared_displacement(
    traj: Trajectory, *, box: float | None = None
) -> np.ndarray:
    """MSD per frame relative to the first frame: ``(nframes,)``.

    For ballistic (free-streaming) motion the MSD grows as ``(v t)^2``;
    diffusive systems grow linearly — the standard MD diagnostic.
    """
    disp = traj.displacements(box=box)
    return np.einsum("tnd,tnd->t", disp, disp) / traj.n_particles


def radial_distribution(
    particles: ParticleSet,
    *,
    box_length: float,
    rmax: float | None = None,
    nbins: int = 50,
    periodic: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Radial distribution function g(r): ``(bin_centers, g)``.

    Pair distances (minimum image when ``periodic``) are histogrammed and
    normalized by the ideal-gas expectation at the system's mean density,
    so an uncorrelated uniform system gives g(r) ~ 1.  Non-periodic
    normalization ignores wall effects (adequate for ``rmax`` well below
    the box size).
    """
    n, d = particles.pos.shape
    require(n >= 2, "need at least two particles")
    require(d in (1, 2, 3), "g(r) supports 1-3 dimensions")
    L = float(box_length)
    if rmax is None:
        rmax = (L / 2.0) if periodic else (L / 4.0)
    require(0 < rmax <= L, "rmax must be in (0, box_length]")

    dr = particles.pos[:, None, :] - particles.pos[None, :, :]
    if periodic:
        dr -= L * np.round(dr / L)
    r = np.sqrt(np.einsum("ijk,ijk->ij", dr, dr))
    iu = np.triu_indices(n, k=1)
    dists = r[iu]
    dists = dists[dists <= rmax]

    counts, edges = np.histogram(dists, bins=nbins, range=(0.0, rmax))
    centers = 0.5 * (edges[:-1] + edges[1:])

    # Ideal-gas pairs expected per shell at density n / L^d.
    density = n / L**d
    if d == 1:
        shell = 2.0 * np.diff(edges)
    elif d == 2:
        shell = np.pi * np.diff(edges**2)
    else:
        shell = 4.0 / 3.0 * np.pi * np.diff(edges**3)
    expected = 0.5 * n * density * shell  # unordered pairs
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(expected > 0, counts / expected, 0.0)
    return centers, g

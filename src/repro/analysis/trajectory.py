"""Trajectories: ordered sequences of particle snapshots."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.physics.particles import ParticleSet
from repro.util import require

__all__ = ["Trajectory"]


@dataclass
class Trajectory:
    """Snapshots of a particle system at successive (virtual) times.

    Every frame must hold the same particles (ids), sorted by id — the
    driver's recorder guarantees this; hand-built trajectories are checked.
    """

    times: list[float] = field(default_factory=list)
    frames: list[ParticleSet] = field(default_factory=list)

    def append(self, time: float, frame: ParticleSet) -> None:
        """Record one frame at ``time`` (id-sorted; times must not decrease)."""
        frame = frame.sorted_by_id()
        if self.frames:
            require(
                np.array_equal(frame.ids, self.frames[0].ids),
                "all trajectory frames must hold the same particles",
            )
            require(time >= self.times[-1], "times must be non-decreasing")
        self.times.append(float(time))
        self.frames.append(frame)

    def __len__(self) -> int:
        return len(self.frames)

    def __getitem__(self, i: int) -> ParticleSet:
        return self.frames[i]

    @property
    def n_particles(self) -> int:
        return len(self.frames[0]) if self.frames else 0

    @property
    def dim(self) -> int:
        return self.frames[0].dim if self.frames else 0

    def positions(self) -> np.ndarray:
        """``(nframes, n, d)`` stacked positions."""
        require(len(self.frames) > 0, "empty trajectory")
        return np.stack([f.pos for f in self.frames])

    def velocities(self) -> np.ndarray:
        """``(nframes, n, d)`` stacked velocities."""
        require(len(self.frames) > 0, "empty trajectory")
        return np.stack([f.vel for f in self.frames])

    def displacements(self, *, box: float | None = None) -> np.ndarray:
        """Per-frame displacement from the first frame, ``(nframes, n, d)``.

        With ``box`` set (periodic runs), frame-to-frame displacements are
        unwrapped by the minimum-image convention before accumulating, so
        a particle drifting through the wall keeps a growing displacement.
        """
        pos = self.positions()
        if box is None:
            return pos - pos[0]
        steps = np.diff(pos, axis=0)
        steps -= box * np.round(steps / box)
        unwrapped = np.concatenate(
            [np.zeros_like(pos[:1]), np.cumsum(steps, axis=0)]
        )
        return unwrapped

"""Cartesian communicators (the ``MPI_Cart_*`` surface).

A :class:`CartComm` embeds a communicator's ranks in an n-dimensional grid
with per-axis periodicity — the abstraction spatial codes (including the
paper's cutoff experiments) are normally written against.  It wraps a
:class:`~repro.simmpi.comm.Comm` and adds coordinate arithmetic plus the
``shift``/``neighbor`` helpers; all communication still flows through the
wrapped communicator, so tracing and machine models apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.errors import InvalidRankError
from repro.util import require

__all__ = ["CartComm"]

#: Value returned for a neighbor beyond a non-periodic edge (MPI_PROC_NULL).
PROC_NULL = -1


@dataclass
class CartComm:
    """A communicator with an attached Cartesian topology.

    Build with :meth:`create`; all members must pass identical arguments
    (like ``MPI_Cart_create``, but with no communication needed — the
    embedding is deterministic: rank = row-major index of the coords).
    """

    comm: object
    dims: tuple[int, ...]
    periods: tuple[bool, ...]

    @classmethod
    def create(cls, comm, dims: tuple[int, ...],
               periods: tuple[bool, ...] | bool = False) -> "CartComm":
        """Attach an n-d grid topology to ``comm``.

        ``prod(dims)`` must equal ``comm.size``.  ``periods`` may be a
        single bool (all axes) or one per axis.
        """
        dims = tuple(int(d) for d in dims)
        prod = 1
        for d in dims:
            require(d >= 1, f"grid dims must be >= 1, got {dims}")
            prod *= d
        require(prod == comm.size,
                f"grid {dims} has {prod} slots, communicator has {comm.size}")
        if isinstance(periods, bool):
            periods = (periods,) * len(dims)
        periods = tuple(bool(x) for x in periods)
        require(len(periods) == len(dims), "one periodicity flag per axis")
        return cls(comm=comm, dims=dims, periods=periods)

    # -- coordinates -------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's grid coordinates."""
        return self.coords_of(self.comm.rank)

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Cartesian coordinates of a communicator rank (row-major)."""
        require(0 <= rank < self.comm.size, f"rank {rank} out of range")
        out = []
        for d in reversed(self.dims):
            rank, r = divmod(rank, d)
            out.append(r)
        return tuple(reversed(out))

    def rank_of(self, coords: tuple[int, ...]) -> int:
        """Rank at ``coords``; wraps periodic axes, PROC_NULL otherwise."""
        rank = 0
        for x, d, per in zip(coords, self.dims, self.periods):
            if per:
                x %= d
            elif not 0 <= x < d:
                return PROC_NULL
            rank = rank * d + x
        return rank

    # -- neighbors ----------------------------------------------------------

    def shift(self, axis: int, disp: int = 1) -> tuple[int, int]:
        """(source, destination) ranks for a shift along ``axis`` —
        ``MPI_Cart_shift`` semantics, PROC_NULL beyond non-periodic edges."""
        require(0 <= axis < self.ndim, f"axis {axis} out of range")
        me = list(self.coords)
        dst = list(me)
        dst[axis] += disp
        src = list(me)
        src[axis] -= disp
        return self.rank_of(tuple(src)), self.rank_of(tuple(dst))

    def neighbors(self) -> list[int]:
        """Face neighbors (±1 per axis), excluding PROC_NULL, deduplicated."""
        out = set()
        for axis in range(self.ndim):
            for disp in (-1, 1):
                _, dst = self.shift(axis, disp)
                if dst != PROC_NULL and dst != self.comm.rank:
                    out.add(dst)
        return sorted(out)

    # -- communication helpers -------------------------------------------------

    def shift_exchange(self, axis: int, payload, disp: int = 1, tag: int = 0):
        """Sendrecv along ``axis``; returns the received payload or ``None``
        at a non-periodic edge (generator)."""
        src, dst = self.shift(axis, disp)
        if src == PROC_NULL and dst == PROC_NULL:
            return None
        reqs = []
        if dst != PROC_NULL:
            sreq = yield from self.comm.isend(dst, payload, tag)
            reqs.append(sreq)
        received = None
        if src != PROC_NULL:
            rreq = yield from self.comm.irecv(src, tag)
            reqs.append(rreq)
            payloads = yield from self.comm.wait(*reqs)
            received = payloads[-1]
        elif reqs:
            yield from self.comm.wait(*reqs)
        return received

    def sub_cart(self, keep_axes: tuple[int, ...]) -> "CartComm | None":
        """Sub-grid keeping ``keep_axes`` and fixing the rest at this
        rank's coordinates (``MPI_Cart_sub``)."""
        keep = tuple(sorted(set(int(a) for a in keep_axes)))
        for a in keep:
            require(0 <= a < self.ndim, f"axis {a} out of range")
        me = self.coords
        members = []

        def rec(axis, coords):
            if axis == self.ndim:
                members.append(self.rank_of(tuple(coords)))
                return
            if axis in keep:
                for x in range(self.dims[axis]):
                    rec(axis + 1, coords + [x])
            else:
                rec(axis + 1, coords + [me[axis]])

        rec(0, [])
        sub = self.comm.sub(members)
        if sub is None:  # pragma: no cover - member by construction
            raise InvalidRankError("rank missing from its own sub-grid")
        return CartComm(
            comm=sub,
            dims=tuple(self.dims[a] for a in keep),
            periods=tuple(self.periods[a] for a in keep),
        )

"""Software collectives built from point-to-point messages.

These are textbook tree/dissemination algorithms (binomial broadcast,
binomial reduce/gather/scatter, recursive-doubling allreduce/allgather,
dissemination barrier, pairwise alltoall).  Because they are expressed in
terms of :class:`~repro.simmpi.comm.Comm` point-to-point operations, their
simulated cost automatically reflects the machine model — tree edges between
ranks that are far apart in the torus cost more, which is exactly the effect
the paper blames for collectives "failing to scale logarithmically" at large
replication factors.

Every function is a generator to be driven with ``yield from``.  All message
tags live in the reserved collective tag space (one sub-space per collective
kind), so user point-to-point traffic can never be confused with collective
traffic on the same communicator.

Schedule independence
---------------------
Each collective's *combination* order is fixed by the algorithm (binomial
fold order, ascending-rank folds in allreduce), never by message arrival
order, so results are bitwise identical under any
:class:`~repro.simmpi.schedule.SchedulePolicy`.  The exchange rounds ride
on ``Comm._coll_sendrecv``, whose send/recv posting order is a scheduler
free choice the policy may flip — the interleaving fuzzer drives these
trees under perturbed schedules to keep that contract locked (see
``docs/schedule-fuzzing.md``).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.simmpi.errors import InvalidRankError

__all__ = [
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "binomial_fold",
    "gather",
    "reduce",
    "scatter",
]

# Per-kind tag offsets within the collective tag space.
_TAG_BCAST = 0
_TAG_REDUCE = 1
_TAG_ALLREDUCE = 2
_TAG_GATHER = 3
_TAG_SCATTER = 4
_TAG_ALLGATHER = 5
_TAG_ALLTOALL = 6
_TAG_BARRIER = 7


def _check_root(comm, root: int) -> None:
    if not 0 <= root < comm.size:
        raise InvalidRankError(f"root {root} out of range for size {comm.size}")


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def bcast(comm, value: Any, root: int = 0):
    """Binomial-tree broadcast rooted at ``root``; O(log p) depth."""
    _check_root(comm, root)
    size = comm.size
    if size == 1:
        return value
    rel = (comm.rank - root) % size

    # Receive phase: a non-root rank receives from the rank that differs in
    # its lowest set bit.
    mask = 1
    recv_mask = 0
    while mask < size:
        if rel & mask:
            src = ((rel - mask) + root) % size
            value = yield from comm._coll_recv(src, _TAG_BCAST)
            recv_mask = mask
            break
        mask <<= 1
    else:
        # Only the root exits without receiving; mask is now >= size.
        recv_mask = mask

    # Send phase: forward to ranks that differ in each lower bit.
    mask = recv_mask >> 1
    while mask > 0:
        if rel + mask < size:
            dst = (rel + mask + root) % size
            yield from comm._coll_send(dst, value, _TAG_BCAST)
        mask >>= 1
    return value


def reduce(comm, value: Any, op: Callable[[Any, Any], Any], root: int = 0):
    """Binomial-tree reduction to ``root``; non-roots return ``None``.

    The combination order is deterministic (child contributions are folded
    in increasing bit order), so repeated runs give bitwise-identical
    results; different tree shapes (e.g. different ``c``) may differ in the
    last floating-point bits, as on a real machine.
    """
    _check_root(comm, root)
    size = comm.size
    if size == 1:
        return value
    rel = (comm.rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if rel & mask:
            dst = ((rel - mask) + root) % size
            yield from comm._coll_send(dst, acc, _TAG_REDUCE)
            return None
        partner = rel | mask
        if partner < size:
            src = (partner + root) % size
            other = yield from comm._coll_recv(src, _TAG_REDUCE)
            acc = op(acc, other)
        mask <<= 1
    return acc


def binomial_fold(values: Sequence[Any], op: Callable[[Any, Any], Any]) -> Any:
    """Fold ``values`` locally in the exact association order of
    :func:`reduce` with ``root=0`` over ``len(values)`` ranks.

    Because :func:`reduce` combines child contributions deterministically,
    a local fold replaying the same tree produces a **bitwise-identical**
    result for floating-point operators.  The fault-recovery path uses this
    to keep degraded (``c-1``-survivor) reductions bit-for-bit equal to
    the fault-free run: survivors ship their accumulators to the acting
    leader, which folds all ``c`` logical slots in the original order.
    """
    size = len(values)
    if size == 0:
        raise ValueError("binomial_fold needs at least one value")
    acc = list(values)
    mask = 1
    while mask < size:
        for rel in range(0, size, 2 * mask):
            partner = rel | mask
            if partner < size:
                acc[rel] = op(acc[rel], acc[partner])
        mask <<= 1
    return acc[0]


def allreduce(comm, value: Any, op: Callable[[Any, Any], Any]):
    """Recursive-doubling allreduce (power-of-two sizes); otherwise
    reduce-to-0 followed by broadcast."""
    size = comm.size
    if size == 1:
        return value
    if not _is_pow2(size):
        acc = yield from reduce(comm, value, op, 0)
        acc = yield from bcast(comm, acc, 0)
        return acc
    acc = value
    mask = 1
    while mask < size:
        partner = comm.rank ^ mask
        other = yield from comm._coll_sendrecv(partner, acc, partner,
                                               _TAG_ALLREDUCE)
        # Fold in a globally consistent order so non-commutative ops agree.
        acc = op(acc, other) if comm.rank < partner else op(other, acc)
        mask <<= 1
    return acc


def gather(comm, value: Any, root: int = 0):
    """Binomial-tree gather; ``root`` returns the rank-ordered list."""
    _check_root(comm, root)
    size = comm.size
    if size == 1:
        return [value]
    rel = (comm.rank - root) % size
    # Accumulate a dict {relative_rank: value} up the tree.
    held: dict[int, Any] = {rel: value}
    mask = 1
    while mask < size:
        if rel & mask:
            dst = ((rel - mask) + root) % size
            yield from comm._coll_send(dst, held, _TAG_GATHER)
            return None
        partner = rel | mask
        if partner < size:
            src = (partner + root) % size
            other = yield from comm._coll_recv(src, _TAG_GATHER)
            held.update(other)
        mask <<= 1
    return [held[(r - root) % size] for r in range(size)]


def scatter(comm, values: Sequence[Any] | None, root: int = 0):
    """Binomial-tree scatter from ``root``; returns this rank's item."""
    _check_root(comm, root)
    size = comm.size
    if comm.rank == root:
        if values is None or len(values) != size:
            raise ValueError(
                f"scatter root must supply exactly {size} values, got "
                f"{None if values is None else len(values)}"
            )
    if size == 1:
        return values[0]
    rel = (comm.rank - root) % size

    if rel == 0:
        held = {i: values[(i + root) % size] for i in range(size)}
        recv_mask = 1
        while recv_mask < size:
            recv_mask <<= 1
    else:
        mask = 1
        while mask < size:
            if rel & mask:
                src = ((rel - mask) + root) % size
                held = yield from comm._coll_recv(src, _TAG_SCATTER)
                recv_mask = mask
                break
            mask <<= 1

    # Forward each sub-block down the tree.
    mask = recv_mask >> 1
    while mask > 0:
        if rel + mask < size:
            dst = (rel + mask + root) % size
            sub = {i: held[i] for i in range(rel + mask, min(rel + 2 * mask, size))}
            yield from comm._coll_send(dst, sub, _TAG_SCATTER)
            for i in sub:
                del held[i]
        mask >>= 1
    return held[rel]


def allgather(comm, value: Any):
    """Recursive-doubling allgather (power-of-two sizes); otherwise
    gather-to-0 followed by broadcast.  Returns the rank-ordered list."""
    size = comm.size
    if size == 1:
        return [value]
    if not _is_pow2(size):
        lst = yield from gather(comm, value, 0)
        lst = yield from bcast(comm, lst, 0)
        return lst
    held: dict[int, Any] = {comm.rank: value}
    mask = 1
    while mask < size:
        partner = comm.rank ^ mask
        other = yield from comm._coll_sendrecv(partner, held, partner,
                                               _TAG_ALLGATHER)
        held = {**held, **other}
        mask <<= 1
    return [held[r] for r in range(size)]


def alltoall(comm, values: Sequence[Any]):
    """Personalized all-to-all exchange.

    Pairwise-XOR schedule for power-of-two sizes, ring schedule otherwise;
    both are contention-friendly and deadlock-free.  Returns the list whose
    ``i``-th entry came from rank ``i``.
    """
    size = comm.size
    if len(values) != size:
        raise ValueError(f"alltoall needs exactly {size} values, got {len(values)}")
    result: list[Any] = [None] * size
    result[comm.rank] = values[comm.rank]
    if size == 1:
        return result
    if _is_pow2(size):
        for k in range(1, size):
            partner = comm.rank ^ k
            result[partner] = yield from comm._coll_sendrecv(
                partner, values[partner], partner, _TAG_ALLTOALL
            )
    else:
        for k in range(1, size):
            dst = (comm.rank + k) % size
            src = (comm.rank - k) % size
            result[src] = yield from comm._coll_sendrecv(
                dst, values[dst], src, _TAG_ALLTOALL
            )
    return result


def barrier(comm):
    """Dissemination barrier: ceil(log2 p) rounds of zero-byte messages."""
    size = comm.size
    if size == 1:
        return
    k = 1
    while k < size:
        dst = (comm.rank + k) % size
        src = (comm.rank - k) % size
        yield from comm._coll_sendrecv(dst, None, src, _TAG_BARRIER)
        k <<= 1

"""Per-rank, per-phase virtual-time and traffic accounting.

The paper's evaluation plots are stacked breakdowns of execution time per
timestep into *Computation*, *Communication (Shift)*, *Communication
(Reduce)*, and — with a cutoff — *Communication (Re-assign)*.  The tracer
reproduces exactly that attribution: every blocking operation a rank performs
is charged to the phase label that was active when the operation was issued,
and message/byte counters are kept per phase as well so the theoretical cost
expressions (S, W) can be checked against observed traffic.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["NullTrace", "PhaseTotals", "RankTrace", "TimelineEvent",
           "TraceReport", "RECOVER_PHASE", "RETRY_PHASE", "timeline_to_json"]

#: Phase label applied when the program has not pushed any phase.
DEFAULT_PHASE = "other"

#: Phase charged with retransmit traffic under fault injection (dropped or
#: checksum-rejected transfers); kept separate from the algorithm phases so
#: fault overhead is visible in every breakdown.
RETRY_PHASE = "retry"

#: Phase charged with replication-aware recovery work (failure sync, block
#: re-fetch, replayed updates, degraded reductions).
RECOVER_PHASE = "recover"


@dataclass
class PhaseTotals:
    """Aggregated activity within one phase on one rank."""

    seconds: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Retransmissions charged to this phase: dropped transfers plus
    #: checksum-rejected deliveries, each re-sent on the wire.
    retries: int = 0
    #: Deliveries that were corrupted in flight, caught by the payload CRC,
    #: and replaced by a clean retransmit (counted at the receiver).
    redelivered: int = 0

    def merge(self, other: "PhaseTotals") -> None:
        """Add another phase's totals into this one (field-wise sum)."""
        self.seconds += other.seconds
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.retries += other.retries
        self.redelivered += other.redelivered


@dataclass
class RankTrace:
    """All phase totals for one rank."""

    rank: int
    phases: dict[str, PhaseTotals] = field(default_factory=dict)

    def phase(self, label: str) -> PhaseTotals:
        """Get-or-create this rank's totals for phase ``label``."""
        tot = self.phases.get(label)
        if tot is None:
            tot = self.phases[label] = PhaseTotals()
        return tot

    def add_time(self, label: str, seconds: float) -> None:
        self.phase(label).seconds += seconds

    def add_send(self, label: str, nbytes: int) -> None:
        """Charge one sent message of ``nbytes`` to phase ``label``."""
        tot = self.phase(label)
        tot.messages_sent += 1
        tot.bytes_sent += nbytes

    def add_recv(self, label: str, nbytes: int) -> None:
        """Charge one received message of ``nbytes`` to phase ``label``."""
        tot = self.phase(label)
        tot.messages_received += 1
        tot.bytes_received += nbytes

    def add_retry(self, label: str, nbytes: int) -> None:
        """Charge one retransmission: an extra message + bytes on the wire."""
        tot = self.phase(label)
        tot.messages_sent += 1
        tot.bytes_sent += nbytes
        tot.retries += 1

    def add_redelivery(self, label: str) -> None:
        """Record one checksum-caught corruption replaced by a clean copy."""
        self.phase(label).redelivered += 1

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.phases.values())


class _NullPhaseTotals(PhaseTotals):
    """A write-only accumulator: additions land here and are never read."""

    __slots__ = ()


class NullTrace:
    """A do-nothing stand-in for :class:`RankTrace`.

    Installed on every rank when the engine runs with
    ``record_phases=False``: accounting calls hit these no-ops instead of
    branching at every call site, so the hot path stays straight-line and
    per-phase dictionaries are never built.  One shared instance serves all
    ranks (it holds no state worth reading).
    """

    __slots__ = ("_sink",)

    rank = -1
    phases: dict[str, PhaseTotals] = {}
    total_seconds = 0.0

    def __init__(self):
        self._sink = _NullPhaseTotals()

    def phase(self, label: str) -> PhaseTotals:
        return self._sink

    def add_time(self, label: str, seconds: float) -> None:
        pass

    def add_send(self, label: str, nbytes: int) -> None:
        pass

    def add_recv(self, label: str, nbytes: int) -> None:
        pass

    def add_retry(self, label: str, nbytes: int) -> None:
        pass

    def add_redelivery(self, label: str) -> None:
        pass


class TraceReport:
    """Cross-rank view over the per-rank traces of one simulation run."""

    def __init__(self, traces: list[RankTrace]):
        self.traces = traces

    @property
    def nranks(self) -> int:
        return len(self.traces)

    def phase_labels(self) -> list[str]:
        """Every phase label seen, in first-appearance order across ranks."""
        labels: list[str] = []
        for tr in self.traces:
            for lab in tr.phases:
                if lab not in labels:
                    labels.append(lab)
        return labels

    def max_time(self, label: str) -> float:
        """Maximum over ranks of time spent in ``label`` (critical-path proxy)."""
        return max((tr.phases[label].seconds for tr in self.traces if label in tr.phases), default=0.0)

    def mean_time(self, label: str) -> float:
        """Mean over ranks of virtual seconds spent in phase ``label``."""
        if not self.traces:
            return 0.0
        return sum(tr.phases.get(label, PhaseTotals()).seconds for tr in self.traces) / len(self.traces)

    def max_messages(self, label: str) -> int:
        """Max over ranks of messages *sent* in ``label`` — the latency cost S."""
        return max(
            (tr.phases[label].messages_sent for tr in self.traces if label in tr.phases),
            default=0,
        )

    def max_bytes(self, label: str) -> int:
        """Max over ranks of bytes sent in ``label`` — the bandwidth cost W."""
        return max(
            (tr.phases[label].bytes_sent for tr in self.traces if label in tr.phases),
            default=0,
        )

    def total_retries(self, label: str | None = None) -> int:
        """Retransmissions across ranks, in ``label`` or in all phases."""
        if label is None:
            return sum(t.retries for tr in self.traces for t in tr.phases.values())
        return sum(
            tr.phases[label].retries for tr in self.traces if label in tr.phases
        )

    def total_redelivered(self, label: str | None = None) -> int:
        """Checksum-caught redeliveries across ranks (``label`` or all)."""
        if label is None:
            return sum(
                t.redelivered for tr in self.traces for t in tr.phases.values()
            )
        return sum(
            tr.phases[label].redelivered for tr in self.traces if label in tr.phases
        )

    def total_messages(self) -> int:
        return sum(
            tot.messages_sent for tr in self.traces for tot in tr.phases.values()
        )

    def total_bytes(self) -> int:
        return sum(tot.bytes_sent for tr in self.traces for tot in tr.phases.values())

    def critical_messages(self) -> int:
        """Max over ranks of total messages sent (all phases)."""
        return max(
            (sum(t.messages_sent for t in tr.phases.values()) for tr in self.traces),
            default=0,
        )

    def critical_bytes(self) -> int:
        """Max over ranks of total bytes sent (all phases)."""
        return max(
            (sum(t.bytes_sent for t in tr.phases.values()) for tr in self.traces),
            default=0,
        )

    def breakdown(self) -> dict[str, float]:
        """Phase label -> max-over-ranks seconds, in first-seen label order."""
        return {lab: self.max_time(lab) for lab in self.phase_labels()}

    def phase_table(self) -> dict[str, dict[str, float]]:
        """Per-phase accounting as plain data, in first-seen label order.

        Each entry maps a phase label to ``max_s`` / ``mean_s`` (seconds)
        and ``max_messages`` / ``max_bytes`` (per-rank maxima — the paper's
        S and W cost terms).  This is the machine-readable form of
        :meth:`summary`, consumed by the cross-algorithm comparison
        harness and the CLI.
        """
        return {
            lab: {
                "max_s": self.max_time(lab),
                "mean_s": self.mean_time(lab),
                "max_messages": self.max_messages(lab),
                "max_bytes": self.max_bytes(lab),
                "retries": self.total_retries(lab),
                "redelivered": self.total_redelivered(lab),
            }
            for lab in self.phase_labels()
        }

    def summary(self) -> str:
        """The per-phase table: max/mean seconds, traffic maxima, retries."""
        lines = [
            f"{'phase':<12} {'max(s)':>12} {'mean(s)':>12} {'maxmsgs':>8} "
            f"{'maxbytes':>12} {'retries':>8} {'redeliv':>8}"
        ]
        for lab in self.phase_labels():
            lines.append(
                f"{lab:<12} {self.max_time(lab):>12.6f} {self.mean_time(lab):>12.6f} "
                f"{self.max_messages(lab):>8d} {self.max_bytes(lab):>12d} "
                f"{self.total_retries(lab):>8d} {self.total_redelivered(lab):>8d}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class TimelineEvent:
    """One timestamped activity on one rank (optional engine recording).

    ``kind`` is ``compute`` (local work), ``wait`` (blocked in a wait),
    ``xfer`` (a completed transfer, recorded on both endpoints), or
    ``hwcoll`` (a hardware collective).  ``peer`` is the other endpoint of
    a transfer, -1 otherwise.
    """

    rank: int
    phase: str
    kind: str
    t_start: float
    t_end: float
    nbytes: int = 0
    peer: int = -1

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def timeline_to_json(events: list[TimelineEvent]) -> str:
    """Serialize a recorded timeline, sorted by start time then rank.

    The format is a plain JSON array of objects — easy to feed to any
    Gantt/trace viewer or to pandas.
    """
    import json

    rows = [
        {
            "rank": e.rank,
            "phase": e.phase,
            "kind": e.kind,
            "t_start": e.t_start,
            "t_end": e.t_end,
            "nbytes": e.nbytes,
            "peer": e.peer,
        }
        for e in sorted(events, key=lambda e: (e.t_start, e.rank, e.t_end))
    ]
    return json.dumps(rows, indent=1)


def merge_phase_dicts(dicts: list[dict[str, PhaseTotals]]) -> dict[str, PhaseTotals]:
    """Merge several label->totals maps (summing), preserving label order."""
    out: dict[str, PhaseTotals] = defaultdict(PhaseTotals)
    for d in dicts:
        for lab, tot in d.items():
            out[lab].merge(tot)
    return dict(out)

"""Schedule-perturbation policies for the engine's cooperative scheduler.

The engine's correctness story (see :mod:`repro.simmpi.engine`) is that all
virtual *times* are computed from posting timestamps, never from scheduling
order — so the order in which runnable ranks are popped from the ready
queue, the order in which matched peers are notified, and the relative
posting order of independent requests inside one wait group must all be
*unobservable*.  Historically the engine only ever exercised one such
order (FIFO), so that invariant was an untested promise: the PR-4 one-ulp
tombstone-rebuild bug was schedule-dependent and was found by luck.

A :class:`SchedulePolicy` makes the interleaving space explorable.  It
perturbs exactly the decisions that rendezvous semantics leave open:

* **ready-queue pop order** — which runnable rank the engine drives next
  (:meth:`SchedulePolicy.pop`);
* **completion-notification order** — whether the sender or the receiver
  of a matched transfer is re-queued first
  (:meth:`SchedulePolicy.unblock_receiver_first`);
* **group re-queue order** — the order members of a completed hardware
  collective or failure sync re-enter the ready queue
  (:meth:`SchedulePolicy.permute`);
* **posting order inside a wait group** — whether ``sendrecv`` posts its
  send or its receive first; both are posted at the same virtual instant
  and waited together, so either order is legal
  (:meth:`SchedulePolicy.reorder_posts`).

What a policy may **not** do: reorder messages *within* one
``(src, dst, tag)`` channel (MPI's non-overtaking rule — the engine's
per-channel FIFO queues enforce it regardless of policy), drop or
duplicate operations, or touch virtual clocks.  Every policy therefore
explores a schedule the real machine could have produced, and bitwise
divergence under any policy is an engine or algorithm bug, not noise.

Three policies are provided:

``fifo``
    The historical order; zero overhead (the engine keeps its plain
    ``popleft`` loop when no perturbation is requested).
``random:SEED``
    Uniform choices from a private seeded generator.  Replaying the same
    seed reproduces the exact interleaving — the replay handle every
    fuzz failure artifact records.
``adversarial[:SEED]``
    Maximally anti-FIFO: newest-runnable-first (LIFO) pops, reversed
    group re-queues, receive-before-send postings, receiver-first
    notifications.  With a seed, occasional random pops are mixed in so
    the policy also escapes pure-LIFO fixed points.

Policies are accepted anywhere the engine is built: ``Engine(...,
schedule=...)``, ``RunSpec(schedule=...)``, ``run_simulation(...,
schedule=...)`` and the ``--schedule`` CLI flags, as either a policy
instance or a spec string.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

__all__ = [
    "AdversarialPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "SchedulePolicy",
    "resolve_schedule",
]


class SchedulePolicy:
    """Base policy: FIFO everywhere (the engine's historical order).

    Subclasses override the four decision hooks; every hook must be a pure
    function of the policy's own seeded state so a given ``(program,
    policy spec)`` pair replays the exact same interleaving.
    :meth:`reset` is called by the engine at the start of every run.
    """

    #: Policy family name; ``spec`` appends the seed when one exists.
    name = "fifo"
    #: Seed of the policy's private stream (``None`` for seedless ones).
    seed: int | None = None

    def reset(self) -> None:
        """Re-arm the policy's private random stream for a fresh run."""

    def pop(self, ready: deque) -> int:
        """Choose and remove the next rank to drive from ``ready``."""
        return ready.popleft()

    def permute(self, seq: Sequence) -> Sequence:
        """Order in which a completed group's members are re-queued."""
        return seq

    def reorder_posts(self) -> bool:
        """True to post the receive before the send in a sendrecv pair."""
        return False

    def unblock_receiver_first(self) -> bool:
        """True to notify a matched transfer's receiver before its sender."""
        return False

    @property
    def spec(self) -> str:
        """Canonical spec string (parseable by :meth:`from_spec`)."""
        return self.name if self.seed is None else f"{self.name}:{self.seed}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.spec!r}>"

    @classmethod
    def from_spec(cls, spec) -> "SchedulePolicy":
        """Parse ``NAME`` or ``NAME:SEED`` (or pass a policy through).

        Accepted names: ``fifo``, ``random`` (seed defaults to 0) and
        ``adversarial`` (seedless unless a seed is given).
        """
        if isinstance(spec, SchedulePolicy):
            return spec
        if not isinstance(spec, str):
            raise TypeError(
                f"schedule must be a SchedulePolicy or spec string, got "
                f"{spec!r}"
            )
        name, sep, seed_text = spec.partition(":")
        name = name.strip().lower()
        seed = None
        if sep:
            try:
                seed = int(seed_text)
            except ValueError:
                raise ValueError(
                    f"schedule seed must be an integer, got {seed_text!r}"
                ) from None
        if name == "fifo":
            if seed is not None:
                raise ValueError("the fifo policy takes no seed")
            return FifoPolicy()
        if name == "random":
            return RandomPolicy(0 if seed is None else seed)
        if name == "adversarial":
            return AdversarialPolicy(seed)
        raise ValueError(
            f"unknown schedule policy {name!r} "
            "(expected fifo, random[:SEED] or adversarial[:SEED])"
        )


class FifoPolicy(SchedulePolicy):
    """The identity policy — explicit form of the engine default."""


class RandomPolicy(SchedulePolicy):
    """Uniformly random choices from a private seeded stream."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def pop(self, ready: deque) -> int:
        """Remove and return a uniformly random runnable rank."""
        n = len(ready)
        if n == 1:
            return ready.popleft()
        # Remove index i without disturbing the relative order of the rest.
        i = int(self._rng.integers(n))
        ready.rotate(-i)
        rank = ready.popleft()
        ready.rotate(i)
        return rank

    def permute(self, seq: Sequence) -> Sequence:
        return [seq[i] for i in self._rng.permutation(len(seq))]

    def reorder_posts(self) -> bool:
        return bool(self._rng.integers(2))

    def unblock_receiver_first(self) -> bool:
        return bool(self._rng.integers(2))


class AdversarialPolicy(SchedulePolicy):
    """Maximally anti-FIFO choices (optionally seeded for variety).

    Seedless, the policy is fully deterministic: newest-first pops,
    reversed re-queues, and always-flipped posting/notification orders.
    With a seed, one pop in four is drawn uniformly instead of LIFO so
    repeated fuzz runs also explore mixtures rather than one fixed
    anti-schedule.
    """

    name = "adversarial"

    def __init__(self, seed: int | None = None):
        self.seed = None if seed is None else int(seed)
        self._rng = None if self.seed is None \
            else np.random.default_rng(self.seed)

    def reset(self) -> None:
        if self.seed is not None:
            self._rng = np.random.default_rng(self.seed)

    def pop(self, ready: deque) -> int:
        """Newest-runnable-first; seeded: one pop in four is uniform."""
        if (self._rng is not None and len(ready) > 2
                and self._rng.random() < 0.25):
            i = int(self._rng.integers(len(ready)))
            ready.rotate(-i)
            rank = ready.popleft()
            ready.rotate(i)
            return rank
        return ready.pop()  # newest first

    def permute(self, seq: Sequence) -> Sequence:
        return list(reversed(seq))

    def reorder_posts(self) -> bool:
        return True

    def unblock_receiver_first(self) -> bool:
        return True


def resolve_schedule(spec) -> SchedulePolicy | None:
    """Engine-facing resolver: ``None``/fifo become ``None`` (fast path).

    The engine treats "no policy" as license to keep the zero-overhead
    ``popleft`` loop, so the explicit FIFO policy — behaviourally identical
    — is normalized away here.
    """
    if spec is None:
        return None
    policy = SchedulePolicy.from_spec(spec)
    return None if type(policy) in (SchedulePolicy, FifoPolicy) else policy

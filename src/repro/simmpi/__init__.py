"""A deterministic, discrete-event simulated MPI.

This package stands in for the MPI + supercomputer substrate the paper's
experiments ran on.  Rank programs are Python generators communicating
through :class:`~repro.simmpi.comm.Comm` handles; the
:class:`~repro.simmpi.engine.Engine` really moves payloads between ranks
(so algorithm correctness is exercised end-to-end) while advancing per-rank
virtual clocks according to a pluggable machine model (so the communication
*time* structure of the paper's experiments is reproduced).

Quick example::

    from repro.simmpi import Engine
    from repro.machines import GenericMachine

    def program(comm):
        total = yield from comm.allreduce(comm.rank, lambda a, b: a + b)
        return total

    result = Engine(GenericMachine(nranks=8)).run(program)
    assert result.results == [28] * 8
"""

from repro.simmpi.cart import PROC_NULL, CartComm
from repro.simmpi.comm import Comm
from repro.simmpi.engine import Engine, Request, RunResult
from repro.simmpi.errors import (
    DeadlockError,
    InvalidRankError,
    InvalidTagError,
    MaxOpsExceededError,
    RankFailedError,
    RecoveredRankEvent,
    SimMPIError,
    TransferTimeoutError,
)
from repro.simmpi.faults import (
    CorruptTransfer,
    DelayTransfer,
    DropTransfer,
    FaultSchedule,
    KillRank,
    Tombstone,
)
from repro.simmpi.collectives_ext import allreduce_rabenseifner, bcast_pipelined
from repro.simmpi.payload import join_payloads, payload_nbytes, split_payload
from repro.simmpi.schedule import (AdversarialPolicy, FifoPolicy,
                                   RandomPolicy, SchedulePolicy)
from repro.simmpi.topology import ReplicatedGrid, ring_shift
from repro.simmpi.tracing import (NullTrace, PhaseTotals, RankTrace,
                                  TimelineEvent, TraceReport, timeline_to_json)

__all__ = [
    "AdversarialPolicy",
    "CartComm",
    "Comm",
    "CorruptTransfer",
    "FifoPolicy",
    "RandomPolicy",
    "SchedulePolicy",
    "DelayTransfer",
    "DropTransfer",
    "FaultSchedule",
    "KillRank",
    "PROC_NULL",
    "RecoveredRankEvent",
    "Tombstone",
    "TransferTimeoutError",
    "allreduce_rabenseifner",
    "bcast_pipelined",
    "join_payloads",
    "split_payload",
    "DeadlockError",
    "Engine",
    "InvalidRankError",
    "InvalidTagError",
    "MaxOpsExceededError",
    "NullTrace",
    "PhaseTotals",
    "RankFailedError",
    "RankTrace",
    "ReplicatedGrid",
    "Request",
    "RunResult",
    "SimMPIError",
    "TimelineEvent",
    "TraceReport",
    "payload_nbytes",
    "ring_shift",
    "timeline_to_json",
]

"""Large-message collective algorithms.

Production MPI libraries switch collective algorithms by message size:
log-depth trees win when latency dominates, pipelines and
reduce-scatter-based schemes win when bandwidth does.  The paper leans on
exactly this sensitivity ("collectives fail to scale logarithmically as
our model assumes"), so the substrate provides both families:

* :func:`bcast_pipelined` — segmented ring broadcast.  Critical path
  ``(p - 1 + k - 1)`` messages of ``nbytes/k`` each: for large payloads the
  per-byte cost approaches one traversal of the data instead of the
  binomial tree's ``log2(p)`` traversals.
* :func:`allreduce_rabenseifner` — recursive-halving reduce-scatter
  followed by recursive-doubling allgather (power-of-two sizes, NumPy
  arrays).  Moves ``2 nbytes (1 - 1/p)`` per rank instead of recursive
  doubling's ``nbytes log2(p)``.

Both are real data movers (results are exact), and both are generators to
be driven with ``yield from`` like everything else in the rank programs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.simmpi.collectives import _check_root, _is_pow2, allreduce
from repro.simmpi.payload import join_payloads, split_payload

__all__ = ["allreduce_rabenseifner", "bcast_pipelined"]

_TAG_PIPE = 8
_TAG_RSAG = 9


def bcast_pipelined(comm, value, root: int = 0, *, segments: int = 8):
    """Segmented ring broadcast; returns the value on every rank.

    The root splits the payload into ``segments`` parts and streams them
    around the ring; every intermediate rank forwards each part as soon as
    it arrives.  The payload must be segmentable
    (:func:`~repro.simmpi.payload.split_payload`); all ranks must pass the
    same ``segments``.
    """
    _check_root(comm, root)
    size = comm.size
    if size == 1:
        return value
    rel = (comm.rank - root) % size
    nxt = (comm.rank + 1) % size
    prv = (comm.rank - 1) % size
    k = max(1, int(segments))

    if rel == 0:
        parts = split_payload(value, k)
        if parts is None:
            raise TypeError(
                f"payload of type {type(value).__name__} cannot be segmented; "
                "use the binomial bcast instead"
            )
        for part in parts:
            req = yield from comm.isend(nxt, part, _TAG_PIPE, _collective=True)
            yield from comm.wait(req)
        return value

    parts = []
    for _ in range(k):
        rreq = yield from comm.irecv(prv, _TAG_PIPE, _collective=True)
        (part,) = yield from comm.wait(rreq)
        if rel != size - 1:
            sreq = yield from comm.isend(nxt, part, _TAG_PIPE, _collective=True)
            yield from comm.wait(sreq)
        parts.append(part)
    return join_payloads(parts)


def allreduce_rabenseifner(comm, value: np.ndarray,
                           op: Callable = np.add):
    """Reduce-scatter + allgather allreduce for NumPy array payloads.

    Requires a power-of-two communicator size; other sizes (and
    non-array payloads) fall back to the standard recursive-doubling
    implementation.  The result is identical up to floating-point
    association order.
    """
    size = comm.size
    if size == 1:
        return value
    if not _is_pow2(size) or not isinstance(value, np.ndarray):
        result = yield from allreduce(comm, value, op)
        return result

    flat = np.ascontiguousarray(value).reshape(-1)
    n = flat.shape[0]
    acc = flat.copy()

    # Recursive halving reduce-scatter: after round j, this rank holds the
    # reduced values for a 1/2^(j+1) slice of the vector.
    lo, hi = 0, n
    mask = size // 2
    while mask >= 1:
        partner = comm.rank ^ mask
        mid = lo + (hi - lo) // 2
        if comm.rank & mask:
            send_slice, keep = (lo, mid), (mid, hi)
        else:
            send_slice, keep = (mid, hi), (lo, mid)
        sreq = yield from comm.isend(partner, acc[send_slice[0]:send_slice[1]],
                                     _TAG_RSAG, _collective=True)
        rreq = yield from comm.irecv(partner, _TAG_RSAG, _collective=True)
        _, other = yield from comm.wait(sreq, rreq)
        lo, hi = keep
        acc[lo:hi] = op(acc[lo:hi], other) if comm.rank < partner \
            else op(other, acc[lo:hi])
        mask //= 2

    # Recursive doubling allgather of the owned slices.
    pieces = {(lo, hi): acc[lo:hi].copy()}
    mask = 1
    while mask < size:
        partner = comm.rank ^ mask
        sreq = yield from comm.isend(partner, pieces, _TAG_RSAG,
                                     _collective=True)
        rreq = yield from comm.irecv(partner, _TAG_RSAG, _collective=True)
        _, other = yield from comm.wait(sreq, rreq)
        pieces = {**pieces, **other}
        mask <<= 1

    out = np.empty_like(flat)
    for (a, b), chunk in pieces.items():
        out[a:b] = chunk
    return out.reshape(value.shape)

"""Exception types raised by the simulated-MPI runtime."""

from __future__ import annotations

__all__ = [
    "SimMPIError",
    "DeadlockError",
    "RankFailedError",
    "InvalidRankError",
    "InvalidTagError",
    "MaxOpsExceededError",
    "TransferTimeoutError",
    "RecoveredRankEvent",
]


class SimMPIError(Exception):
    """Base class for all simulated-MPI runtime errors."""


class DeadlockError(SimMPIError):
    """No rank can make progress but not all ranks have finished.

    Carries a human-readable dump of every blocked rank and the requests it
    is waiting on, so tests and users can diagnose mismatched send/recv
    patterns the same way one would read an MPI hang backtrace.
    """

    def __init__(self, message: str, blocked: dict[int, str]):
        super().__init__(message)
        #: Mapping of world rank -> description of what it is blocked on.
        self.blocked = blocked


class RankFailedError(SimMPIError):
    """A rank's program raised; wraps the original exception.

    The engine stops the whole simulation on the first failure (fail-fast),
    mirroring an MPI abort.
    """

    def __init__(self, rank: int, original: BaseException):
        super().__init__(f"rank {rank} raised {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original


class InvalidRankError(SimMPIError):
    """A peer rank was outside ``[0, size)`` for the communicator."""


class MaxOpsExceededError(SimMPIError):
    """The engine processed more operations than ``max_ops`` allows.

    Almost always a runaway program (an unbounded loop, or a collective
    posted with mismatched round counts), so the message names the rank
    that tripped the limit, the phase it was in, its own op count, and an
    op-kind histogram — enough to find the loop without re-running under a
    debugger.
    """

    def __init__(self, *, max_ops: int, rank: int, phase: str, rank_ops: int,
                 histogram: dict[str, int], top_ranks: str):
        hist = ", ".join(f"{k}={v}" for k, v in sorted(histogram.items()))
        super().__init__(
            f"engine exceeded max_ops={max_ops}: tripped by rank {rank} in "
            f"phase {phase!r} after {rank_ops} of its own ops; "
            f"op histogram: {hist or 'empty'}; busiest ranks: {top_ranks}"
        )
        self.max_ops = max_ops
        self.rank = rank
        self.phase = phase
        self.rank_ops = rank_ops
        self.histogram = dict(histogram)
        self.top_ranks = top_ranks


class TransferTimeoutError(SimMPIError):
    """A transfer exhausted its retransmit budget under fault injection.

    Raised by the engine when a :class:`~repro.simmpi.faults.FaultSchedule`
    drops one transfer more times than ``max_retries`` allows — the
    simulated analogue of a link declared down.
    """

    def __init__(self, src: int, dst: int, attempts: int):
        super().__init__(
            f"transfer {src} -> {dst} lost {attempts} consecutive attempts "
            f"(retry budget exhausted)"
        )
        self.src = src
        self.dst = dst
        self.attempts = attempts


class RecoveredRankEvent:
    """Record of one rank death absorbed by replication-aware recovery.

    Not an exception: the run *succeeded*.  Produced by the resilient
    interaction step so drivers and tests can report which rank died, when,
    who recomputed its work, and how many update steps were replayed.
    """

    __slots__ = ("rank", "death_time", "recovered_by", "replayed_updates")

    def __init__(self, rank: int, death_time: float, recovered_by: int,
                 replayed_updates: int = 0):
        self.rank = rank
        self.death_time = death_time
        self.recovered_by = recovered_by
        self.replayed_updates = replayed_updates

    def __repr__(self) -> str:
        return (
            f"RecoveredRankEvent(rank={self.rank}, "
            f"death_time={self.death_time!r}, "
            f"recovered_by={self.recovered_by}, "
            f"replayed_updates={self.replayed_updates})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, RecoveredRankEvent):
            return NotImplemented
        return (self.rank, self.death_time, self.recovered_by,
                self.replayed_updates) == (
            other.rank, other.death_time, other.recovered_by,
            other.replayed_updates)


class InvalidTagError(SimMPIError):
    """A user tag collided with the reserved collective tag space."""

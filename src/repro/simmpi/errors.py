"""Exception types raised by the simulated-MPI runtime."""

from __future__ import annotations

__all__ = [
    "SimMPIError",
    "DeadlockError",
    "RankFailedError",
    "InvalidRankError",
    "InvalidTagError",
]


class SimMPIError(Exception):
    """Base class for all simulated-MPI runtime errors."""


class DeadlockError(SimMPIError):
    """No rank can make progress but not all ranks have finished.

    Carries a human-readable dump of every blocked rank and the requests it
    is waiting on, so tests and users can diagnose mismatched send/recv
    patterns the same way one would read an MPI hang backtrace.
    """

    def __init__(self, message: str, blocked: dict[int, str]):
        super().__init__(message)
        #: Mapping of world rank -> description of what it is blocked on.
        self.blocked = blocked


class RankFailedError(SimMPIError):
    """A rank's program raised; wraps the original exception.

    The engine stops the whole simulation on the first failure (fail-fast),
    mirroring an MPI abort.
    """

    def __init__(self, rank: int, original: BaseException):
        super().__init__(f"rank {rank} raised {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original


class InvalidRankError(SimMPIError):
    """A peer rank was outside ``[0, size)`` for the communicator."""


class InvalidTagError(SimMPIError):
    """A user tag collided with the reserved collective tag space."""

"""The heuristic engine tier: batch phase-advance instead of event stepping.

The event engine (:mod:`repro.simmpi.engine`) steps every rendezvous of
every rank through a generator-coroutine scheduler — exact, fault-capable,
and O(total ops).  This module is the second tier: it never materializes
rank programs at all.  Each registered algorithm gets a *plan builder*
that replays the program's round structure analytically, advancing all
``p`` rank clocks per phase-round with vectorized numpy timestamp math
(per-round ``max`` over rank clocks plus a link-model cost array) and
accumulating per-rank, per-phase traffic in integer arrays.  The CA,
symmetric and systolic families share one builder core,
:func:`_replay_commsched`, which walks the identical
:class:`~repro.core.commsched.CommSchedule` IR the event-tier executor
runs — the schedule is defined once and both tiers consume it.

Contract with the event engine
------------------------------
* **Traffic is exact.**  Per-rank, per-phase sent/received message and
  byte counts reproduce the event engine bit for bit — the builders
  implement the same binomial broadcast/reduce/gather trees, recursive-
  doubling allgather, shift schedules and halo patterns the simulated
  MPI executes, against the same block decompositions.  The metrics gate
  locks both tiers against ``benchmarks/METRICS_LOCK.json``.
* **Makespan is approximate.**  Clocks advance in bulk-synchronous
  rounds (``max`` over the previous round, plus each rank's modeled
  cost), which ignores pipelining slack between rounds.  Virtual times
  agree with the event engine to within a small factor (band-checked by
  the tests), not bit for bit.
* **The op histogram is approximate** (send/recv/wait counts follow the
  round structure; collectives count one wait per request).
* **No functional output.**  The heuristic tier moves no particle data:
  the returned :class:`~repro.core.runner.Run` carries ``ids = forces =
  None``, like the modeled (virtual) algorithms.

Anything the analytic replay cannot honor — fault schedules, scheduler
perturbation, pair-coverage instrumentation, engine options — is refused
loudly up front (:func:`run_heuristic` raises ``ValueError`` naming the
offending field) rather than silently mispredicted.  Checkpointed
multi-step simulation (:func:`~repro.core.driver.run_simulation`) always
uses the event engine.  See ``docs/performance.md`` for the selection
matrix.

Selected via ``RunSpec(engine_tier="heuristic")``; the pipeline
dispatches here before any kernel or engine is built, so a p = 10^4
all-pairs step costs ~10^3 numpy array rounds instead of ~10^7 engine
events.
"""

from __future__ import annotations

import math
import time
from functools import lru_cache

import numpy as np

from repro.machines.base import PARTICLE_BYTES
from repro.simmpi.engine import RunResult
from repro.simmpi.tracing import PhaseTotals, RankTrace, TraceReport

__all__ = ["heuristic_algorithms", "run_heuristic"]

#: Bytes per force component on the wire (float64), matching the kernels.
_FORCE_BYTES = 8

#: Bytes charged per integer dict key in collective payload accounting.
_KEY_BYTES = 8


# ---------------------------------------------------------------------------
# Collective traffic patterns (exact twins of repro.simmpi.collectives)
# ---------------------------------------------------------------------------


def _pow2_at_least(size: int) -> int:
    m = 1
    while m < size:
        m <<= 1
    return m


@lru_cache(maxsize=None)
def _bcast_counts(size: int) -> tuple[tuple[int, int], ...]:
    """Per-relative-rank ``(sent, received)`` message counts of a binomial
    broadcast over ``size`` ranks (every message carries the full payload)."""
    if size <= 1:
        return ((0, 0),) * max(size, 1)
    top = _pow2_at_least(size)
    out = []
    for rel in range(size):
        recv_mask = (rel & -rel) if rel else top
        nsent = 0
        mask = recv_mask >> 1
        while mask:
            if rel + mask < size:
                nsent += 1
            mask >>= 1
        out.append((nsent, 1 if rel else 0))
    return tuple(out)


@lru_cache(maxsize=None)
def _reduce_counts(size: int) -> tuple[tuple[int, int], ...]:
    """Per-relative-rank ``(sent, received)`` message counts of a binomial
    reduction (every message carries the accumulated-value payload)."""
    if size <= 1:
        return ((0, 0),) * max(size, 1)
    top = _pow2_at_least(size)
    out = []
    for rel in range(size):
        lsb = (rel & -rel) if rel else top
        nrecv = 0
        mask = 1
        while mask < lsb:
            if (rel | mask) < size:
                nrecv += 1
            mask <<= 1
        out.append((1 if rel else 0, nrecv))
    return tuple(out)


def _gather_traffic(size: int, value_bytes: np.ndarray):
    """Per-rank (sent_msgs, sent_bytes, recv_msgs, recv_bytes) of a binomial
    gather to relative rank 0 with dict payloads ({rel: value})."""
    top = _pow2_at_least(size)
    lsb = np.array([(r & -r) if r else top for r in range(size)], np.int64)
    # Subtree dict bytes of rank r: entries rel r .. min(r+lsb, size)-1.
    entry = _KEY_BYTES + np.asarray(value_bytes, np.int64)
    cum = np.concatenate([[0], np.cumsum(entry)])
    hi = np.minimum(np.arange(size) + lsb, size)
    span_bytes = cum[hi] - cum[np.arange(size)]
    sm = np.zeros(size, np.int64)
    sb = np.zeros(size, np.int64)
    rm = np.zeros(size, np.int64)
    rb = np.zeros(size, np.int64)
    for rel in range(size):
        if rel:
            sm[rel] = 1
            sb[rel] = span_bytes[rel]
        mask = 1
        while mask < lsb[rel]:
            q = rel | mask
            if q < size:
                rm[rel] += 1
                rb[rel] += span_bytes[q]
            mask <<= 1
    return sm, sb, rm, rb


# ---------------------------------------------------------------------------
# Vectorized link-model costs
# ---------------------------------------------------------------------------


def _p2p_cost(machine, src, dst, nbytes) -> np.ndarray:
    """``machine.p2p_time`` over parallel src/dst/nbytes arrays."""
    src = np.asarray(src, np.int64)
    dst = np.asarray(dst, np.int64)
    b = np.asarray(nbytes, np.float64)
    local = machine.alpha_local + b * machine.beta_local
    cores = getattr(machine, "cores_per_node", None)
    if cores is None:
        return np.where(src == dst, local, machine.alpha + b * machine.beta)
    node_a = src // cores
    node_b = dst // cores
    dims = np.asarray(machine.torus.dims, np.int64)
    ca = np.stack(np.unravel_index(node_a, dims))
    cb = np.stack(np.unravel_index(node_b, dims))
    delta = np.abs(ca - cb)
    hops = np.minimum(delta, dims[:, None] - delta).sum(axis=0)
    share = cores * np.maximum(1.0, hops * machine.route_congestion)
    internode = machine.alpha + hops * machine.alpha_hop + b * machine.beta * share
    intranode = machine.alpha_node + b * machine.beta_node
    out = np.where(node_a == node_b, intranode, internode)
    return np.where(src == dst, local, out)


def _coll_rounds(size: int) -> int:
    """Modeled round count of a log-tree collective over ``size`` ranks."""
    return max(0, math.ceil(math.log2(size))) if size > 1 else 0


# ---------------------------------------------------------------------------
# The phase-advance accumulator
# ---------------------------------------------------------------------------


class _Sim:
    """Vectorized clocks + exact per-rank, per-phase traffic accumulator."""

    def __init__(self, machine):
        self.machine = machine
        self.p = machine.nranks
        self.clocks = np.zeros(self.p)
        # label -> {"secs"/"sm"/"sb"/"rm"/"rb": (p,) arrays}; insertion
        # order is the program's phase order (drives phase_labels()).
        self.phases: dict[str, dict[str, np.ndarray]] = {}
        self.ops: dict[str, int] = {}
        self.npairs = 0

    def _entry(self, label: str) -> dict[str, np.ndarray]:
        e = self.phases.get(label)
        if e is None:
            e = self.phases[label] = {
                "secs": np.zeros(self.p),
                "sm": np.zeros(self.p, np.int64),
                "sb": np.zeros(self.p, np.int64),
                "rm": np.zeros(self.p, np.int64),
                "rb": np.zeros(self.p, np.int64),
            }
        return e

    def op(self, kind: str, count) -> None:
        count = int(count)
        if count:
            self.ops[kind] = self.ops.get(kind, 0) + count

    def traffic(self, label, sent_msgs, sent_bytes, recv_msgs, recv_bytes):
        """Add one round's exact traffic ((p,) arrays or scalars)."""
        e = self._entry(label)
        e["sm"] += np.asarray(sent_msgs, np.int64)
        e["sb"] += np.asarray(sent_bytes, np.int64)
        e["rm"] += np.asarray(recv_msgs, np.int64)
        e["rb"] += np.asarray(recv_bytes, np.int64)
        self.op("isend", np.sum(sent_msgs))
        self.op("irecv", np.sum(recv_msgs))

    def advance(self, label: str, cost, active=None) -> None:
        """One bulk-synchronous round: sync to the slowest rank, then each
        rank pays its own ``cost`` (scalar or (p,)), charged to ``label``.

        ``active`` (boolean (p,) mask) limits which ranks the seconds are
        charged to: the event programs skip a phase block entirely on
        ranks with nothing to do there, so those ranks must not grow a
        phase row out of bare synchronization wait.  Their clocks still
        move to the barrier either way.
        """
        old = self.clocks
        new = (old.max() if self.p else 0.0) + np.asarray(cost, np.float64)
        new = np.broadcast_to(new, (self.p,)).astype(np.float64, copy=True)
        delta = new - old
        if active is not None:
            delta = np.where(active, delta, 0.0)
        self._entry(label)["secs"] += delta
        self.clocks = new

    def finish(self) -> RunResult:
        traces = []
        order = list(self.phases.items())
        for r in range(self.p):
            phases = {}
            for label, e in order:
                if e["secs"][r] or e["sm"][r] or e["rm"][r]:
                    phases[label] = PhaseTotals(
                        seconds=float(e["secs"][r]),
                        messages_sent=int(e["sm"][r]),
                        messages_received=int(e["rm"][r]),
                        bytes_sent=int(e["sb"][r]),
                        bytes_received=int(e["rb"][r]),
                    )
            traces.append(RankTrace(rank=r, phases=phases))
        return RunResult(
            results=[None] * self.p,
            report=TraceReport(traces),
            elapsed=float(self.clocks.max()) if self.p else 0.0,
            nops=int(sum(self.ops.values())),
            clocks=[float(x) for x in self.clocks],
        )


# ---------------------------------------------------------------------------
# Shared helpers for the plan builders
# ---------------------------------------------------------------------------


def _even_counts(n: int, k: int) -> np.ndarray:
    """Block sizes of the even contiguous split (team_blocks_even twin)."""
    q, r = divmod(n, k)
    sizes = np.full(k, q, dtype=np.int64)
    sizes[:r] += 1
    return sizes


def _workload_info(spec) -> tuple[int, int]:
    """(particle count, particle dimension) of the functional workload
    without synthesizing it when only sizes are needed."""
    if spec.particles is not None:
        return len(spec.particles), spec.particles.dim
    return spec.count(), 2 if spec.dim is None else spec.dim


def _collective(sim, label, rel, counts_table, payload_bytes, partner):
    """One tree collective: exact per-rank traffic, log-round cost model.

    ``rel`` is each rank's relative position in its group, ``counts_table``
    a ``_bcast_counts``/``_reduce_counts`` table for the group size,
    ``payload_bytes`` the per-rank message size and ``partner`` a
    representative peer rank for the link-cost estimate.
    """
    table = np.asarray(counts_table, np.int64)
    nsent = table[rel, 0]
    nrecv = table[rel, 1]
    payload_bytes = np.broadcast_to(
        np.asarray(payload_bytes, np.int64), nsent.shape)
    sim.traffic(label, nsent, nsent * payload_bytes,
                nrecv, nrecv * payload_bytes)
    sim.op("wait", np.sum(nsent + nrecv))
    size = len(table)
    if size > 1:
        ranks = np.arange(sim.p)
        cost = _coll_rounds(size) * _p2p_cost(
            sim.machine, partner, ranks, payload_bytes)
        sim.advance(label, cost)


# ---------------------------------------------------------------------------
# The generic CommSchedule replayer (CA family + systolic family)
# ---------------------------------------------------------------------------


class _Geometry:
    """Vectorized rank/team arithmetic for one replicated grid."""

    def __init__(self, grid, team_dims, p: int):
        self.grid = grid
        self.T = grid.nteams
        self.c = grid.c
        ranks = np.arange(p)
        if grid.layout == "rows":
            self.row = ranks // self.T
            self.col = ranks % self.T
        else:
            self.row = ranks % self.c
            self.col = ranks // self.c
        self.dims = np.asarray(team_dims, np.int64)
        self.col_mi = np.stack(
            np.unravel_index(self.col, self.dims))  # (ndim, p)

    def rank_of(self, row, col):
        if self.grid.layout == "rows":
            return row * self.T + col
        return col * self.c + row

    def displaced(self, moves_by_row) -> np.ndarray:
        """Team each rank's column maps to under its row's move vector."""
        mv = np.asarray(moves_by_row, np.int64)[self.row].T  # (ndim, p)
        return np.ravel_multi_index((self.col_mi + mv) % self.dims[:, None],
                                    tuple(self.dims))


def _reachable(cfg, geo, vis, cache) -> np.ndarray:
    """Which ranks' (home team, visitor team) pairs pass the cutoff test."""
    if cfg.rcut is None:
        return np.ones(len(vis), bool)
    key = geo.col * geo.T + vis
    uniq = np.unique(key)
    for q in uniq:
        q = int(q)
        if q not in cache:
            cache[q] = cfg.reachable(q // geo.T, q % geo.T)
    return np.array([cache[int(q)] for q in key])


def _replay_commsched(sim, cs, grid, counts, *, fdim, cfg=None):
    """Replay one :class:`~repro.core.commsched.CommSchedule` analytically.

    The heuristic-tier twin of :func:`repro.core.commsched.scheduled_step`:
    the identical IR the event engine executes is walked round by round,
    charging exact per-rank traffic (same sendrecv skip conditions, same
    buffer-content bookkeeping, same payload wire sizes) and one
    bulk-synchronous clock advance per round.  ``cfg`` supplies the
    cutoff reachability predicate for ``gated`` updates (CA family only).
    """
    from repro.core.commsched import HOME, Shift

    machine = sim.machine
    p = sim.p
    geo = _Geometry(grid, cs.team_dims, p)
    ranks = np.arange(p)

    block_wire = PARTICLE_BYTES * counts
    force_wire = _FORCE_BYTES * fdim * counts
    # Wire bytes of each buffer sent as a travel payload: block_sym also
    # carries the reaction accumulator; registers travel without forces.
    buf_wire = [block_wire + force_wire if kind == "block_sym"
                else block_wire for kind in cs.buffers]
    # vis[b][rank] = team whose block buffer b holds (registers start empty).
    vis = [geo.col.copy() if kind != "register" else None
           for kind in cs.buffers]

    def content_of(idx):
        return geo.col if idx == HOME else vis[idx]

    def wire_of(idx):
        return block_wire if idx == HOME else buf_wire[idx]

    if cs.team_bcast or cs.team_reduce:
        leader = geo.rank_of(np.zeros(p, np.int64), geo.col)
        second = geo.rank_of(
            np.full(p, 1 if geo.c > 1 else 0, np.int64), geo.col)
        partner = np.where(geo.row == 0, second, leader)
    if cs.team_bcast:
        _collective(sim, "bcast", geo.row, _bcast_counts(geo.c),
                    block_wire[geo.col], partner)

    reach_cache: dict[int, bool] = {}
    for rnd in cs.rounds:
        if isinstance(rnd, Shift):
            moves = np.asarray(rnd.moves, np.int64)
            if rnd.wrap_skip:
                active = geo.displaced(moves) != geo.col
            else:
                active = np.any(moves != 0, axis=1)[geo.row]
            nact = active.astype(np.int64)
            if rnd.payload == "forces":
                sent_b = np.where(active, force_wire[content_of(rnd.src)], 0)
                recv_b = np.where(active, force_wire[content_of(rnd.dst)], 0)
            else:
                src_wire = wire_of(rnd.src)
                sent_b = np.where(active, src_wire[content_of(rnd.src)], 0)
                vis_new = geo.displaced(np.asarray(rnd.content, np.int64))
                recv_b = np.where(active, src_wire[vis_new], 0)
                if rnd.dst != HOME:
                    vis[rnd.dst] = vis_new
            sim.traffic(rnd.phase, nact, sent_b, nact, recv_b)
            sim.op("wait", nact.sum())
            src = geo.rank_of(geo.row, geo.displaced(-moves))
            cost = np.where(active,
                            _p2p_cost(machine, src, ranks, recv_b), 0.0)
            sim.advance(rnd.phase, cost, active=active)
        else:  # Interact
            npairs = np.zeros(p, np.int64)
            computing = np.zeros(p, bool)
            for k, up in enumerate(rnd.updates):
                if up is None:
                    continue
                mask = geo.row == k
                src_team = content_of(up.source)
                if up.gated:
                    mask = mask & _reachable(cfg, geo, src_team, reach_cache)
                if up.half_pair:
                    mask = mask & (geo.col < src_team)
                tgt_team = content_of(up.target)
                if up.mode == "self_half":
                    nk = counts[tgt_team] * (counts[tgt_team] - 1) // 2
                else:
                    nk = counts[tgt_team] * counts[src_team]
                npairs = np.where(mask, nk, npairs)
                computing |= mask
            sim.npairs += int(npairs.sum())
            sim.op("compute", computing.sum())
            sim.advance(rnd.phase, machine.interactions_time(npairs),
                        active=computing)

    if cs.team_reduce:
        _collective(sim, "reduce", geo.row, _reduce_counts(geo.c),
                    force_wire[geo.col], partner)


def _build_ca(sim, spec, *, functional: bool, cutoff: bool) -> None:
    """Plan for allpairs / cutoff (functional or virtual): replay the
    same lowered IR :func:`~repro.core.ca_step.ca_interaction_step`
    executes on the event engine."""
    from repro.core.allpairs import allpairs_config
    from repro.core.commsched import rounds_for_schedule
    from repro.core.cutoff import cutoff_config
    from repro.physics.domain import team_of_positions
    from repro.util import require

    machine = spec.machine
    p = machine.nranks
    if cutoff:
        if functional:
            particles = spec.workload()
            dim = particles.dim if spec.dim is None else spec.dim
            require(dim <= particles.dim,
                    f"team-grid dim={dim} exceeds particle dimension "
                    f"{particles.dim} (slab/pencil decompositions use "
                    "dim < particle dimension)")
            cfg = cutoff_config(
                p, spec.c, rcut=spec.rcut, box_length=spec.box_length,
                dim=dim, team_dims=spec.team_dims, periodic=spec.periodic,
                geometry=spec.geometry,
            )
            counts = np.bincount(
                team_of_positions(particles.pos, cfg.geometry),
                minlength=cfg.grid.nteams,
            ).astype(np.int64)
            fdim = particles.dim
        else:
            fdim = 1 if spec.dim is None else spec.dim
            cfg = cutoff_config(
                p, spec.c, rcut=spec.rcut, box_length=spec.box_length,
                dim=fdim, team_dims=spec.team_dims, periodic=spec.periodic,
            )
            counts = _even_counts(spec.count(), cfg.grid.nteams)
    else:
        cfg = allpairs_config(p, spec.c, layout=spec.layout)
        if functional:
            n_total, fdim = _workload_info(spec)
        else:
            n_total, fdim = spec.count(), (2 if spec.dim is None else spec.dim)
        counts = _even_counts(n_total, cfg.grid.nteams)

    _replay_commsched(sim, rounds_for_schedule(cfg.schedule), cfg.grid,
                      counts, fdim=fdim, cfg=cfg)


def _build_symmetric(sim, spec, *, functional: bool) -> None:
    """Plan for the symmetric variant: replay the half-ring IR (self-half
    / antipodal-dedup / reaction updates plus the return round) lowered
    once by :func:`~repro.core.commsched.rounds_for_schedule`."""
    from repro.core.commsched import rounds_for_schedule
    from repro.core.symmetric import symmetric_config

    p = spec.machine.nranks
    cfg = symmetric_config(p, spec.c)
    if functional:
        n_total, fdim = _workload_info(spec)
    else:
        n_total, fdim = spec.count(), (2 if spec.dim is None else spec.dim)
    counts = _even_counts(n_total, cfg.grid.nteams)
    _replay_commsched(sim, rounds_for_schedule(cfg.schedule, symmetric=True),
                      cfg.grid, counts, fdim=fdim)


def _build_systolic(sim, spec, *, variant: str) -> None:
    """Plan for the systolic family: replay the same IR the event tier
    executes (full ring / half ring / hyper-systolic register cascades)."""
    from repro.core.commsched import (
        half_systolic_rounds,
        hyper_systolic_rounds,
        systolic_ring_rounds,
    )
    from repro.simmpi.topology import ReplicatedGrid

    p = spec.machine.nranks
    n_total, fdim = _workload_info(spec)
    counts = _even_counts(n_total, p)
    if variant == "ring":
        cs = systolic_ring_rounds(p)
    elif variant == "half":
        cs = half_systolic_rounds(p)
    else:
        cs = hyper_systolic_rounds(p, spec.hyper_k)
    _replay_commsched(sim, cs, ReplicatedGrid(p=p, c=1), counts, fdim=fdim)


# ---------------------------------------------------------------------------
# Baseline decompositions
# ---------------------------------------------------------------------------


def _build_particle_allgather(sim, spec) -> None:
    """Plan for the naive particle decomposition (allgather baseline)."""
    machine = spec.machine
    p = machine.nranks
    n_total, _ = _workload_info(spec)
    counts = _even_counts(n_total, p)
    wire = PARTICLE_BYTES * counts
    ranks = np.arange(p)

    if spec.use_tree:
        if not machine.has_hw_collectives:
            raise ValueError(
                f"use_tree=True needs a machine with hardware collectives; "
                f"{machine.name!r} has none (run without use_tree, or on "
                "e.g. machines.Intrepid)")
        sim._entry("allgather")
        sim.op("hwcoll", p)
        sim.advance("allgather", machine.hw_collective_time(
            "allgather", int(wire.max()), p))
    elif p & (p - 1) == 0 and p > 1:
        # Recursive doubling: log2(p) sendrecv rounds of doubling subcubes.
        entry = _KEY_BYTES + wire
        cum = np.concatenate([[0], np.cumsum(entry)])
        mask = 1
        while mask < p:
            base = ranks & ~(mask - 1)
            partner_base = base ^ mask
            sent_b = cum[base + mask] - cum[base]
            recv_b = cum[partner_base + mask] - cum[partner_base]
            ones = np.ones(p, np.int64)
            sim.traffic("allgather", ones, sent_b, ones, recv_b)
            sim.op("wait", p)
            sim.advance("allgather",
                        _p2p_cost(machine, ranks ^ mask, ranks, recv_b))
            mask <<= 1
    elif p > 1:
        # Non-power-of-two: binomial gather to rank 0, then broadcast the
        # full rank-ordered block list (list payload: no dict keys).
        sm, sb, rm, rb = _gather_traffic(p, wire)
        sim.traffic("allgather", sm, sb, rm, rb)
        sim.op("wait", int(sm.sum() + rm.sum()))
        sim.advance("allgather", _coll_rounds(p) * _p2p_cost(
            machine, (ranks + 1) % p, ranks, np.maximum(sb, rb)))
        full = int(wire.sum())
        _collective(sim, "allgather", ranks, _bcast_counts(p), full,
                    (ranks + 1) % p)
    else:
        sim._entry("allgather")

    npairs = counts * int(counts.sum())
    sim.npairs += int(npairs.sum())
    sim.op("compute", p)
    sim.advance("compute", machine.interactions_time(npairs))


def _build_particle_ring(sim, spec) -> None:
    """Plan for the systolic-ring particle decomposition (CA at c=1)."""
    machine = spec.machine
    p = machine.nranks
    n_total, _ = _workload_info(spec)
    counts = _even_counts(n_total, p)
    wire = PARTICLE_BYTES * counts
    ranks = np.arange(p)
    left = (ranks - 1) % p
    ones = np.ones(p, np.int64)
    for k in range(p):
        sent_b = wire[(ranks - k) % p]
        recv_team = (ranks - k - 1) % p
        recv_b = wire[recv_team]
        sim.traffic("shift", ones, sent_b, ones, recv_b)
        sim.op("wait", p)
        sim.advance("shift", _p2p_cost(machine, left, ranks, recv_b))
        npairs = counts * counts[recv_team]
        sim.npairs += int(npairs.sum())
        sim.op("compute", p)
        sim.advance("compute", machine.interactions_time(npairs))


def _build_force_decomposition(sim, spec) -> None:
    """Plan for Plimpton's force decomposition on a sqrt(p) grid."""
    machine = spec.machine
    p = machine.nranks
    q = int(round(p ** 0.5))
    n_total, fdim = _workload_info(spec)
    counts = _even_counts(n_total, q)
    wire = PARTICLE_BYTES * counts
    ranks = np.arange(p)
    i, j = ranks // q, ranks % q

    # Block i along grid row i (root = diagonal position), then block j
    # along grid column j.
    row_next = i * q + (j + 1) % q
    col_next = ((i + 1) % q) * q + j
    _collective(sim, "bcast", (j - i) % q, _bcast_counts(q), wire[i], row_next)
    _collective(sim, "bcast", (i - j) % q, _bcast_counts(q), wire[j], col_next)

    npairs = counts[i] * counts[j]
    sim.npairs += int(npairs.sum())
    sim.op("compute", p)
    sim.advance("compute", machine.interactions_time(npairs))

    _collective(sim, "reduce", (j - i) % q, _reduce_counts(q),
                _FORCE_BYTES * fdim * counts[i], row_next)


def _spatial_setup(spec, reach_scale: float):
    """Region counts + neighbor lists shared by spatial and midpoint."""
    from repro.machines.torus import balanced_dims
    from repro.physics.domain import TeamGeometry, team_of_positions

    p = spec.machine.nranks
    particles = spec.workload()
    dim = particles.dim if spec.dim is None else spec.dim
    geometry = TeamGeometry(box_length=spec.box_length,
                            team_dims=balanced_dims(p, dim))
    counts = np.bincount(team_of_positions(particles.pos, geometry),
                         minlength=p).astype(np.int64)
    reach = spec.rcut * reach_scale
    neighbors = [
        [b for b in range(p)
         if b != a and geometry.team_distance_ok(a, b, reach)]
        for a in range(p)
    ]
    return counts, neighbors, particles.dim


def _halo_exchange(sim, label, counts, neighbors, send_bytes, recv_bytes):
    """Pairwise isend/irecv exchange with every neighbor, one wait."""
    machine = sim.machine
    p = sim.p
    sm = np.array([len(nb) for nb in neighbors], np.int64)
    sb = np.array([len(nb) * send_bytes[a] for a, nb in enumerate(neighbors)],
                  np.int64)
    rb = np.array([sum(int(recv_bytes[b]) for b in nb)
                   for nb in neighbors], np.int64)
    sim.traffic(label, sm, sb, sm, rb)
    sim.op("wait", p)
    cost = np.array([
        max((machine.p2p_time(b, a, int(recv_bytes[b])) for b in nb),
            default=0.0)
        for a, nb in enumerate(neighbors)
    ])
    sim.advance(label, cost)


def _build_spatial(sim, spec) -> None:
    """Plan for the spatial decomposition: cutoff halo + local compute."""
    counts, neighbors, _ = _spatial_setup(spec, 1.0)
    wire = PARTICLE_BYTES * counts
    _halo_exchange(sim, "halo", counts, neighbors, wire, wire)
    npairs = np.array([
        int(counts[a]) ** 2
        + int(counts[a]) * sum(int(counts[b]) for b in nb)
        for a, nb in enumerate(neighbors)
    ], np.int64)
    sim.npairs += int(npairs.sum())
    sim.op("compute", sim.p)
    sim.advance("compute", spec.machine.interactions_time(npairs))


def _build_midpoint(sim, spec) -> None:
    """Plan for the midpoint method: rcut/2 halo, owned-pair triangle,
    force-return exchange."""
    counts, neighbors, d = _spatial_setup(spec, 0.5)
    wire = PARTICLE_BYTES * counts
    _halo_exchange(sim, "halo", counts, neighbors, wire, wire)
    imported = np.array([
        int(counts[a]) + sum(int(counts[b]) for b in nb)
        for a, nb in enumerate(neighbors)
    ], np.int64)
    npairs = imported * (imported - 1) // 2
    sim.npairs += int(npairs.sum())
    sim.op("compute", sim.p)
    sim.advance("compute", spec.machine.interactions_time(npairs))
    # Return (ids, forces) contributions: each rank sends every imported
    # neighbor block's accumulation back and receives its own block's
    # contributions from each neighbor.
    ret = _FORCE_BYTES * (1 + d) * counts
    sm = np.array([len(nb) for nb in neighbors], np.int64)
    sb = np.array([sum(int(ret[b]) for b in nb) for nb in neighbors],
                  np.int64)
    sim.traffic("return", sm, sb, sm, sm * ret)
    sim.op("wait", sim.p)
    machine = spec.machine
    cost = np.array([
        max((machine.p2p_time(b, a, int(ret[a])) for b in nb), default=0.0)
        for a, nb in enumerate(neighbors)
    ])
    sim.advance("return", cost)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


_BUILDERS = {
    "allpairs": lambda sim, spec: _build_ca(
        sim, spec, functional=True, cutoff=False),
    "allpairs_virtual": lambda sim, spec: _build_ca(
        sim, spec, functional=False, cutoff=False),
    "cutoff": lambda sim, spec: _build_ca(
        sim, spec, functional=True, cutoff=True),
    "cutoff_virtual": lambda sim, spec: _build_ca(
        sim, spec, functional=False, cutoff=True),
    "symmetric": lambda sim, spec: _build_symmetric(
        sim, spec, functional=True),
    "symmetric_virtual": lambda sim, spec: _build_symmetric(
        sim, spec, functional=False),
    "systolic_ring": lambda sim, spec: _build_systolic(
        sim, spec, variant="ring"),
    "half_systolic": lambda sim, spec: _build_systolic(
        sim, spec, variant="half"),
    "hyper_systolic": lambda sim, spec: _build_systolic(
        sim, spec, variant="hyper"),
    "particle_allgather": _build_particle_allgather,
    "particle_ring": _build_particle_ring,
    "force_decomposition": _build_force_decomposition,
    "spatial": _build_spatial,
    "midpoint": _build_midpoint,
}


def heuristic_algorithms() -> list[str]:
    """Registry names the heuristic tier has a plan builder for."""
    return sorted(_BUILDERS)


def _check_spec(spec, alg) -> None:
    """Refuse spec features the analytic replay cannot honor — loudly."""
    problems = []
    if spec.faults is not None:
        problems.append(
            "faults= (fault injection needs the event engine's "
            "retry/recovery protocol)")
    if spec.schedule is not None:
        problems.append(
            "schedule= (scheduler perturbation only exists in the event "
            "engine; the heuristic tier has no interleaving freedom)")
    if spec.pair_counter is not None:
        problems.append(
            "pair_counter= (pair coverage needs the real force kernel)")
    if spec.engine_opts:
        problems.append(
            "engine_opts= (event-engine construction knobs, e.g. "
            "record_events/fast_path, do not apply)")
    if spec.eager_threshold:
        problems.append(
            "eager_threshold= (the eager/rendezvous protocol switch is an "
            "event-engine timing knob)")
    if problems:
        raise ValueError(
            f"engine_tier='heuristic' cannot honor: {'; '.join(problems)}. "
            "Rerun with engine_tier='event' (the default) for these "
            "features — see docs/performance.md (engine-tier selection "
            "matrix).")
    if alg.name not in _BUILDERS:
        known = ", ".join(heuristic_algorithms())
        raise ValueError(
            f"algorithm {alg.name!r} has no heuristic-tier plan builder "
            f"(available: {known}); rerun with engine_tier='event'.")


def run_heuristic(spec, alg=None):
    """Run one :class:`~repro.core.runner.RunSpec` on the heuristic tier.

    Called by the run pipeline when ``spec.engine_tier == "heuristic"``;
    returns a :class:`~repro.core.runner.Run` whose ``run`` carries the
    usual :class:`~repro.simmpi.engine.RunResult` schema (exact per-rank,
    per-phase traffic; approximate clocks/makespan; ``ids = forces =
    None``).  Metrics, when a registry is attached to the spec, are
    recorded through the same :func:`~repro.metrics.collect.
    record_engine_run` projection as the event engine, including the
    ``kernel.pairs`` flop proxy for functional algorithms.
    """
    from repro.core.runner import Run, get_algorithm
    from repro.metrics.collect import record_engine_run

    t0 = time.perf_counter()
    if alg is None:
        alg = get_algorithm(spec.algorithm)
    _check_spec(spec, alg)
    sim = _Sim(spec.machine)
    _BUILDERS[alg.name](sim, spec)
    result = sim.finish()
    if spec.metrics is not None:
        record_engine_run(spec.metrics, result, op_histogram=sim.ops,
                          wall_s=time.perf_counter() - t0)
        if alg.functional and sim.npairs:
            spec.metrics.counter("kernel.pairs").inc(int(sim.npairs))
    return Run(algorithm=alg.name, ids=None, forces=None, run=result,
               spec=spec)

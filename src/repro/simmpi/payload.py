"""Message payload size accounting.

The engine charges wire time per message as ``alpha + nbytes * beta``; this
module defines how many bytes a Python payload occupies on the (virtual)
wire.  NumPy arrays use their true buffer size; the particle containers in
:mod:`repro.physics` expose an ``wire_nbytes`` attribute (52 bytes per
particle, matching the paper's measurement); everything else falls back to a
conservative small-object estimate.  A message can always override the
estimate with an explicit ``nbytes=``.
"""

from __future__ import annotations

import numbers
import zlib
from typing import Any

import numpy as np

__all__ = ["join_payloads", "payload_crc32", "payload_nbytes", "split_payload"]

_SMALL_OBJECT_BYTES = 8


def split_payload(payload: Any, k: int) -> list[Any] | None:
    """Split ``payload`` into ``k`` recombinable segments, or ``None``.

    Supports NumPy arrays (row split), :class:`ParticleSet`,
    :class:`TravelBlock` and :class:`VirtualBlock` (particle-count split).
    Segmented collectives use this to pipeline large payloads; a ``None``
    return means the payload cannot be segmented and the caller must fall
    back to an unsegmented algorithm.
    """
    if k <= 1:
        return [payload]
    if isinstance(payload, np.ndarray) and payload.ndim >= 1:
        return list(np.array_split(payload, k))
    # Deferred imports: physics depends on this module's payload_nbytes.
    from repro.physics.particles import ParticleSet, TravelBlock, VirtualBlock
    from repro.util import even_blocks

    if isinstance(payload, ParticleSet):
        return [payload.subset(slice(lo, hi))
                for lo, hi in even_blocks(len(payload), k)]
    if isinstance(payload, TravelBlock):
        out = []
        for lo, hi in even_blocks(len(payload), k):
            out.append(TravelBlock(
                pos=payload.pos[lo:hi],
                ids=payload.ids[lo:hi],
                team=payload.team,
                forces=None if payload.forces is None
                else payload.forces[lo:hi],
            ))
        return out
    if isinstance(payload, VirtualBlock):
        from repro.util import block_size

        return [VirtualBlock(count=block_size(payload.count, k, i),
                             team=payload.team,
                             extra_bytes=payload.extra_bytes)
                for i in range(k)]
    return None


def join_payloads(parts: list[Any]) -> Any:
    """Reassemble segments produced by :func:`split_payload`."""
    if len(parts) == 1:
        return parts[0]
    first = parts[0]
    if isinstance(first, np.ndarray):
        return np.concatenate(parts)
    from repro.physics.particles import ParticleSet, TravelBlock, VirtualBlock

    if isinstance(first, ParticleSet):
        from repro.physics.particles import concat_sets

        return concat_sets(list(parts))
    if isinstance(first, TravelBlock):
        has_forces = first.forces is not None
        return TravelBlock(
            pos=np.concatenate([t.pos for t in parts]),
            ids=np.concatenate([t.ids for t in parts]),
            team=first.team,
            forces=np.concatenate([t.forces for t in parts])
            if has_forces else None,
        )
    if isinstance(first, VirtualBlock):
        return VirtualBlock(count=sum(v.count for v in parts),
                            team=first.team, extra_bytes=first.extra_bytes)
    raise TypeError(f"cannot join payloads of type {type(first).__name__}")


def payload_crc32(payload: Any) -> int:
    """CRC-32 of a payload's wire content (for corruption detection).

    Covers the byte content of NumPy arrays (plus dtype/shape headers) and
    recursively the array fields of the particle containers, tuples, lists
    and dicts.  Scalars and strings hash their text form.  Opaque objects
    contribute only their type name — corruption inside them is undetectable
    by design; the fault injector only corrupts the supported containers.
    """
    return _crc(payload, 0)


def _crc_array(arr: np.ndarray, crc: int) -> int:
    crc = zlib.crc32(f"{arr.dtype.str}{arr.shape}".encode(), crc)
    return zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)


def _crc(payload: Any, crc: int) -> int:
    if payload is None:
        return zlib.crc32(b"\x00none", crc)
    if isinstance(payload, np.ndarray):
        return _crc_array(payload, crc)
    from repro.physics.particles import (
        HomeBlock, ParticleSet, TravelBlock, VirtualBlock,
    )

    if isinstance(payload, ParticleSet):
        for arr in (payload.pos, payload.vel, payload.ids):
            crc = _crc_array(arr, crc)
        return crc
    if isinstance(payload, TravelBlock):
        crc = zlib.crc32(f"travel:{payload.team}".encode(), crc)
        crc = _crc_array(payload.pos, crc)
        crc = _crc_array(payload.ids, crc)
        if payload.forces is not None:
            crc = _crc_array(payload.forces, crc)
        return crc
    if isinstance(payload, HomeBlock):
        crc = _crc(payload.particles, crc)
        if payload.forces is not None:
            crc = _crc_array(payload.forces, crc)
        return crc
    if isinstance(payload, VirtualBlock):
        text = f"virtual:{payload.count}:{payload.team}:{payload.extra_bytes}"
        return zlib.crc32(text.encode(), crc)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return zlib.crc32(bytes(payload), crc)
    if isinstance(payload, (bool, numbers.Number, np.generic, str)):
        return zlib.crc32(repr(payload).encode(), crc)
    if isinstance(payload, (tuple, list)):
        crc = zlib.crc32(f"seq:{len(payload)}".encode(), crc)
        for item in payload:
            crc = _crc(item, crc)
        return crc
    if isinstance(payload, dict):
        crc = zlib.crc32(f"map:{len(payload)}".encode(), crc)
        for k, v in payload.items():
            crc = _crc(k, crc)
            crc = _crc(v, crc)
        return crc
    return zlib.crc32(type(payload).__name__.encode(), crc)


def payload_nbytes(payload: Any) -> int:
    """Bytes that ``payload`` occupies on the simulated wire."""
    if payload is None:
        return 0
    # Exact-type fast path for the scalar payloads that dominate control
    # traffic (bool is excluded by the exact-type check and keeps its own
    # 1-byte rule below).
    t = type(payload)
    if t is int or t is float:
        return _SMALL_OBJECT_BYTES
    wire = getattr(payload, "wire_nbytes", None)
    if wire is not None:
        return int(wire)
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, np.generic):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, numbers.Number):
        return _SMALL_OBJECT_BYTES
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(x) for x in payload)
    if isinstance(payload, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        )
    return _SMALL_OBJECT_BYTES

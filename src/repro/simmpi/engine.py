"""Discrete-event execution engine for simulated MPI programs.

Each *rank* is a Python generator ("coroutine") produced by calling the user
program with a :class:`~repro.simmpi.comm.Comm` handle.  Rank programs yield
low-level operation records (compute, isend, irecv, wait, hardware
collective); the engine interprets them, advances per-rank **virtual clocks**
according to a :class:`~repro.machines.base.MachineModel`, moves payloads
between ranks, and attributes elapsed virtual time plus message/byte counts
to the phase label active when each operation was issued.

Scheduling model
----------------
The engine is a cooperative scheduler, not a time-ordered event heap: a rank
runs until it blocks on an unmatched request, and is re-queued when a peer's
posting completes the match.  This is sound because all *times* are computed
from posting timestamps, never from scheduling order:

* a rendezvous transfer starts at ``max(send_post, recv_post)`` and ends
  after ``p2p_time(src, dst, nbytes)``;
* an eager transfer (``nbytes <= eager_threshold``) completes the send at its
  posting time and the receive at ``max(send_post + p2p_time, recv_post)``;
* a wait resumes at ``max(issue_time, completion times of its requests)``.

Matching is FIFO per ``(src, dst, tag)`` channel, so runs are fully
deterministic.  ``MPI_ANY_SOURCE``/``ANY_TAG`` are deliberately unsupported;
the N-body algorithms never need them and their absence keeps matching
deterministic.

Because times never depend on scheduling order, the scheduler's remaining
free choices — which runnable rank to pop next, which peer of a matched
transfer to notify first, the re-queue order of a completed collective —
must be unobservable.  A :class:`~repro.simmpi.schedule.SchedulePolicy`
(``schedule=``) perturbs exactly those choices (seeded-random or
adversarial) while preserving per-channel FIFO matching; any bitwise
divergence under a perturbed schedule is a real reordering bug.  The
``repro schedfuzz`` harness explores this space systematically — see
``docs/schedule-fuzzing.md``.

Deadlock is detected exactly: if no rank is runnable and at least one is
blocked, a :class:`~repro.simmpi.errors.DeadlockError` is raised naming every
blocked rank and its pending requests.

Fast path
---------
The interpreter loop is the throughput ceiling of every experiment, so the
hot path is engineered: operations dispatch through a type-keyed table
instead of an ``isinstance`` chain, consecutive same-phase compute ops are
drained in a tight inner loop with the per-phase accumulator hoisted,
matched send/recv channels live in a single ``(src, dst, tag)`` -> channel
map (one hash per post), wire times are memoized per ``(src, dst, nbytes)``,
and :class:`Request` handles that never escape to user code are recycled
through a free list.  ``fast_path=False`` selects the straight-line legacy
interpreter; both paths perform float additions in the same order, so
virtual clocks and phase totals are bitwise identical (a tested invariant —
see ``tests/core/test_fastpath_determinism.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simmpi.errors import (
    DeadlockError,
    InvalidRankError,
    MaxOpsExceededError,
    RankFailedError,
    SimMPIError,
    TransferTimeoutError,
)
from repro.simmpi.faults import FaultSchedule, Tombstone, corrupt_payload
from repro.simmpi.payload import payload_crc32
from repro.simmpi.schedule import resolve_schedule
from repro.simmpi.tracing import (DEFAULT_PHASE, RETRY_PHASE, NullTrace,
                                  RankTrace, TimelineEvent, TraceReport)

__all__ = ["Engine", "Request", "RunResult"]

# Backstop on engine operations; protects against runaway programs.
_DEFAULT_MAX_OPS = 200_000_000

#: Free-list bound: requests beyond this are left to the garbage collector.
_REQ_POOL_MAX = 1024

#: Wire-time memo bound (entries); cleared wholesale when exceeded.
_P2P_CACHE_MAX = 1 << 18


# ---------------------------------------------------------------------------
# Operation records yielded by rank programs (via Comm methods).
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ComputeOp:
    """Advance the rank's clock by ``seconds`` of local computation."""

    seconds: float
    phase: str


@dataclass(slots=True)
class IsendOp:
    """Post a non-blocking send of ``payload`` to world rank ``dst``."""

    dst: int
    tag: int
    payload: Any
    nbytes: int
    phase: str


@dataclass(slots=True)
class IrecvOp:
    """Post a non-blocking receive from world rank ``src``."""

    src: int
    tag: int
    phase: str


@dataclass(slots=True)
class WaitOp:
    """Block until every request in ``requests`` has completed."""

    requests: tuple["Request", ...]
    phase: str


@dataclass(slots=True)
class FailureSyncOp:
    """Agree on the set of failed ranks (survivor barrier).

    Completes once every live rank has posted a matching op; each poster
    resumes with the sorted tuple of dead world ranks, giving all
    survivors a *consistent* failure view (a perfect failure detector —
    the standard idealization for studying recovery protocols, and
    trivially sound inside a deterministic simulation).
    """

    phase: str


@dataclass(slots=True)
class HwCollOp:
    """A hardware-assisted collective over ``group`` (world ranks).

    Models dedicated collective networks (e.g. the BlueGene/P tree).  All
    member ranks must post a matching op; the engine applies the reduction
    (if any) deterministically in ascending-rank order and completes every
    member at ``max(posting times) + machine.hw_collective_time(...)``.
    """

    kind: str  # 'bcast' | 'reduce' | 'allreduce' | 'barrier'
    group: tuple[int, ...]
    root: int
    payload: Any
    nbytes: int
    op: Callable[[Any, Any], Any] | None
    phase: str


class Request:
    """Handle for a posted non-blocking operation."""

    __slots__ = (
        "kind",
        "owner",
        "peer",
        "tag",
        "nbytes",
        "post_time",
        "complete",
        "complete_time",
        "payload",
        "queued",
        "pooled",
    )

    def __init__(self, kind: str, owner: int, peer: int, tag: int, post_time: float):
        self.kind = kind  # 'send' | 'recv' | 'hwcoll' | 'fsync'
        self.owner = owner
        self.peer = peer
        self.tag = tag
        self.nbytes = 0
        self.post_time = post_time
        self.complete = False
        self.complete_time = 0.0
        self.payload: Any = None
        #: True while the request sits in an engine matching queue.
        self.queued = False
        #: True while the request rests on the engine's free list.
        self.pooled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.complete else "pending"
        return (
            f"<Request {self.kind} owner={self.owner} peer={self.peer} "
            f"tag={self.tag} {state}>"
        )


@dataclass
class RunResult:
    """Outcome of one engine run."""

    #: Per-rank return values of the rank programs.
    results: list[Any]
    #: Per-rank, per-phase time and traffic accounting (empty when the
    #: engine was built with ``record_phases=False``).
    report: TraceReport
    #: Virtual time at which the last rank finished (the makespan).
    elapsed: float
    #: Total engine operations processed.
    nops: int
    #: Final virtual clock of every rank.
    clocks: list[float] = field(default_factory=list, repr=False)
    #: Timestamped activity records (only when the engine was built with
    #: ``record_events=True``).
    events: list = field(default_factory=list, repr=False)
    #: (p, p) bytes-sent matrix, ``traffic[src, dst]`` (only with
    #: ``record_traffic=True``).
    traffic: object = field(default=None, repr=False)
    #: World rank -> virtual death time for ranks killed by the fault
    #: schedule (their ``results`` entries are ``None``).
    deaths: dict = field(default_factory=dict, repr=False)


class _RankState:
    """Scheduler bookkeeping for one rank."""

    __slots__ = ("gen", "clock", "blocked_on", "wait_phase", "resume_value",
                 "finished", "result", "queued", "dead", "ops")

    def __init__(self, gen):
        self.gen = gen
        self.clock = 0.0
        self.blocked_on: tuple[Request, ...] | None = None
        self.wait_phase = DEFAULT_PHASE
        self.resume_value: Any = None
        self.finished = False
        self.result: Any = None
        self.queued = False
        self.dead = False
        self.ops = 0


class _Channel:
    """Matching queues of one ``(src, dst, tag)`` point-to-point channel."""

    __slots__ = ("sends", "recvs")

    def __init__(self):
        self.sends: deque = deque()
        self.recvs: deque = deque()


class _HwSlot:
    """Arrival record for one pending hardware collective."""

    __slots__ = ("ops", "reqs")

    def __init__(self):
        self.ops: dict[int, HwCollOp] = {}
        self.reqs: dict[int, Request] = {}


#: Sentinel returned by ``_dispatch`` when the rank must stop running.
_BLOCKED = object()


class Engine:
    """Runs an SPMD generator program on ``machine.nranks`` virtual ranks.

    Parameters
    ----------
    machine:
        A :class:`~repro.machines.base.MachineModel`; provides the rank
        count, point-to-point transfer times and hardware-collective times.
    eager_threshold:
        Messages of at most this many bytes complete the *send* side
        immediately (buffered/eager protocol).  ``0`` (default) makes every
        transfer a rendezvous, which models the synchronous waiting the
        paper's shift phases experience under load imbalance.
    max_ops:
        Backstop on total operations processed before aborting.
    record_events:
        Record a :class:`~repro.simmpi.tracing.TimelineEvent` per activity
        (off by default; the hot path allocates none when off).
    record_phases:
        Keep per-rank, per-phase time and traffic totals (on by default).
        ``False`` skips all phase accounting — ``RunResult.report`` comes
        back empty and only aggregate clocks/makespan/nops are available.
    fast_path:
        Use the optimized interpreter (default).  ``False`` runs the
        straight-line legacy loop; results are bitwise identical either
        way — the flag exists for A/B determinism tests and debugging.
    metrics:
        Optional :class:`~repro.metrics.registry.MetricsRegistry`.  When
        given, every :meth:`run` projects its result into the registry
        (:func:`~repro.metrics.collect.record_engine_run`) after the loop
        ends — the hot path itself never sees the registry, so the cost
        of metrics is one post-run pass over the trace report.
    schedule:
        Optional :class:`~repro.simmpi.schedule.SchedulePolicy` (or spec
        string such as ``"random:7"`` / ``"adversarial"``) perturbing the
        scheduler's free choices: ready-queue pop order, matched-pair
        notification order, collective re-queue order and sendrecv
        posting order.  Results must be bitwise identical under every
        policy — the perturbation exists to *prove* that (see
        ``docs/schedule-fuzzing.md``); after a perturbed run the engine
        additionally audits its pool/queue invariants and raises on any
        violation.  ``None`` (default) keeps the zero-overhead FIFO loop.
    """

    def __init__(self, machine, *, eager_threshold: int = 0,
                 max_ops: int | None = None, record_events: bool = False,
                 record_traffic: bool = False, record_phases: bool = True,
                 fast_path: bool = True,
                 faults: FaultSchedule | None = None,
                 metrics=None, schedule=None):
        self.machine = machine
        self.faults = faults
        self.metrics = metrics
        self.schedule = resolve_schedule(schedule)
        self.record_events = bool(record_events)
        self.record_traffic = bool(record_traffic)
        self.record_phases = bool(record_phases)
        self.fast_path = bool(fast_path)
        self._events: list[TimelineEvent] = []
        self._traffic = None
        self.nranks = int(machine.nranks)
        if self.nranks <= 0:
            raise ValueError(f"machine must have >= 1 rank, got {self.nranks}")
        self.eager_threshold = int(eager_threshold)
        self.max_ops = _DEFAULT_MAX_OPS if max_ops is None else int(max_ops)
        self._context_ids: dict[tuple[int, ...], int] = {}
        # Type-keyed dispatch: one dict hash per non-compute op.
        self._handlers: dict[type, Callable] = {
            ComputeOp: self._op_compute,
            IsendOp: self._post_send,
            IrecvOp: self._post_recv,
            WaitOp: self._op_wait,
            HwCollOp: self._post_hwcoll,
            FailureSyncOp: self._post_fsync,
        }
        # Request free list and wire-time memo (live across runs; the
        # machine is immutable, so memoized times stay valid).
        self._req_pool: list[Request] = []
        self._p2p_cache: dict[tuple[int, int, int], float] = {}
        # Op-kind counters for the runaway-program report.
        self._op_histogram: dict[str, int] = {}
        # Populated per run:
        self._ranks: list[_RankState] = []
        self._traces: list[RankTrace] = []
        self._channels: dict[tuple[int, int, int], _Channel] = {}
        self._hwslots: dict[tuple[tuple[int, ...], int], _HwSlot] = {}
        self._hwseq: dict[tuple[int, tuple[int, ...]], int] = {}
        self._ready: deque[int] = deque()
        self._phases: list[str] = []
        self._nops = 0
        # Fault-injection state (unused when self.faults is None):
        self._deaths: dict[int, float] = {}
        self._chan_seq: dict[tuple[int, int], int] = {}
        self._fsync_slots: dict[int, dict[int, Request]] = {}
        self._fsync_seq: dict[int, int] = {}

    # -- communicator support --------------------------------------------

    def context_id(self, world_ranks: tuple[int, ...]) -> int:
        """Deterministic context id for a subcommunicator's rank tuple.

        Every member constructs the same tuple locally, so the first lookup
        allocates an id and later lookups (from any member) agree.
        """
        cid = self._context_ids.get(world_ranks)
        if cid is None:
            cid = len(self._context_ids) + 1
            self._context_ids[world_ranks] = cid
        return cid

    def clock(self, rank: int) -> float:
        """Current virtual time of ``rank``."""
        return self._ranks[rank].clock

    def death_time(self, rank: int) -> float:
        """Virtual time at which ``rank`` died (KeyError if alive)."""
        return self._deaths[rank]

    def phase_of(self, rank: int) -> str:
        """Active phase label of ``rank`` (shared across communicators)."""
        return self._phases[rank]

    def set_phase(self, rank: int, label: str) -> None:
        self._phases[rank] = label

    # -- request pooling ----------------------------------------------------

    def _new_request(self, kind: str, owner: int, peer: int, tag: int,
                     post_time: float) -> Request:
        pool = self._req_pool
        if pool:
            req = pool.pop()
            req.kind = kind
            req.owner = owner
            req.peer = peer
            req.tag = tag
            req.nbytes = 0
            req.post_time = post_time
            req.complete = False
            req.complete_time = 0.0
            req.payload = None
            req.queued = False
            req.pooled = False
            return req
        return Request(kind, owner, peer, tag, post_time)

    def release_request(self, req: Request) -> None:
        """Return a request handle to the free list.

        Only safe for requests that no user code retains; the internal
        blocking helpers (``Comm.send``/``recv``/``sendrecv`` and the
        software collectives) qualify because they hand back payloads, not
        handles.  Requests still sitting in a matching queue (eager sends)
        or already pooled are left alone.
        """
        if (req.complete and not req.queued and not req.pooled
                and len(self._req_pool) < _REQ_POOL_MAX):
            req.payload = None
            req.pooled = True
            self._req_pool.append(req)

    def release_requests(self, reqs) -> None:
        for req in reqs:
            self.release_request(req)

    def check_invariants(self) -> list[str]:
        """Audit the pool / matching-queue bookkeeping; return violations.

        The request free list and the channel queues carry state across
        arbitrary completion orders, so their flags are exactly where a
        schedule-dependent bug would corrupt silently.  Checked: pooled
        requests are complete, dequeued and payload-free (a retained
        payload would leak — or worse, alias — user data into the next
        borrower); no request is both pooled and still sitting in a
        matching queue; queued requests carry a truthful ``queued`` flag;
        the pool respects its bound.  Runs with a schedule policy invoke
        this automatically after every :meth:`run`; it is cheap enough to
        call directly from tests as well.
        """
        problems: list[str] = []
        pooled = set()
        for req in self._req_pool:
            if id(req) in pooled:
                problems.append(f"request {req!r} pooled twice")
            pooled.add(id(req))
            if not req.pooled:
                problems.append(f"pooled request {req!r} lacks pooled flag")
            if not req.complete:
                problems.append(f"incomplete request {req!r} in pool")
            if req.queued:
                problems.append(f"pooled request {req!r} marked queued")
            if req.payload is not None:
                problems.append(f"pooled request {req!r} retains a payload")
        if len(self._req_pool) > _REQ_POOL_MAX:
            problems.append(
                f"free list over bound: {len(self._req_pool)} > {_REQ_POOL_MAX}"
            )
        for key, ch in self._channels.items():
            for queue, side in ((ch.sends, "send"), (ch.recvs, "recv")):
                for req, _phase in queue:
                    if id(req) in pooled:
                        problems.append(
                            f"{side} request {req!r} on channel {key} is "
                            "simultaneously pooled"
                        )
                    if not req.queued:
                        problems.append(
                            f"{side} request {req!r} on channel {key} lacks "
                            "queued flag"
                        )
        return problems

    # -- main entry point --------------------------------------------------

    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> RunResult:
        """Execute ``program(comm, *args, **kwargs)`` on every rank.

        ``program`` must be a generator function (its body reaches the Comm
        via ``yield from``).  Returns a :class:`RunResult` with each rank's
        return value, the trace report and the virtual makespan.
        """
        from repro.simmpi.comm import Comm  # deferred: comm imports engine ops

        wall_start = None
        if self.metrics is not None:
            from time import perf_counter

            wall_start = perf_counter()
        self._context_ids.clear()
        self._channels = {}
        self._hwslots = {}
        self._hwseq = {}
        self._nops = 0
        self._events = []
        self._deaths = {}
        self._chan_seq = {}
        self._fsync_slots = {}
        self._fsync_seq = {}
        self._op_histogram = {
            "compute": 0, "isend": 0, "irecv": 0, "wait": 0,
            "hwcoll": 0, "fsync": 0,
        }
        if self.record_traffic:
            import numpy as _np

            self._traffic = _np.zeros((self.nranks, self.nranks),
                                      dtype=_np.int64)
        self._phases = [DEFAULT_PHASE] * self.nranks
        if self.record_phases:
            self._traces = [RankTrace(r) for r in range(self.nranks)]
        else:
            # One shared sink: every accounting call is a no-op.
            sink = NullTrace()
            self._traces = [sink] * self.nranks
        self._ranks = []
        for r in range(self.nranks):
            comm = Comm._world(self, r)
            gen = program(comm, *args, **kwargs)
            if not hasattr(gen, "send"):
                raise SimMPIError(
                    "program must be a generator function (use 'yield from comm.*')"
                )
            self._ranks.append(_RankState(gen))

        self._ready = deque()
        for r in range(self.nranks):
            self._enqueue(r)
        nfinished = 0

        run_rank = self._run_rank if self.fast_path else self._run_rank_slow
        ready = self._ready
        ranks = self._ranks
        policy = self.schedule
        if policy is None:
            pop = ready.popleft
        else:
            policy.reset()
            pop = lambda: policy.pop(ready)  # noqa: E731 - hot-loop closure
        while ready:
            rank = pop()
            state = ranks[rank]
            state.queued = False
            if state.finished or state.dead or state.blocked_on is not None:
                continue
            value, state.resume_value = state.resume_value, None
            if run_rank(rank, value):
                nfinished += 1

        if nfinished + len(self._deaths) < self.nranks:
            blocked = {}
            for r, st in enumerate(self._ranks):
                if not st.finished and not st.dead:
                    reqs = st.blocked_on or ()
                    blocked[r] = ", ".join(
                        f"{q.kind}(peer={q.peer}, tag={q.tag})"
                        for q in reqs
                        if not q.complete
                    ) or "<not blocked; scheduler bug>"
            raise DeadlockError(
                f"deadlock: {self.nranks - nfinished - len(self._deaths)} of "
                f"{self.nranks} ranks blocked"
                + (f" ({len(self._deaths)} dead)" if self._deaths else ""),
                blocked,
            )

        if policy is not None:
            problems = self.check_invariants()
            if problems:
                raise SimMPIError(
                    f"pool/queue integrity violated under schedule policy "
                    f"{policy.spec!r}: " + "; ".join(problems)
                )

        clocks = [st.clock for st in self._ranks]
        report = TraceReport(self._traces if self.record_phases else [])
        result = RunResult(
            results=[st.result for st in self._ranks],
            report=report,
            elapsed=max(clocks) if clocks else 0.0,
            nops=self._nops,
            clocks=clocks,
            events=self._events,
            traffic=self._traffic,
            deaths=dict(self._deaths),
        )
        if self.metrics is not None:
            # Deferred import: simmpi must stay importable without the
            # metrics package (and metrics imports simmpi types).
            from time import perf_counter

            from repro.metrics.collect import record_engine_run

            record_engine_run(self.metrics, result,
                              op_histogram=self._op_histogram,
                              wall_s=perf_counter() - wall_start)
        return result

    def _enqueue(self, rank: int) -> None:
        state = self._ranks[rank]
        if not state.queued:
            state.queued = True
            self._ready.append(rank)

    # -- runaway-program diagnostics -----------------------------------------

    def _raise_max_ops(self, rank: int, state: _RankState) -> None:
        """Raise an actionable max_ops report naming the offender."""
        per_rank = sorted(
            ((st.ops, r) for r, st in enumerate(self._ranks)), reverse=True
        )
        top = ", ".join(f"rank {r}: {n}" for n, r in per_rank[:5])
        histogram = {k: v for k, v in self._op_histogram.items() if v}
        raise MaxOpsExceededError(
            max_ops=self.max_ops,
            rank=rank,
            phase=self._phases[rank],
            rank_ops=state.ops,
            histogram=histogram,
            top_ranks=top,
        )

    # -- per-rank execution --------------------------------------------------

    def _run_rank(self, rank: int, resume_value: Any = None) -> bool:
        """Drive ``rank`` until it blocks or finishes.  Returns True if done.

        The fast interpreter: compute ops — the overwhelmingly most common
        kind in functional runs — are drained in an inner loop that hoists
        the per-phase accumulator, so a burst of same-phase compute costs
        one trace lookup instead of one per op.  Clock and phase-total
        additions happen per op, in program order, keeping float results
        bitwise identical to the legacy loop.
        """
        state = self._ranks[rank]
        gen = state.gen
        send = gen.send
        value = resume_value
        faults = self.faults
        check_kills = faults is not None and faults.has_kills
        max_ops = self.max_ops
        handlers = self._handlers
        trace = self._traces[rank]
        record_events = self.record_events
        hist = self._op_histogram
        while True:
            self._nops += 1
            if self._nops > max_ops:
                self._raise_max_ops(rank, state)
            if check_kills and faults.should_die(rank, state.ops, state.clock):
                self._kill_rank(rank, state)
                return False
            state.ops += 1
            try:
                op = send(value)
            except StopIteration as stop:
                state.finished = True
                state.result = stop.value
                return True
            except (DeadlockError, RankFailedError):
                raise
            except BaseException as exc:  # fail-fast like MPI_Abort
                raise RankFailedError(rank, exc) from exc

            cls = op.__class__
            if cls is ComputeOp:
                # Batch consecutive compute ops (same dispatch, hoisted
                # accumulator); exact per-op addition order is preserved.
                label = op.phase
                tot = trace.phase(label)
                clock = state.clock
                while True:
                    seconds = op.seconds
                    if seconds < 0:
                        raise SimMPIError(f"negative compute time {seconds}")
                    hist["compute"] += 1
                    if record_events and seconds > 0:
                        self._events.append(TimelineEvent(
                            rank=rank, phase=label, kind="compute",
                            t_start=clock, t_end=clock + seconds,
                        ))
                    clock += seconds
                    # Sync before resuming: user code may read comm.now().
                    state.clock = clock
                    tot.seconds += seconds
                    self._nops += 1
                    if self._nops > max_ops:
                        self._raise_max_ops(rank, state)
                    if check_kills and faults.should_die(rank, state.ops, clock):
                        self._kill_rank(rank, state)
                        return False
                    state.ops += 1
                    try:
                        op = send(None)
                    except StopIteration as stop:
                        state.finished = True
                        state.result = stop.value
                        return True
                    except (DeadlockError, RankFailedError):
                        raise
                    except BaseException as exc:
                        raise RankFailedError(rank, exc) from exc
                    cls = op.__class__
                    if cls is ComputeOp:
                        if op.phase != label:
                            label = op.phase
                            tot = trace.phase(label)
                        continue
                    break

            handler = handlers.get(cls)
            if handler is None:
                raise SimMPIError(f"rank {rank} yielded unknown op {op!r}")
            value = handler(rank, state, op)
            if value is _BLOCKED:
                return False

    def _run_rank_slow(self, rank: int, resume_value: Any = None) -> bool:
        """The legacy straight-line loop (``fast_path=False``)."""
        state = self._ranks[rank]
        gen = state.gen
        value = resume_value
        while True:
            self._nops += 1
            if self._nops > self.max_ops:
                self._raise_max_ops(rank, state)
            if (
                self.faults is not None
                and self.faults.has_kills
                and self.faults.should_die(rank, state.ops, state.clock)
            ):
                self._kill_rank(rank, state)
                return False
            state.ops += 1
            try:
                op = gen.send(value)
            except StopIteration as stop:
                state.finished = True
                state.result = stop.value
                return True
            except (DeadlockError, RankFailedError):
                raise
            except BaseException as exc:  # fail-fast like MPI_Abort
                raise RankFailedError(rank, exc) from exc

            value = self._dispatch(rank, state, op)
            if value is _BLOCKED:
                return False

    def _dispatch(self, rank: int, state: _RankState, op: Any) -> Any:
        """Apply one operation; return the resume value or ``_BLOCKED``."""
        handler = self._handlers.get(op.__class__)
        if handler is None:
            raise SimMPIError(f"rank {rank} yielded unknown op {op!r}")
        return handler(rank, state, op)

    def _op_compute(self, rank: int, state: _RankState, op: ComputeOp) -> None:
        if op.seconds < 0:
            raise SimMPIError(f"negative compute time {op.seconds}")
        self._op_histogram["compute"] += 1
        if self.record_events and op.seconds > 0:
            self._events.append(TimelineEvent(
                rank=rank, phase=op.phase, kind="compute",
                t_start=state.clock, t_end=state.clock + op.seconds,
            ))
        state.clock += op.seconds
        self._traces[rank].add_time(op.phase, op.seconds)
        return None

    def _op_wait(self, rank: int, state: _RankState, op: WaitOp) -> Any:
        self._op_histogram["wait"] += 1
        reqs = op.requests
        for q in reqs:
            if not q.complete:
                state.blocked_on = reqs
                state.wait_phase = op.phase
                return _BLOCKED
        self._finish_wait(rank, state, reqs, op.phase)
        return [q.payload for q in reqs]

    # -- point-to-point --------------------------------------------------------

    def _channel(self, key: tuple[int, int, int]) -> _Channel:
        ch = self._channels.get(key)
        if ch is None:
            ch = self._channels[key] = _Channel()
        return ch

    def _post_send(self, rank: int, state: _RankState, op: IsendOp) -> Request:
        dst = op.dst
        if not 0 <= dst < self.nranks:
            raise InvalidRankError(f"send dst {dst} out of range 0..{self.nranks - 1}")
        self._op_histogram["isend"] += 1
        req = self._new_request("send", rank, dst, op.tag, state.clock)
        req.nbytes = op.nbytes
        req.payload = op.payload
        self._traces[rank].add_send(op.phase, op.nbytes)
        if self._deaths and dst in self._deaths:
            # Peer is dead: the send completes locally after the detection
            # latency; the payload goes nowhere.
            req.complete = True
            req.complete_time = (
                max(req.post_time, self._deaths[dst])
                + self.faults.detect_seconds
            )
            return req
        ch = self._channel((rank, dst, op.tag))
        recvq = ch.recvs
        if recvq:
            rreq, rphase = recvq.popleft()
            rreq.queued = False
            self._complete_pair(req, rreq, rphase)
        else:
            if op.nbytes <= self.eager_threshold:
                # Eager protocol: the send buffers immediately; the sender
                # may wait on it (and proceed) before any receiver posts.
                req.complete = True
                req.complete_time = req.post_time
            req.queued = True
            ch.sends.append((req, op.phase))
        return req

    def _post_recv(self, rank: int, state: _RankState, op: IrecvOp) -> Request:
        src = op.src
        if not 0 <= src < self.nranks:
            raise InvalidRankError(f"recv src {src} out of range 0..{self.nranks - 1}")
        self._op_histogram["irecv"] += 1
        req = self._new_request("recv", rank, src, op.tag, state.clock)
        if self._deaths and src in self._deaths:
            # Dead sender: unmatched sends were lost with it (rendezvous
            # data never leaves the source), so detection is the outcome.
            death = self._deaths[src]
            req.complete = True
            req.complete_time = (
                max(req.post_time, death) + self.faults.detect_seconds
            )
            req.payload = Tombstone(src, death)
            return req
        ch = self._channel((src, rank, op.tag))
        sendq = ch.sends
        if sendq:
            sreq, _sphase = sendq.popleft()  # send side counted at posting
            sreq.queued = False
            self._complete_pair(sreq, req, op.phase)
        else:
            req.queued = True
            ch.recvs.append((req, op.phase))
        return req

    def _complete_pair(self, sreq: Request, rreq: Request, recv_phase: str) -> None:
        """Complete a matched send/recv pair and unblock waiters."""
        nbytes = sreq.nbytes
        key = (sreq.owner, rreq.owner, nbytes)
        wire = self._p2p_cache.get(key)
        if wire is None:
            wire = self.machine.p2p_time(sreq.owner, rreq.owner, nbytes)
            if len(self._p2p_cache) >= _P2P_CACHE_MAX:
                self._p2p_cache.clear()
            self._p2p_cache[key] = wire
        payload = sreq.payload
        extra = 0.0
        if self.faults is not None:
            extra, payload = self._apply_p2p_fault(sreq, rreq, wire, payload)
        if nbytes <= self.eager_threshold:
            sreq.complete_time = sreq.post_time
            rreq.complete_time = max(sreq.post_time + wire + extra,
                                     rreq.post_time)
        else:
            start = max(sreq.post_time, rreq.post_time)
            sreq.complete_time = start + wire + extra
            rreq.complete_time = start + wire + extra
        sreq.complete = True
        rreq.complete = True
        rreq.payload = payload
        rreq.nbytes = nbytes
        self._traces[rreq.owner].add_recv(recv_phase, nbytes)
        if self._traffic is not None:
            self._traffic[sreq.owner, rreq.owner] += nbytes
        if self.record_events:
            start = min(sreq.post_time, rreq.post_time)
            self._events.append(TimelineEvent(
                rank=sreq.owner, phase=recv_phase, kind="xfer",
                t_start=start, t_end=rreq.complete_time,
                nbytes=nbytes, peer=rreq.owner,
            ))
        policy = self.schedule
        if policy is not None and policy.unblock_receiver_first():
            self._maybe_unblock(rreq.owner)
            self._maybe_unblock(sreq.owner)
        else:
            self._maybe_unblock(sreq.owner)
            self._maybe_unblock(rreq.owner)

    def _maybe_unblock(self, rank: int) -> None:
        """If ``rank`` is blocked and all its requests completed, re-queue it."""
        state = self._ranks[rank]
        reqs = state.blocked_on
        if reqs is None:
            return
        for q in reqs:
            if not q.complete:
                return
        state.blocked_on = None
        self._finish_wait(rank, state, reqs, state.wait_phase)
        state.resume_value = [q.payload for q in reqs]
        self._enqueue(rank)

    def _finish_wait(self, rank, state, reqs, phase: str) -> None:
        """Advance the clock past all completions and charge the wait."""
        t0 = state.clock
        t1 = t0
        for q in reqs:
            if q.complete_time > t1:
                t1 = q.complete_time
        if t1 > t0:
            if self.record_events:
                self._events.append(TimelineEvent(
                    rank=rank, phase=phase, kind="wait",
                    t_start=t0, t_end=t1,
                ))
            self._traces[rank].add_time(phase, t1 - t0)
            state.clock = t1

    # -- fault injection ---------------------------------------------------------

    def _apply_p2p_fault(self, sreq: Request, rreq: Request, wire: float,
                         payload: Any):
        """Consult the fault schedule for one matched transfer.

        Returns ``(extra_seconds, delivered_payload)``.  Dropped attempts
        each cost a retry timeout plus a full wire time, and their
        retransmit traffic is charged to the ``retry`` phase on the sender
        (bytes lost in the network) and, for the attempts the receiver saw
        and rejected, mirrored on the receiver.
        """
        chan = (sreq.owner, rreq.owner)
        seq = self._chan_seq.get(chan, 0)
        self._chan_seq[chan] = seq + 1
        fault = self.faults.p2p_fault(sreq.owner, rreq.owner, seq)
        if fault is None:
            return 0.0, payload
        drops = fault.drops
        redelivered = False
        if fault.corrupt:
            damaged = corrupt_payload(
                payload, self.faults.channel_rng(sreq.owner, rreq.owner, seq)
            )
            if self.faults.checksum and (
                payload_crc32(damaged) != payload_crc32(payload)
            ):
                # End-to-end CRC catches the corruption: the receiver
                # rejects the delivery and the sender retransmits a clean
                # copy — one extra lost attempt on the wire.
                drops += 1
                redelivered = True
            else:
                # No checksumming (or an undetectable corruption): the
                # damaged copy is what the receiver gets.
                payload = damaged
        if drops > self.faults.max_retries:
            raise TransferTimeoutError(sreq.owner, rreq.owner, drops)
        extra = fault.delay
        if drops:
            timeout = self.faults.retry_timeout
            backoff = self.faults.retry_backoff
            if backoff == 1.0:
                # Flat timeout: keep the original closed form (and its
                # exact floating-point value) for schedules without backoff.
                extra += drops * (timeout + wire)
            else:
                for attempt in range(drops):
                    extra += timeout * backoff**attempt + wire
            for _ in range(drops):
                self._traces[sreq.owner].add_retry(RETRY_PHASE, sreq.nbytes)
        if redelivered:
            self._traces[rreq.owner].add_redelivery(RETRY_PHASE)
        return extra, payload

    def _kill_rank(self, rank: int, state: _RankState) -> None:
        """Process a scheduled kill on ``rank``'s own thread of control."""
        death = state.clock
        state.dead = True
        self._deaths[rank] = death
        state.gen.close()
        detect = self.faults.detect_seconds
        # Within each channel: first drop the victim's own postings
        # (unmatched sends never transfer — rendezvous data stays at the
        # source; unmatched receives evaporate), then complete the peers'
        # operations against the victim after the detection latency.
        for (src, dst, _tag), ch in list(self._channels.items()):
            if src == rank and ch.sends:
                for req, _phase in ch.sends:
                    req.queued = False
                ch.sends.clear()
            if dst == rank and ch.recvs:
                for req, _phase in ch.recvs:
                    req.queued = False
                ch.recvs.clear()
            if dst == rank and ch.sends:
                while ch.sends:
                    req, _phase = ch.sends.popleft()
                    req.queued = False
                    req.complete = True
                    req.complete_time = max(req.post_time, death) + detect
                    self._maybe_unblock(req.owner)
            if src == rank and ch.recvs:
                while ch.recvs:
                    req, _phase = ch.recvs.popleft()
                    req.queued = False
                    req.complete = True
                    req.complete_time = max(req.post_time, death) + detect
                    req.payload = Tombstone(rank, death)
                    self._maybe_unblock(req.owner)
        # A failure sync no longer waits on the victim.
        for seq in list(self._fsync_slots):
            self._check_fsync(seq)

    # -- failure sync -------------------------------------------------------------

    def _post_fsync(self, rank: int, state: _RankState, op: FailureSyncOp):
        self._op_histogram["fsync"] += 1
        seq = self._fsync_seq.get(rank, 0)
        self._fsync_seq[rank] = seq + 1
        slot = self._fsync_slots.setdefault(seq, {})
        req = self._new_request("fsync", rank, -1, -1, state.clock)
        slot[rank] = req
        if self._check_fsync(seq, poster=rank):
            self._finish_wait(rank, state, (req,), op.phase)
            payload = req.payload
            self.release_request(req)
            return payload
        state.blocked_on = (req,)
        state.wait_phase = op.phase
        return _BLOCKED

    def _check_fsync(self, seq: int, poster: int | None = None) -> bool:
        """Complete sync round ``seq`` once every live rank has posted it.

        Returns True when the round completed *and* ``poster`` was its last
        arriver (so the caller resumes synchronously, mirroring hwcoll).
        """
        slot = self._fsync_slots.get(seq)
        if slot is None:
            return False
        live = self.nranks - len(self._deaths)
        if len([r for r in slot if r not in self._deaths]) < live:
            return False
        del self._fsync_slots[seq]
        detect = self.faults.detect_seconds if self.faults is not None else 0.0
        t_done = max(q.post_time for q in slot.values()) + detect
        dead = tuple(sorted(self._deaths))
        synchronous = False
        policy = self.schedule
        members = list(slot.items())
        if policy is not None:
            members = policy.permute(members)
        for r, q in members:
            if r in self._deaths:
                continue
            q.complete = True
            q.complete_time = t_done
            q.payload = dead
            if r == poster:
                synchronous = True
                continue
            st = self._ranks[r]
            if st.blocked_on == (q,):
                st.blocked_on = None
                self._finish_wait(r, st, (q,), st.wait_phase)
                st.resume_value = q.payload
                self._enqueue(r)
                self.release_request(q)
        return synchronous

    # -- hardware collectives ----------------------------------------------------

    def _post_hwcoll(self, rank: int, state: _RankState, op: HwCollOp):
        self._op_histogram["hwcoll"] += 1
        group = op.group
        if rank not in group:
            raise InvalidRankError(f"rank {rank} not in hw collective group {group}")
        seq_key = (rank, group)
        seq = self._hwseq.get(seq_key, 0)
        self._hwseq[seq_key] = seq + 1
        slot_key = (group, seq)
        slot = self._hwslots.get(slot_key)
        if slot is None:
            slot = self._hwslots[slot_key] = _HwSlot()
        req = self._new_request("hwcoll", rank, -1, -1, state.clock)
        req.nbytes = op.nbytes
        slot.ops[rank] = op
        slot.reqs[rank] = req

        if len(slot.ops) == len(group):
            # Last arriver: complete the collective for everyone.  Blocked
            # members are re-queued by _complete_hwcoll; this rank (never
            # marked blocked) resumes synchronously.
            self._complete_hwcoll(group, slot)
            del self._hwslots[slot_key]
            self._finish_wait(rank, state, (req,), op.phase)
            payload = req.payload
            self.release_request(req)
            return payload
        state.blocked_on = (req,)
        state.wait_phase = op.phase
        return _BLOCKED

    def _complete_hwcoll(self, group: tuple[int, ...], slot: _HwSlot) -> None:
        ops = slot.ops
        first = ops[group[0]]
        kind = first.kind
        for r in group:
            if ops[r].kind != kind:
                raise SimMPIError(
                    f"mismatched hw collectives in group {group}: "
                    f"{kind!r} vs {ops[r].kind!r} on rank {r}"
                )
        t_arrive = max(q.post_time for q in slot.reqs.values())
        nbytes = max(o.nbytes for o in ops.values())
        t_done = t_arrive + self.machine.hw_collective_time(kind, nbytes, len(group))

        if kind == "bcast":
            value = ops[first.root].payload
            results = {r: value for r in group}
        elif kind in ("reduce", "allreduce"):
            reducer = first.op
            acc = None
            for r in sorted(group):
                v = ops[r].payload
                acc = v if acc is None else reducer(acc, v)
            if kind == "reduce":
                results = {r: (acc if r == first.root else None) for r in group}
            else:
                results = {r: acc for r in group}
        elif kind == "allgather":
            gathered = [ops[r].payload for r in group]
            results = {r: gathered for r in group}
        elif kind == "barrier":
            results = {r: None for r in group}
        else:
            raise SimMPIError(f"unknown hw collective kind {kind!r}")

        # The reduction above is already folded in ascending-rank order;
        # only the re-queue order below is a scheduler free choice.
        policy = self.schedule
        order = group if policy is None else policy.permute(group)
        for r in order:
            q = slot.reqs[r]
            q.complete = True
            q.complete_time = t_done
            q.payload = results[r]
            st = self._ranks[r]
            if st.blocked_on == (q,):
                # Blocked members resume through the ready queue; the final
                # poster (never marked blocked) resumes synchronously in
                # _post_hwcoll.
                st.blocked_on = None
                self._finish_wait(r, st, (q,), st.wait_phase)
                st.resume_value = q.payload
                self._enqueue(r)
                self.release_request(q)

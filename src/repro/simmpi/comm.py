"""MPI-like communicator handles for simulated rank programs.

A :class:`Comm` is the per-rank view of a group of ranks.  All communication
methods are **generator functions**: rank programs invoke them with
``yield from``, e.g.::

    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        with comm.phase("shift"):
            block = yield from comm.sendrecv(right, my_block, left)
        ...
        return result

Subcommunicators are created *locally and deterministically* with
:meth:`Comm.sub` — every member passes the same world-rank tuple, so no
communication is needed (unlike ``MPI_Comm_split``).  Each distinct rank
tuple receives a distinct context id from the engine, which isolates its tag
space from other communicators.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.simmpi import collectives as _coll
from repro.simmpi.engine import (
    ComputeOp,
    Engine,
    FailureSyncOp,
    HwCollOp,
    IrecvOp,
    IsendOp,
    Request,
    WaitOp,
)
from repro.simmpi.errors import InvalidRankError, InvalidTagError
from repro.simmpi.payload import payload_nbytes
from repro.simmpi.tracing import DEFAULT_PHASE

__all__ = ["Comm"]

#: Highest tag available to user code; larger values are reserved.
MAX_USER_TAG = (1 << 16) - 1

#: Collective implementations reserve tags in [1 << 16, 1 << 17).
_COLL_TAG_BASE = 1 << 16

#: Context ids are multiplexed above the per-communicator tag space.
_CTX_STRIDE = 1 << 17


class _PhaseScope:
    """Re-entrant push/pop of a rank's phase label.

    A plain ``__enter__``/``__exit__`` class instead of
    ``@contextmanager``: phase scopes open and close once per shift step
    on every rank, and the generator machinery behind ``contextmanager``
    is measurable at that frequency.
    """

    __slots__ = ("_comm", "_label", "_prev")

    def __init__(self, comm: "Comm", label: str):
        self._comm = comm
        self._label = label

    def __enter__(self) -> "Comm":
        comm = self._comm
        phases = comm.engine._phases
        rank = comm._wrank
        self._prev = phases[rank]
        phases[rank] = self._label
        return comm

    def __exit__(self, exc_type, exc, tb) -> bool:
        comm = self._comm
        comm.engine._phases[comm._wrank] = self._prev
        return False


class Comm:
    """Per-rank communicator over a fixed group of world ranks."""

    __slots__ = ("engine", "_ranks", "_rank", "_cid", "_wrank", "_tag_base",
                 "_coll_base")

    def __init__(self, engine: Engine, world_ranks: tuple[int, ...], rank: int):
        self.engine = engine
        self._ranks = world_ranks
        self._rank = rank
        self._cid = engine.context_id(world_ranks)
        # Hot-path caches: this rank's world id and the communicator's tag
        # bases (all immutable for the life of the communicator).
        self._wrank = world_ranks[rank]
        self._tag_base = self._cid * _CTX_STRIDE
        self._coll_base = self._tag_base + _COLL_TAG_BASE

    # -- construction -------------------------------------------------------

    @classmethod
    def _world(cls, engine: Engine, world_rank: int) -> "Comm":
        ranks = tuple(range(engine.nranks))
        return cls(engine, ranks, world_rank)

    def sub(self, world_ranks: Sequence[int]) -> "Comm | None":
        """Communicator over ``world_ranks`` (world-rank ids, fixed order).

        Returns ``None`` if this rank is not a member — mirroring
        ``MPI_COMM_NULL``.  All members must pass an identical sequence.
        """
        ranks = tuple(int(r) for r in world_ranks)
        if len(set(ranks)) != len(ranks):
            raise InvalidRankError(f"duplicate ranks in sub-communicator: {ranks}")
        me = self._ranks[self._rank]
        if me not in ranks:
            return None
        return Comm(self.engine, ranks, ranks.index(me))

    # -- introspection --------------------------------------------------------

    @property
    def rank(self) -> int:
        """This rank's index within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._ranks)

    @property
    def world_rank(self) -> int:
        """This rank's id in the world communicator."""
        return self._wrank

    @property
    def world_ranks(self) -> tuple[int, ...]:
        """World-rank ids of every member, in communicator order."""
        return self._ranks

    @property
    def is_world(self) -> bool:
        """True when this communicator spans the whole machine."""
        return self.size == self.engine.nranks

    def translate(self, rank: int) -> int:
        """World-rank id of communicator rank ``rank``."""
        if not 0 <= rank < len(self._ranks):
            raise InvalidRankError(
                f"rank {rank} out of range for communicator of size {self.size}"
            )
        return self._ranks[rank]

    def now(self) -> float:
        """This rank's current virtual time (seconds)."""
        return self.engine.clock(self.world_rank)

    # -- phases -----------------------------------------------------------------

    @property
    def _phase_label(self) -> str:
        """Active phase label — per *rank* state shared by every
        communicator of that rank (a team bcast inside ``phase('bcast')``
        on the world communicator is still charged to ``bcast``)."""
        return self.engine._phases[self._wrank]

    def phase(self, label: str) -> "_PhaseScope":
        """Attribute enclosed operations' time and traffic to ``label``."""
        return _PhaseScope(self, label)

    @property
    def current_phase(self) -> str:
        return self._phase_label

    # -- local computation ---------------------------------------------------

    def compute(self, seconds: float):
        """Charge ``seconds`` of local computation to the current phase."""
        yield ComputeOp(float(seconds), self.engine._phases[self._wrank])

    # -- point-to-point ----------------------------------------------------------

    def _wire_tag(self, tag: int, collective: bool = False) -> int:
        if collective:
            return self._cid * _CTX_STRIDE + _COLL_TAG_BASE + tag
        if not 0 <= tag <= MAX_USER_TAG:
            raise InvalidTagError(f"user tag must be in [0, {MAX_USER_TAG}], got {tag}")
        return self._cid * _CTX_STRIDE + tag

    def isend(self, dest: int, payload: Any, tag: int = 0, *,
              nbytes: int | None = None, _collective: bool = False):
        """Post a non-blocking send; returns a :class:`Request`."""
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        req = yield IsendOp(
            self.translate(dest),
            self._wire_tag(tag, _collective),
            payload,
            int(nbytes),
            self.engine._phases[self._wrank],
        )
        return req

    def irecv(self, source: int, tag: int = 0, *, _collective: bool = False):
        """Post a non-blocking receive; returns a :class:`Request`."""
        req = yield IrecvOp(
            self.translate(source),
            self._wire_tag(tag, _collective),
            self.engine._phases[self._wrank],
        )
        return req

    def wait(self, *requests: Request):
        """Block until all ``requests`` complete; returns their payloads."""
        payloads = yield WaitOp(requests, self._phase_label)
        return payloads

    # The blocking helpers below are *flattened*: they yield the engine ops
    # directly instead of delegating to isend/irecv/wait sub-generators.
    # Each ``yield from comm.x()`` delegation costs a generator frame per
    # resume, and the shift loop crosses these helpers millions of times —
    # flattening them is one of the engine fast path's largest wins.  The
    # op sequence (and therefore all virtual timing) is identical to the
    # composed form, and because the request handles never escape, they are
    # recycled through the engine's free list.

    def send(self, dest: int, payload: Any, tag: int = 0, *,
             nbytes: int | None = None):
        """Blocking (rendezvous) send."""
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        phase = self.engine._phases[self._wrank]
        req = yield IsendOp(self.translate(dest), self._wire_tag(tag),
                            payload, int(nbytes), phase)
        yield WaitOp((req,), phase)
        self.engine.release_request(req)

    def recv(self, source: int, tag: int = 0):
        """Blocking receive; returns the payload."""
        phase = self.engine._phases[self._wrank]
        req = yield IrecvOp(self.translate(source), self._wire_tag(tag), phase)
        yield WaitOp((req,), phase)
        payload = req.payload
        self.engine.release_request(req)
        return payload

    def sendrecv(self, dest: int, payload: Any, source: int,
                 sendtag: int = 0, recvtag: int | None = None, *,
                 nbytes: int | None = None):
        """Simultaneous send+receive (deadlock-free shift primitive)."""
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        if not 0 <= sendtag <= MAX_USER_TAG:
            raise InvalidTagError(
                f"user tag must be in [0, {MAX_USER_TAG}], got {sendtag}")
        stag = self._tag_base + sendtag
        if recvtag is None:
            rtag = stag
        elif 0 <= recvtag <= MAX_USER_TAG:
            rtag = self._tag_base + recvtag
        else:
            raise InvalidTagError(
                f"user tag must be in [0, {MAX_USER_TAG}], got {recvtag}")
        ranks = self._ranks
        if 0 <= dest < len(ranks) and 0 <= source < len(ranks):
            wdst = ranks[dest]
            wsrc = ranks[source]
        else:
            wdst = self.translate(dest)
            wsrc = self.translate(source)
        engine = self.engine
        phase = engine._phases[self._wrank]
        # Both requests are posted at the same virtual instant and waited
        # together, so their posting order is a scheduler free choice; a
        # schedule policy may flip it (rendezvous timing is unaffected —
        # transfers start at max(send_post, recv_post) either way).
        policy = engine.schedule
        if policy is not None and policy.reorder_posts():
            rreq = yield IrecvOp(wsrc, rtag, phase)
            sreq = yield IsendOp(wdst, stag, payload, int(nbytes), phase)
        else:
            sreq = yield IsendOp(wdst, stag, payload, int(nbytes), phase)
            rreq = yield IrecvOp(wsrc, rtag, phase)
        yield WaitOp((sreq, rreq), phase)
        received = rreq.payload
        engine.release_request(sreq)
        engine.release_request(rreq)
        return received

    # Collective-tagged blocking helpers for repro.simmpi.collectives; same
    # flattening, tags drawn from the reserved collective space.

    def _coll_send(self, dest: int, payload: Any, tag: int, *,
                   nbytes: int | None = None):
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        phase = self.engine._phases[self._wrank]
        req = yield IsendOp(self.translate(dest), self._coll_base + tag,
                            payload, int(nbytes), phase)
        yield WaitOp((req,), phase)
        self.engine.release_request(req)

    def _coll_recv(self, source: int, tag: int):
        phase = self.engine._phases[self._wrank]
        req = yield IrecvOp(self.translate(source), self._coll_base + tag,
                            phase)
        yield WaitOp((req,), phase)
        payload = req.payload
        self.engine.release_request(req)
        return payload

    def _coll_sendrecv(self, dest: int, payload: Any, source: int, tag: int, *,
                       nbytes: int | None = None):
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        ranks = self._ranks
        wire = self._coll_base + tag
        engine = self.engine
        phase = engine._phases[self._wrank]
        # Same free posting order as sendrecv: collectives built on this
        # helper (allreduce, allgather, alltoall, barrier) inherit the
        # schedule policy's reordering for free.
        policy = engine.schedule
        if policy is not None and policy.reorder_posts():
            rreq = yield IrecvOp(ranks[source], wire, phase)
            sreq = yield IsendOp(ranks[dest], wire, payload, int(nbytes),
                                 phase)
        else:
            sreq = yield IsendOp(ranks[dest], wire, payload, int(nbytes),
                                 phase)
            rreq = yield IrecvOp(ranks[source], wire, phase)
        yield WaitOp((sreq, rreq), phase)
        received = rreq.payload
        engine.release_request(sreq)
        engine.release_request(rreq)
        return received

    # -- collectives ------------------------------------------------------------

    def bcast(self, value: Any, root: int = 0):
        """Binomial-tree broadcast; returns the value on every rank."""
        result = yield from _coll.bcast(self, value, root)
        return result

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0):
        """Binomial-tree reduction; returns the result on ``root``, else None."""
        result = yield from _coll.reduce(self, value, op, root)
        return result

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]):
        """Recursive-doubling allreduce (reduce+bcast if size not a power of 2)."""
        result = yield from _coll.allreduce(self, value, op)
        return result

    def gather(self, value: Any, root: int = 0):
        """Binomial-tree gather; ``root`` gets the rank-ordered list."""
        result = yield from _coll.gather(self, value, root)
        return result

    def scatter(self, values: Sequence[Any] | None, root: int = 0):
        """Binomial-tree scatter of ``values`` (one per rank) from ``root``."""
        result = yield from _coll.scatter(self, values, root)
        return result

    def allgather(self, value: Any):
        """Allgather; every rank gets the rank-ordered list of contributions."""
        result = yield from _coll.allgather(self, value)
        return result

    def alltoall(self, values: Sequence[Any]):
        """Personalized all-to-all; ``values[i]`` goes to rank ``i``."""
        result = yield from _coll.alltoall(self, values)
        return result

    def barrier(self):
        """Dissemination barrier."""
        yield from _coll.barrier(self)

    # -- fault tolerance -------------------------------------------------------

    def sync_failures(self):
        """Survivor barrier returning the agreed set of dead world ranks.

        Generator; every live rank must call it (a collective over the
        world).  Completes once all survivors have posted, after the fault
        schedule's detection latency, and returns a sorted tuple of dead
        world ranks — a consistent failure view for recovery protocols.
        Without fault injection it degenerates to a free barrier returning
        ``()``.
        """
        dead = yield FailureSyncOp(self._phase_label)
        return dead

    # -- hardware collectives ------------------------------------------------

    @property
    def hw_collectives_available(self) -> bool:
        """True when the machine's dedicated collective network covers us.

        Mirrors BlueGene/P: the tree network serves collectives that involve
        the whole partition.
        """
        return bool(self.engine.machine.has_hw_collectives) and self.is_world

    def hw_coll(self, kind: str, value: Any = None, *, root: int = 0,
                op: Callable[[Any, Any], Any] | None = None,
                nbytes: int | None = None):
        """Post a hardware collective (``bcast``/``reduce``/``allreduce``/
        ``allgather``/``barrier``) on the dedicated network."""
        if not self.hw_collectives_available:
            raise InvalidRankError(
                "hardware collectives require machine support and a "
                "whole-partition communicator"
            )
        if nbytes is None:
            nbytes = payload_nbytes(value)
        result = yield HwCollOp(
            kind=kind,
            group=self._ranks,
            root=self.translate(root),
            payload=value,
            nbytes=int(nbytes),
            op=op,
            phase=self._phase_label,
        )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comm rank={self._rank}/{self.size} cid={self._cid}>"

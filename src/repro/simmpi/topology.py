"""Process-grid topologies used by the CA N-body algorithms.

The paper arranges ``p`` processors in a two-dimensional grid of ``p/c``
columns (*teams*) and ``c`` rows (*replication layers*).  This module fixes
the rank <-> (row, column) mapping and builds the row/team
sub-communicators.

Mapping convention (row-major): ``rank = row * nteams + col``.  Consecutive
ranks therefore sit in consecutive *columns* of the same row, so the shift
phase (column -> column within a row) travels between ranks that are
adjacent in rank space — and, under the machines' packed rank->node mapping,
usually adjacent in the torus.  Team members (same column, all rows) are
``nteams`` apart in rank space, so team collectives span long torus
distances when ``c`` is large.  This is precisely the collective-versus-
point-to-point cost balance the paper tunes ``c`` against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import require, require_divides

__all__ = ["ReplicatedGrid", "ring_shift"]


@dataclass(frozen=True)
class ReplicatedGrid:
    """The ``c x (p/c)`` processor grid of the CA algorithms.

    Attributes
    ----------
    p:
        Total processor count.
    c:
        Replication factor (number of rows).
    layout:
        How the grid maps onto MPI ranks.  ``"rows"`` (default, the mapping
        analyzed throughout): ``rank = row * nteams + col`` — shift
        neighbors are adjacent ranks, team members are ``nteams`` apart.
        ``"teams"``: ``rank = col * c + row`` — each team's members are
        contiguous (often same-node: cheap collectives) while shifts
        travel ``c`` ranks per column step.  An ablation of the
        collective/point-to-point balance the paper tunes ``c`` against.
    """

    p: int
    c: int
    layout: str = "rows"

    def __post_init__(self):
        require(self.p >= 1, f"p must be >= 1, got {self.p}")
        require(1 <= self.c <= self.p, f"c must be in [1, p], got c={self.c}, p={self.p}")
        require_divides(self.c, self.p, "replication factor")
        require(self.layout in ("rows", "teams"),
                f"layout must be 'rows' or 'teams', got {self.layout!r}")

    @property
    def nteams(self) -> int:
        """Number of teams (columns), ``p / c``."""
        return self.p // self.c

    # -- rank <-> (row, col) ------------------------------------------------

    def row_of(self, rank: int) -> int:
        """Replication row of a world rank (layout-dependent)."""
        if self.layout == "rows":
            return rank // self.nteams
        return rank % self.c

    def col_of(self, rank: int) -> int:
        """Team (column) of a world rank (layout-dependent)."""
        if self.layout == "rows":
            return rank % self.nteams
        return rank // self.c

    def rank_at(self, row: int, col: int) -> int:
        """World rank at (replication row, team column)."""
        # Hot path of every shift step; checks are inlined so the error
        # messages are only built on failure.
        c = self.c
        nteams = self.p // c
        if not 0 <= row < c:
            require(False, f"row {row} out of range [0, {c})")
        if not 0 <= col < nteams:
            require(False, f"col {col} out of range [0, {nteams})")
        if self.layout == "rows":
            return row * nteams + col
        return col * c + row

    # -- groups ------------------------------------------------------------

    def team_ranks(self, col: int) -> list[int]:
        """World ranks of the team (column) ``col``, row order."""
        return [self.rank_at(r, col) for r in range(self.c)]

    def row_ranks(self, row: int) -> list[int]:
        """World ranks of replication layer ``row``, column order."""
        return [self.rank_at(row, c) for c in range(self.nteams)]

    def leader_of(self, col: int) -> int:
        """World rank of the team leader (row 0) of column ``col``."""
        return self.rank_at(0, col)

    # -- communicators -------------------------------------------------------

    def team_comm(self, comm):
        """Sub-communicator over this rank's team; rank order = row order."""
        return comm.sub(self.team_ranks(self.col_of(comm.rank)))

    def row_comm(self, comm):
        """Sub-communicator over this rank's row; rank order = column order."""
        return comm.sub(self.row_ranks(self.row_of(comm.rank)))


def ring_shift(comm, payload, offset: int, tag: int = 0, *, nbytes: int | None = None):
    """Cyclically shift ``payload`` by ``offset`` positions around ``comm``.

    Every rank sends to ``rank + offset`` and receives from
    ``rank - offset`` (mod size).  ``offset`` may be negative or zero; a
    zero offset degenerates to a self-copy (still charged by the machine
    model's local-transfer cost).  Generator; returns the received payload.
    """
    size = comm.size
    dst = (comm.rank + offset) % size
    src = (comm.rank - offset) % size
    received = yield from comm.sendrecv(dst, payload, src, tag, nbytes=nbytes)
    return received

"""Deterministic fault injection for the simulated-MPI engine.

The paper's replication factor ``c`` is not only a bandwidth lever: every
team block exists in ``c`` copies across a column of the processor grid, so
the algorithm carries free redundancy.  This module supplies the *fault
model* that lets the runtime exercise that redundancy: a
:class:`FaultSchedule` the engine consults at operation post/match/complete
time, able to

* **kill a rank** at a virtual time or after a fixed number of operations
  (the rank's generator is closed; peers observe :class:`Tombstone`
  payloads after a detection latency);
* **delay** a point-to-point transfer by a fixed or seeded-random amount;
* **drop** a transfer — the engine models a bounded retry/timeout loop
  (each lost attempt costs ``retry_timeout`` plus a wire time, and the
  retransmit traffic is charged to the dedicated ``retry`` trace phase);
  more than ``max_retries`` consecutive losses raise
  :class:`~repro.simmpi.errors.TransferTimeoutError`;
* **corrupt** a payload — flip bytes of the delivered copy (positions for
  particle payloads, a ``corrupted`` mark for virtual blocks).  With
  ``detect=True`` the corruption is caught by a (modeled) checksum and
  handled exactly like a drop.

Determinism
-----------
Everything is a pure function of the *schedule* and the *operation
identity* — never of wall-clock time or global call order:

* kills key on ``(rank, op_index)`` or ``(rank, virtual_time)``;
* point-to-point faults key on the **channel** ``(src, dst)`` and the
  per-channel match sequence number ``seq`` (0 for the first transfer ever
  matched from ``src`` to ``dst``, 1 for the next, ...);
* the random model derives a private generator from
  ``SeedSequence([seed, src, dst, seq])``, so the fault drawn for one
  transfer is independent of every other transfer and of evaluation order.

Running the same program under the same schedule therefore produces
bitwise-identical clocks, traffic and payloads, which is what makes fault
runs regression-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "CorruptTransfer",
    "DelayTransfer",
    "DropTransfer",
    "FaultSchedule",
    "KillRank",
    "P2PFault",
    "Tombstone",
    "corrupt_payload",
]


# ---------------------------------------------------------------------------
# Scheduled fault events.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KillRank:
    """Kill world rank ``rank``.

    Exactly one trigger must be given.  ``after_ops = k`` kills the rank
    immediately before it issues its ``(k+1)``-th engine operation;
    ``at_time = t`` kills it the first time it would issue an operation
    with its virtual clock at or past ``t``.  A blocked rank dies only
    once it resumes (kills are processed on the victim's own thread of
    control, like a node loss taking effect at its next syscall).
    """

    rank: int
    at_time: float | None = None
    after_ops: int | None = None

    def __post_init__(self):
        if (self.at_time is None) == (self.after_ops is None):
            raise ValueError("KillRank needs exactly one of at_time/after_ops")


@dataclass(frozen=True)
class DelayTransfer:
    """Delay the ``match``-th transfer on channel ``(src, dst)``."""

    src: int
    dst: int
    seconds: float
    match: int = 0


@dataclass(frozen=True)
class DropTransfer:
    """Lose the first ``times`` attempts of the ``match``-th transfer.

    The engine retries after ``retry_timeout``; the transfer ultimately
    succeeds unless ``times`` exceeds the schedule's ``max_retries``.
    """

    src: int
    dst: int
    match: int = 0
    times: int = 1


@dataclass(frozen=True)
class CorruptTransfer:
    """Corrupt the payload of the ``match``-th transfer on ``(src, dst)``.

    ``detect=False`` delivers the corrupted copy (silent corruption);
    ``detect=True`` models a checksum catching it, i.e. one drop+retry.
    """

    src: int
    dst: int
    match: int = 0
    detect: bool = False


@dataclass(frozen=True)
class P2PFault:
    """Resolved fault for one matched transfer (engine-facing)."""

    delay: float = 0.0
    drops: int = 0
    corrupt: bool = False


@dataclass(frozen=True)
class Tombstone:
    """Payload delivered for a receive whose peer is dead.

    Rank programs that opt into recovery test ``isinstance(payload,
    Tombstone)``; fail-fast programs crash on it, which the engine turns
    into the usual :class:`~repro.simmpi.errors.RankFailedError`.
    """

    rank: int
    time: float


def corrupt_payload(payload: Any, rng: np.random.Generator) -> Any:
    """A corrupted *copy* of ``payload`` (the sender's data is untouched).

    NumPy float arrays get one element bit-flipped in its mantissa;
    particle containers get the flip in their position array; virtual
    blocks (which carry no bytes) are returned with ``corrupted`` counts —
    their ``count`` is XOR-perturbed so downstream pair accounting sees
    the damage.  Payloads with no recognized bytes are returned unchanged.
    """
    from repro.physics.particles import ParticleSet, TravelBlock, VirtualBlock

    def _flip_array(arr: np.ndarray) -> np.ndarray:
        out = arr.copy()
        flat = out.view(np.uint8).reshape(-1)
        if flat.size == 0:
            return out
        idx = int(rng.integers(flat.size))
        flat[idx] ^= np.uint8(1 << int(rng.integers(8)))
        return out

    if isinstance(payload, np.ndarray) and payload.size:
        return _flip_array(payload)
    if isinstance(payload, TravelBlock):
        return TravelBlock(pos=_flip_array(payload.pos), ids=payload.ids.copy(),
                           team=payload.team,
                           forces=None if payload.forces is None
                           else payload.forces.copy())
    if isinstance(payload, ParticleSet):
        return ParticleSet(_flip_array(payload.pos), payload.vel.copy(),
                           payload.ids.copy())
    if isinstance(payload, VirtualBlock):
        return VirtualBlock(count=payload.count ^ 1, team=payload.team,
                            extra_bytes=payload.extra_bytes)
    return payload


# ---------------------------------------------------------------------------
# The schedule.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSchedule:
    """A complete, deterministic description of every injected fault.

    Parameters
    ----------
    events:
        Explicit :class:`KillRank` / :class:`DelayTransfer` /
        :class:`DropTransfer` / :class:`CorruptTransfer` records.
    seed:
        Seed for the random fault model.  ``None`` disables random faults
        even when the probabilities below are nonzero.
    drop_prob, delay_prob, corrupt_prob:
        Per-transfer probabilities of the random model (independent draws
        per matched transfer, pure in ``(seed, src, dst, seq)``).
    delay_seconds:
        Scale of random delays (exponentially distributed).
    retry_timeout:
        Virtual seconds a receiver waits before a lost attempt is
        retransmitted.
    max_retries:
        Retransmit budget per transfer; exceeding it raises
        :class:`~repro.simmpi.errors.TransferTimeoutError`.
    retry_backoff:
        Multiplicative backoff on the retransmit timeout: attempt ``k``
        waits ``retry_timeout * retry_backoff**k``.  The default ``1.0``
        is a flat timeout (the original model).
    checksum:
        Enable end-to-end payload CRC verification.  A corrupted delivery
        whose CRC-32 no longer matches the sender's is rejected and
        retransmitted (charged like a drop, counted in the ``redelivered``
        trace column) instead of being silently accepted.  Undetectable
        corruption (a CRC collision, or a payload type the CRC cannot
        cover) is still delivered damaged.
    detect_seconds:
        Failure-detection latency: how long after a rank's death its peers'
        operations against it complete with :class:`Tombstone` results.
    """

    events: tuple = ()
    seed: int | None = None
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    corrupt_prob: float = 0.0
    delay_seconds: float = 1e-5
    retry_timeout: float = 1e-4
    max_retries: int = 3
    retry_backoff: float = 1.0
    checksum: bool = False
    detect_seconds: float = 0.0
    _kills: dict = field(init=False, repr=False, compare=False,
                         default_factory=dict)
    _p2p: dict = field(init=False, repr=False, compare=False,
                       default_factory=dict)

    def __post_init__(self):
        if self.retry_backoff < 1.0:
            raise ValueError(
                f"retry_backoff must be >= 1.0, got {self.retry_backoff}"
            )
        for name in ("drop_prob", "delay_prob", "corrupt_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        for ev in self.events:
            if isinstance(ev, KillRank):
                if ev.rank in self._kills:
                    raise ValueError(f"rank {ev.rank} killed twice")
                self._kills[ev.rank] = ev
            elif isinstance(ev, (DelayTransfer, DropTransfer, CorruptTransfer)):
                key = (ev.src, ev.dst, ev.match)
                self._p2p.setdefault(key, []).append(ev)
            else:
                raise TypeError(f"unknown fault event {ev!r}")

    # -- queries (engine-facing) ----------------------------------------------

    @property
    def has_kills(self) -> bool:
        return bool(self._kills)

    @property
    def killed_ranks(self) -> tuple[int, ...]:
        """World ranks with a scheduled kill, in ascending order."""
        return tuple(sorted(self._kills))

    def kill_event(self, rank: int) -> KillRank | None:
        """The kill scheduled for ``rank``, if any."""
        return self._kills.get(rank)

    def should_die(self, rank: int, op_index: int, clock: float) -> bool:
        """Pure kill predicate: is ``rank`` dead at its ``op_index``-th
        operation issued at virtual time ``clock``?"""
        ev = self._kills.get(rank)
        if ev is None:
            return False
        if ev.after_ops is not None:
            return op_index >= ev.after_ops
        return clock >= ev.at_time

    def p2p_fault(self, src: int, dst: int, seq: int) -> P2PFault | None:
        """Fault for the ``seq``-th matched transfer on channel
        ``(src, dst)`` — a pure function of its arguments and the schedule.

        Explicit events compose (a delay and a drop on the same transfer
        both apply); the random model adds independent seeded draws.
        Returns ``None`` for the common unfaulted case.
        """
        delay, drops, corrupt = 0.0, 0, False
        for ev in self._p2p.get((src, dst, seq), ()):
            if isinstance(ev, DelayTransfer):
                delay += ev.seconds
            elif isinstance(ev, DropTransfer):
                drops += ev.times
            elif isinstance(ev, CorruptTransfer):
                if ev.detect:
                    drops += 1
                else:
                    corrupt = True
        if self.seed is not None and (
            self.drop_prob or self.delay_prob or self.corrupt_prob
        ):
            rng = self.channel_rng(src, dst, seq)
            if self.drop_prob and rng.random() < self.drop_prob:
                drops += 1
            if self.delay_prob and rng.random() < self.delay_prob:
                delay += float(rng.exponential(self.delay_seconds))
            if self.corrupt_prob and rng.random() < self.corrupt_prob:
                corrupt = True
        if delay == 0.0 and drops == 0 and not corrupt:
            return None
        return P2PFault(delay=delay, drops=drops, corrupt=corrupt)

    def channel_rng(self, src: int, dst: int, seq: int) -> np.random.Generator:
        """The private generator for one transfer (also used to corrupt)."""
        entropy = [0 if self.seed is None else self.seed, src, dst, seq]
        return np.random.default_rng(np.random.SeedSequence(entropy))

"""Phase-breakdown records shared by the model and the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import fmt_time

__all__ = ["PhaseBreakdown", "COMM_PHASES"]

#: Phases counted as communication when computing "communication time".
COMM_PHASES = ("bcast", "shift", "reduce", "reassign", "allgather", "halo")


@dataclass
class PhaseBreakdown:
    """Per-timestep seconds by phase, plus free-form metadata.

    The phase names match the event simulator's trace labels (``bcast``,
    ``shift``, ``compute``, ``reduce``, ``reassign``, ``allgather``) so the
    two tiers can be compared phase by phase.
    """

    phases: dict[str, float]
    meta: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Estimated execution time per timestep."""
        return float(sum(self.phases.values()))

    @property
    def communication(self) -> float:
        """Sum of the communication phases (everything but compute)."""
        return float(
            sum(v for k, v in self.phases.items() if k in COMM_PHASES)
        )

    @property
    def computation(self) -> float:
        return float(self.phases.get("compute", 0.0))

    def get(self, phase: str) -> float:
        return float(self.phases.get(phase, 0.0))

    def scaled(self, factor: float) -> "PhaseBreakdown":
        return PhaseBreakdown(
            phases={k: v * factor for k, v in self.phases.items()},
            meta=dict(self.meta),
        )

    def summary(self) -> str:
        """One line: the total and each phase's formatted time."""
        parts = [f"{k}={fmt_time(v)}" for k, v in self.phases.items()]
        return f"total={fmt_time(self.total)} (" + ", ".join(parts) + ")"

    @staticmethod
    def from_report(report, labels: tuple[str, ...] = ()) -> "PhaseBreakdown":
        """Build a breakdown from an event-simulation trace report,
        taking the max over ranks per phase (critical-path convention)."""
        phases = {}
        for lab in labels or report.phase_labels():
            phases[lab] = report.max_time(lab)
        return PhaseBreakdown(phases=phases)

"""Analytic performance model: closed-form per-phase estimates at the
paper's machine scales, cross-validated against the event simulator."""

from repro.model.analytic import (
    allgather_baseline_breakdown,
    allpairs_breakdown,
    cutoff_breakdown,
    symmetric_breakdown,
)
from repro.model.collmodel import (
    SubsetMachine,
    team_bcast_time,
    team_reduce_time,
    world_allgather_time,
)
from repro.model.linkmodel import LinkModel
from repro.model.phases import COMM_PHASES, PhaseBreakdown
from repro.model.scaling import (
    allpairs_efficiency,
    allpairs_weak_scaling,
    cutoff_efficiency,
    serial_time_allpairs,
    serial_time_cutoff,
)

__all__ = [
    "COMM_PHASES",
    "LinkModel",
    "PhaseBreakdown",
    "SubsetMachine",
    "allgather_baseline_breakdown",
    "allpairs_breakdown",
    "allpairs_efficiency",
    "allpairs_weak_scaling",
    "cutoff_breakdown",
    "cutoff_efficiency",
    "serial_time_allpairs",
    "serial_time_cutoff",
    "symmetric_breakdown",
    "team_bcast_time",
    "team_reduce_time",
    "world_allgather_time",
]

"""Strong-scaling efficiency series (Figures 3 and 7).

The paper plots *relative efficiency vs. one core*: ``eff(p) = T_serial /
(p * T_step(p))``.  The serial baseline does exactly the physically
necessary work — all ``n^2`` pair evaluations for all-pairs, and the
expected number of within-cutoff candidate pairs for cutoff runs (a serial
cell-list code scans its own cell neighborhood) — so the parallel runs pay
their real overheads: communication, replication collectives, window
granularity, and boundary imbalance.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.model.analytic import allpairs_breakdown, cutoff_breakdown
from repro.model.phases import PhaseBreakdown

__all__ = [
    "allpairs_efficiency",
    "allpairs_weak_scaling",
    "cutoff_efficiency",
    "serial_time_allpairs",
    "serial_time_cutoff",
]


def serial_time_allpairs(pair_time: float, n: int) -> float:
    """One core evaluating every ordered pair once."""
    return pair_time * float(n) * float(n)


def serial_time_cutoff(
    pair_time: float, n: int, rcut: float, box_length: float, dim: int
) -> float:
    """One core doing the necessary work: ``n * k`` evaluations with ``k``
    the expected partner count within the cutoff *ball* — the paper's
    Equation 7 (``k = (2 r_c / l) n`` in 1-D) extended to ``d`` dimensions
    with the d-ball volume ``V_d r_c^d`` (``pi r_c^2`` in 2-D).  The
    parallel code scans more (its window is quantized to team regions and
    only prunes block pairs, not particle pairs), which is part of its
    measured inefficiency."""
    ball = math.pi ** (dim / 2.0) / math.gamma(dim / 2.0 + 1.0)
    frac = min(1.0, ball * (rcut / box_length) ** dim)
    return pair_time * float(n) * float(n) * frac


def _efficiency(serial: float, p: int, step: PhaseBreakdown) -> float:
    t = step.meta.get("makespan", step.total)
    return serial / (p * t)


def allpairs_efficiency(
    machine_factory: Callable[[int], object],
    n: int,
    machine_sizes: Sequence[int],
    cs: Sequence[int],
    *,
    dim: int = 2,
) -> dict[int, list[tuple[int, float]]]:
    """Efficiency series per replication factor.

    Returns ``{c: [(p, efficiency), ...]}``; (p, c) combinations where
    ``c`` does not divide ``p`` are skipped (as the paper's plots do).
    """
    out: dict[int, list[tuple[int, float]]] = {c: [] for c in cs}
    for p in machine_sizes:
        machine = machine_factory(p)
        serial = serial_time_allpairs(machine.pair_time, n)
        for c in cs:
            # The paper's runs keep c^2 | p (integral p/c^2 shift steps);
            # padded schedules load-balance worse, so skip those points.
            if p % c or c * c > p or (p // c) % c:
                continue
            step = allpairs_breakdown(machine, n, c, dim=dim)
            out[c].append((p, _efficiency(serial, p, step)))
    return out


def cutoff_efficiency(
    machine_factory: Callable[[int], object],
    n: int,
    machine_sizes: Sequence[int],
    cs: Sequence[int],
    *,
    rcut: float,
    box_length: float,
    dim: int,
    migrate_fraction: float = 0.05,
) -> dict[int, list[tuple[int, float]]]:
    """Efficiency series per replication factor for cutoff simulations.

    Skips (p, c) combinations that are infeasible: ``c`` must divide ``p``
    and the replication must "fit inside" the interaction window (the
    paper's ``c <= 2m`` practicality constraint, which here generalizes to
    ``c <= window size``).
    """
    out: dict[int, list[tuple[int, float]]] = {c: [] for c in cs}
    for p in machine_sizes:
        machine = machine_factory(p)
        serial = serial_time_cutoff(machine.pair_time, n, rcut, box_length, dim)
        for c in cs:
            if p % c or c * c > p:
                continue
            step = cutoff_breakdown(
                machine, n, c, rcut=rcut, box_length=box_length, dim=dim,
                migrate_fraction=migrate_fraction,
            )
            if c > step.meta["window"]:
                continue
            out[c].append((p, _efficiency(serial, p, step)))
    return out


def allpairs_weak_scaling(
    machine_factory: Callable[[int], object],
    base_n: int,
    machine_sizes: Sequence[int],
    cs: Sequence[int],
    *,
    dim: int = 2,
) -> dict[int, list[tuple[int, int, float, float]]]:
    """Weak-scaling study (an extension; the paper is strong-scaling only).

    All-pairs work is ``n^2 / p`` per core, so the per-core load stays
    constant when ``n`` grows as ``sqrt(p)``: ``n(p) = base_n *
    sqrt(p / p_min)``.  Returns ``{c: [(p, n, seconds, efficiency)]}``
    where efficiency is the smallest machine's step time over this one's
    (1.0 = perfect weak scaling).  Infeasible (p, c) points are skipped as
    in the strong-scaling series.
    """
    out: dict[int, list[tuple[int, int, float, float]]] = {c: [] for c in cs}
    p_min = min(machine_sizes)
    for c in cs:
        base_time = None
        for p in sorted(machine_sizes):
            if p % c or c * c > p or (p // c) % c:
                continue
            n = int(round(base_n * math.sqrt(p / p_min)))
            machine = machine_factory(p)
            step = allpairs_breakdown(machine, n, c, dim=dim)
            t = step.meta.get("makespan", step.total)
            if base_time is None:
                base_time = t
            out[c].append((p, n, t, base_time / t))
    return out

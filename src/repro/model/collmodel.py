"""Exact collective timings for the analytic tier.

Broadcast and reduce within a team are log-depth trees whose edges span
*strided* ranks (team members are ``nteams`` apart), so their cost depends
on the machine topology in a way no closed form captures faithfully.
Instead of approximating, this module runs the **actual collective
implementation** (:mod:`repro.simmpi.collectives`) on a tiny embedded
engine whose machine is the real machine restricted to the team's ranks —
``c`` simulated ranks, microseconds of wall time — and reports the exact
critical-path duration.  Analytic phase estimates therefore agree with the
full event simulation on collectives *by construction*.
"""

from __future__ import annotations

from functools import lru_cache

from repro.machines.base import MachineModel
from repro.simmpi.engine import Engine

__all__ = ["SubsetMachine", "team_bcast_time", "team_reduce_time",
           "world_allgather_time"]


class SubsetMachine:
    """A machine model restricted to a subset of a parent's ranks."""

    def __init__(self, parent: MachineModel, ranks: tuple[int, ...]):
        self.parent = parent
        self.ranks = ranks
        self.nranks = len(ranks)

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        return self.parent.p2p_time(self.ranks[src], self.ranks[dst], nbytes)

    @property
    def has_hw_collectives(self) -> bool:
        # Dedicated networks serve whole partitions only (BG/P tree).
        return False

    def hw_collective_time(self, kind: str, nbytes: int, group_size: int) -> float:
        raise NotImplementedError("subset machines have no collective network")

    def interactions_time(self, npairs: float) -> float:
        return self.parent.interactions_time(npairs)


class _Payload:
    """Dummy payload with an explicit wire size."""

    __slots__ = ("wire_nbytes",)

    def __init__(self, nbytes: int):
        self.wire_nbytes = int(nbytes)

    def __add__(self, other):  # reduction operator support
        return self


@lru_cache(maxsize=4096)
def _bcast_time_cached(machine, ranks, nbytes) -> float:
    sub = SubsetMachine(machine, ranks)

    def program(comm):
        v = yield from comm.bcast(
            _Payload(nbytes) if comm.rank == 0 else None, root=0
        )
        del v

    return Engine(sub).run(program).elapsed


@lru_cache(maxsize=4096)
def _reduce_time_cached(machine, ranks, nbytes) -> float:
    sub = SubsetMachine(machine, ranks)

    def program(comm):
        v = yield from comm.reduce(_Payload(nbytes), lambda a, b: a, root=0)
        del v

    return Engine(sub).run(program).elapsed


def team_bcast_time(machine: MachineModel, ranks: tuple[int, ...], nbytes: int) -> float:
    """Critical-path time of a leader broadcast over ``ranks``."""
    if len(ranks) <= 1:
        return 0.0
    return _bcast_time_cached(machine, ranks, int(nbytes))


def team_reduce_time(machine: MachineModel, ranks: tuple[int, ...], nbytes: int) -> float:
    """Critical-path time of a sum-reduction to the leader over ``ranks``."""
    if len(ranks) <= 1:
        return 0.0
    return _reduce_time_cached(machine, ranks, int(nbytes))


def world_allgather_time(machine: MachineModel, nbytes_per_rank: int) -> float:
    """Software allgather over the whole machine (closed form).

    Running the real collective at 24K+ ranks is exactly what the analytic
    tier avoids, so this one is a formula: recursive doubling for
    power-of-two sizes (round ``j`` moves ``2^j`` blocks), gather+bcast
    otherwise — matching :func:`repro.simmpi.collectives.allgather`'s
    structure, with the torus mean hop distance standing in for per-edge
    hops.
    """
    p = machine.nranks
    if p == 1:
        return 0.0
    if hasattr(machine, "torus"):
        mean_hops = machine.torus.mean_hops()
        alpha = machine.alpha + machine.alpha_hop * mean_hops
        beta = machine.internode_beta(mean_hops)
    else:
        alpha = machine.alpha
        beta = machine.beta
    if p & (p - 1) == 0:
        total = 0.0
        for j in range(p.bit_length() - 1):
            total += alpha + (2**j) * nbytes_per_rank * beta
        return total
    # gather (binomial, doubling payloads) + bcast of the full vector
    total = 0.0
    rounds = (p - 1).bit_length()
    for j in range(rounds):
        total += alpha + min(2**j, p) * nbytes_per_rank * beta
    total += rounds * alpha + rounds * p * nbytes_per_rank * beta / 2.0
    return total

"""Closed-form (vectorized) per-phase time estimates at paper scale.

The event simulator executes every message of every rank and is exact, but
a ``c = 1`` all-pairs step at ``p = 24576`` is ``p^2 ~ 6x10^8`` messages —
far beyond what Python event simulation can turn around.  This module
computes the same per-phase quantities semi-analytically:

* **bcast / reduce** — *exact*: the real tree collectives are executed on a
  tiny embedded engine restricted to one team's ranks
  (:mod:`repro.model.collmodel`), sampled over several teams for topology
  variation;
* **shift** — per row, the distinct uniform moves of the schedule are
  enumerated (a handful per row) and each is charged the *maximum* wire
  time over all columns performing it — the gate of a uniform systolic
  step;
* **compute** — per-column reachable-update counts (closed form from the
  window geometry), times the block-pair cost;
* **stall** — the load-imbalance waiting the paper observes in its cutoff
  runs: light (boundary) columns wait for heavy (interior) columns inside
  the rendezvous shifts, estimated as the spread between the heaviest and
  lightest column's computation and charged to the shift phase;
* **reassign** — the per-step neighbor-leader particle migration exchange.

The model-vs-simulator consistency tests run both tiers on the same small
configurations and check agreement phase by phase.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.allpairs import allpairs_config
from repro.core.cutoff import cutoff_config
from repro.machines.base import PARTICLE_BYTES
from repro.model.collmodel import (
    team_bcast_time,
    team_reduce_time,
    world_allgather_time,
)
from repro.model.linkmodel import LinkModel
from repro.model.phases import PhaseBreakdown
from repro.util import require

__all__ = [
    "allgather_baseline_breakdown",
    "allpairs_breakdown",
    "cutoff_breakdown",
    "symmetric_breakdown",
]

#: Bytes per particle of a force contribution (dim doubles).
_FORCE_COMPONENT_BYTES = 8


def _sample_columns(nteams: int, nsamples: int = 5) -> list[int]:
    if nteams <= nsamples:
        return list(range(nteams))
    return sorted({round(i * (nteams - 1) / (nsamples - 1)) for i in range(nsamples)})


def _team_collective_times(machine, grid, nbytes_bcast: int, nbytes_reduce: int):
    """Max-over-sampled-teams (bcast, reduce) tree times.

    The isolated-tree critical path from the embedded mini-simulation is
    scaled by the machine's ``collective_contention`` factor
    ``1 + cc * (c - 1)``: at paper scale every one of the ``p/c`` teams
    runs its collective simultaneously, and measured collectives stop
    scaling logarithmically (the effect the paper tunes ``c`` against).
    """
    bc = rd = 0.0
    for col in _sample_columns(grid.nteams):
        ranks = tuple(grid.team_ranks(col))
        bc = max(bc, team_bcast_time(machine, ranks, nbytes_bcast))
        rd = max(rd, team_reduce_time(machine, ranks, nbytes_reduce))
    cc = getattr(machine, "collective_contention", 0.0)
    factor = 1.0 + cc * max(0, grid.c - 1)
    return bc * factor, rd * factor


def _grid_ranks(grid, row: int, cols: np.ndarray) -> np.ndarray:
    """Vectorized ``grid.rank_at(row, col)`` over a column array."""
    if grid.layout == "rows":
        return row * grid.nteams + cols
    return cols * grid.c + row


def _row_shift_time(link: LinkModel, grid, sched, row: int, nbytes: int,
                    agg: str = "max") -> float:
    """Total shift-phase wire time of row ``row`` (skew + all steps).

    Each distinct move is evaluated once over every column, weighted by how
    many steps use it.  ``agg='max'`` charges the column-wise maximum (the
    gate a fully-coupled uniform step converges to — the critical rank's
    experience); ``agg='mean'`` charges the typical column (used by the
    makespan estimate, since the expensive ring-edge columns overlap with
    other ranks' computation).
    """
    moves: Counter = Counter()
    skew = sched.skew_move(row)
    if any(skew):
        moves[skew] += 1
    for i in range(sched.steps):
        mv = sched.step_move(row, i)
        if any(mv):
            moves[mv] += 1
    T = grid.nteams
    cols = np.arange(T, dtype=np.int64)
    src = _grid_ranks(grid, row, cols)
    total = 0.0
    for mv, count in moves.items():
        dest_cols = _displace_cols(sched, cols, mv)
        times = link.wire_times(src, _grid_ranks(grid, row, dest_cols), nbytes)
        t = float(times.max() if agg == "max" else times.mean())
        total += count * t
    return total


def _displace_cols(sched, cols: np.ndarray, move: tuple[int, ...]) -> np.ndarray:
    """Vectorized ``sched.displace`` over all columns."""
    dims = sched.team_dims
    rem = cols
    digits = []
    for d in reversed(dims):
        rem, r = np.divmod(rem, d)
        digits.append(r)
    digits.reverse()
    out = np.zeros_like(cols)
    for k, d in enumerate(dims):
        out = out * d + (digits[k] + move[k]) % d
    return out


# ---------------------------------------------------------------------------
# All-pairs (Figure 2 / 3 workloads)
# ---------------------------------------------------------------------------


def allpairs_breakdown(machine, n: int, c: int, *, dim: int = 2,
                       layout: str = "rows") -> PhaseBreakdown:
    """Per-phase time of one CA all-pairs step (Algorithm 1) at scale."""
    p = machine.nranks
    cfg = allpairs_config(p, c, layout=layout)
    grid, sched = cfg.grid, cfg.schedule
    T = grid.nteams
    b_max = -(-n // T)  # ceil: heaviest block
    b_avg = n / T
    link = LinkModel(machine)

    bcast, reduce_tree = _team_collective_times(
        machine,
        grid,
        nbytes_bcast=PARTICLE_BYTES * b_max,
        nbytes_reduce=_FORCE_COMPONENT_BYTES * dim * b_max,
    )

    row_links = [
        _row_shift_time(link, grid, sched, k, PARTICLE_BYTES * b_max)
        for k in range(c)
    ]
    shift = max(row_links)

    # Updates per row: non-skipped positions in row k's residue class.
    upd = [
        sum(1 for u in sched.covered_positions(k) if not sched.skip[u])
        for k in range(c)
    ]
    pair_cost = machine.pair_time * b_max * b_avg
    compute = max(upd) * pair_cost
    # Rows desynchronize (different skews/wrap links, padding-skip counts);
    # the team reduction waits for the slowest row, so the fast rows spend
    # the difference waiting inside the reduce phase.
    row_imbalance = (max(upd) - min(upd)) * pair_cost + (
        max(row_links) - min(row_links)
    )

    return PhaseBreakdown(
        phases={
            "bcast": bcast,
            "shift": shift,
            "compute": compute,
            "reduce": reduce_tree + row_imbalance,
        },
        meta={
            "algorithm": "ca-allpairs",
            "machine": getattr(machine, "name", "?"),
            "p": p,
            "n": n,
            "c": c,
            "teams": T,
            "steps": sched.steps,
            "block": b_max,
            # All-pairs work is uniform across ranks, so the stacked phase
            # maxima describe one rank's path: the makespan is their sum.
            "makespan": bcast + shift + compute + reduce_tree + row_imbalance,
        },
    )


def symmetric_breakdown(machine, n: int, c: int, *, dim: int = 2,
                        layout: str = "rows") -> PhaseBreakdown:
    """Per-phase time of one *symmetric* (Newton's-third-law) all-pairs
    step at scale — the extension experiment: what the paper's Figure 2
    workloads would cost with force symmetry exploited.

    Mirrors :func:`allpairs_breakdown` over the half-ring schedule:
    buffers carry reactions (d extra doubles per particle on the wire),
    the self-block position costs half a block-pair, and one extra
    point-to-point message per rank returns the reactions.
    """
    from repro.core.symmetric import symmetric_config

    p = machine.nranks
    cfg = symmetric_config(p, c)
    grid, sched = cfg.grid, cfg.schedule
    if layout != "rows":
        from dataclasses import replace as _replace

        grid = _replace(grid, layout=layout)
    T = grid.nteams
    b_max = -(-n // T)
    b_avg = n / T
    link = LinkModel(machine)
    travel_bytes = (PARTICLE_BYTES + _FORCE_COMPONENT_BYTES * dim) * b_max

    bcast, reduce_tree = _team_collective_times(
        machine,
        grid,
        nbytes_bcast=PARTICLE_BYTES * b_max,
        nbytes_reduce=_FORCE_COMPONENT_BYTES * dim * b_max,
    )

    row_links = [
        _row_shift_time(link, grid, sched, k, travel_bytes)
        for k in range(c)
    ]
    shift = max(row_links)

    # Per-row compute: full block-pairs for nonzero offsets, half for the
    # self position; the antipodal position (even T) engages on half the
    # columns, so the critical rank still pays it in full.
    pair_cost = machine.pair_time * b_max * b_avg
    per_row = []
    for k in range(c):
        cost = 0.0
        for u in sched.covered_positions(k):
            if sched.skip[u]:
                continue
            cost += 0.5 * pair_cost if sched.offsets[u][0] == 0 else pair_cost
        per_row.append(cost)
    compute = max(per_row)
    row_imbalance = (max(per_row) - min(per_row)) + (
        max(row_links) - min(row_links)
    )

    # Reaction return: one message of the reaction array per rank.  The
    # worst route spans the distance from the buffer's final station to
    # its home column.
    ret_bytes = (PARTICLE_BYTES + _FORCE_COMPONENT_BYTES * dim) * b_max
    cols = np.arange(T, dtype=np.int64)
    ret = 0.0
    for k in range(c):
        u_last = sched.position(k, sched.steps - 1)
        off = sched.offsets[u_last]
        dest_cols = _displace_cols(sched, cols, off)
        src = _grid_ranks(grid, k, cols)
        dst = _grid_ranks(grid, k, dest_cols)
        ret = max(ret, float(link.wire_times(src, dst, ret_bytes).max()))

    return PhaseBreakdown(
        phases={
            "bcast": bcast,
            "shift": shift,
            "compute": compute,
            "return": ret,
            "reduce": reduce_tree + row_imbalance,
        },
        meta={
            "algorithm": "ca-allpairs-symmetric",
            "machine": getattr(machine, "name", "?"),
            "p": p,
            "n": n,
            "c": c,
            "teams": T,
            "steps": sched.steps,
            "block": b_max,
            "makespan": bcast + shift + compute + ret + reduce_tree
            + row_imbalance,
        },
    )


def allgather_baseline_breakdown(machine, n: int, *, use_tree: bool) -> PhaseBreakdown:
    """The naive particle decomposition (allgather) at scale.

    ``use_tree=True`` charges the machine's dedicated collective network
    (the paper's Intrepid "c=1 (tree)" bars); otherwise the software
    allgather formula over the torus.
    """
    p = machine.nranks
    b_max = -(-n // p)
    nbytes = PARTICLE_BYTES * b_max
    if use_tree:
        require(machine.has_hw_collectives,
                "tree baseline needs a machine with hardware collectives")
        gather = machine.hw_collective_time("allgather", nbytes, p)
    else:
        gather = world_allgather_time(machine, nbytes)
    compute = machine.pair_time * b_max * n
    return PhaseBreakdown(
        phases={"allgather": gather, "compute": compute},
        meta={
            "algorithm": "particle-allgather" + ("-tree" if use_tree else ""),
            "machine": getattr(machine, "name", "?"),
            "p": p,
            "n": n,
            "c": 1,
        },
    )


# ---------------------------------------------------------------------------
# Cutoff (Figure 6 / 7 workloads)
# ---------------------------------------------------------------------------


def _count_reachable(geometry, team_mi: tuple[int, ...], m: tuple[int, ...],
                     rcut: float) -> int:
    """Exact number of window offsets whose region can interact with the
    team at multi-index ``team_mi`` (Euclidean region-gap test, in-bounds).

    Matches :meth:`TeamGeometry.team_distance_ok` exactly: the gap along an
    axis for an offset of ``o`` cells is ``max(|o| - 1, 0)`` cell widths.
    Periodic geometries have no out-of-bounds offsets (every team sees the
    full window), which is what removes the boundary imbalance.
    """
    dims = geometry.team_dims
    widths = geometry.cell_widths
    gap2 = np.zeros((1,))
    valid = np.ones((1,), dtype=bool)
    for k, (d, mk, w) in enumerate(zip(dims, m, widths)):
        offs = np.arange(-mk, mk + 1)
        if geometry.periodic:
            inb = np.ones(offs.shape, dtype=bool)
        else:
            inb = (team_mi[k] + offs >= 0) & (team_mi[k] + offs < d)
        g = np.maximum(np.abs(offs) - 1, 0) * w
        gap2 = (gap2[:, None] + (g**2)[None, :]).reshape(-1)
        valid = (valid[:, None] & inb[None, :]).reshape(-1)
    return int((valid & (gap2 <= rcut * rcut + 1e-12)).sum())


def _reachable_extremes(geometry, m: tuple[int, ...], rcut: float) -> tuple[int, int]:
    """(max, min) per-team reachable-window counts.

    The interior team (window fully in bounds) maximizes the count; the
    corner team minimizes it — boundary clipping only removes offsets.
    """
    dims = geometry.team_dims
    center = tuple(d // 2 for d in dims)
    corner = (0,) * len(dims)
    cmax = _count_reachable(geometry, center, m, rcut)
    cmin = _count_reachable(geometry, corner, m, rcut)
    return cmax, cmin


def cutoff_breakdown(
    machine,
    n: int,
    c: int,
    *,
    rcut: float,
    box_length: float,
    dim: int = 1,
    team_dims: tuple[int, ...] | None = None,
    migrate_fraction: float = 0.05,
    include_reassign: bool = True,
    periodic: bool = False,
) -> PhaseBreakdown:
    """Per-phase time of one CA cutoff step (Algorithm 2 / Section IV-C).

    ``periodic=True`` models the periodic-box extension: every team sees
    the full window, so the boundary stalls vanish (and re-assignment
    reaches wrapped neighbors)."""
    p = machine.nranks
    cfg = cutoff_config(p, c, rcut=rcut, box_length=box_length, dim=dim,
                        team_dims=team_dims, periodic=periodic)
    grid, sched, geometry = cfg.grid, cfg.schedule, cfg.geometry
    T = grid.nteams
    b_max = -(-n // T)
    b_avg = n / T
    link = LinkModel(machine)

    bcast, reduce_tree = _team_collective_times(
        machine,
        grid,
        nbytes_bcast=PARTICLE_BYTES * b_max,
        nbytes_reduce=_FORCE_COMPONENT_BYTES * dim * b_max,
    )

    shift_links = max(
        _row_shift_time(link, grid, sched, k, PARTICLE_BYTES * b_max)
        for k in range(c)
    )

    m = geometry.spanned_cells(rcut)
    quantum = machine.pair_time * b_max * b_avg  # one block-pair update
    cmax, cmin = _reachable_extremes(geometry, m, rcut)
    # Per-rank update counts: a team's window positions are split across
    # its c rows, so the critical rank executes ceil(count/c) updates.
    upd_max = -(-int(cmax) // c)
    upd_min = int(cmin) // c
    compute = upd_max * quantum
    # Boundary teams scan fewer block pairs; inside the rendezvous shifts
    # they wait for interior teams — the paper's observed stagnation of
    # shift cost with growing c.
    shift_stall = (cmax - cmin) / c * quantum
    # Whatever imbalance the shifts did not absorb surfaces as waiting at
    # the team reduction (lightly loaded rows arrive early).
    total_imbalance = (upd_max - upd_min) * quantum
    reduce_stall = max(0.0, total_imbalance - shift_stall)

    phases = {
        "bcast": bcast,
        "shift": shift_links + shift_stall,
        "compute": compute,
        "reduce": reduce_tree + reduce_stall,
    }

    # Makespan: the phase maxima above belong to *different* ranks (the
    # ring-edge column owns the shift maximum, an interior column the
    # compute maximum), so their sum overestimates the critical path.  The
    # makespan is governed by whichever rank's own work path is longest.
    links_typ = max(
        _row_shift_time(link, grid, sched, k, PARTICLE_BYTES * b_max, agg="mean")
        for k in range(c)
    )
    # reduce_stall is *waiting* on lightly-loaded ranks — it shows in the
    # reduce bar but overlaps the heavy ranks' computation, so it does not
    # extend the critical path.
    makespan = (
        bcast
        + max(links_typ + compute, shift_links + upd_min * quantum)
        + reduce_tree
    )

    if include_reassign:
        # Leaders exchange migrants with each in-bounds neighbor leader.
        mig_bytes = PARTICLE_BYTES * max(1, int(b_avg * migrate_fraction))
        cols = np.arange(T, dtype=np.int64)
        worst = 0.0
        from itertools import product as _product
        for off in _product(*[(-1, 0, 1)] * len(geometry.team_dims)):
            if all(o == 0 for o in off):
                continue
            dest = _displace_cols(sched, cols, off)
            # Only count pairs that are true (non-wrapping) neighbors.
            valid = _inbounds_mask(geometry, cols, off)
            if valid.any():
                t = link.wire_times(
                    cols[valid], dest[valid], mig_bytes
                ).max()
                worst = max(worst, float(t))
        phases["reassign"] = worst

    return PhaseBreakdown(
        phases=phases,
        meta={
            "algorithm": f"ca-cutoff-{len(geometry.team_dims)}d",
            "machine": getattr(machine, "name", "?"),
            "p": p,
            "n": n,
            "c": c,
            "teams": T,
            "team_dims": geometry.team_dims,
            "m": m,
            # Physical window (prod of 2m+1): the paper's c <= 2m
            # practicality constraint is checked against this.
            "window": int(np.prod([2 * mk + 1 for mk in m])),
            "padded_window": sched.window,
            "steps": sched.steps,
            "block": b_max,
            "makespan": makespan,
        },
    )


def _inbounds_mask(geometry, cols: np.ndarray, off: tuple[int, ...]) -> np.ndarray:
    """True where team ``col`` has a non-wrapping neighbor at ``off``.

    Periodic geometries wrap everywhere, so every neighbor is valid."""
    dims = geometry.team_dims
    rem = cols
    ok = np.ones(cols.shape, dtype=bool)
    if geometry.periodic:
        return ok
    digits = []
    for d in reversed(dims):
        rem, r = np.divmod(rem, d)
        digits.append(r)
    digits.reverse()
    for k, d in enumerate(dims):
        nxt = digits[k] + off[k]
        ok &= (nxt >= 0) & (nxt < d)
    return ok

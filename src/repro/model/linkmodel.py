"""Vectorized machine-model evaluation for the analytic tier.

The discrete-event engine calls ``machine.p2p_time`` per message; the
analytic model needs the same quantity for *millions* of (src, dst) pairs
at paper scale (24K-32K ranks).  :class:`LinkModel` evaluates identical
formulas with NumPy over rank arrays, so the closed-form phase estimates
are consistent with the event simulator by construction (a consistency the
test-suite checks pairwise on small machines).
"""

from __future__ import annotations

import numpy as np

from repro.machines.base import MachineModel, TorusMachine

__all__ = ["LinkModel"]


class LinkModel:
    """Vectorized ``p2p_time`` for a machine model."""

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self._torus = isinstance(machine, TorusMachine)
        if self._torus:
            self._dims = np.array(machine.torus.dims, dtype=np.int64)
            self._cpn = machine.cores_per_node

    def _hops(self, na: np.ndarray, nb: np.ndarray) -> np.ndarray:
        """Wrap-around Manhattan distances between node arrays."""
        ca = np.stack(np.unravel_index(na, tuple(self._dims)), axis=-1)
        cb = np.stack(np.unravel_index(nb, tuple(self._dims)), axis=-1)
        delta = np.abs(ca - cb)
        return np.minimum(delta, self._dims - delta).sum(axis=-1)

    def wire_times(self, src: np.ndarray, dst: np.ndarray, nbytes: float) -> np.ndarray:
        """Per-pair message times, identical to ``machine.p2p_time``."""
        m = self.machine
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if not self._torus:
            t = np.where(
                src == dst,
                m.alpha_local + nbytes * m.beta_local,
                m.alpha + nbytes * m.beta,
            )
            return t
        na, nb = src // self._cpn, dst // self._cpn
        hops = self._hops(na, nb)
        share = m.cores_per_node * np.maximum(1.0, hops * m.route_congestion)
        t = m.alpha + hops * m.alpha_hop + nbytes * m.beta * share
        same_node = na == nb
        if same_node.any():
            t = np.where(same_node, m.alpha_node + nbytes * m.beta_node, t)
        same_rank = src == dst
        if same_rank.any():
            t = np.where(same_rank, m.alpha_local + nbytes * m.beta_local, t)
        return t

    def max_wire_time(self, src: np.ndarray, dst: np.ndarray, nbytes: float) -> float:
        """Max over pairs — the per-step gate of a uniform shift."""
        return float(self.wire_times(src, dst, nbytes).max())

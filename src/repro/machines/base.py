"""Machine-model interface shared by the event engine and the analytic model.

A :class:`MachineModel` answers three questions:

* how long does a point-to-point transfer of ``nbytes`` between two ranks
  take (``p2p_time``) — the alpha-beta cost, optionally with per-hop latency
  from a torus layout and a cheap path for ranks sharing a node;
* how long does one pairwise force evaluation take (``pair_time``) — the
  computation term;
* how long does a dedicated-network (hardware) collective take
  (``hw_collective_time``), for machines like Intrepid that have one.

The same instance drives both the discrete-event engine (which calls
``p2p_time`` per matched message) and the closed-form analytic model (which
evaluates phase formulas with the same constants), so the two tiers are
consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machines.torus import Torus
from repro.util import require

__all__ = ["MachineModel", "TorusMachine"]

#: Particle payload size measured by the paper's implementation.
PARTICLE_BYTES = 52


@dataclass(frozen=True)
class MachineModel:
    """Flat alpha-beta machine: every rank pair is equidistant.

    Parameters
    ----------
    nranks:
        Number of MPI ranks (cores) the machine exposes.
    alpha:
        Per-message latency in seconds.
    beta:
        Per-byte transfer time in seconds (1 / bandwidth).
    pair_time:
        Seconds per pairwise force interaction evaluation.
    alpha_local:
        Latency for a rank messaging itself (buffer copy).
    beta_local:
        Per-byte cost of local copies.
    """

    nranks: int
    alpha: float = 1.0e-6
    beta: float = 2.0e-10
    pair_time: float = 5.0e-8
    alpha_local: float = 2.0e-7
    beta_local: float = 2.5e-11
    name: str = "generic"

    def __post_init__(self):
        require(self.nranks >= 1, f"nranks must be >= 1, got {self.nranks}")

    # -- interface used by the engine -------------------------------------

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        """Wire time of one message from rank ``src`` to rank ``dst``."""
        if src == dst:
            return self.alpha_local + nbytes * self.beta_local
        return self.alpha + nbytes * self.beta

    @property
    def has_hw_collectives(self) -> bool:
        return False

    def hw_collective_time(self, kind: str, nbytes: int, group_size: int) -> float:
        raise NotImplementedError(f"{self.name} has no hardware collective network")

    # -- compute ------------------------------------------------------------

    def interactions_time(self, npairs: float) -> float:
        """Time to evaluate ``npairs`` pairwise interactions on one core."""
        return npairs * self.pair_time

    # -- distances (used by the analytic model) -----------------------------

    def rank_distance_hops(self, src: int, dst: int) -> int:
        """Network hops between two ranks (0 on a flat machine)."""
        return 0 if src == dst else 1

    def describe(self) -> str:
        return (
            f"{self.name}: p={self.nranks}, alpha={self.alpha:.2e}s, "
            f"beta={self.beta:.2e}s/B, pair={self.pair_time:.2e}s"
        )


@dataclass(frozen=True)
class TorusMachine(MachineModel):
    """Machine with multicore nodes on a d-dimensional torus.

    Ranks are packed onto nodes consecutively (``node = rank //
    cores_per_node``); nodes take row-major torus coordinates.  Message time
    between distinct nodes is ``alpha + hops * alpha_hop + nbytes * beta``;
    ranks on the same node exchange at
    ``alpha_node + nbytes * beta_node``.
    """

    cores_per_node: int = 1
    alpha_hop: float = 5.0e-8
    alpha_node: float = 6.0e-7
    beta_node: float = 5.0e-11
    torus_ndims: int = 3
    #: Longer routes occupy more links; the per-byte cost of an inter-node
    #: message is additionally scaled by ``max(1, hops * route_congestion)``.
    route_congestion: float = 0.65
    #: When every team runs a c-member collective simultaneously, the
    #: network sustains far fewer concurrent tree edges than the isolated
    #: log-depth model assumes; measured collectives at these scales cost
    #: roughly ``1 + collective_contention * (c - 1)`` times the isolated
    #: tree.  This is the paper's "collectives fail to scale
    #: logarithmically as our model assumes" (Sections III-C and IV-D); the
    #: analytic tier applies it to team collective estimates.  Zero keeps
    #: the analytic and event-simulation tiers exactly consistent (the
    #: generic test machines use zero).
    collective_contention: float = 0.0
    name: str = "torus"
    #: filled in __post_init__; not a constructor argument.
    torus: Torus = field(default=None, compare=False)  # type: ignore[assignment]

    def __post_init__(self):
        super().__post_init__()
        require(self.cores_per_node >= 1, "cores_per_node must be >= 1")
        require(
            self.nranks % self.cores_per_node == 0,
            f"nranks={self.nranks} must be a multiple of cores_per_node="
            f"{self.cores_per_node}",
        )
        nnodes = self.nranks // self.cores_per_node
        object.__setattr__(self, "torus", Torus.fit(nnodes, self.torus_ndims))

    @property
    def nnodes(self) -> int:
        return self.nranks // self.cores_per_node

    def node_of(self, rank: int) -> int:
        return rank // self.cores_per_node

    def internode_beta(self, hops: int | float) -> float:
        """Effective per-byte cost of an inter-node transfer.

        All cores of a node inject concurrently in these bulk-synchronous
        algorithms, so the link bandwidth is shared ``cores_per_node`` ways;
        routes spanning many hops additionally contend with cross traffic
        (``route_congestion`` per hop).
        """
        share = self.cores_per_node * max(1.0, hops * self.route_congestion)
        return self.beta * share

    def internode_wire_time(self, hops: int | float, nbytes: float) -> float:
        """Inter-node message time at a given hop distance."""
        return self.alpha + hops * self.alpha_hop + nbytes * self.internode_beta(hops)

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        """Wire seconds for one transfer: self-send, intra-node, or torus."""
        if src == dst:
            return self.alpha_local + nbytes * self.beta_local
        a, b = self.node_of(src), self.node_of(dst)
        if a == b:
            return self.alpha_node + nbytes * self.beta_node
        return self.internode_wire_time(self.torus.hops(a, b), nbytes)

    def rank_distance_hops(self, src: int, dst: int) -> int:
        """Torus hop count between the ranks' nodes (0 when co-located)."""
        a, b = self.node_of(src), self.node_of(dst)
        return self.torus.hops(a, b)

    def describe(self) -> str:
        return (
            f"{self.name}: p={self.nranks} ({self.nnodes} nodes x "
            f"{self.cores_per_node} cores), torus {self.torus.dims}, "
            f"alpha={self.alpha:.2e}s (+{self.alpha_hop:.2e}/hop), "
            f"beta={self.beta:.2e}s/B, pair={self.pair_time:.2e}s"
        )

"""Machine model of Intrepid — ALCF's IBM BlueGene/P.

BlueGene/P characteristics reflected here:

* quad-core 850 MHz PowerPC 450 nodes — slow cores, hence a much larger
  per-interaction compute time than Hopper;
* a 3-D torus for point-to-point traffic with 425 MB/s links and low
  per-hop latency (hardware cut-through routing);
* a **dedicated tree network** for collectives that involve the whole
  partition — the paper's "c=1 (tree)" bars use it, and the "no-tree" bars
  force the same collectives onto the torus.

The tree network is exposed through :meth:`TorusMachine.has_hw_collectives`
-> :class:`IntrepidMachine` overrides; the simulated-MPI engine lets
whole-partition communicators post hardware collectives that complete in
``tree_alpha + bytes_through_root * tree_beta`` regardless of torus
distances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.base import TorusMachine
from repro.util import require

__all__ = ["Intrepid", "IntrepidMachine", "INTREPID_CORES_PER_NODE"]

INTREPID_CORES_PER_NODE = 4


@dataclass(frozen=True)
class IntrepidMachine(TorusMachine):
    """BlueGene/P torus plus the dedicated collective tree network."""

    tree_alpha: float = 5.0e-6
    tree_beta: float = 1.0 / 0.20e9  # effective allgather rate through the tree root
    tree_enabled: bool = True

    @property
    def has_hw_collectives(self) -> bool:
        return self.tree_enabled

    def hw_collective_time(self, kind: str, nbytes: int, group_size: int) -> float:
        """Completion time of a whole-partition tree-network collective.

        ``nbytes`` is the per-rank contribution (or broadcast size).  The
        tree pipelines data through its root: rooted one-to-all/all-to-one
        operations stream ``nbytes``; an allgather must stream every rank's
        contribution, ``group_size * nbytes``.
        """
        if kind in ("bcast", "reduce", "barrier"):
            volume = nbytes
        elif kind == "allreduce":
            volume = 2 * nbytes  # up then down the tree
        elif kind == "allgather":
            volume = group_size * nbytes
        else:
            raise ValueError(f"unknown hw collective kind {kind!r}")
        return self.tree_alpha + volume * self.tree_beta


def Intrepid(
    nranks: int,
    *,
    cores_per_node: int | None = None,
    tree: bool = True,
) -> IntrepidMachine:
    """Intrepid (BlueGene/P) sized for ``nranks`` cores.

    ``tree=False`` disables the collective network, modeling the paper's
    "no-tree" runs where collectives were forced onto the 3-D torus.
    """
    cpn = INTREPID_CORES_PER_NODE if cores_per_node is None else cores_per_node
    require(nranks % cpn == 0, f"nranks={nranks} must fill whole {cpn}-core nodes")
    return IntrepidMachine(
        name="intrepid",
        nranks=nranks,
        cores_per_node=cpn,
        # BG/P torus: ~3 us MPI latency (the DMA engine keeps concurrent
        # injection cheap), 425 MB/s per link, cheap hops.
        alpha=3.5e-6,
        alpha_hop=5.0e-8,
        beta=1.0 / 0.425e9,
        alpha_node=9.0e-7,
        beta_node=1.0 / 3.4e9,
        alpha_local=2.0e-7,
        beta_local=1.0 / 8.0e9,
        # 850 MHz PowerPC 450 with hand-tuned inner loops: a few times
        # slower per interaction than a Hopper core.
        pair_time=1.2e-7,
        torus_ndims=3,
        collective_contention=0.04,
        tree_enabled=tree,
    )

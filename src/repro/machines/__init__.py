"""Machine models: network + compute cost parameters for the simulations.

Two concrete supercomputer models mirror the paper's platforms —
:func:`Hopper` (Cray XE-6, Gemini 3-D torus) and :func:`Intrepid`
(BlueGene/P, 3-D torus plus dedicated collective tree network) — alongside
generic flat/torus machines for tests and laptop-scale runs.
"""

from repro.machines.base import PARTICLE_BYTES, MachineModel, TorusMachine
from repro.machines.generic import GenericMachine, GenericTorus, InstantMachine
from repro.machines.hopper import HOPPER_CORES_PER_NODE, Hopper
from repro.machines.intrepid import (
    INTREPID_CORES_PER_NODE,
    Intrepid,
    IntrepidMachine,
)
from repro.machines.torus import Torus, balanced_dims

__all__ = [
    "HOPPER_CORES_PER_NODE",
    "Hopper",
    "INTREPID_CORES_PER_NODE",
    "InstantMachine",
    "Intrepid",
    "IntrepidMachine",
    "GenericMachine",
    "GenericTorus",
    "MachineModel",
    "PARTICLE_BYTES",
    "Torus",
    "TorusMachine",
    "balanced_dims",
]

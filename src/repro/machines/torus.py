"""Torus interconnect geometry: dimensions, coordinates, hop distances.

Both evaluation platforms in the paper (Hopper's Gemini and Intrepid's
BlueGene/P network) are 3-D tori.  The machine models map MPI ranks onto
nodes packed consecutively, nodes onto torus coordinates row-major, and
charge per-hop latency by the wrap-around Manhattan distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.util import require

__all__ = ["Torus", "balanced_dims"]


@lru_cache(maxsize=None)
def balanced_dims(n: int, ndims: int = 3) -> tuple[int, ...]:
    """Factor ``n`` into ``ndims`` near-equal factors (descending order).

    Chooses the factorization minimizing the largest dimension (then the
    sum), mirroring how torus partitions are allocated as close to cubic as
    possible.  Exhaustive over divisors — fine for realistic node counts.
    """
    require(n >= 1, f"node count must be >= 1, got {n}")
    require(ndims >= 1, f"ndims must be >= 1, got {ndims}")
    if ndims == 1:
        return (n,)

    best: tuple[int, ...] | None = None

    def key(dims: tuple[int, ...]):
        return (max(dims), sum(dims))

    for d in _divisors(n):
        rest = balanced_dims(n // d, ndims - 1)
        cand = tuple(sorted((d, *rest), reverse=True))
        if best is None or key(cand) < key(best):
            best = cand
    assert best is not None
    return best


def _divisors(n: int) -> list[int]:
    out = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            out.append(d)
            if d != n // d:
                out.append(n // d)
        d += 1
    return sorted(out)


@dataclass(frozen=True)
class Torus:
    """A d-dimensional torus over ``prod(dims)`` nodes."""

    dims: tuple[int, ...]

    @staticmethod
    def fit(nnodes: int, ndims: int = 3) -> "Torus":
        """A near-cubic torus with exactly ``nnodes`` nodes."""
        return Torus(balanced_dims(nnodes, ndims))

    @property
    def nnodes(self) -> int:
        """Node count (product of the torus dimensions)."""
        n = 1
        for d in self.dims:
            n *= d
        return n

    def coords(self, node: int) -> tuple[int, ...]:
        """Row-major coordinates of ``node``."""
        require(0 <= node < self.nnodes, f"node {node} out of range")
        out = []
        for d in reversed(self.dims):
            node, r = divmod(node, d)
            out.append(r)
        return tuple(reversed(out))

    def node_at(self, coords: tuple[int, ...]) -> int:
        """Linear node id at torus ``coords`` (row-major; range-checked)."""
        node = 0
        for c, d in zip(coords, self.dims):
            require(0 <= c < d, f"coordinate {c} out of range for dim {d}")
            node = node * d + c
        return node

    def hops(self, a: int, b: int) -> int:
        """Wrap-around Manhattan distance between nodes ``a`` and ``b``."""
        if a == b:
            return 0
        total = 0
        ca, cb = self.coords(a), self.coords(b)
        for x, y, d in zip(ca, cb, self.dims):
            delta = abs(x - y)
            total += min(delta, d - delta)
        return total

    @property
    def max_hops(self) -> int:
        """Network diameter (max wrap-around Manhattan distance)."""
        return sum(d // 2 for d in self.dims)

    def mean_hops(self) -> float:
        """Average hop distance between two uniformly random distinct nodes."""
        # Per-dimension expectation of the wrap-around distance.
        total = 0.0
        for d in self.dims:
            s = sum(min(k, d - k) for k in range(d))
            total += s / d
        return total

"""Machine model of Hopper — NERSC's Cray XE-6 (Gemini 3-D torus).

Constants approximate the published characteristics of the platform the
paper used: 24 cores per node (two 12-core 2.1 GHz AMD MagnyCours), nodes on
a Gemini 3-D torus with ~1.5 microsecond MPI latency and multi-GB/s link
bandwidth.  The absolute values are calibration targets, not measurements:
what the reproduction relies on is the *ratio* structure (latency vs
bandwidth vs per-hop cost vs pairwise-interaction compute rate), which
controls where the collective/point-to-point balance falls and hence where
the optimal replication factor lands.
"""

from __future__ import annotations

from repro.machines.base import TorusMachine
from repro.util import require

__all__ = ["Hopper", "HOPPER_CORES_PER_NODE"]

HOPPER_CORES_PER_NODE = 24


def Hopper(nranks: int, *, cores_per_node: int | None = None) -> TorusMachine:
    """Hopper (Cray XE-6) sized for ``nranks`` cores.

    ``nranks`` must fill whole nodes.  The paper's runs use 1536 to 24576
    cores (64 to 1024 nodes); any node-aligned size is accepted, including
    tiny configurations used by the functional event-simulation tests
    (pass ``cores_per_node`` to shrink nodes for small test machines).
    """
    cpn = HOPPER_CORES_PER_NODE if cores_per_node is None else cores_per_node
    require(nranks % cpn == 0, f"nranks={nranks} must fill whole {cpn}-core nodes")
    return TorusMachine(
        name="hopper",
        nranks=nranks,
        cores_per_node=cpn,
        # Gemini-like network.  alpha is the *effective* per-message cost
        # when all 24 cores of a node inject concurrently (the steady state
        # of these bulk-synchronous algorithms); the single-message MPI
        # latency is ~1.5 us.
        alpha=4.0e-6,
        alpha_hop=1.0e-7,
        beta=1.0 / 5.9e9,
        # Intra-node exchange through shared memory.
        alpha_node=6.0e-7,
        beta_node=1.0 / 12.0e9,
        # Local buffer copy.
        alpha_local=1.0e-7,
        beta_local=1.0 / 20.0e9,
        # 2.1 GHz MagnyCours core evaluating the paper's repulsive
        # inverse-square force: ~50 ns per interaction.
        pair_time=5.0e-8,
        torus_ndims=3,
        collective_contention=0.04,
    )

"""Generic machine models for tests and laptop-scale experiments."""

from __future__ import annotations

from repro.machines.base import MachineModel, TorusMachine

__all__ = ["GenericMachine", "GenericTorus", "InstantMachine"]


def GenericMachine(
    nranks: int,
    *,
    alpha: float = 1.0e-6,
    beta: float = 2.0e-10,
    pair_time: float = 5.0e-8,
) -> MachineModel:
    """A flat alpha-beta machine: every rank pair is one message away.

    The default constants are loosely commodity-cluster-like; tests mostly
    care that alpha, beta and pair_time are non-zero and independent.
    """
    return MachineModel(
        name="generic",
        nranks=nranks,
        alpha=alpha,
        beta=beta,
        pair_time=pair_time,
    )


def GenericTorus(
    nranks: int,
    *,
    cores_per_node: int = 1,
    ndims: int = 3,
    alpha: float = 1.0e-6,
    alpha_hop: float = 5.0e-8,
    beta: float = 2.0e-10,
    pair_time: float = 5.0e-8,
) -> TorusMachine:
    """A torus machine with adjustable geometry for topology tests."""
    return TorusMachine(
        name="generic-torus",
        nranks=nranks,
        cores_per_node=cores_per_node,
        torus_ndims=ndims,
        alpha=alpha,
        alpha_hop=alpha_hop,
        beta=beta,
        pair_time=pair_time,
    )


def InstantMachine(nranks: int) -> MachineModel:
    """A machine where all communication and computation is free.

    Used by correctness tests that check *what* the algorithms compute,
    independent of timing, and by pair-coverage instrumentation runs.
    """
    return MachineModel(
        name="instant",
        nranks=nranks,
        alpha=0.0,
        beta=0.0,
        pair_time=0.0,
        alpha_local=0.0,
        beta_local=0.0,
    )

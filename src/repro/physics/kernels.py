"""Interaction kernels: the pluggable "what happens when blocks meet".

The CA algorithms are written once, against this small interface:

* ``travel_of(home, team)`` — build the exchange-buffer payload for a home
  block;
* ``interact(home, travel)`` — accumulate the visiting block's force
  contributions onto the home block, returning the number of candidate
  pairs scanned (the compute cost to charge);
* ``forces_payload`` / ``reduce_op`` / ``install_forces`` — what the final
  in-team sum-reduction moves and how it combines.

:class:`RealKernel` computes actual forces with the vectorized NumPy
kernel (and can record a pair-coverage matrix for the exactly-once tests);
:class:`VirtualKernel` moves only particle *counts*, enabling modeled runs
at the paper's machine scales.  Because both satisfy the same interface,
every algorithm is exercised functionally by the tests and at scale by the
benchmarks with identical control flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.forces import ForceLaw, pairwise_forces
from repro.physics.particles import (
    HomeBlock,
    ParticleSet,
    TravelBlock,
    VirtualBlock,
)

__all__ = ["RealKernel", "VirtualForces", "VirtualKernel", "kernel_for"]

#: Bytes per particle of a force contribution on the wire (d doubles).
_FORCE_BYTES_PER_COMPONENT = 8


@dataclass
class RealKernel:
    """Kernel computing actual forces on real particle data.

    Parameters
    ----------
    law:
        Force law (constant, softening, optional cutoff radius).
    pair_counter:
        Optional global ``(n, n)`` integer matrix; every accumulated
        (target id, source id) interaction increments one entry.  Tests use
        it to prove each ordered pair is computed exactly once.
    scratch:
        Route :func:`pairwise_forces` through the pooled scratch-buffer
        fast path (default).  ``False`` selects the allocating reference
        path; both produce bitwise-identical forces (the determinism suite
        locks this).
    metrics:
        Optional :class:`~repro.metrics.registry.MetricsRegistry`; every
        interaction call adds its scanned pair count to the
        ``kernel.pairs`` counter (the run's flop-proxy).
    """

    law: ForceLaw
    pair_counter: np.ndarray | None = None
    scratch: bool = True
    metrics: object | None = None

    def _count_pairs(self, npairs: int) -> int:
        if self.metrics is not None and npairs:
            self.metrics.counter("kernel.pairs").inc(npairs)
        return npairs

    def home_of(self, block) -> HomeBlock:
        """Wrap a broadcast team block into this rank's home block.

        The particle arrays may be shared read-only across the team (the
        broadcast moves one object); every rank gets a private force
        accumulator.
        """
        if isinstance(block, HomeBlock):
            block = block.particles
        return HomeBlock(particles=block)

    def travel_of(self, home: HomeBlock, team: int) -> TravelBlock:
        """Exchange-buffer payload: a zero-copy view of the home arrays.

        The simulated network moves payloads by reference, so the travel
        block shares the home block's position/id storage instead of
        copying it; the views are locked read-only so any rank that tried
        to mutate a visiting block would fault immediately.  This is safe
        because travel blocks live only within one interaction step, and
        integrators mutate positions strictly between steps (byte
        accounting is unaffected — wire size comes from the array shapes).
        """
        p = home.particles
        pos = p.pos[:]
        pos.flags.writeable = False
        ids = p.ids[:]
        ids.flags.writeable = False
        return TravelBlock(pos=pos, ids=ids, team=team)

    def interact(self, home: HomeBlock, travel: TravelBlock) -> int:
        """Accumulate the visiting block's forces; returns pairs scanned."""
        _, npairs = pairwise_forces(
            self.law,
            home.particles.pos,
            travel.pos,
            target_ids=home.particles.ids,
            source_ids=travel.ids,
            out=home.forces,
            pair_counter=self.pair_counter,
            scratch=self.scratch,
        )
        return self._count_pairs(npairs)

    def forces_payload(self, home: HomeBlock) -> np.ndarray:
        return home.forces

    @staticmethod
    def reduce_op(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b

    def install_forces(self, home: HomeBlock, payload) -> None:
        if payload is not None:
            home.forces = np.asarray(payload)

    # -- symmetric (Newton's third law) extension --------------------------

    def travel_of_symmetric(self, home: HomeBlock, team: int) -> TravelBlock:
        """Exchange buffer carrying a reaction-force accumulator.

        Positions/ids are shared read-only views (see :meth:`travel_of`);
        only the reaction accumulator is a fresh private buffer, because
        every visited rank adds into it as the buffer circulates.
        """
        p = home.particles
        pos = p.pos[:]
        pos.flags.writeable = False
        ids = p.ids[:]
        ids.flags.writeable = False
        return TravelBlock(pos=pos, ids=ids, team=team,
                           forces=np.zeros_like(p.pos))

    def interact_symmetric(self, home: HomeBlock, travel: TravelBlock) -> int:
        """One pass over home x travel pairs, reactions onto the buffer."""
        if travel.forces is None:
            raise ValueError("symmetric interaction needs a reaction buffer")
        _, npairs = pairwise_forces(
            self.law,
            home.particles.pos,
            travel.pos,
            target_ids=home.particles.ids,
            source_ids=travel.ids,
            out=home.forces,
            reaction_out=travel.forces,
            pair_counter=self.pair_counter,
            scratch=self.scratch,
        )
        return self._count_pairs(npairs)

    def interact_self_half(self, home: HomeBlock) -> int:
        """The home block with itself: each unordered pair once."""
        p = home.particles
        _, npairs = pairwise_forces(
            self.law,
            p.pos,
            p.pos,
            target_ids=p.ids,
            source_ids=p.ids,
            out=home.forces,
            reaction_out=home.forces,
            half=True,
            pair_counter=self.pair_counter,
            scratch=self.scratch,
        )
        return self._count_pairs(npairs)

    def absorb_reactions(self, home: HomeBlock, travel: TravelBlock) -> None:
        """Fold a returned buffer's reactions into the home accumulator."""
        if travel.forces is not None:
            home.forces += travel.forces

    # -- hyper-systolic (replicated register) extension --------------------

    def adopt_register(self, travel: TravelBlock) -> HomeBlock:
        """Adopt an arriving block into a replicated register.

        Hyper-systolic registers hold a remote team's block and accumulate
        partial forces for it locally, exactly like a home block — the
        position/id views stay zero-copy (read-only) and only the force
        accumulator is fresh private storage.
        """
        particles = ParticleSet(pos=travel.pos,
                                vel=np.zeros_like(travel.pos),
                                ids=travel.ids)
        return HomeBlock(particles=particles)

    def fold_forces(self, target: HomeBlock, payload: np.ndarray) -> None:
        """Fold a received partial-force payload into an accumulator.

        The hyper-systolic collection cascade ships raw force arrays (a
        register's :meth:`forces_payload`) back toward each block's home
        rank; shapes agree by construction because sender and receiver
        hold the same team's block in adjacent registers.
        """
        target.forces += payload

    # -- neutral-territory (pair-ownership) extension ----------------------

    def interact_owned(self, pos: np.ndarray, ids: np.ndarray, *,
                       pair_mask: np.ndarray, out: np.ndarray) -> int:
        """Pairs of a combined particle set against itself, restricted to
        an ownership mask: each owned unordered pair once (upper triangle
        by id), action and reaction both accumulated into ``out``.

        Neutral-territory methods (the midpoint baseline) own *pairs*
        rather than particles; ``pair_mask[i, j]`` says whether this rank
        owns the (i, j) pair.
        """
        _, npairs = pairwise_forces(
            self.law,
            pos,
            pos,
            target_ids=ids,
            source_ids=ids,
            out=out,
            reaction_out=out,
            half=True,
            pair_mask=pair_mask,
            pair_counter=self.pair_counter,
            scratch=self.scratch,
        )
        return self._count_pairs(npairs)


def kernel_for(
    law: ForceLaw | None = None,
    *,
    rcut: float | None = None,
    box: float | None = None,
    pair_counter: np.ndarray | None = None,
    scratch: bool = True,
    metrics=None,
) -> RealKernel:
    """Build a :class:`RealKernel`, resolving the effective force law.

    The single spot where runners turn user-facing physics options into a
    kernel: the default law, the cutoff override (``rcut`` forces the law's
    cutoff so out-of-range pairs contribute exactly zero), the
    minimum-image ``box`` for the periodic extension, and the
    instrumentation/perf knobs.
    """
    law = law or ForceLaw()
    if rcut is not None:
        law = law.with_rcut(rcut)
    if box is not None:
        law = law.with_box(box)
    return RealKernel(law=law, pair_counter=pair_counter, scratch=scratch,
                      metrics=metrics)


@dataclass
class VirtualForces:
    """Force-contribution payload for phantom blocks (wire size only)."""

    count: int
    dim: int

    @property
    def wire_nbytes(self) -> int:
        return _FORCE_BYTES_PER_COMPONENT * self.dim * self.count


@dataclass
class VirtualKernel:
    """Kernel over phantom blocks: counts pairs, moves no data.

    ``dim`` fixes the force payload size per particle for the reduction
    phase's bandwidth accounting.
    """

    dim: int = 2

    def home_of(self, block: VirtualBlock) -> VirtualBlock:
        return VirtualBlock(count=block.count, team=block.team)

    def travel_of(self, home: VirtualBlock, team: int) -> VirtualBlock:
        return VirtualBlock(count=home.count, team=team)

    def interact(self, home: VirtualBlock, travel: VirtualBlock) -> int:
        return home.count * travel.count

    def forces_payload(self, home: VirtualBlock) -> VirtualForces:
        return VirtualForces(count=home.count, dim=self.dim)

    @staticmethod
    def reduce_op(a: "VirtualForces", b: "VirtualForces") -> "VirtualForces":
        """Combine two phantom force payloads (counts must agree)."""
        if a.count != b.count:
            raise ValueError(
                f"mismatched virtual force payloads: {a.count} vs {b.count}"
            )
        return a

    def install_forces(self, home: VirtualBlock, payload) -> None:
        return None

    # -- symmetric (Newton's third law) extension --------------------------

    def travel_of_symmetric(self, home: VirtualBlock, team: int) -> VirtualBlock:
        return VirtualBlock(count=home.count, team=team,
                            extra_bytes=_FORCE_BYTES_PER_COMPONENT * self.dim)

    def interact_symmetric(self, home: VirtualBlock, travel: VirtualBlock) -> int:
        return home.count * travel.count

    def interact_self_half(self, home: VirtualBlock) -> int:
        return home.count * (home.count - 1) // 2

    def absorb_reactions(self, home: VirtualBlock, travel: VirtualBlock) -> None:
        return None

    # -- hyper-systolic (replicated register) extension --------------------

    def adopt_register(self, travel: VirtualBlock) -> VirtualBlock:
        """Adopt an arriving phantom block into a replicated register."""
        return VirtualBlock(count=travel.count, team=travel.team)

    def fold_forces(self, target: VirtualBlock, payload: VirtualForces) -> None:
        """Fold a phantom force payload (counts must agree)."""
        if payload.count != target.count:
            raise ValueError(
                f"mismatched register fold: payload has {payload.count} "
                f"particles, block has {target.count}"
            )

"""Reflective boundary conditions on the simulation box.

The paper's test code "simulates particles moving in a two-dimensional
space with reflective boundary conditions": a particle crossing a wall
re-enters mirrored, with the normal velocity component negated.  The fold
below handles arbitrarily many wall crossings in a single step (triangle-
wave folding with period ``2 L``), so it is robust to large ``dt``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["reflect", "wrap_periodic"]


def reflect(pos: np.ndarray, vel: np.ndarray, box_length: float) -> None:
    """Fold ``pos`` into ``[0, box_length]`` in place, reflecting ``vel``.

    Works component-wise on ``(n, d)`` arrays.  Positions exactly on a wall
    stay put.  An odd number of wall crossings flips the corresponding
    velocity component.
    """
    if box_length <= 0:
        raise ValueError(f"box_length must be positive, got {box_length}")
    L = float(box_length)
    # Position within the doubled period [0, 2L).
    folded = np.mod(pos, 2.0 * L)
    over = folded > L
    np.subtract(2.0 * L, folded, out=folded, where=over)
    # Velocity flips when the triangle wave is on its descending branch.
    np.negative(vel, out=vel, where=over)
    pos[:] = folded


def wrap_periodic(pos: np.ndarray, box_length: float) -> None:
    """Wrap ``pos`` into ``[0, box_length)`` in place (periodic box).

    The reproduction's periodic-boundary extension: velocities are
    untouched, positions are taken modulo the box.  Positions that land
    exactly on ``box_length`` map to 0.
    """
    if box_length <= 0:
        raise ValueError(f"box_length must be positive, got {box_length}")
    np.mod(pos, box_length, out=pos)

"""Particle snapshot I/O (NumPy ``.npz`` container).

Minimal, dependency-free persistence for simulation states: positions,
velocities and ids round-trip exactly.  Used by the examples and by any
workflow that wants to checkpoint a driver run.
"""

from __future__ import annotations

import os

import numpy as np

from repro.physics.particles import ParticleSet

__all__ = ["load_particles", "save_particles"]

_FORMAT_VERSION = 1


def save_particles(path: str | os.PathLike, particles: ParticleSet) -> None:
    """Write a particle set to ``path`` (``.npz``)."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        pos=particles.pos,
        vel=particles.vel,
        ids=particles.ids,
    )


def load_particles(path: str | os.PathLike) -> ParticleSet:
    """Read a particle set written by :func:`save_particles`."""
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        return ParticleSet(
            pos=data["pos"].copy(),
            vel=data["vel"].copy(),
            ids=data["ids"].copy(),
        )

"""Particle snapshot and driver checkpoint I/O (NumPy ``.npz`` containers).

Minimal, dependency-free persistence for simulation states.  Two file kinds
share the same integrity machinery:

* **Snapshots** (:func:`save_particles` / :func:`load_particles`) — one
  particle set: positions, velocities and ids round-trip exactly, with
  their dtypes.
* **Checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`) —
  the driver's mid-run state: one leader block per team, the integrator's
  carried forces (velocity-Verlet only), the completed-step counter and a
  configuration fingerprint that guards against resuming under a different
  physics setup.

Integrity
---------
Every array is covered by a CRC-32 stored in an embedded JSON index, and
writes are atomic: the file is written to a same-directory temporary name,
flushed and fsynced, then :func:`os.replace`\\ d into place — a reader never
observes a half-written file, and a crash mid-write leaves any previous
file intact.  Loads verify the container, the format version, the key set,
the dtypes and every checksum, and raise :class:`SnapshotError` /
:class:`CheckpointError` with a specific message instead of propagating
whatever NumPy or zipfile happened to hit.

Snapshot format version 2 adds the checksum index; version-1 files (no
checksums) are still readable.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.physics.particles import ParticleSet

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "SnapshotError",
    "load_checkpoint",
    "load_particles",
    "save_checkpoint",
    "save_particles",
]

_SNAPSHOT_VERSION = 2
_CHECKPOINT_VERSION = 1

#: Canonical dtypes of a ParticleSet's arrays (what a roundtrip preserves).
_SNAPSHOT_DTYPES = {"pos": "float64", "vel": "float64", "ids": "int64"}


class SnapshotError(ValueError):
    """A particle snapshot is unreadable, truncated, corrupt or mismatched."""


class CheckpointError(SnapshotError):
    """A driver checkpoint is unreadable, corrupt or from another setup."""


# ---------------------------------------------------------------------------
# Shared integrity plumbing.
# ---------------------------------------------------------------------------


def _array_crc(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


def _atomic_savez(path: str | os.PathLike, arrays: dict) -> str:
    """Write ``arrays`` as a compressed npz atomically; return the real path.

    Mirrors :func:`numpy.savez`'s convention of appending ``.npz`` to
    extension-less string paths, so the name the caller prints matches the
    file on disk.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def _load_npz(path: str | os.PathLike, err: type[SnapshotError], kind: str):
    """Open an npz with every container-level failure mapped to ``err``."""
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise err(f"{kind} {path!r} does not exist") from None
    except (OSError, zipfile.BadZipFile, ValueError, EOFError) as exc:
        raise err(
            f"{kind} {path!r} is unreadable (truncated or not an npz "
            f"container): {exc}"
        ) from exc


def _read_array(data, name: str, path, err: type[SnapshotError], kind: str):
    try:
        return data[name]
    except KeyError:
        raise err(f"{kind} {path!r} is missing required array {name!r}") from None
    except (zlib.error, zipfile.BadZipFile, OSError, ValueError) as exc:
        raise err(f"{kind} {path!r}: array {name!r} is corrupt: {exc}") from exc


def _verify_crcs(data, checksums: dict, path, err: type[SnapshotError],
                 kind: str) -> dict:
    """Check every recorded CRC; return the verified arrays by name."""
    arrays = {}
    for name, expect in checksums.items():
        arr = _read_array(data, name, path, err, kind)
        got = _array_crc(arr)
        if got != int(expect):
            raise err(
                f"{kind} {path!r}: checksum mismatch on array {name!r} "
                f"(stored {int(expect):#010x}, computed {got:#010x}) — "
                "the file is corrupt"
            )
        arrays[name] = arr
    return arrays


def _read_json(data, name: str, path, err: type[SnapshotError], kind: str):
    raw = _read_array(data, name, path, err, kind)
    try:
        return json.loads(str(raw))
    except (json.JSONDecodeError, TypeError) as exc:
        raise err(f"{kind} {path!r}: {name!r} index is corrupt: {exc}") from exc


# ---------------------------------------------------------------------------
# Particle snapshots.
# ---------------------------------------------------------------------------


def save_particles(path: str | os.PathLike, particles: ParticleSet) -> str:
    """Write a particle set to ``path`` (``.npz``); return the real path.

    The write is atomic (write-then-rename) and every array carries a
    CRC-32 that :func:`load_particles` verifies.
    """
    arrays = {
        "pos": particles.pos,
        "vel": particles.vel,
        "ids": particles.ids,
    }
    checksums = {name: _array_crc(arr) for name, arr in arrays.items()}
    arrays["format_version"] = np.int64(_SNAPSHOT_VERSION)
    arrays["checksums"] = np.array(json.dumps(checksums))
    return _atomic_savez(path, arrays)


def load_particles(path: str | os.PathLike) -> ParticleSet:
    """Read a particle set written by :func:`save_particles`.

    Raises :class:`SnapshotError` if the file is missing, truncated, not an
    npz container, missing arrays, carries unexpected dtypes, or fails its
    checksums.  Version-1 snapshots (pre-checksum) are still accepted.
    """
    kind = "snapshot"
    with _load_npz(path, SnapshotError, kind) as data:
        raw_version = _read_array(data, "format_version", path, SnapshotError, kind)
        version = int(raw_version)
        if version not in (1, _SNAPSHOT_VERSION):
            raise SnapshotError(
                f"unsupported snapshot version {version} in {path!r} "
                f"(this build reads versions 1..{_SNAPSHOT_VERSION})"
            )
        if version >= 2:
            checksums = _read_json(data, "checksums", path, SnapshotError, kind)
            arrays = _verify_crcs(data, checksums, path, SnapshotError, kind)
        else:
            arrays = {
                name: _read_array(data, name, path, SnapshotError, kind)
                for name in _SNAPSHOT_DTYPES
            }
        for name, want in _SNAPSHOT_DTYPES.items():
            if name not in arrays:
                raise SnapshotError(
                    f"{kind} {path!r} is missing required array {name!r}"
                )
            got = arrays[name].dtype
            if got != np.dtype(want):
                raise SnapshotError(
                    f"{kind} {path!r}: array {name!r} has dtype {got}, "
                    f"expected {want} — refusing to cast silently"
                )
        return ParticleSet(
            pos=arrays["pos"].copy(),
            vel=arrays["vel"].copy(),
            ids=arrays["ids"].copy(),
        )


# ---------------------------------------------------------------------------
# Driver checkpoints.
# ---------------------------------------------------------------------------


@dataclass
class Checkpoint:
    """In-memory image of one driver checkpoint.

    Attributes
    ----------
    step:
        Completed timesteps at the moment of the snapshot — resuming
        replays steps ``step .. nsteps-1``.
    time:
        Virtual physical time, ``step * dt``.
    fingerprint:
        Configuration fingerprint of the run that wrote the checkpoint
        (see :func:`repro.core.checkpoint.simulation_fingerprint`); loads
        can demand a match so a checkpoint is never resumed under
        different physics.
    blocks:
        One leader :class:`~repro.physics.particles.ParticleSet` per team,
        in column order.
    forces:
        Per-team forces at the checkpointed positions (velocity-Verlet
        carries them across steps); ``None`` for explicit-Euler runs.
    rng_state:
        Opaque JSON-serializable integrator RNG state.  The deterministic
        driver has none and stores ``None``; stochastic extensions
        (thermostats, Langevin integrators) hook in here.
    """

    step: int
    time: float
    fingerprint: str
    blocks: list[ParticleSet]
    forces: list[np.ndarray] | None = None
    rng_state: dict | None = field(default=None)


def save_checkpoint(path: str | os.PathLike, ckpt: Checkpoint) -> str:
    """Write ``ckpt`` atomically with per-array checksums; return the path."""
    arrays: dict = {}
    for i, block in enumerate(ckpt.blocks):
        arrays[f"pos_{i}"] = block.pos
        arrays[f"vel_{i}"] = block.vel
        arrays[f"ids_{i}"] = block.ids
    if ckpt.forces is not None:
        if len(ckpt.forces) != len(ckpt.blocks):
            raise CheckpointError(
                f"checkpoint has {len(ckpt.blocks)} blocks but "
                f"{len(ckpt.forces)} force arrays"
            )
        for i, forces in enumerate(ckpt.forces):
            arrays[f"forces_{i}"] = forces
    checksums = {name: _array_crc(arr) for name, arr in arrays.items()}
    meta = {
        "step": int(ckpt.step),
        "time": float(ckpt.time),
        "fingerprint": ckpt.fingerprint,
        "nteams": len(ckpt.blocks),
        "has_forces": ckpt.forces is not None,
        "rng_state": ckpt.rng_state,
    }
    arrays["format_version"] = np.int64(_CHECKPOINT_VERSION)
    arrays["meta"] = np.array(json.dumps(meta))
    arrays["checksums"] = np.array(json.dumps(checksums))
    return _atomic_savez(path, arrays)


def load_checkpoint(path: str | os.PathLike, *,
                    expect_fingerprint: str | None = None) -> Checkpoint:
    """Read and verify a checkpoint written by :func:`save_checkpoint`.

    Every array's CRC-32 is checked; ``expect_fingerprint`` (when given)
    must equal the stored fingerprint or the load is refused — resuming a
    run under a different configuration would silently change the physics.
    Raises :class:`CheckpointError` on any integrity failure.
    """
    kind = "checkpoint"
    with _load_npz(path, CheckpointError, kind) as data:
        raw_version = _read_array(data, "format_version", path, CheckpointError, kind)
        version = int(raw_version)
        if version != _CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version} in {path!r} "
                f"(this build reads version {_CHECKPOINT_VERSION})"
            )
        meta = _read_json(data, "meta", path, CheckpointError, kind)
        checksums = _read_json(data, "checksums", path, CheckpointError, kind)
        for key in ("step", "time", "fingerprint", "nteams", "has_forces"):
            if key not in meta:
                raise CheckpointError(
                    f"checkpoint {path!r}: meta index is missing {key!r}"
                )
        if expect_fingerprint is not None and meta["fingerprint"] != expect_fingerprint:
            raise CheckpointError(
                f"checkpoint {path!r} was written by a different "
                f"configuration (stored fingerprint {meta['fingerprint']!r}, "
                f"this run is {expect_fingerprint!r}) — refusing to resume"
            )
        arrays = _verify_crcs(data, checksums, path, CheckpointError, kind)
        nteams = int(meta["nteams"])
        blocks: list[ParticleSet] = []
        forces: list[np.ndarray] | None = [] if meta["has_forces"] else None
        for i in range(nteams):
            for name in (f"pos_{i}", f"vel_{i}", f"ids_{i}"):
                if name not in arrays:
                    raise CheckpointError(
                        f"checkpoint {path!r} is missing required array {name!r}"
                    )
            blocks.append(ParticleSet(
                pos=arrays[f"pos_{i}"].copy(),
                vel=arrays[f"vel_{i}"].copy(),
                ids=arrays[f"ids_{i}"].copy(),
            ))
            if forces is not None:
                name = f"forces_{i}"
                if name not in arrays:
                    raise CheckpointError(
                        f"checkpoint {path!r} is missing required array {name!r}"
                    )
                forces.append(arrays[name].copy())
        return Checkpoint(
            step=int(meta["step"]),
            time=float(meta["time"]),
            fingerprint=str(meta["fingerprint"]),
            blocks=blocks,
            forces=forces,
            rng_state=meta.get("rng_state"),
        )

"""Time integrators for the particle simulation.

Two schemes are provided:

* **symplectic Euler** (kick then drift) — what a minimal benchmark loop
  uses; cheap and adequate for timing studies;
* **velocity Verlet** split into :func:`kick` / :func:`drift` halves, so
  the distributed driver can interleave the force recomputation between the
  two half-kicks in the standard way.

All functions operate in place on the arrays of a
:class:`~repro.physics.particles.ParticleSet`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["drift", "euler_step", "kick", "kinetic_energy"]


def kick(vel: np.ndarray, forces: np.ndarray, dt: float, mass: float = 1.0) -> None:
    """``vel += forces / mass * dt`` (in place)."""
    vel += forces * (dt / mass)


def drift(pos: np.ndarray, vel: np.ndarray, dt: float) -> None:
    """``pos += vel * dt`` (in place)."""
    pos += vel * dt


def euler_step(
    pos: np.ndarray,
    vel: np.ndarray,
    forces: np.ndarray,
    dt: float,
    mass: float = 1.0,
) -> None:
    """One symplectic-Euler step: kick with current forces, then drift."""
    kick(vel, forces, dt, mass)
    drift(pos, vel, dt)


def kinetic_energy(vel: np.ndarray, mass: float = 1.0) -> float:
    """Total kinetic energy ``sum(m |v|^2 / 2)``."""
    return 0.5 * mass * float(np.einsum("ij,ij->", vel, vel))

"""Particle physics substrate: containers, force kernels, integration,
boundaries, spatial decomposition, and serial references.

This reproduces the paper's test problem — particles in a box with
reflective walls, interacting through a repulsive inverse-square force,
optionally truncated at a cutoff radius — plus the plumbing the distributed
algorithms need (home/travel/virtual blocks and pluggable interaction
kernels).
"""

from repro.physics.boundary import reflect, wrap_periodic
from repro.physics.domain import TeamGeometry, team_of_positions, weighted_geometry
from repro.physics.forces import (
    ForceLaw,
    clear_scratch,
    pairwise_forces,
    potential_energy,
)
from repro.physics.integrators import drift, euler_step, kick, kinetic_energy
from repro.physics.io import (
    Checkpoint,
    CheckpointError,
    SnapshotError,
    load_checkpoint,
    load_particles,
    save_checkpoint,
    save_particles,
)
from repro.physics.kernels import RealKernel, VirtualForces, VirtualKernel
from repro.physics.particles import (
    HomeBlock,
    ParticleSet,
    TravelBlock,
    VirtualBlock,
    concat_sets,
)
from repro.physics.reference import reference_forces, reference_pair_matrix
from repro.physics.workloads import (
    density_gradient,
    gaussian_clusters,
    plummer_sphere,
    two_phase,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "ForceLaw",
    "HomeBlock",
    "ParticleSet",
    "RealKernel",
    "SnapshotError",
    "TeamGeometry",
    "TravelBlock",
    "VirtualBlock",
    "VirtualForces",
    "VirtualKernel",
    "concat_sets",
    "density_gradient",
    "drift",
    "euler_step",
    "gaussian_clusters",
    "kick",
    "kinetic_energy",
    "load_checkpoint",
    "load_particles",
    "save_checkpoint",
    "save_particles",
    "clear_scratch",
    "pairwise_forces",
    "plummer_sphere",
    "potential_energy",
    "reference_forces",
    "reference_pair_matrix",
    "reflect",
    "team_of_positions",
    "two_phase",
    "weighted_geometry",
    "wrap_periodic",
]

"""Spatial decomposition of the simulation box among teams.

Section IV of the paper assumes "a spatial decomposition of particles among
teams, i.e. each team is responsible for the particles in a particular
region of the simulation space".  This module defines that region grid:

* the box ``[0, L]^d`` is divided into a ``team_dims`` grid of equal
  axis-aligned cells, one per team;
* teams are numbered row-major over ``team_dims`` (matching the window
  linearization in :mod:`repro.core.window`);
* :func:`team_of_positions` bins particles to teams, and
  :meth:`TeamGeometry.team_distance_ok` answers whether two team regions
  can contain interacting particles under a cutoff radius — the test the
  algorithms use to skip physically-impossible block pairs (the source of
  the boundary load imbalance the paper reports, since the box is *not*
  periodic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import require

__all__ = ["TeamGeometry", "team_of_positions", "weighted_geometry"]


@dataclass(frozen=True)
class TeamGeometry:
    """Tensor-grid decomposition of ``[0, box_length]^dim`` into teams.

    By default the cells are equal (the paper's decomposition, load-
    balanced for its uniform particle distributions).  ``edges`` overrides
    the per-axis cell boundaries — the *weighted* extension: boundaries
    placed at particle quantiles keep team populations even under
    non-uniform distributions (see :func:`weighted_geometry`).

    ``periodic=True`` switches to a periodic box (the reproduction's
    extension): region distances use the wrap-around gap, so teams at
    opposite walls become neighbors and every team has the full window —
    removing the boundary load imbalance the paper attributes its cutoff
    inefficiency to.  Periodic boxes require equal cells.
    """

    box_length: float
    team_dims: tuple[int, ...]
    periodic: bool = False
    #: Optional per-axis cell boundaries; ``edges[k]`` has ``team_dims[k]
    #: + 1`` ascending values from 0 to ``box_length``.
    edges: tuple[tuple[float, ...], ...] | None = None

    def __post_init__(self):
        require(self.box_length > 0, "box_length must be positive")
        require(len(self.team_dims) >= 1, "team_dims must be non-empty")
        for d in self.team_dims:
            require(d >= 1, f"team grid dims must be >= 1, got {self.team_dims}")
        if self.edges is not None:
            require(not self.periodic,
                    "weighted (non-uniform) cells require a non-periodic box")
            require(len(self.edges) == len(self.team_dims),
                    "edges must give boundaries for every axis")
            for e, d in zip(self.edges, self.team_dims):
                require(len(e) == d + 1,
                        f"axis with {d} cells needs {d + 1} boundaries")
                require(abs(e[0]) < 1e-12 and abs(e[-1] - self.box_length) < 1e-9,
                        "boundaries must span [0, box_length]")
                require(all(b > a for a, b in zip(e, e[1:])),
                        "boundaries must be strictly increasing")

    @property
    def dim(self) -> int:
        return len(self.team_dims)

    @property
    def nteams(self) -> int:
        """Total team count (product of the team-grid dimensions)."""
        n = 1
        for d in self.team_dims:
            n *= d
        return n

    @property
    def cell_widths(self) -> tuple[float, ...]:
        """Equal-cell widths; undefined for weighted geometries."""
        require(self.edges is None,
                "cell_widths is only defined for equal-cell geometries")
        return tuple(self.box_length / d for d in self.team_dims)

    def axis_edges(self, k: int) -> np.ndarray:
        """Cell boundaries along axis ``k``."""
        if self.edges is not None:
            return np.asarray(self.edges[k])
        d = self.team_dims[k]
        return np.linspace(0.0, self.box_length, d + 1)

    # -- indexing -------------------------------------------------------------

    def multi_index(self, team: int) -> tuple[int, ...]:
        """Row-major multi-index of linear team id."""
        require(0 <= team < self.nteams, f"team {team} out of range")
        out = []
        for d in reversed(self.team_dims):
            team, r = divmod(team, d)
            out.append(r)
        return tuple(reversed(out))

    def linear_index(self, mi: tuple[int, ...]) -> int:
        """Linear team id of a multi-index (row-major; range-checked)."""
        team = 0
        for x, d in zip(mi, self.team_dims):
            require(0 <= x < d, f"multi-index {mi} out of range for {self.team_dims}")
            team = team * d + x
        return team

    def region_bounds(self, team: int) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) corner arrays of the team's cell."""
        mi = self.multi_index(team)
        lo = np.array([self.axis_edges(k)[x] for k, x in enumerate(mi)])
        hi = np.array([self.axis_edges(k)[x + 1] for k, x in enumerate(mi)])
        return lo, hi

    # -- cutoff geometry -----------------------------------------------------------

    def spanned_cells(self, rcut: float) -> tuple[int, ...]:
        """Per-dimension count ``m`` of neighbor cells a cutoff radius spans.

        This is the paper's ``m`` (Equation 6, ``r_c / l = m c / p`` i.e.
        ``m = r_c / cell_width``): interactions reach at most ``m`` cells
        away along each axis.  Never less than 1 — adjacent cells share a
        face, so arbitrarily close cross-cell pairs always exist.

        Weighted geometries take the worst case over cells: the largest
        index distance between two cells whose gap is within ``rcut``.
        """
        if self.edges is None:
            return tuple(
                max(1, int(np.ceil(rcut / w - 1e-12)))
                for w in self.cell_widths
            )
        spans = []
        for k, d in enumerate(self.team_dims):
            e = self.axis_edges(k)
            m = 1
            for i in range(d):
                for j in range(i + 1, d):
                    gap = e[j] - e[i + 1]  # space between cells i and j
                    if gap <= rcut + 1e-12:
                        m = max(m, j - i)
            spans.append(m)
        return tuple(spans)

    def team_distance_ok(self, a: int, b: int, rcut: float) -> bool:
        """Can particles in teams ``a`` and ``b`` lie within ``rcut``?

        Uses the exact minimum distance between the two axis-aligned cells
        (zero when they touch).  Without ``periodic``, the paper's setting:
        teams on opposite walls are genuinely far apart.  With ``periodic``,
        the per-axis gap is the wrap-around cell gap (minimum image).
        """
        if not self.periodic:
            alo, ahi = self.region_bounds(a)
            blo, bhi = self.region_bounds(b)
            gap = np.maximum(0.0, np.maximum(blo - ahi, alo - bhi))
            return bool(gap @ gap <= rcut * rcut + 1e-12)
        ma, mb = self.multi_index(a), self.multi_index(b)
        gap2 = 0.0
        for xa, xb, d, w in zip(ma, mb, self.team_dims, self.cell_widths):
            delta = abs(xa - xb)
            delta = min(delta, d - delta)  # wrap-around cell separation
            gap2 += (max(delta - 1, 0) * w) ** 2
        return bool(gap2 <= rcut * rcut + 1e-12)


def team_of_positions(
    pos: np.ndarray, geometry: TeamGeometry
) -> np.ndarray:
    """Linear team id owning each position (positions must lie in the box).

    When the geometry has fewer dimensions than the positions (slab/pencil
    decompositions — e.g. 1-D team regions of a 2-D simulation), binning
    uses the leading coordinates.
    """
    dims = np.array(geometry.team_dims)
    team = np.zeros(pos.shape[0], dtype=np.int64)
    for k in range(len(dims)):
        edges = geometry.axis_edges(k)
        cell = np.searchsorted(edges, pos[:, k], side="right") - 1
        # Points exactly on the upper wall belong to the last cell.
        np.clip(cell, 0, dims[k] - 1, out=cell)
        team = team * dims[k] + cell
    return team


def weighted_geometry(
    particles, team_dims: tuple[int, ...], box_length: float
) -> TeamGeometry:
    """Equal-*count* decomposition: boundaries at per-axis quantiles.

    The paper keeps its particle distribution "nearly uniform" so equal
    cells stay balanced; this extension re-balances non-uniform
    distributions by placing each axis's cell boundaries at quantiles of
    the particle coordinates (exact balance for 1-D slabs, marginal
    balance for tensor grids).
    """
    edges = []
    for k, d in enumerate(team_dims):
        qs = np.quantile(particles.pos[:, k], np.linspace(0, 1, d + 1))
        qs[0], qs[-1] = 0.0, box_length
        # Enforce strict monotonicity for degenerate quantiles.
        for i in range(1, d + 1):
            if qs[i] <= qs[i - 1]:
                qs[i] = np.nextafter(qs[i - 1], np.inf)
        edges.append(tuple(float(x) for x in qs))
    return TeamGeometry(box_length=box_length, team_dims=tuple(team_dims),
                        edges=tuple(edges))

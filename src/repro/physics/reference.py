"""Serial reference implementations the distributed algorithms are tested
against.

These compute the same physics with the simplest possible O(n^2) logic; any
(p, c) configuration of any distributed algorithm must match them to
floating-point tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.physics.forces import ForceLaw, pairwise_forces
from repro.physics.particles import ParticleSet

__all__ = ["reference_forces", "reference_pair_matrix"]


def reference_forces(law: ForceLaw, particles: ParticleSet) -> np.ndarray:
    """Exact forces on every particle, ordered by the set's current order."""
    forces, _ = pairwise_forces(
        law,
        particles.pos,
        particles.pos,
        target_ids=particles.ids,
        source_ids=particles.ids,
    )
    return forces


def reference_pair_matrix(law: ForceLaw, particles: ParticleSet) -> np.ndarray:
    """The (n, n) 0/1 matrix of ordered pairs a correct run must accumulate.

    Entry ``[i, j]`` (global ids) is 1 when ``i != j`` and — with a cutoff —
    the pair lies within ``rcut``; such pairs must be computed exactly once.
    Pairs beyond the cutoff must never contribute; the coverage tests allow
    them to be *scanned* zero or one time (a scan beyond ``rcut``
    contributes zero force, matching the paper's "constant or zero effect"
    semantics), which is recorded separately by the kernels.
    """
    n = len(particles)
    order = np.argsort(particles.ids, kind="stable")
    pos = particles.pos[order]
    expected = np.ones((n, n), dtype=np.int64)
    np.fill_diagonal(expected, 0)
    if law.rcut is not None:
        dr = pos[:, None, :] - pos[None, :, :]
        if law.box is not None:
            dr -= law.box * np.round(dr / law.box)  # minimum image
        r2 = np.einsum("ijk,ijk->ij", dr, dr)
        expected &= (r2 <= law.rcut * law.rcut).astype(np.int64)
        np.fill_diagonal(expected, 0)
    return expected

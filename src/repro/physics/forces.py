"""Pairwise force kernels.

The paper's test problem: particles in a box exert a **repulsive force that
drops off with the square of their distance** (magnitude ``k / r^2``,
directed apart).  A Plummer-style softening length keeps the kernel finite
at tiny separations; an optional cutoff radius ``rcut`` zeroes interactions
beyond it (Section IV's distance-limited case — "particles have no effect
beyond a cutoff radius").

The kernels are fully vectorized over target x source pairs and chunk the
target axis so the temporary ``(nt, ns, d)`` displacement tensor stays
within a bounded memory footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ForceLaw", "clear_scratch", "pairwise_forces", "potential_energy"]

# Cap on nt * ns per vectorized chunk (elements of the pair matrix).
_CHUNK_PAIRS = 1 << 22

# ---------------------------------------------------------------------------
# Scratch-buffer pool.
#
# The CA shift loop calls the kernel once per shift step with the *same*
# block shapes every time, so the (m, ns, d) displacement tensor, the
# (m, ns) squared-distance / weight planes and the boolean masks are
# allocated exactly once per shape and reused for every subsequent chunk —
# at the small per-team block sizes typical of large-p runs, allocator
# traffic dominates the arithmetic.  Buffers are fully overwritten before
# every read (all producers are ``out=`` ufuncs/einsums over the whole
# buffer), so reuse cannot leak state between calls; results stay bitwise
# identical to the allocating path (``scratch=False``), which the
# determinism tests pin.
# ---------------------------------------------------------------------------

class _Scratch:
    """Every buffer one ``(m, ns, d)`` chunk shape needs, fetched in one
    pool lookup (at small block sizes even dict lookups show up)."""

    __slots__ = ("dr", "mi", "r2", "live", "within", "denom", "dead",
                 "f", "rf")

    def __init__(self, m: int, ns: int, d: int):
        self.dr = np.empty((m, ns, d))
        self.r2 = np.empty((m, ns))
        self.denom = np.empty((m, ns))
        self.live = np.empty((m, ns), dtype=bool)
        self.dead = np.empty((m, ns), dtype=bool)
        self.f = np.empty((m, d))
        # Lazily allocated (minimum image / cutoff-with-ids / reactions):
        self.mi: np.ndarray | None = None
        self.within: np.ndarray | None = None
        self.rf: np.ndarray | None = None


_SCRATCH_POOL: dict[tuple[int, int, int], _Scratch] = {}


def _scratch_for(m: int, ns: int, d: int) -> _Scratch:
    key = (m, ns, d)
    bufs = _SCRATCH_POOL.get(key)
    if bufs is None:
        bufs = _SCRATCH_POOL[key] = _Scratch(m, ns, d)
    return bufs


def clear_scratch() -> None:
    """Drop all pooled kernel scratch buffers (frees their memory)."""
    _SCRATCH_POOL.clear()


@dataclass(frozen=True)
class ForceLaw:
    """Parameters of the repulsive inverse-square interaction.

    Attributes
    ----------
    k:
        Force constant (magnitude is ``k / r^2``).
    softening:
        Plummer softening length; ``r^2`` is replaced by
        ``r^2 + softening^2``.
    rcut:
        Cutoff radius; ``None`` means interactions act at all distances.
        With a cutoff, pairs at distance > rcut contribute exactly zero —
        matching the paper's "no effect beyond a cutoff radius" setting.
    box:
        Periodic box length; ``None`` (the paper's setting) means open
        space with reflective walls handled elsewhere.  When set,
        displacements use the minimum-image convention — the reproduction's
        periodic-boundary extension, which removes the boundary load
        imbalance the paper discusses.
    """

    k: float = 1.0e-4
    softening: float = 1.0e-3
    rcut: float | None = None
    box: float | None = None

    def __post_init__(self):
        if self.box is not None:
            if self.box <= 0:
                raise ValueError(f"periodic box must be positive, got {self.box}")
            if self.rcut is not None and self.rcut > self.box / 2:
                raise ValueError(
                    f"rcut={self.rcut} exceeds half the periodic box "
                    f"{self.box} (minimum image would be ambiguous)"
                )

    def with_rcut(self, rcut: float | None) -> "ForceLaw":
        return ForceLaw(self.k, self.softening, rcut, self.box)

    def with_box(self, box: float | None) -> "ForceLaw":
        return ForceLaw(self.k, self.softening, self.rcut, box)


def pairwise_forces(
    law: ForceLaw,
    target_pos: np.ndarray,
    source_pos: np.ndarray,
    *,
    target_ids: np.ndarray | None = None,
    source_ids: np.ndarray | None = None,
    out: np.ndarray | None = None,
    pair_counter: np.ndarray | None = None,
    reaction_out: np.ndarray | None = None,
    half: bool = False,
    pair_mask: np.ndarray | None = None,
    scratch: bool = True,
) -> tuple[np.ndarray, int]:
    """Accumulate forces of ``source`` particles on ``target`` particles.

    Parameters
    ----------
    target_pos, source_pos:
        ``(nt, d)`` and ``(ns, d)`` position arrays.
    target_ids, source_ids:
        Global particle ids; when both are given, pairs with equal ids are
        excluded (a particle never interacts with its own replica).
    out:
        ``(nt, d)`` accumulator to add into; a fresh zero array otherwise.
    pair_counter:
        Optional ``(n_global, n_global)`` integer matrix; entry ``[i, j]``
        is incremented for every *accumulated* (target id i, source id j)
        interaction.  Used by the exactly-once coverage tests.
    reaction_out:
        Optional ``(ns, d)`` accumulator receiving Newton's-third-law
        reactions (``-F`` per pair) — the symmetric-force extension the
        paper deliberately does not apply.  When given, the counter also
        records the (source, target) direction.  For a block interacting
        with itself, pass the *same* array as ``out`` together with
        ``half=True``.
    half:
        Evaluate only pairs with ``target_id < source_id`` (requires ids
        and ``reaction_out``): each unordered pair once.
    pair_mask:
        Optional ``(nt, ns)`` boolean matrix further restricting which
        pairs are live (ANDed with the id/cutoff masks).  Neutral-territory
        methods use it to select the pairs a rank *owns* — e.g. the
        midpoint method's "pairs whose midpoint falls in my region".
    scratch:
        Reuse pooled per-shape scratch buffers (default).  ``False``
        allocates fresh temporaries per chunk — same results bit for bit,
        kept for A/B determinism tests.

    Returns
    -------
    (forces, npairs_scanned):
        The accumulator, and the number of candidate pairs scanned —
        the computation cost the machine model charges (``nt * ns``, or
        the ``nt (nt - 1) / 2`` upper triangle in ``half`` mode).
    """
    nt, d = target_pos.shape
    ns = source_pos.shape[0]
    if out is None:
        out = np.zeros((nt, d), dtype=np.float64)
    if half and (target_ids is None or source_ids is None or reaction_out is None):
        raise ValueError("half=True requires ids and reaction_out")
    if nt == 0 or ns == 0:
        return out, 0

    exclude_ids = target_ids is not None and source_ids is not None
    eps2 = law.softening * law.softening
    rcut2 = None if law.rcut is None else law.rcut * law.rcut

    chunk = max(1, _CHUNK_PAIRS // max(ns, 1))
    for lo in range(0, nt, chunk):
        hi = min(lo + chunk, nt)
        m = hi - lo
        if scratch:
            # Pooled path: every temporary is a per-shape pooled buffer,
            # produced by the same ufunc/einsum as the allocating path
            # (``x * round(y)`` vs ``round(y, out=...) *= x`` etc. are the
            # same IEEE operations), so values are bitwise identical.
            bufs = _scratch_for(m, ns, d)
            dr = bufs.dr
            np.subtract(target_pos[lo:hi, None, :], source_pos[None, :, :],
                        out=dr)
            if law.box is not None:
                # Minimum image, fused into one pass over one scratch
                # tensor instead of three fresh temporaries.
                mi = bufs.mi
                if mi is None:
                    mi = bufs.mi = np.empty((m, ns, d))
                np.divide(dr, law.box, out=mi)
                np.round(mi, out=mi)
                mi *= law.box
                dr -= mi
            r2 = np.einsum("ijk,ijk->ij", dr, dr, out=bufs.r2)
            live = None
            if half:
                live = bufs.live
                np.less(target_ids[lo:hi, None], source_ids[None, :],
                        out=live)
            elif exclude_ids:
                live = bufs.live
                np.not_equal(target_ids[lo:hi, None], source_ids[None, :],
                             out=live)
            if pair_mask is not None:
                if live is None:
                    live = bufs.live
                    np.copyto(live, pair_mask[lo:hi])
                else:
                    live &= pair_mask[lo:hi]
            if rcut2 is not None:
                if live is None:
                    live = bufs.live
                    np.less_equal(r2, rcut2, out=live)
                else:
                    within = bufs.within
                    if within is None:
                        within = bufs.within = np.empty((m, ns), dtype=bool)
                    np.less_equal(r2, rcut2, out=within)
                    live &= within
            # F = k * dr / (r^2 + eps^2)^(3/2): repulsive inverse-square.
            denom = bufs.denom
            np.add(r2, eps2, out=denom)
            np.power(denom, 1.5, out=denom)
            if live is not None:
                # Masked pairs (self/replica/beyond-cutoff) may sit at
                # zero distance; keep their excluded denominators finite.
                dead = bufs.dead
                np.logical_not(live, out=dead)
                np.copyto(denom, 1.0, where=dead)
            w = denom  # reuse in place: k / denom
            np.divide(law.k, denom, out=w)
            if live is not None:
                np.copyto(w, 0.0, where=dead)
            fchunk = np.einsum("ij,ijk->ik", w, dr, out=bufs.f)
            out[lo:hi] += fchunk
            if reaction_out is not None:
                rf = bufs.rf
                if rf is None:
                    rf = bufs.rf = np.empty((ns, d))
                rchunk = np.einsum("ij,ijk->jk", w, dr, out=rf)
                reaction_out -= rchunk
        else:
            dr = target_pos[lo:hi, None, :] - source_pos[None, :, :]  # (m, ns, d)
            if law.box is not None:
                dr -= law.box * np.round(dr / law.box)  # minimum image
            r2 = np.einsum("ijk,ijk->ij", dr, dr)
            live = None
            if half:
                live = target_ids[lo:hi, None] < source_ids[None, :]
            elif exclude_ids:
                live = target_ids[lo:hi, None] != source_ids[None, :]
            if pair_mask is not None:
                live = pair_mask[lo:hi] if live is None \
                    else (live & pair_mask[lo:hi])
            if rcut2 is not None:
                within = r2 <= rcut2
                live = within if live is None else (live & within)
            # F = k * dr / (r^2 + eps^2)^(3/2): repulsive inverse-square.
            denom = (r2 + eps2) ** 1.5
            if live is not None:
                # Masked pairs (self/replica/beyond-cutoff) may sit at zero
                # distance; keep their excluded denominators finite.
                denom = np.where(live, denom, 1.0)
            w = law.k / denom
            if live is not None:
                w = np.where(live, w, 0.0)
            out[lo:hi] += np.einsum("ij,ijk->ik", w, dr)
            if reaction_out is not None:
                reaction_out -= np.einsum("ij,ijk->jk", w, dr)
        if pair_counter is not None:
            mask = np.ones_like(r2, dtype=bool) if live is None else live
            ti = np.asarray(target_ids[lo:hi], dtype=np.intp)
            si = np.asarray(source_ids, dtype=np.intp)
            ii, jj = np.nonzero(mask)
            np.add.at(pair_counter, (ti[ii], si[jj]), 1)
            if reaction_out is not None:
                np.add.at(pair_counter, (si[jj], ti[ii]), 1)
    npairs = nt * (nt - 1) // 2 if half and nt == ns else nt * ns
    return out, npairs


def potential_energy(
    law: ForceLaw,
    pos: np.ndarray,
    *,
    ids: np.ndarray | None = None,
) -> float:
    """Total potential energy of the configuration (diagnostics only).

    The potential conjugate to ``F = k dr / (r^2 + eps^2)^{3/2}`` is
    ``U(r) = k / sqrt(r^2 + eps^2)``; each unordered pair counts once.
    With a cutoff the potential is truncated (not shifted), which is fine
    for the smoke-level conservation checks the tests perform.
    """
    n, _ = pos.shape
    if n < 2:
        return 0.0
    eps2 = law.softening * law.softening
    rcut2 = None if law.rcut is None else law.rcut * law.rcut
    total = 0.0
    chunk = max(1, _CHUNK_PAIRS // n)
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        dr = pos[lo:hi, None, :] - pos[None, :, :]
        if law.box is not None:
            dr -= law.box * np.round(dr / law.box)
        r2 = np.einsum("ijk,ijk->ij", dr, dr)
        iu = np.arange(lo, hi)[:, None] < np.arange(n)[None, :]
        if rcut2 is not None:
            iu &= r2 <= rcut2
        total += float((law.k / np.sqrt(r2[iu] + eps2)).sum())
    return total

"""Particle containers: structure-of-arrays sets and message blocks.

Three container kinds appear throughout the algorithms:

* :class:`ParticleSet` — positions, velocities and global ids for a set of
  particles (the simulation state a team owns);
* :class:`HomeBlock` — a team's particle block plus its force accumulator
  (the thing the CA algorithms update and sum-reduce);
* :class:`TravelBlock` — the position+id payload that moves through the
  exchange buffers during skew/shift steps.

All wire sizes are accounted at the paper's measured **52 bytes per
particle** via the ``wire_nbytes`` attribute the simulated-MPI payload
accounting looks for.  (52 bytes matches a C struct of 2-D position,
velocity, force as floats/doubles plus an id; we keep the constant itself
authoritative since message volume is what the model cares about.)

The :class:`VirtualBlock` twin carries only a particle *count*; it lets the
same algorithm code run in "modeled" mode at the paper's 24K-core scales
where materializing real particle data per rank would be pointless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machines.base import PARTICLE_BYTES
from repro.util import default_rng, require

__all__ = [
    "HomeBlock",
    "ParticleSet",
    "TravelBlock",
    "VirtualBlock",
    "concat_sets",
]


@dataclass
class ParticleSet:
    """A set of particles in d-dimensional space (structure of arrays)."""

    pos: np.ndarray  # (n, d) float64
    vel: np.ndarray  # (n, d) float64
    ids: np.ndarray  # (n,) int64, globally unique

    def __post_init__(self):
        self.pos = np.ascontiguousarray(self.pos, dtype=np.float64)
        self.vel = np.ascontiguousarray(self.vel, dtype=np.float64)
        self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
        require(self.pos.ndim == 2, "pos must be (n, d)")
        require(self.vel.shape == self.pos.shape, "vel must match pos shape")
        require(self.ids.shape == (self.pos.shape[0],), "ids must be (n,)")
        require(bool(np.isfinite(self.pos).all()), "positions must be finite")
        require(bool(np.isfinite(self.vel).all()), "velocities must be finite")

    # -- basic introspection ------------------------------------------------

    def __len__(self) -> int:
        return self.pos.shape[0]

    @property
    def n(self) -> int:
        return self.pos.shape[0]

    @property
    def dim(self) -> int:
        return self.pos.shape[1]

    @property
    def wire_nbytes(self) -> int:
        """Bytes on the simulated wire (52 per particle, as in the paper)."""
        return PARTICLE_BYTES * self.n

    # -- construction -----------------------------------------------------------

    @staticmethod
    def uniform_random(
        n: int,
        dim: int,
        box_length: float,
        *,
        max_speed: float = 0.0,
        seed=None,
        id_offset: int = 0,
    ) -> "ParticleSet":
        """Particles uniform in ``[0, box_length]^dim``; speeds uniform in
        ``[-max_speed, max_speed]`` per component."""
        rng = default_rng(seed)
        pos = rng.uniform(0.0, box_length, size=(n, dim))
        if max_speed > 0:
            vel = rng.uniform(-max_speed, max_speed, size=(n, dim))
        else:
            vel = np.zeros((n, dim))
        ids = np.arange(id_offset, id_offset + n, dtype=np.int64)
        return ParticleSet(pos, vel, ids)

    @staticmethod
    def empty(dim: int) -> "ParticleSet":
        return ParticleSet(
            np.empty((0, dim)), np.empty((0, dim)), np.empty((0,), dtype=np.int64)
        )

    # -- manipulation -------------------------------------------------------------

    def subset(self, index) -> "ParticleSet":
        """A copy restricted to ``index`` (any NumPy fancy index)."""
        return ParticleSet(self.pos[index].copy(), self.vel[index].copy(),
                           self.ids[index].copy())

    def copy(self) -> "ParticleSet":
        return ParticleSet(self.pos.copy(), self.vel.copy(), self.ids.copy())

    def detached(self) -> "ParticleSet":
        """A set owning private ``pos``/``vel`` copies, sharing ``ids``.

        The copy-on-write half of the zero-copy payload protocol: travel
        blocks and broadcast home blocks alias a leader's arrays by
        reference, so before a rank mutates positions or velocities in
        place (integration, boundary handling) it must detach its storage.
        Ids are immutable for a particle's lifetime and stay shared.
        """
        return ParticleSet(self.pos.copy(), self.vel.copy(), self.ids)

    def sorted_by_id(self) -> "ParticleSet":
        """A copy ordered by ascending particle id (stable)."""
        order = np.argsort(self.ids, kind="stable")
        return self.subset(order)


def concat_sets(sets: list[ParticleSet]) -> ParticleSet:
    """Concatenate particle sets (dimensions must agree)."""
    sets = [s for s in sets if len(s) > 0]
    if not sets:
        raise ValueError("cannot concatenate zero non-empty particle sets")
    return ParticleSet(
        np.concatenate([s.pos for s in sets]),
        np.concatenate([s.vel for s in sets]),
        np.concatenate([s.ids for s in sets]),
    )


@dataclass
class TravelBlock:
    """Exchange-buffer payload: positions + ids of one team block.

    The symmetric (Newton's-third-law) algorithm variant additionally
    carries a reaction-force accumulator with the buffer; its bytes are
    charged on the wire.
    """

    pos: np.ndarray  # (n, d)
    ids: np.ndarray  # (n,)
    #: Index of the team that owns these particles (set by the algorithms;
    #: used for the cutoff window skip test).
    team: int = -1
    #: Accumulated reactions on these particles (symmetric variant only).
    forces: np.ndarray | None = None

    def __len__(self) -> int:
        return self.pos.shape[0]

    @property
    def wire_nbytes(self) -> int:
        """Bytes on the wire: particle words plus any reaction buffer."""
        n = self.pos.shape[0]
        extra = 0 if self.forces is None else self.forces.shape[1] * 8 * n
        return PARTICLE_BYTES * n + extra


@dataclass
class HomeBlock:
    """A team's particle block with its force accumulator."""

    particles: ParticleSet
    forces: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.forces is None:
            self.forces = np.zeros_like(self.particles.pos)
        require(
            self.forces.shape == self.particles.pos.shape,
            "forces must match particle positions in shape",
        )

    def __len__(self) -> int:
        return len(self.particles)

    @property
    def wire_nbytes(self) -> int:
        return self.particles.wire_nbytes

    def zero_forces(self) -> None:
        self.forces[:] = 0.0


@dataclass
class VirtualBlock:
    """A block of ``count`` phantom particles (modeled mode).

    Carries no coordinates — only the size needed for wire accounting and
    pair-count cost charging.  ``team`` mirrors :class:`TravelBlock`;
    ``extra_bytes`` models additional per-particle payload (the symmetric
    variant's traveling reaction forces).
    """

    count: int
    team: int = -1
    extra_bytes: int = 0

    def __len__(self) -> int:
        return self.count

    @property
    def wire_nbytes(self) -> int:
        return (PARTICLE_BYTES + self.extra_bytes) * self.count

"""Synthetic workload generators beyond the uniform box.

The paper "set the parameters of the simulation to ensure the particle
distribution remains nearly uniform over time" — uniformity is what makes
its spatial decomposition load-balanced.  These generators produce the
*non*-uniform distributions real N-body workloads have (clusters, density
gradients), so the reproduction can quantify how much the CA cutoff
algorithm's load balance depends on that assumption.

All generators return a :class:`~repro.physics.particles.ParticleSet` with
positions clipped/folded into ``[0, box_length]^dim`` and ids ``0..n-1``.
"""

from __future__ import annotations

import numpy as np

from repro.physics.particles import ParticleSet
from repro.util import default_rng, require

__all__ = ["gaussian_clusters", "density_gradient", "plummer_sphere",
           "two_phase"]


def gaussian_clusters(
    n: int,
    dim: int,
    box_length: float,
    *,
    nclusters: int = 4,
    spread: float = 0.05,
    max_speed: float = 0.0,
    seed=None,
) -> ParticleSet:
    """Particles in ``nclusters`` Gaussian blobs with std ``spread * L``.

    Cluster centers are uniform in the middle 80% of the box; positions
    are folded back into the box by reflection.
    """
    require(nclusters >= 1, "need at least one cluster")
    rng = default_rng(seed)
    L = float(box_length)
    centers = rng.uniform(0.1 * L, 0.9 * L, size=(nclusters, dim))
    which = rng.integers(0, nclusters, size=n)
    pos = centers[which] + rng.normal(scale=spread * L, size=(n, dim))
    pos = np.abs(pos)  # reflect at the lower wall
    pos = L - np.abs(L - pos)  # ...and the upper wall
    np.clip(pos, 0.0, L, out=pos)
    vel = (rng.uniform(-max_speed, max_speed, size=(n, dim))
           if max_speed > 0 else np.zeros((n, dim)))
    return ParticleSet(pos, vel, np.arange(n, dtype=np.int64))


def density_gradient(
    n: int,
    dim: int,
    box_length: float,
    *,
    exponent: float = 2.0,
    max_speed: float = 0.0,
    seed=None,
) -> ParticleSet:
    """Density rising toward the high end of the first axis.

    The first coordinate is drawn as ``L * u^(1/(1+exponent))`` (density
    proportional to ``x^exponent``); remaining coordinates are uniform.
    """
    require(exponent >= 0, "exponent must be non-negative")
    rng = default_rng(seed)
    L = float(box_length)
    pos = rng.uniform(0.0, L, size=(n, dim))
    pos[:, 0] = L * rng.random(n) ** (1.0 / (1.0 + exponent))
    vel = (rng.uniform(-max_speed, max_speed, size=(n, dim))
           if max_speed > 0 else np.zeros((n, dim)))
    return ParticleSet(pos, vel, np.arange(n, dtype=np.int64))


def plummer_sphere(
    n: int,
    dim: int,
    box_length: float,
    *,
    scale_radius: float = 0.1,
    max_speed: float = 0.0,
    seed=None,
) -> ParticleSet:
    """The Plummer model — the standard collisional N-body benchmark
    distribution (Makino, astro-ph/0108412; Aarseth's NBODY series).

    Radii follow the Plummer density profile with scale radius
    ``scale_radius * L``: inverting the cumulative mass gives
    ``r = a (u^(-2/3) - 1)^(-1/2)`` for uniform ``u``; directions are
    isotropic on the ``dim``-sphere.  The sphere is centered in the box
    and positions are clipped to ``[0, L]^dim`` (the profile's unbounded
    outer tail — a few percent of the mass — lands on the walls, which
    is exactly the kind of hot spot the load-balance studies want).
    """
    require(dim >= 1, "dim must be >= 1")
    require(scale_radius > 0, "scale_radius must be positive")
    rng = default_rng(seed)
    L = float(box_length)
    a = scale_radius * L
    # Inverse-CDF sampling of the Plummer cumulative mass M(r)/M =
    # r^3 / (r^2 + a^2)^(3/2); u is bounded away from 1 to keep the
    # outermost radius finite.
    u = rng.uniform(0.0, 1.0 - 1e-9, size=n)
    r = a / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    direction = rng.normal(size=(n, dim))
    norm = np.linalg.norm(direction, axis=1, keepdims=True)
    norm[norm == 0.0] = 1.0
    pos = L / 2.0 + direction / norm * r[:, None]
    np.clip(pos, 0.0, L, out=pos)
    vel = (rng.uniform(-max_speed, max_speed, size=(n, dim))
           if max_speed > 0 else np.zeros((n, dim)))
    return ParticleSet(pos, vel, np.arange(n, dtype=np.int64))


def two_phase(
    n: int,
    dim: int,
    box_length: float,
    *,
    dense_fraction: float = 0.8,
    dense_extent: float = 0.25,
    max_speed: float = 0.0,
    seed=None,
) -> ParticleSet:
    """A dense corner region plus a dilute background.

    ``dense_fraction`` of the particles land uniformly in the corner cube
    of side ``dense_extent * L``; the rest fill the whole box.
    """
    require(0.0 < dense_fraction < 1.0, "dense_fraction must be in (0, 1)")
    require(0.0 < dense_extent <= 1.0, "dense_extent must be in (0, 1]")
    rng = default_rng(seed)
    L = float(box_length)
    n_dense = int(round(n * dense_fraction))
    dense = rng.uniform(0.0, dense_extent * L, size=(n_dense, dim))
    dilute = rng.uniform(0.0, L, size=(n - n_dense, dim))
    pos = np.concatenate([dense, dilute])
    vel = (rng.uniform(-max_speed, max_speed, size=(n, dim))
           if max_speed > 0 else np.zeros((n, dim)))
    return ParticleSet(pos, vel, np.arange(n, dtype=np.int64))

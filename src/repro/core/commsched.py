"""The shared communication-schedule abstraction (one IR, many algorithms).

Before this module, three places in the tree knew "who holds which buffer
at which step, which pairs update, and what moves on the wire": the CA
step program (:mod:`repro.core.ca_step`), its symmetric variant
(:mod:`repro.core.symmetric`) and the heuristic tier's per-algorithm plan
builders (:mod:`repro.simmpi.fastsim`).  Adding a new schedule meant
writing the same arithmetic three times.  This module factors that
knowledge into one declarative IR:

* a :class:`CommSchedule` is a grid shape, a set of named **buffers**
  (the circulating exchange block, a reaction-carrying block, or
  replicated hyper-systolic *registers*), and an ordered list of
  **rounds**;
* a :class:`Shift` round moves a buffer (or its force accumulator)
  uniformly along each row; a :class:`Interact` round applies per-row
  :class:`Update` s between a target accumulator and a source buffer;
* :func:`rounds_for_schedule` lowers a CA :class:`~repro.core.window.
  ShiftSchedule` (all-pairs, cutoff window, or the symmetric half ring)
  into this IR; :func:`systolic_ring_rounds`, :func:`half_systolic_rounds`
  and :func:`hyper_systolic_rounds` build the systolic-family schedules
  from the literature (Dorband astro-ph/0112092; Lippert et al.
  hep-lat/9512020) directly;
* :func:`scheduled_step` executes any :class:`CommSchedule` as an exact
  rank program on the simulated MPI, and
  :func:`repro.simmpi.fastsim` replays the *same* IR analytically for
  the vectorized heuristic tier — so both engine tiers, the metrics
  lock and the model validation all see one schedule definition.

Buffer-content bookkeeping convention: a buffer whose *content offset*
is the vector ``o`` holds, at column ``col``, the block of team
``col + o`` (wrapped on the team grid).  A :class:`Shift` by move ``v``
sends the buffer to column ``col + v``, so the content offset becomes
``o - v`` — each round declares the expected post-shift offset and the
executors assert the arriving block matches it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

from repro.core.window import ShiftSchedule
from repro.util import require

__all__ = [
    "HOME",
    "CommSchedule",
    "Interact",
    "SHIFT_TAG",
    "Shift",
    "StepResult",
    "Update",
    "default_hyper_k",
    "half_systolic_rounds",
    "hyper_strides",
    "hyper_systolic_rounds",
    "rounds_for_schedule",
    "scheduled_program",
    "scheduled_step",
    "systolic_ring_rounds",
]

#: User tag for exchange-buffer traffic (shared with the CA step).
SHIFT_TAG = 7

#: User tag for the symmetric variant's reaction-return round.
RETURN_TAG = 13

#: User tag for the hyper-systolic force-collection cascade.
COLLECT_TAG = 9

#: Buffer index denoting the rank's home block (always present).
HOME = -1

#: Legal buffer kinds: ``block`` circulates read-only particle views,
#: ``block_sym`` additionally carries a reaction-force accumulator, and
#: ``register`` is an initially-empty replicated slot filled by adoption
#: (hyper-systolic distribution).
_BUFFER_KINDS = ("block", "block_sym", "register")


@dataclass(frozen=True)
class Update:
    """One accumulation between a target accumulator and a source buffer.

    Attributes
    ----------
    target:
        Buffer index receiving forces (:data:`HOME` or a register).
    source:
        Buffer index providing the visiting block (:data:`HOME` reads a
        travel view of the home block itself).
    mode:
        ``"full"`` — every target x source pair, forces on the target
        only; ``"symmetric"`` — every pair once, reaction accumulated on
        the source buffer; ``"self_half"`` — the target block with
        itself, upper triangle, both directions locally.
    gated:
        Apply the runtime reachability predicate (cutoff pruning) to the
        (column, source-content) pair before computing.
    half_pair:
        Antipodal deduplication: only columns strictly below the source
        buffer's content team compute (the half-ring schedule sees the
        opposite block from both sides at the antipode).
    """

    target: int
    source: int
    mode: str = "full"
    gated: bool = False
    half_pair: bool = False


@dataclass(frozen=True)
class Shift:
    """One uniform row-wise buffer movement.

    Attributes
    ----------
    phase:
        Trace phase the traffic and wait time are charged to.
    moves:
        Per-row column displacement vectors (length ``c``); the buffer
        goes to ``col + move`` and arrives from ``col - move``.
    src, dst:
        Buffer indices: what is sent, and where the arriving payload
        lands.  ``dst`` of kind ``register`` *adopts* the arriving block
        (fresh force accumulator); ``dst = HOME`` with ``absorb`` folds
        the arriving reaction buffer into the home accumulator.
    content:
        Per-row content offsets after the round (``None`` when the round
        moves only forces and buffer contents are unchanged).  The
        executors assert the arriving block matches.
    payload:
        ``"buffer"`` moves the block itself; ``"forces"`` moves only the
        source buffer's force accumulator, folded into ``dst``.
    tag:
        User tag for the sendrecv.
    wrap_skip:
        Skip condition: by default a row with an exactly-zero move does
        not communicate (CA padding); with ``wrap_skip`` a row whose
        move *wraps* to its own column keeps its buffer locally (the
        symmetric return at offset ``= 0 (mod T)``).
    absorb:
        Fold the arriving buffer's reactions into the home block
        (symmetric return round).
    measure:
        Include this round in the peak-memory measurement (the CA skew
        is excluded, matching the reference step's accounting).
    """

    phase: str
    moves: tuple[tuple[int, ...], ...]
    src: int
    dst: int
    content: tuple[tuple[int, ...], ...] | None = None
    payload: str = "buffer"
    tag: int = SHIFT_TAG
    wrap_skip: bool = False
    absorb: bool = False
    measure: bool = True


@dataclass(frozen=True)
class Interact:
    """One compute round: per-row updates (``None`` = row idle)."""

    phase: str
    updates: tuple[Update | None, ...]


@dataclass(frozen=True)
class CommSchedule:
    """A complete communication schedule: buffers plus ordered rounds.

    Attributes
    ----------
    team_dims:
        Shape of the team grid (teams numbered row-major over it).
    c:
        Replication factor (rows per team executing the schedule).
    buffers:
        Kind of each buffer (see :data:`_BUFFER_KINDS`); ``block`` /
        ``block_sym`` buffers start holding the rank's own block,
        ``register`` buffers start empty.
    rounds:
        The ordered :class:`Shift` / :class:`Interact` rounds.
    team_bcast:
        Open with the in-team leader broadcast (the CA family's
        replication fill; the ``c = 1`` systolic family skips it).
    team_reduce:
        Close with the in-team force reduction to the leader.
    """

    team_dims: tuple[int, ...]
    c: int
    buffers: tuple[str, ...]
    rounds: tuple[Any, ...]
    team_bcast: bool = True
    team_reduce: bool = True

    @property
    def nteams(self) -> int:
        """Total team count (product of the team-grid dimensions)."""
        n = 1
        for d in self.team_dims:
            n *= d
        return n

    def wrap(self, mi: tuple[int, ...]) -> int:
        """Linear team id of a multi-index, wrapping each coordinate."""
        t = 0
        for x, d in zip(mi, self.team_dims):
            t = t * d + x % d
        return t

    def team_multi(self, team: int) -> tuple[int, ...]:
        """Multi-index of a linear team id (row-major)."""
        out = []
        for d in reversed(self.team_dims):
            team, r = divmod(team, d)
            out.append(r)
        return tuple(reversed(out))

    def displace(self, team: int, off: tuple[int, ...]) -> int:
        """Team at ``team``'s multi-index plus ``off`` (wrapped)."""
        mi = self.team_multi(team)
        return self.wrap(tuple(a + b for a, b in zip(mi, off)))

    def validate(self) -> None:
        """Check the structural invariants the executors rely on."""
        nbuf = len(self.buffers)
        for kind in self.buffers:
            require(kind in _BUFFER_KINDS,
                    f"unknown buffer kind {kind!r} (expected one of "
                    f"{_BUFFER_KINDS})")
        ndim = len(self.team_dims)
        for i, rnd in enumerate(self.rounds):
            if isinstance(rnd, Shift):
                require(len(rnd.moves) == self.c,
                        f"round {i}: {len(rnd.moves)} moves for c={self.c}")
                for mv in rnd.moves:
                    require(len(mv) == ndim,
                            f"round {i}: move {mv} is not {ndim}-dimensional")
                require(rnd.payload in ("buffer", "forces"),
                        f"round {i}: unknown payload {rnd.payload!r}")
                require(rnd.src == HOME or 0 <= rnd.src < nbuf,
                        f"round {i}: src buffer {rnd.src} out of range")
                require(rnd.dst == HOME or 0 <= rnd.dst < nbuf,
                        f"round {i}: dst buffer {rnd.dst} out of range")
                if rnd.content is not None:
                    require(len(rnd.content) == self.c,
                            f"round {i}: content rows != c")
            elif isinstance(rnd, Interact):
                require(len(rnd.updates) == self.c,
                        f"round {i}: {len(rnd.updates)} updates for "
                        f"c={self.c}")
                for up in rnd.updates:
                    if up is None:
                        continue
                    require(up.mode in ("full", "symmetric", "self_half"),
                            f"round {i}: unknown update mode {up.mode!r}")
                    require(up.source == HOME or 0 <= up.source < nbuf,
                            f"round {i}: source buffer {up.source} out of "
                            "range")
                    require(up.target == HOME or 0 <= up.target < nbuf,
                            f"round {i}: target buffer {up.target} out of "
                            "range")
            else:
                raise TypeError(f"round {i}: unknown round type {rnd!r}")


# ---------------------------------------------------------------------------
# Lowering a CA ShiftSchedule into the IR.
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def rounds_for_schedule(sched: ShiftSchedule,
                        symmetric: bool = False) -> CommSchedule:
    """Lower a CA :class:`~repro.core.window.ShiftSchedule` into the IR.

    The produced rounds replay :func:`~repro.core.ca_step.
    ca_interaction_step` exactly — skew (unmeasured), then ``w/c``
    shift+update rounds with per-row skip positions baked in and cutoff
    reachability left as a runtime gate.  With ``symmetric=True`` the
    update modes follow :func:`~repro.core.symmetric.ca_symmetric_step`:
    the self position computes the half triangle, the antipodal position
    deduplicates pairwise, every other position accumulates reactions on
    the traveling buffer, and a final wrap-skipped return round carries
    the reactions home.
    """
    c = sched.c
    T = sched.nteams
    ndim = len(sched.team_dims)
    zero = (0,) * ndim
    antipode = T // 2 if (symmetric and T % 2 == 0) else None

    rounds: list[Any] = [Shift(
        phase="shift",
        moves=tuple(sched.skew_move(k) for k in range(c)),
        src=0, dst=0,
        content=tuple(sched.offsets[(sched.zero_index + k) % sched.window]
                      for k in range(c)),
        measure=False,
    )]
    for i in range(sched.steps):
        rounds.append(Shift(
            phase="shift",
            moves=tuple(sched.step_move(k, i) for k in range(c)),
            src=0, dst=0,
            content=tuple(sched.offsets[sched.position(k, i)]
                          for k in range(c)),
        ))
        updates: list[Update | None] = []
        for k in range(c):
            u = sched.position(k, i)
            if sched.skip[u]:
                updates.append(None)
            elif not symmetric:
                updates.append(Update(target=HOME, source=0, mode="full",
                                      gated=True))
            elif sched.wrap_offset(sched.offsets[u]) == zero:
                updates.append(Update(target=HOME, source=0,
                                      mode="self_half"))
            else:
                updates.append(Update(
                    target=HOME, source=0, mode="symmetric",
                    half_pair=(antipode is not None
                               and sched.offsets[u][0] == antipode),
                ))
        rounds.append(Interact(phase="compute", updates=tuple(updates)))

    if symmetric:
        # Send each buffer's accumulated reactions back to its home
        # column; rows whose final offset wraps to zero keep theirs.
        rounds.append(Shift(
            phase="return",
            moves=tuple(sched.offsets[sched.position(k, sched.steps - 1)]
                        for k in range(c)),
            src=0, dst=HOME,
            content=(zero,) * c,
            tag=RETURN_TAG,
            wrap_skip=True,
            absorb=True,
        ))

    cs = CommSchedule(
        team_dims=sched.team_dims,
        c=c,
        buffers=("block_sym",) if symmetric else ("block",),
        rounds=tuple(rounds),
    )
    cs.validate()
    return cs


# ---------------------------------------------------------------------------
# The systolic family (Dorband et al.; Lippert et al.).
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def systolic_ring_rounds(p: int) -> CommSchedule:
    """The classic systolic ring (Dorband–Hemsendorf–Merritt, c = 1).

    Self-interaction first, then ``p - 1`` single-hop shifts each
    followed by a full update — ``S = p - 1`` messages and
    ``W ~ n (p-1)/p`` words per rank, the baseline the CA and
    hyper-systolic schedules improve on.
    """
    require(p >= 1, "need at least one rank")
    rounds: list[Any] = [
        Interact(phase="compute",
                 updates=(Update(target=HOME, source=0, mode="full"),)),
    ]
    for k in range(1, p):
        rounds.append(Shift(phase="shift", moves=((1,),), src=0, dst=0,
                            content=((-k,),)))
        rounds.append(Interact(
            phase="compute",
            updates=(Update(target=HOME, source=0, mode="full"),)))
    cs = CommSchedule(team_dims=(p,), c=1, buffers=("block",),
                      rounds=tuple(rounds),
                      team_bcast=False, team_reduce=False)
    cs.validate()
    return cs


@lru_cache(maxsize=None)
def half_systolic_rounds(p: int) -> CommSchedule:
    """The half-ring systolic variant: Newton's third law at ``c = 1``.

    The buffer carries a reaction accumulator and travels only
    ``floor(p/2)`` hops (for even ``p`` the antipodal visit is computed
    by the lower-indexed column only), then one return message carries
    the reactions home — ``S = floor(p/2) + 1`` messages with half the
    compute of the full ring.
    """
    require(p >= 1, "need at least one rank")
    half = p // 2
    rounds: list[Any] = [
        Interact(phase="compute",
                 updates=(Update(target=HOME, source=0, mode="self_half"),)),
    ]
    for k in range(1, half + 1):
        rounds.append(Shift(phase="shift", moves=((1,),), src=0, dst=0,
                            content=((-k,),)))
        rounds.append(Interact(
            phase="compute",
            updates=(Update(target=HOME, source=0, mode="symmetric",
                            half_pair=(p % 2 == 0 and k == half)),)))
    if half:
        rounds.append(Shift(phase="return", moves=((-half,),), src=0,
                            dst=HOME, content=((0,),), tag=RETURN_TAG,
                            wrap_skip=True, absorb=True))
    cs = CommSchedule(team_dims=(p,), c=1, buffers=("block_sym",),
                      rounds=tuple(rounds),
                      team_bcast=False, team_reduce=False)
    cs.validate()
    return cs


def default_hyper_k(p: int) -> int:
    """The replication parameter K of the regular hyper-systolic base.

    Lippert et al.'s ``A_1`` base: ``a = ceil(sqrt(p))`` unit strides
    plus ``b = ceil(p/a)`` coarse strides of step ``a`` gives
    ``K = a + b - 1 = O(sqrt(p))`` registers covering every pairing.
    """
    require(p >= 1, "need at least one rank")
    a = math.isqrt(p - 1) + 1 if p > 1 else 1
    b = -(-p // a)
    return a + b - 1


def hyper_strides(p: int, k: int) -> tuple[int, ...]:
    """The stride set of the regular hyper-systolic base for (p, K).

    ``K = a + b - 1`` splits into ``a`` unit strides ``{0..a-1}`` and
    ``b - 1`` coarse strides ``{a, 2a, .., (b-1)a}``; the base is valid
    when ``a * b >= p`` (every ring distance decomposes as a coarse
    stride minus a unit stride).
    """
    require(p >= 1, "need at least one rank")
    require(k >= 1, f"hyper_k must be >= 1, got {k}")
    a = (k + 2) // 2
    b = k + 1 - a
    require(a * b >= p,
            f"hyper_k={k} is too small for p={p}: a={a} unit strides x "
            f"b={b} coarse strides cover only {a * b} < {p} distances "
            f"(minimum K is {default_hyper_k(p)})")
    strides = list(range(a)) + [j * a for j in range(1, b)]
    require(strides[-1] < p,
            f"hyper_k={k} overshoots the ring: largest stride "
            f"{strides[-1]} >= p={p}")
    return tuple(strides)


def _hyper_pairing(p: int, a: int, b: int,
                   strides: tuple[int, ...]) -> list[tuple[int, int]]:
    """For each ring distance ``d = 1..p-1``, the canonical (target
    stride, source stride) pair computing it — both members of the
    stride set, each ordered distance covered exactly once."""
    pairs = []
    for d in range(1, p):
        delta = d if d <= (b - 1) * a else d - p
        r = (-delta) % a
        q = (delta + r) // a
        target, source = r, q * a
        require(target in strides and source in strides,
                f"hyper-systolic base does not cover distance {d} "
                f"(needs strides {target} and {source})")
        pairs.append((target, source))
    return pairs


@lru_cache(maxsize=None)
def hyper_systolic_rounds(p: int, k: int | None = None) -> CommSchedule:
    """The hyper-systolic schedule (Lippert et al., hep-lat/9512020).

    ``K - 1`` replicated registers are filled by a distribution cascade
    (register ``j`` holds the block ``s_j`` hops upstream), every ring
    distance is computed once between two resident registers, and a
    collection cascade folds each register's partial forces back down to
    the home block — ``S = 2 (K - 1) = O(sqrt(p))`` messages moving
    ``O(sqrt(p) n / p)`` words per rank, vs the ring's ``O(n)``.
    """
    require(p >= 1, "need at least one rank")
    kk = default_hyper_k(p) if k is None else k
    strides = hyper_strides(p, kk)
    a = (kk + 2) // 2
    b = kk + 1 - a
    nreg = len(strides) - 1  # stride 0 is the home block
    reg_of = {s: i - 1 for i, s in enumerate(strides)}  # stride -> buffer

    rounds: list[Any] = []
    # Distribution cascade: register j adopts the block one stride-step
    # further upstream than register j - 1.
    for j in range(1, len(strides)):
        step = strides[j] - strides[j - 1]
        rounds.append(Shift(
            phase="shift", moves=((step,),),
            src=(j - 2 if j > 1 else HOME), dst=j - 1,
            content=((-strides[j],),),
        ))
    # Compute: every ring distance exactly once, between two registers.
    rounds.append(Interact(
        phase="compute",
        updates=(Update(target=HOME, source=HOME, mode="full"),)))
    for target, source in _hyper_pairing(p, a, b, strides):
        rounds.append(Interact(
            phase="compute",
            updates=(Update(
                target=HOME if target == 0 else reg_of[target],
                source=HOME if source == 0 else reg_of[source],
                mode="full"),)))
    # Collection cascade: fold register forces back down to the home
    # block, reversing the distribution hops.
    for j in range(len(strides) - 1, 0, -1):
        step = strides[j] - strides[j - 1]
        rounds.append(Shift(
            phase="collect", moves=((-step,),),
            src=j - 1, dst=(j - 2 if j > 1 else HOME),
            payload="forces", tag=COLLECT_TAG,
        ))

    cs = CommSchedule(team_dims=(p,), c=1, buffers=("register",) * nreg,
                      rounds=tuple(rounds),
                      team_bcast=False, team_reduce=False)
    cs.validate()
    return cs


# ---------------------------------------------------------------------------
# The generic event-tier executor.
# ---------------------------------------------------------------------------


@dataclass
class StepResult:
    """Per-rank outcome of one scheduled interaction step."""

    row: int
    col: int
    #: Candidate pairs this rank scanned (compute cost it was charged).
    npairs: int
    #: Number of update steps actually executed (not skipped).
    updates: int
    #: The home block with final forces — team leaders only.
    home: Any = None
    #: Peak particle-buffer bytes this rank held (home + live buffers).
    memory_bytes: int = 0
    #: Rank deaths this step absorbed via replication-aware recovery
    #: (resilient CA step only; populated on the replacement rank).
    recovered: tuple = field(default=())


def _travel_view(kernel, cs, bufs, contents, home, col, index):
    """A wire-ready travel view of buffer ``index`` (or the home block)."""
    if index == HOME:
        return kernel.travel_of(home, col)
    buf = bufs[index]
    if cs.buffers[index] == "register":
        return kernel.travel_of(buf, contents[index])
    return buf  # block / block_sym buffers already circulate as travel


def _live_bytes(home, bufs) -> int:
    """Current particle-buffer footprint: home plus every live buffer."""
    return home.wire_nbytes + sum(
        b.wire_nbytes for b in bufs if b is not None)


def scheduled_step(comm, grid, cs: CommSchedule, kernel, leader_block, *,
                   reachable=None):
    """Execute a :class:`CommSchedule` as one rank program (generator).

    The generic twin of :func:`~repro.core.ca_step.ca_interaction_step`:
    optional team broadcast, the schedule's shift / interact rounds, and
    an optional in-team force reduction — every registered schedule
    (CA, symmetric, and the systolic family) runs through this one
    executor on the event engine.

    Parameters
    ----------
    comm:
        World communicator (``comm.size`` must equal ``grid.p``).
    grid:
        The ``c x (p/c)`` replicated processor grid.
    cs:
        The schedule to execute (``cs.c`` must match ``grid.c``).
    kernel:
        Interaction kernel (:class:`~repro.physics.kernels.RealKernel`
        or :class:`~repro.physics.kernels.VirtualKernel`).
    leader_block:
        On team leaders (row 0): this team's particle block.  Ignored
        elsewhere.
    reachable:
        Optional ``reachable(col, team) -> bool`` predicate gating
        ``Update(gated=True)`` rounds (cutoff pruning).
    """
    if comm.size != grid.p:
        raise ValueError(
            f"program needs {grid.p} ranks, engine has {comm.size}")
    if grid.c != cs.c or grid.nteams != cs.nteams:
        raise ValueError(
            f"grid ({grid.c} x {grid.nteams}) does not match schedule "
            f"({cs.c} x {cs.nteams})")
    row = grid.row_of(comm.rank)
    col = grid.col_of(comm.rank)
    machine = comm.engine.machine
    team = (grid.team_comm(comm)
            if (cs.team_bcast or cs.team_reduce) else None)

    if cs.team_bcast:
        with comm.phase("bcast"):
            block = yield from team.bcast(
                leader_block if row == 0 else None, root=0)
    else:
        block = leader_block
    home = kernel.home_of(block)

    bufs: list[Any] = []
    contents: list[int | None] = []
    for kind in cs.buffers:
        if kind == "block":
            bufs.append(kernel.travel_of(home, col))
            contents.append(col)
        elif kind == "block_sym":
            bufs.append(kernel.travel_of_symmetric(home, col))
            contents.append(col)
        else:  # register: filled by adoption during distribution
            bufs.append(None)
            contents.append(None)
    memory_bytes = _live_bytes(home, bufs)

    npairs_total = 0
    updates = 0
    for rnd in cs.rounds:
        if isinstance(rnd, Shift):
            move = rnd.moves[row]
            if rnd.payload == "forces":
                payload = kernel.forces_payload(bufs[rnd.src])
            else:
                payload = _travel_view(kernel, cs, bufs, contents, home,
                                       col, rnd.src)
            dest_col = cs.displace(col, move)
            skip = (dest_col == col) if rnd.wrap_skip else not any(move)
            with comm.phase(rnd.phase):
                if skip:
                    received = payload
                else:
                    dest = grid.rank_at(row, dest_col)
                    src = grid.rank_at(
                        row, cs.displace(col, tuple(-x for x in move)))
                    received = yield from comm.sendrecv(
                        dest, payload, src, rnd.tag)
                if rnd.payload == "forces":
                    target = home if rnd.dst == HOME else bufs[rnd.dst]
                    kernel.fold_forces(target, received)
                else:
                    expected = (cs.displace(col, rnd.content[row])
                                if rnd.content is not None else None)
                    if expected is not None and received.team != expected:
                        raise AssertionError(
                            f"rank {comm.rank} (row {row}, col {col}): "
                            f"schedule predicts visitor {expected}, buffer "
                            f"belongs to {received.team}")
                    if rnd.absorb:
                        kernel.absorb_reactions(home, received)
                    elif cs.buffers[rnd.dst] == "register":
                        bufs[rnd.dst] = kernel.adopt_register(received)
                        contents[rnd.dst] = received.team
                    else:
                        bufs[rnd.dst] = received
                        contents[rnd.dst] = received.team
            if rnd.measure:
                memory_bytes = max(memory_bytes, _live_bytes(home, bufs))
        else:  # Interact
            up = rnd.updates[row]
            if up is None:
                continue
            src_team = col if up.source == HOME else contents[up.source]
            if up.gated and reachable is not None \
                    and not reachable(col, src_team):
                continue
            if up.half_pair and col >= src_team:
                continue
            target = home if up.target == HOME else bufs[up.target]
            with comm.phase(rnd.phase):
                if up.mode == "self_half":
                    n = kernel.interact_self_half(target)
                else:
                    travel = _travel_view(kernel, cs, bufs, contents, home,
                                          col, up.source)
                    if up.mode == "symmetric":
                        n = kernel.interact_symmetric(target, travel)
                    else:
                        n = kernel.interact(target, travel)
                npairs_total += n
                updates += 1
                yield from comm.compute(machine.interactions_time(n))

    if cs.team_reduce:
        with comm.phase("reduce"):
            reduced = yield from team.reduce(
                kernel.forces_payload(home), kernel.reduce_op, root=0)
        if row == 0:
            kernel.install_forces(home, reduced)

    return StepResult(
        row=row,
        col=col,
        npairs=npairs_total,
        updates=updates,
        home=home if row == 0 else None,
        memory_bytes=memory_bytes,
    )


def scheduled_program(grid, cs: CommSchedule, kernel, blocks, *,
                      reachable=None):
    """Rank-program factory over pre-distributed blocks.

    ``blocks[col]`` is team ``col``'s leader block; every non-leader
    rank starts empty and receives its copy in the broadcast phase (the
    ``c = 1`` systolic family has no broadcast — every rank is its own
    leader).
    """

    def program(comm):
        """One rank's scheduled interaction step."""
        col = grid.col_of(comm.rank)
        leader_block = blocks[col] if grid.row_of(comm.rank) == 0 else None
        result = yield from scheduled_step(comm, grid, cs, kernel,
                                           leader_block,
                                           reachable=reachable)
        return result

    return program

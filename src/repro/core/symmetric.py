"""The symmetric (Newton's-third-law) all-pairs variant — an extension.

The paper notes of its force kernel: "The force is symmetric, but it need
not be and we do not apply optimizations to exploit the symmetry."  This
module implements that optimization within the CA framework:

* the exchange buffers traverse only *half* the team ring
  (:func:`~repro.core.window.half_ring_schedule`), so the shift loop is
  ~``T/(2c)`` steps instead of ``T/c``;
* each block-pair visit computes every pair once, accumulating the force
  on the home copy and the **reaction** (``-F``) on the traveling buffer;
* the home block's self-interactions are evaluated over the upper triangle
  only (``i < j``), both sides accumulated locally;
* after the loop each buffer carries the reactions for its home team; one
  extra point-to-point message per rank returns them, and the usual
  in-team sum-reduction completes the forces.

Costs: computation halves (n^2/2 pair evaluations in total); the shift
volume carries d extra doubles per particle but over half the steps, so
bandwidth also drops.  The exactly-once coverage invariant still holds —
the pair counter records both directions of each evaluated pair, and the
tests check it equals the all-ones reference exactly.
"""

from __future__ import annotations

from repro.core.ca_step import CAConfig
from repro.core.commsched import rounds_for_schedule, scheduled_step
from repro.core.decomposition import (
    collect_leader_forces,
    team_blocks_even,
    virtual_team_blocks,
)
from repro.core.runner import Prepared, Run, RunSpec, register_algorithm
from repro.core.runner import run as run_pipeline
from repro.core.window import half_ring_schedule
from repro.physics.forces import ForceLaw
from repro.physics.kernels import VirtualKernel, kernel_for
from repro.physics.particles import ParticleSet
from repro.simmpi.engine import RunResult
from repro.simmpi.faults import FaultSchedule
from repro.simmpi.topology import ReplicatedGrid

__all__ = [
    "SymmetricRun",
    "ca_symmetric_step",
    "run_symmetric",
    "run_symmetric_virtual",
    "symmetric_config",
]

#: Deprecated alias — the per-variant result dataclasses collapsed into
#: :class:`repro.core.runner.Run`.
SymmetricRun = Run


def symmetric_config(p: int, c: int) -> CAConfig:
    """Configuration of the symmetric all-pairs variant for (p, c)."""
    grid = ReplicatedGrid(p=p, c=c)
    schedule = half_ring_schedule(grid.nteams, c)
    return CAConfig(grid=grid, schedule=schedule)


def ca_symmetric_step(comm, cfg: CAConfig, kernel, leader_block):
    """One symmetric CA interaction step (generator program).

    Same phases as :func:`~repro.core.ca_step.ca_interaction_step`, plus a
    ``return`` phase sending each buffer's accumulated reactions back to
    its home column.  The half-ring schedule is lowered once (cached) via
    :func:`repro.core.commsched.rounds_for_schedule` with
    ``symmetric=True`` — which bakes the self/antipode special cases into
    per-row update modes — and executed by the shared
    :func:`repro.core.commsched.scheduled_step`.
    """
    cs = rounds_for_schedule(cfg.schedule, symmetric=True)
    result = yield from scheduled_step(comm, cfg.grid, cs, kernel,
                                       leader_block)
    return result


def _symmetric_program(cfg: CAConfig, kernel, blocks):
    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        leader_block = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        result = yield from ca_symmetric_step(comm, cfg, kernel, leader_block)
        return result

    return program


@register_algorithm(
    "symmetric",
    summary="CA all-pairs with Newton's-third-law symmetry (half ring)",
)
def _prepare_symmetric(spec: RunSpec) -> Prepared:
    cfg = symmetric_config(spec.machine.nranks, spec.c)
    kernel = kernel_for(spec.law, pair_counter=spec.pair_counter,
                        scratch=spec.scratch, metrics=spec.metrics)
    blocks = team_blocks_even(spec.workload(), cfg.grid.nteams)

    def collect(run: RunResult):
        return collect_leader_forces(run.results, cfg.grid)

    return Prepared(program=_symmetric_program(cfg, kernel, blocks),
                    collect=collect)


@register_algorithm(
    "symmetric_virtual",
    functional=False,
    summary="Modeled symmetric variant: phantom blocks, half-ring schedule",
)
def _prepare_symmetric_virtual(spec: RunSpec) -> Prepared:
    cfg = symmetric_config(spec.machine.nranks, spec.c)
    kernel = VirtualKernel(dim=2 if spec.dim is None else spec.dim)
    blocks = virtual_team_blocks(spec.count(), cfg.grid.nteams)
    return Prepared(program=_symmetric_program(cfg, kernel, blocks))


def run_symmetric(
    machine,
    particles: ParticleSet,
    c: int,
    *,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """All-pairs forces via the symmetric variant; functional end to end.

    ``faults`` accepts transient (delay/drop/corrupt) schedules — the
    engine's retry protocol absorbs them; rank kills are rejected (the
    symmetric step has no replication-aware recovery path).  ``scratch`` /
    ``engine_opts`` mirror :func:`~repro.core.allpairs.run_allpairs`.

    Shim over the registry pipeline (algorithm ``"symmetric"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="symmetric", particles=particles, c=c,
        law=law, pair_counter=pair_counter, eager_threshold=eager_threshold,
        faults=faults, scratch=scratch, engine_opts=engine_opts,
    ))


def run_symmetric_virtual(
    machine,
    n: int,
    c: int,
    *,
    dim: int = 2,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    engine_opts: dict | None = None,
) -> RunResult:
    """Modeled symmetric step (phantom blocks, machine-model timing).

    Shim over the registry pipeline (algorithm ``"symmetric_virtual"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="symmetric_virtual", n=n, c=c, dim=dim,
        eager_threshold=eager_threshold, faults=faults,
        engine_opts=engine_opts,
    )).run

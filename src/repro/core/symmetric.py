"""The symmetric (Newton's-third-law) all-pairs variant — an extension.

The paper notes of its force kernel: "The force is symmetric, but it need
not be and we do not apply optimizations to exploit the symmetry."  This
module implements that optimization within the CA framework:

* the exchange buffers traverse only *half* the team ring
  (:func:`~repro.core.window.half_ring_schedule`), so the shift loop is
  ~``T/(2c)`` steps instead of ``T/c``;
* each block-pair visit computes every pair once, accumulating the force
  on the home copy and the **reaction** (``-F``) on the traveling buffer;
* the home block's self-interactions are evaluated over the upper triangle
  only (``i < j``), both sides accumulated locally;
* after the loop each buffer carries the reactions for its home team; one
  extra point-to-point message per rank returns them, and the usual
  in-team sum-reduction completes the forces.

Costs: computation halves (n^2/2 pair evaluations in total); the shift
volume carries d extra doubles per particle but over half the steps, so
bandwidth also drops.  The exactly-once coverage invariant still holds —
the pair counter records both directions of each evaluated pair, and the
tests check it equals the all-ones reference exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ca_step import CAConfig, CAStepResult, _shift
from repro.core.decomposition import (
    collect_leader_forces,
    team_blocks_even,
    virtual_team_blocks,
)
from repro.core.window import half_ring_schedule
from repro.physics.forces import ForceLaw
from repro.physics.kernels import RealKernel, VirtualKernel
from repro.physics.particles import ParticleSet
from repro.simmpi.engine import Engine, RunResult
from repro.simmpi.topology import ReplicatedGrid

__all__ = [
    "SymmetricRun",
    "ca_symmetric_step",
    "run_symmetric",
    "run_symmetric_virtual",
    "symmetric_config",
]

_RETURN_TAG = 13


def symmetric_config(p: int, c: int) -> CAConfig:
    """Configuration of the symmetric all-pairs variant for (p, c)."""
    grid = ReplicatedGrid(p=p, c=c)
    schedule = half_ring_schedule(grid.nteams, c)
    return CAConfig(grid=grid, schedule=schedule)


def ca_symmetric_step(comm, cfg: CAConfig, kernel, leader_block):
    """One symmetric CA interaction step (generator program).

    Same phases as :func:`~repro.core.ca_step.ca_interaction_step`, plus a
    ``return`` phase sending each buffer's accumulated reactions back to
    its home column.
    """
    grid = cfg.grid
    sched = cfg.schedule
    if comm.size != grid.p:
        raise ValueError(f"program needs {grid.p} ranks, engine has {comm.size}")
    row = grid.row_of(comm.rank)
    col = grid.col_of(comm.rank)
    team = grid.team_comm(comm)
    machine = comm.engine.machine
    T = grid.nteams
    antipode = T // 2 if T % 2 == 0 else None

    with comm.phase("bcast"):
        block = yield from team.bcast(leader_block if row == 0 else None, root=0)
    home = kernel.home_of(block)

    travel = kernel.travel_of_symmetric(home, col)
    with comm.phase("shift"):
        travel = yield from _shift(comm, grid, sched, row, col, travel,
                                   sched.skew_move(row))

    npairs_total = 0
    updates = 0
    for i in range(sched.steps):
        with comm.phase("shift"):
            travel = yield from _shift(comm, grid, sched, row, col, travel,
                                       sched.step_move(row, i))
        u = sched.update_position(row, i)
        if sched.skip[u]:
            continue
        offset = sched.offsets[u][0]
        if travel.team == col:
            # The home block with itself: upper triangle, both reactions
            # accumulated locally on the home copy.
            with comm.phase("compute"):
                n = kernel.interact_self_half(home)
                npairs_total += n
                updates += 1
                yield from comm.compute(machine.interactions_time(n))
            continue
        if antipode is not None and offset == antipode and col >= travel.team:
            # The antipodal pair appears on both sides; the lower-indexed
            # column computes it.
            continue
        with comm.phase("compute"):
            n = kernel.interact_symmetric(home, travel)
            npairs_total += n
            updates += 1
            yield from comm.compute(machine.interactions_time(n))

    # Return the traveling reactions to their home column (same row).
    with comm.phase("return"):
        u_last = sched.position(row, sched.steps - 1)
        dest = grid.rank_at(row, travel.team)
        src_col = sched.holder_of(col, u_last)
        src = grid.rank_at(row, src_col)
        if dest == comm.rank and src == comm.rank:
            returned = travel
        else:
            returned = yield from comm.sendrecv(dest, travel, src, _RETURN_TAG)
        if returned.team != col:
            raise AssertionError(
                f"rank {comm.rank}: reaction return delivered team "
                f"{returned.team}, expected {col}"
            )
        kernel.absorb_reactions(home, returned)

    with comm.phase("reduce"):
        reduced = yield from team.reduce(
            kernel.forces_payload(home), kernel.reduce_op, root=0
        )
    if row == 0:
        kernel.install_forces(home, reduced)

    return CAStepResult(
        row=row,
        col=col,
        npairs=npairs_total,
        updates=updates,
        home=home if row == 0 else None,
    )


@dataclass
class SymmetricRun:
    """Outcome of a functional symmetric all-pairs step."""

    ids: np.ndarray
    forces: np.ndarray
    run: RunResult

    @property
    def report(self):
        return self.run.report


def run_symmetric(
    machine,
    particles: ParticleSet,
    c: int,
    *,
    law: ForceLaw | None = None,
    pair_counter: np.ndarray | None = None,
) -> SymmetricRun:
    """All-pairs forces via the symmetric variant; functional end to end."""
    cfg = symmetric_config(machine.nranks, c)
    kernel = RealKernel(law=law or ForceLaw(), pair_counter=pair_counter)
    blocks = team_blocks_even(particles, cfg.grid.nteams)

    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        leader_block = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        result = yield from ca_symmetric_step(comm, cfg, kernel, leader_block)
        return result

    run = Engine(machine).run(program)
    ids, forces = collect_leader_forces(run.results, cfg.grid)
    return SymmetricRun(ids=ids, forces=forces, run=run)


def run_symmetric_virtual(machine, n: int, c: int, *, dim: int = 2) -> RunResult:
    """Modeled symmetric step (phantom blocks, machine-model timing)."""
    cfg = symmetric_config(machine.nranks, c)
    kernel = VirtualKernel(dim=dim)
    blocks = virtual_team_blocks(n, cfg.grid.nteams)

    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        leader_block = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        result = yield from ca_symmetric_step(comm, cfg, kernel, leader_block)
        return result

    return Engine(machine).run(program)

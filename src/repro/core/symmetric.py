"""The symmetric (Newton's-third-law) all-pairs variant — an extension.

The paper notes of its force kernel: "The force is symmetric, but it need
not be and we do not apply optimizations to exploit the symmetry."  This
module implements that optimization within the CA framework:

* the exchange buffers traverse only *half* the team ring
  (:func:`~repro.core.window.half_ring_schedule`), so the shift loop is
  ~``T/(2c)`` steps instead of ``T/c``;
* each block-pair visit computes every pair once, accumulating the force
  on the home copy and the **reaction** (``-F``) on the traveling buffer;
* the home block's self-interactions are evaluated over the upper triangle
  only (``i < j``), both sides accumulated locally;
* after the loop each buffer carries the reactions for its home team; one
  extra point-to-point message per rank returns them, and the usual
  in-team sum-reduction completes the forces.

Costs: computation halves (n^2/2 pair evaluations in total); the shift
volume carries d extra doubles per particle but over half the steps, so
bandwidth also drops.  The exactly-once coverage invariant still holds —
the pair counter records both directions of each evaluated pair, and the
tests check it equals the all-ones reference exactly.
"""

from __future__ import annotations

from repro.core.ca_step import CAConfig, CAStepResult, _shift
from repro.core.decomposition import (
    collect_leader_forces,
    team_blocks_even,
    virtual_team_blocks,
)
from repro.core.runner import Prepared, Run, RunSpec, register_algorithm
from repro.core.runner import run as run_pipeline
from repro.core.window import half_ring_schedule
from repro.physics.forces import ForceLaw
from repro.physics.kernels import VirtualKernel, kernel_for
from repro.physics.particles import ParticleSet
from repro.simmpi.engine import RunResult
from repro.simmpi.faults import FaultSchedule
from repro.simmpi.topology import ReplicatedGrid

__all__ = [
    "SymmetricRun",
    "ca_symmetric_step",
    "run_symmetric",
    "run_symmetric_virtual",
    "symmetric_config",
]

#: Deprecated alias — the per-variant result dataclasses collapsed into
#: :class:`repro.core.runner.Run`.
SymmetricRun = Run

_RETURN_TAG = 13


def symmetric_config(p: int, c: int) -> CAConfig:
    """Configuration of the symmetric all-pairs variant for (p, c)."""
    grid = ReplicatedGrid(p=p, c=c)
    schedule = half_ring_schedule(grid.nteams, c)
    return CAConfig(grid=grid, schedule=schedule)


def ca_symmetric_step(comm, cfg: CAConfig, kernel, leader_block):
    """One symmetric CA interaction step (generator program).

    Same phases as :func:`~repro.core.ca_step.ca_interaction_step`, plus a
    ``return`` phase sending each buffer's accumulated reactions back to
    its home column.
    """
    grid = cfg.grid
    sched = cfg.schedule
    if comm.size != grid.p:
        raise ValueError(f"program needs {grid.p} ranks, engine has {comm.size}")
    row = grid.row_of(comm.rank)
    col = grid.col_of(comm.rank)
    team = grid.team_comm(comm)
    machine = comm.engine.machine
    T = grid.nteams
    antipode = T // 2 if T % 2 == 0 else None

    with comm.phase("bcast"):
        block = yield from team.bcast(leader_block if row == 0 else None, root=0)
    home = kernel.home_of(block)

    travel = kernel.travel_of_symmetric(home, col)
    with comm.phase("shift"):
        travel = yield from _shift(comm, grid, sched, row, col, travel,
                                   sched.skew_move(row))

    npairs_total = 0
    updates = 0
    for i in range(sched.steps):
        with comm.phase("shift"):
            travel = yield from _shift(comm, grid, sched, row, col, travel,
                                       sched.step_move(row, i))
        u = sched.update_position(row, i)
        if sched.skip[u]:
            continue
        offset = sched.offsets[u][0]
        if travel.team == col:
            # The home block with itself: upper triangle, both reactions
            # accumulated locally on the home copy.
            with comm.phase("compute"):
                n = kernel.interact_self_half(home)
                npairs_total += n
                updates += 1
                yield from comm.compute(machine.interactions_time(n))
            continue
        if antipode is not None and offset == antipode and col >= travel.team:
            # The antipodal pair appears on both sides; the lower-indexed
            # column computes it.
            continue
        with comm.phase("compute"):
            n = kernel.interact_symmetric(home, travel)
            npairs_total += n
            updates += 1
            yield from comm.compute(machine.interactions_time(n))

    # Return the traveling reactions to their home column (same row).
    with comm.phase("return"):
        u_last = sched.position(row, sched.steps - 1)
        dest = grid.rank_at(row, travel.team)
        src_col = sched.holder_of(col, u_last)
        src = grid.rank_at(row, src_col)
        if dest == comm.rank and src == comm.rank:
            returned = travel
        else:
            returned = yield from comm.sendrecv(dest, travel, src, _RETURN_TAG)
        if returned.team != col:
            raise AssertionError(
                f"rank {comm.rank}: reaction return delivered team "
                f"{returned.team}, expected {col}"
            )
        kernel.absorb_reactions(home, returned)

    with comm.phase("reduce"):
        reduced = yield from team.reduce(
            kernel.forces_payload(home), kernel.reduce_op, root=0
        )
    if row == 0:
        kernel.install_forces(home, reduced)

    return CAStepResult(
        row=row,
        col=col,
        npairs=npairs_total,
        updates=updates,
        home=home if row == 0 else None,
    )


def _symmetric_program(cfg: CAConfig, kernel, blocks):
    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        leader_block = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        result = yield from ca_symmetric_step(comm, cfg, kernel, leader_block)
        return result

    return program


@register_algorithm(
    "symmetric",
    summary="CA all-pairs with Newton's-third-law symmetry (half ring)",
)
def _prepare_symmetric(spec: RunSpec) -> Prepared:
    cfg = symmetric_config(spec.machine.nranks, spec.c)
    kernel = kernel_for(spec.law, pair_counter=spec.pair_counter,
                        scratch=spec.scratch, metrics=spec.metrics)
    blocks = team_blocks_even(spec.workload(), cfg.grid.nteams)

    def collect(run: RunResult):
        return collect_leader_forces(run.results, cfg.grid)

    return Prepared(program=_symmetric_program(cfg, kernel, blocks),
                    collect=collect)


@register_algorithm(
    "symmetric_virtual",
    functional=False,
    summary="Modeled symmetric variant: phantom blocks, half-ring schedule",
)
def _prepare_symmetric_virtual(spec: RunSpec) -> Prepared:
    cfg = symmetric_config(spec.machine.nranks, spec.c)
    kernel = VirtualKernel(dim=2 if spec.dim is None else spec.dim)
    blocks = virtual_team_blocks(spec.count(), cfg.grid.nteams)
    return Prepared(program=_symmetric_program(cfg, kernel, blocks))


def run_symmetric(
    machine,
    particles: ParticleSet,
    c: int,
    *,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """All-pairs forces via the symmetric variant; functional end to end.

    ``faults`` accepts transient (delay/drop/corrupt) schedules — the
    engine's retry protocol absorbs them; rank kills are rejected (the
    symmetric step has no replication-aware recovery path).  ``scratch`` /
    ``engine_opts`` mirror :func:`~repro.core.allpairs.run_allpairs`.

    Shim over the registry pipeline (algorithm ``"symmetric"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="symmetric", particles=particles, c=c,
        law=law, pair_counter=pair_counter, eager_threshold=eager_threshold,
        faults=faults, scratch=scratch, engine_opts=engine_opts,
    ))


def run_symmetric_virtual(
    machine,
    n: int,
    c: int,
    *,
    dim: int = 2,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    engine_opts: dict | None = None,
) -> RunResult:
    """Modeled symmetric step (phantom blocks, machine-model timing).

    Shim over the registry pipeline (algorithm ``"symmetric_virtual"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="symmetric_virtual", n=n, c=c, dim=dim,
        eager_threshold=eager_threshold, faults=faults,
        engine_opts=engine_opts,
    )).run

"""The midpoint method (Section II-D related work) as a baseline.

Bowers, Dror and Shaw's midpoint method is the neutral-territory variant
the paper singles out: "a processor computes all interactions for which
the midpoint of the interacting particles lies in the processor's
territory".  Each processor therefore imports only the particles within
``r_c / 2`` of its region — half the spatial decomposition's import
distance, hence the method's "smaller import region for a typical number
of processors" — and evaluates each pair on exactly one processor (the
owner of the pair's midpoint, with the domain's deterministic binning
breaking boundary ties).

This implementation is functional end to end over the simulated MPI: halo
exchange with the processors whose regions fall within ``r_c / 2``, local
evaluation of midpoint-owned pairs (both force directions — the pair is
computed where neither particle may live, so contributions must be
returned), and a force **return** phase sending contributions for imported
particles back to their owners.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import BaselineRun, _collect
from repro.core.decomposition import team_blocks_spatial
from repro.machines.torus import balanced_dims
from repro.physics.domain import TeamGeometry, team_of_positions
from repro.physics.forces import ForceLaw, pairwise_forces
from repro.physics.particles import ParticleSet, TravelBlock
from repro.simmpi.engine import Engine

__all__ = ["run_midpoint"]

_HALO_TAG = 17
_RETURN_TAG = 19


def _midpoint_forces(law, pos, ids, owner_mask, geometry, region,
                     pair_counter):
    """Forces among ``pos`` for pairs whose midpoint lies in ``region``.

    Returns an ``(n, d)`` force array accumulating BOTH directions of every
    owned pair (the per-particle contributions are routed afterwards).
    ``owner_mask`` is unused for the physics but kept for clarity of the
    call site.
    """
    n, d = pos.shape
    forces = np.zeros((n, d))
    if n < 2:
        return forces, 0
    dr = pos[:, None, :] - pos[None, :, :]
    r2 = np.einsum("ijk,ijk->ij", dr, dr)
    mid = 0.5 * (pos[:, None, :] + pos[None, :, :])  # (n, n, d)
    mid_team = team_of_positions(mid.reshape(-1, d), geometry).reshape(n, n)
    upper = ids[:, None] < ids[None, :]
    live = upper & (mid_team == region)
    if law.rcut is not None:
        live &= r2 <= law.rcut * law.rcut
    eps2 = law.softening**2
    denom = np.where(live, (r2 + eps2) ** 1.5, 1.0)
    w = np.where(live, law.k / denom, 0.0)
    contrib = np.einsum("ij,ijk->ik", w, dr)
    forces += contrib
    forces -= np.einsum("ij,ijk->jk", w, dr)
    if pair_counter is not None:
        ii, jj = np.nonzero(live)
        gi = np.asarray(ids, dtype=np.intp)
        np.add.at(pair_counter, (gi[ii], gi[jj]), 1)
        np.add.at(pair_counter, (gi[jj], gi[ii]), 1)
    return forces, n * n


def run_midpoint(
    machine,
    particles: ParticleSet,
    *,
    rcut: float,
    box_length: float,
    dim: int | None = None,
    law: ForceLaw | None = None,
    pair_counter: np.ndarray | None = None,
) -> BaselineRun:
    """Cutoff-limited forces via the midpoint method.

    One region per processor; each processor imports the blocks of every
    region within ``r_c / 2`` of its own, computes the pairs whose midpoint
    it owns, and returns contributions for imported particles.
    """
    p = machine.nranks
    if dim is None:
        dim = particles.dim
    geometry = TeamGeometry(box_length=box_length, team_dims=balanced_dims(p, dim))
    base_law = law or ForceLaw()
    use_law = base_law.with_rcut(rcut)
    blocks = team_blocks_spatial(particles, geometry)

    # Import neighborhood: regions within rcut/2 (the midpoint can only
    # fall in my region if both endpoints are within rcut/2 of it... the
    # *particles* I must see are within rcut/2 + rcut/2; conservatively a
    # particle at distance > rcut/2 from my region cannot form an owned
    # midpoint with any of distance <= rcut).
    neighbors: list[list[int]] = []
    for a in range(p):
        neighbors.append(
            [b for b in range(p)
             if b != a and geometry.team_distance_ok(a, b, rcut / 2)]
        )

    def program(comm):
        me = comm.rank
        mine = blocks[me]
        payload = TravelBlock(pos=mine.pos, ids=mine.ids, team=me)
        with comm.phase("halo"):
            reqs = []
            for b in neighbors[me]:
                sreq = yield from comm.isend(b, payload, _HALO_TAG)
                rreq = yield from comm.irecv(b, _HALO_TAG)
                reqs.extend((sreq, rreq))
            payloads = yield from comm.wait(*reqs)
            imported = list(payloads[1::2])

        all_pos = np.concatenate([mine.pos] + [t.pos for t in imported]) \
            if imported else mine.pos
        all_ids = np.concatenate([mine.ids] + [t.ids for t in imported]) \
            if imported else mine.ids
        owner = np.concatenate(
            [np.full(len(mine), me)]
            + [np.full(len(t), t.team) for t in imported]
        ) if imported else np.full(len(mine), me)

        with comm.phase("compute"):
            forces, scanned = _midpoint_forces(
                use_law, all_pos, all_ids, owner, geometry, me, pair_counter
            )
            yield from comm.compute(machine.interactions_time(scanned))

        # Route contributions for imported particles back to their owners.
        with comm.phase("return"):
            reqs = []
            for b in neighbors[me]:
                sel = owner == b
                out = (all_ids[sel], forces[sel])
                sreq = yield from comm.isend(b, out, _RETURN_TAG)
                rreq = yield from comm.irecv(b, _RETURN_TAG)
                reqs.extend((sreq, rreq))
            payloads = yield from comm.wait(*reqs)
            returned = payloads[1::2]

        total = forces[owner == me].copy()
        index_of = {int(i): k for k, i in enumerate(mine.ids)}
        for r_ids, r_forces in returned:
            for rid, rf in zip(r_ids, r_forces):
                total[index_of[int(rid)]] += rf
        return (mine.ids, total)

    run = Engine(machine).run(program)
    ids, forces = _collect(run.results, range(p))
    return BaselineRun(ids=ids, forces=forces, run=run)

"""The midpoint method (Section II-D related work) as a baseline.

Bowers, Dror and Shaw's midpoint method is the neutral-territory variant
the paper singles out: "a processor computes all interactions for which
the midpoint of the interacting particles lies in the processor's
territory".  Each processor therefore imports only the particles within
``r_c / 2`` of its region — half the spatial decomposition's import
distance, hence the method's "smaller import region for a typical number
of processors" — and evaluates each pair on exactly one processor (the
owner of the pair's midpoint, with the domain's deterministic binning
breaking boundary ties).

This implementation is functional end to end over the simulated MPI: halo
exchange with the processors whose regions fall within ``r_c / 2``, local
evaluation of midpoint-owned pairs (both force directions — the pair is
computed where neither particle may live, so contributions must be
returned), and a force **return** phase sending contributions for imported
particles back to their owners.

Registered as ``"midpoint"`` over the single run pipeline
(:mod:`repro.core.runner`); the pair evaluation routes through the shared
kernel's pair-ownership mask (``RealKernel.interact_owned``), so the
midpoint method inherits the pooled-scratch fast path, the cutoff masking
and the coverage instrumentation from the same code every other algorithm
uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import _collect
from repro.core.decomposition import team_blocks_spatial
from repro.core.runner import Prepared, Run, RunSpec, register_algorithm
from repro.core.runner import run as run_pipeline
from repro.machines.torus import balanced_dims
from repro.physics.domain import TeamGeometry, team_of_positions
from repro.physics.forces import ForceLaw
from repro.physics.kernels import kernel_for
from repro.physics.particles import ParticleSet, TravelBlock
from repro.simmpi.faults import FaultSchedule

__all__ = ["run_midpoint"]

_HALO_TAG = 17
_RETURN_TAG = 19


def _owned_pair_mask(pos, geometry, region) -> np.ndarray:
    """Boolean ``(n, n)`` matrix: does this region own the pair's midpoint?"""
    n, d = pos.shape
    mid = 0.5 * (pos[:, None, :] + pos[None, :, :])  # (n, n, d)
    return team_of_positions(mid.reshape(-1, d), geometry).reshape(n, n) == region


@register_algorithm(
    "midpoint",
    supports_c=False,
    needs_rcut=True,
    summary="Midpoint method: pairs owned by their midpoint's region",
)
def _prepare_midpoint(spec: RunSpec) -> Prepared:
    machine = spec.machine
    p = machine.nranks
    particles = spec.workload()
    dim = particles.dim if spec.dim is None else spec.dim
    rcut = spec.rcut
    geometry = TeamGeometry(box_length=spec.box_length,
                            team_dims=balanced_dims(p, dim))
    kernel = kernel_for(spec.law, rcut=rcut, pair_counter=spec.pair_counter,
                        scratch=spec.scratch, metrics=spec.metrics)
    blocks = team_blocks_spatial(particles, geometry)

    # Import neighborhood: regions within rcut/2 (the midpoint can only
    # fall in my region if both endpoints are within rcut/2 of it... the
    # *particles* I must see are within rcut/2 + rcut/2; conservatively a
    # particle at distance > rcut/2 from my region cannot form an owned
    # midpoint with any of distance <= rcut).
    neighbors: list[list[int]] = []
    for a in range(p):
        neighbors.append(
            [b for b in range(p)
             if b != a and geometry.team_distance_ok(a, b, rcut / 2)]
        )

    def program(comm):
        me = comm.rank
        mine = blocks[me]
        payload = TravelBlock(pos=mine.pos, ids=mine.ids, team=me)
        with comm.phase("halo"):
            reqs = []
            for b in neighbors[me]:
                sreq = yield from comm.isend(b, payload, _HALO_TAG)
                rreq = yield from comm.irecv(b, _HALO_TAG)
                reqs.extend((sreq, rreq))
            payloads = yield from comm.wait(*reqs)
            imported = list(payloads[1::2])

        all_pos = np.concatenate([mine.pos] + [t.pos for t in imported]) \
            if imported else mine.pos
        all_ids = np.concatenate([mine.ids] + [t.ids for t in imported]) \
            if imported else mine.ids
        owner = np.concatenate(
            [np.full(len(mine), me)]
            + [np.full(len(t), t.team) for t in imported]
        ) if imported else np.full(len(mine), me)

        with comm.phase("compute"):
            forces = np.zeros_like(all_pos)
            scanned = kernel.interact_owned(
                all_pos, all_ids,
                pair_mask=_owned_pair_mask(all_pos, geometry, me),
                out=forces,
            )
            yield from comm.compute(machine.interactions_time(scanned))

        # Route contributions for imported particles back to their owners.
        with comm.phase("return"):
            reqs = []
            for b in neighbors[me]:
                sel = owner == b
                out = (all_ids[sel], forces[sel])
                sreq = yield from comm.isend(b, out, _RETURN_TAG)
                rreq = yield from comm.irecv(b, _RETURN_TAG)
                reqs.extend((sreq, rreq))
            payloads = yield from comm.wait(*reqs)
            returned = payloads[1::2]

        total = forces[owner == me].copy()
        index_of = {int(i): k for k, i in enumerate(mine.ids)}
        for r_ids, r_forces in returned:
            for rid, rf in zip(r_ids, r_forces):
                total[index_of[int(rid)]] += rf
        return (mine.ids, total)

    return Prepared(program=program,
                    collect=lambda run: _collect(run.results, range(p)))


def run_midpoint(
    machine,
    particles: ParticleSet,
    *,
    rcut: float,
    box_length: float,
    dim: int | None = None,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """Cutoff-limited forces via the midpoint method.

    One region per processor; each processor imports the blocks of every
    region within ``r_c / 2`` of its own, computes the pairs whose midpoint
    it owns, and returns contributions for imported particles.

    Shim over the registry pipeline (algorithm ``"midpoint"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="midpoint", particles=particles,
        rcut=rcut, box_length=box_length, dim=dim, law=law,
        pair_counter=pair_counter, eager_threshold=eager_threshold,
        faults=faults, scratch=scratch, engine_opts=engine_opts,
    ))

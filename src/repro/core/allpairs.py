"""Algorithm 1: the communication-avoiding all-pairs N-body step.

The convenience layer: build the configuration for ``(p, c)``, distribute
particles, run one interaction step on a machine, and hand back globally
ordered forces.  At ``c = 1`` the configuration degenerates into Plimpton's
particle decomposition (a systolic ring); at ``c = sqrt(p)`` into his force
decomposition — exactly as the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ca_step import (
    CAConfig,
    ca_interaction_step,
    ca_interaction_step_resilient,
    check_fault_replication as _check_fault_replication,
)
from repro.core.decomposition import (
    collect_leader_forces,
    team_blocks_even,
    virtual_team_blocks,
)
from repro.core.window import all_pairs_schedule
from repro.physics.forces import ForceLaw
from repro.physics.kernels import RealKernel, VirtualKernel
from repro.physics.particles import ParticleSet
from repro.simmpi.engine import Engine, RunResult
from repro.simmpi.faults import FaultSchedule
from repro.simmpi.topology import ReplicatedGrid

__all__ = ["AllPairsRun", "allpairs_config", "run_allpairs", "run_allpairs_virtual"]


def allpairs_config(p: int, c: int, *, layout: str = "rows") -> CAConfig:
    """CA all-pairs configuration for ``p`` processors, replication ``c``.

    ``c`` must divide ``p``; any such ``c`` is legal (the schedule pads
    when ``c`` does not divide the team count ``p/c``).  ``layout`` picks
    the grid's rank mapping (see
    :class:`~repro.simmpi.topology.ReplicatedGrid`).
    """
    grid = ReplicatedGrid(p=p, c=c, layout=layout)
    schedule = all_pairs_schedule(grid.nteams, c)
    return CAConfig(grid=grid, schedule=schedule)


@dataclass
class AllPairsRun:
    """Outcome of a functional all-pairs step."""

    #: Global particle ids, ascending.
    ids: np.ndarray
    #: Forces on each particle, ordered to match ``ids``.
    forces: np.ndarray
    #: Raw engine result (timings, traces, per-rank results).
    run: RunResult

    @property
    def report(self):
        return self.run.report


def run_allpairs(
    machine,
    particles: ParticleSet,
    c: int,
    *,
    law: ForceLaw | None = None,
    pair_counter: np.ndarray | None = None,
    eager_threshold: int = 0,
    layout: str = "rows",
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> AllPairsRun:
    """Compute all-pairs forces for ``particles`` on ``machine`` with
    replication factor ``c``; functional (real data) end to end.

    The particle set is divided evenly among team leaders, the engine runs
    :func:`~repro.core.ca_step.ca_interaction_step` on every rank, and the
    per-team leader forces are collected and ordered by particle id.

    With a :class:`~repro.simmpi.faults.FaultSchedule` the resilient step
    variant runs instead, rank deaths are absorbed via replication-aware
    recovery (``c >= 2`` required for kills), and forces are collected from
    each team's acting leader.

    ``scratch=False`` routes the kernel through the allocating reference
    path and ``engine_opts`` forwards keyword arguments to the engine
    constructor (e.g. ``{"fast_path": False}``); both knobs exist so the
    determinism suite can lock the fast paths against the reference ones.
    """
    cfg = allpairs_config(machine.nranks, c, layout=layout)
    _check_fault_replication(faults, c)
    kernel = RealKernel(law=law or ForceLaw(), pair_counter=pair_counter,
                        scratch=scratch)
    blocks = team_blocks_even(particles, cfg.grid.nteams)

    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        leader_block = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        if faults is None:
            result = yield from ca_interaction_step(comm, cfg, kernel,
                                                    leader_block)
        else:
            result, _ = yield from ca_interaction_step_resilient(
                comm, cfg, kernel, leader_block
            )
        return result

    run = Engine(machine, eager_threshold=eager_threshold, faults=faults,
                 **(engine_opts or {})).run(program)
    ids, forces = collect_leader_forces(run.results, cfg.grid,
                                        dead=frozenset(run.deaths))
    return AllPairsRun(ids=ids, forces=forces, run=run)


def run_allpairs_virtual(
    machine,
    n: int,
    c: int,
    *,
    dim: int = 2,
    eager_threshold: int = 0,
    layout: str = "rows",
    faults: FaultSchedule | None = None,
) -> RunResult:
    """Modeled all-pairs step: phantom particles, real communication
    structure, machine-model timing.  Returns the engine result whose trace
    report carries the per-phase breakdown."""
    cfg = allpairs_config(machine.nranks, c, layout=layout)
    _check_fault_replication(faults, c)
    kernel = VirtualKernel(dim=dim)
    blocks = virtual_team_blocks(n, cfg.grid.nteams)

    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        leader_block = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        if faults is None:
            result = yield from ca_interaction_step(comm, cfg, kernel,
                                                    leader_block)
        else:
            result, _ = yield from ca_interaction_step_resilient(
                comm, cfg, kernel, leader_block
            )
        return result

    return Engine(machine, eager_threshold=eager_threshold, faults=faults).run(program)

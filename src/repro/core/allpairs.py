"""Algorithm 1: the communication-avoiding all-pairs N-body step.

The convenience layer: build the configuration for ``(p, c)``, distribute
particles, run one interaction step on a machine, and hand back globally
ordered forces.  At ``c = 1`` the configuration degenerates into Plimpton's
particle decomposition (a systolic ring); at ``c = sqrt(p)`` into his force
decomposition — exactly as the paper observes.

Both entry points are registered adapters over the single run pipeline
(:mod:`repro.core.runner`); :func:`run_allpairs` / :func:`run_allpairs_virtual`
survive as thin shims over ``run(RunSpec(algorithm="allpairs", ...))``.
"""

from __future__ import annotations

from repro.core.ca_step import CAConfig, ca_program
from repro.core.decomposition import (
    collect_leader_forces,
    team_blocks_even,
    virtual_team_blocks,
)
from repro.core.runner import Prepared, Run, RunSpec, register_algorithm
from repro.core.runner import run as run_pipeline
from repro.core.window import all_pairs_schedule
from repro.physics.forces import ForceLaw
from repro.physics.kernels import VirtualKernel, kernel_for
from repro.physics.particles import ParticleSet
from repro.simmpi.engine import RunResult
from repro.simmpi.faults import FaultSchedule
from repro.simmpi.topology import ReplicatedGrid

__all__ = ["AllPairsRun", "allpairs_config", "run_allpairs", "run_allpairs_virtual"]

#: Deprecated alias — the per-variant result dataclasses collapsed into
#: :class:`repro.core.runner.Run`.
AllPairsRun = Run


def allpairs_config(p: int, c: int, *, layout: str = "rows") -> CAConfig:
    """CA all-pairs configuration for ``p`` processors, replication ``c``.

    ``c`` must divide ``p``; any such ``c`` is legal (the schedule pads
    when ``c`` does not divide the team count ``p/c``).  ``layout`` picks
    the grid's rank mapping (see
    :class:`~repro.simmpi.topology.ReplicatedGrid`).
    """
    grid = ReplicatedGrid(p=p, c=c, layout=layout)
    schedule = all_pairs_schedule(grid.nteams, c)
    return CAConfig(grid=grid, schedule=schedule)


@register_algorithm(
    "allpairs",
    fault_mode="kills",
    summary="Algorithm 1: CA all-pairs with replication factor c",
)
def _prepare_allpairs(spec: RunSpec) -> Prepared:
    cfg = allpairs_config(spec.machine.nranks, spec.c, layout=spec.layout)
    kernel = kernel_for(spec.law, pair_counter=spec.pair_counter,
                        scratch=spec.scratch, metrics=spec.metrics)
    blocks = team_blocks_even(spec.workload(), cfg.grid.nteams)

    def collect(run: RunResult):
        return collect_leader_forces(run.results, cfg.grid,
                                     dead=frozenset(run.deaths))

    return Prepared(
        program=ca_program(cfg, kernel, blocks,
                           resilient=spec.faults is not None),
        collect=collect,
    )


@register_algorithm(
    "allpairs_virtual",
    functional=False,
    fault_mode="kills",
    summary="Modeled CA all-pairs: phantom blocks, machine-model timing",
)
def _prepare_allpairs_virtual(spec: RunSpec) -> Prepared:
    cfg = allpairs_config(spec.machine.nranks, spec.c, layout=spec.layout)
    kernel = VirtualKernel(dim=2 if spec.dim is None else spec.dim)
    blocks = virtual_team_blocks(spec.count(), cfg.grid.nteams)
    return Prepared(program=ca_program(cfg, kernel, blocks,
                                       resilient=spec.faults is not None))


def run_allpairs(
    machine,
    particles: ParticleSet,
    c: int,
    *,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    layout: str = "rows",
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """Compute all-pairs forces for ``particles`` on ``machine`` with
    replication factor ``c``; functional (real data) end to end.

    The particle set is divided evenly among team leaders, the engine runs
    :func:`~repro.core.ca_step.ca_interaction_step` on every rank, and the
    per-team leader forces are collected and ordered by particle id.

    With a :class:`~repro.simmpi.faults.FaultSchedule` the resilient step
    variant runs instead, rank deaths are absorbed via replication-aware
    recovery (``c >= 2`` required for kills), and forces are collected from
    each team's acting leader.

    ``scratch=False`` routes the kernel through the allocating reference
    path and ``engine_opts`` forwards keyword arguments to the engine
    constructor (e.g. ``{"fast_path": False}``); both knobs exist so the
    determinism suite can lock the fast paths against the reference ones.

    Shim over the registry pipeline — equivalent to
    ``run(RunSpec(machine, "allpairs", particles=particles, c=c, ...))``.
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="allpairs", particles=particles, c=c,
        law=law, pair_counter=pair_counter, eager_threshold=eager_threshold,
        layout=layout, faults=faults, scratch=scratch,
        engine_opts=engine_opts,
    ))


def run_allpairs_virtual(
    machine,
    n: int,
    c: int,
    *,
    dim: int = 2,
    eager_threshold: int = 0,
    layout: str = "rows",
    faults: FaultSchedule | None = None,
    engine_opts: dict | None = None,
) -> RunResult:
    """Modeled all-pairs step: phantom particles, real communication
    structure, machine-model timing.  Returns the engine result whose trace
    report carries the per-phase breakdown.

    Shim over the registry pipeline (algorithm ``"allpairs_virtual"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="allpairs_virtual", n=n, c=c, dim=dim,
        eager_threshold=eager_threshold, layout=layout, faults=faults,
        engine_opts=engine_opts,
    )).run

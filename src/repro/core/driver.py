"""Multi-timestep simulation driver: interact, integrate, re-assign.

The paper's cutoff experiments run a real simulation loop: every timestep
computes forces with the CA algorithm, advances particles (reflective box),
and **re-assigns** particles whose new positions belong to another team's
region — the cost plotted as "Communication (Re-assign)" in Figure 6.

The driver keeps the paper's structure:

* team leaders own the authoritative particle blocks between steps;
* forces are produced by :func:`~repro.core.ca_step.ca_interaction_step`
  (so each step re-broadcasts blocks — positions changed);
* after integration, leaders exchange migrating particles with the leaders
  of the neighboring regions (one sendrecv pair per face/corner neighbor).
  A particle moving farther than one region per step is a configuration
  error (``dt`` too large for the region size) and raises.

All-pairs simulations skip the re-assignment (their decomposition is not
spatial, so ownership never changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.core.ca_step import (
    CAConfig,
    acting_leader_of,
    ca_interaction_step,
    ca_interaction_step_resilient,
    check_fault_replication,
)
from repro.core.checkpoint import (
    CheckpointPolicy,
    _CheckpointWriter,
    simulation_fingerprint,
)
from repro.physics.boundary import reflect, wrap_periodic
from repro.physics.domain import team_of_positions
from repro.physics.forces import ForceLaw
from repro.physics.integrators import drift, euler_step, kick
from repro.physics.io import load_checkpoint
from repro.physics.particles import ParticleSet, VirtualBlock, concat_sets
from repro.simmpi.engine import Engine, RunResult
from repro.simmpi.faults import FaultSchedule, Tombstone
from repro.util import require

__all__ = ["SimulationConfig", "SimulationRun", "run_simulation",
           "run_simulation_virtual"]

_REASSIGN_TAG = 23


@dataclass(frozen=True)
class SimulationConfig:
    """Static parameters of a multi-step simulation."""

    cfg: CAConfig
    law: ForceLaw
    dt: float
    nsteps: int
    box_length: float
    mass: float = 1.0
    #: Periodic box (wrap positions) instead of the paper's reflective
    #: walls.  Cutoff runs must use a geometry with matching periodicity.
    periodic: bool = False
    #: "euler" (symplectic Euler, the default) or "verlet" (velocity
    #: Verlet: one extra interaction step at start, half-kicks around each
    #: drift — second-order accurate and time-reversible).
    integrator: str = "euler"

    def __post_init__(self):
        require(self.integrator in ("euler", "verlet"),
                f"unknown integrator {self.integrator!r}")
        require(self.dt > 0, "dt must be positive")
        require(self.nsteps >= 1, "nsteps must be >= 1")
        require(self.box_length > 0, "box_length must be positive")
        if self.cfg.rcut is not None:
            require(
                self.cfg.geometry.box_length == self.box_length,
                "geometry box must match the simulation box",
            )
            require(
                self.cfg.geometry.periodic == self.periodic,
                "geometry periodicity must match the simulation's",
            )


@dataclass
class SimulationRun:
    """Final particle state plus the engine's timing result."""

    #: Particles after the last step, globally ordered by id.
    particles: ParticleSet
    #: Forces from the last interaction step, ordered to match.
    forces: np.ndarray
    run: RunResult
    #: Sampled snapshots (only when ``sample_every`` was set).
    trajectory: object = None
    #: :class:`~repro.simmpi.errors.RecoveredRankEvent` records for every
    #: rank death absorbed during the run (fault injection only).
    recovered: tuple = field(default=())
    #: ``(step, path)`` for every checkpoint file written (only when a
    #: :class:`~repro.core.checkpoint.CheckpointPolicy` was given).
    checkpoints: tuple = field(default=())

    @property
    def report(self):
        return self.run.report


def _region_neighbors(geometry) -> list[list[int]]:
    """For each team, the linear ids of its (up to 3^d - 1) grid neighbors.

    Non-periodic (the paper's box): teams on a wall simply have fewer
    neighbors.  Periodic: neighbor coordinates wrap, and duplicates from
    tiny grids (d <= 2 along an axis) are removed.
    """
    dims = geometry.team_dims
    out: list[list[int]] = []
    for t in range(geometry.nteams):
        mi = geometry.multi_index(t)
        nbrs = set()
        for off in product(*[(-1, 0, 1)] * len(dims)):
            if all(o == 0 for o in off):
                continue
            cand = tuple(a + b for a, b in zip(mi, off))
            if geometry.periodic:
                cand = tuple(x % d for x, d in zip(cand, dims))
                lin = geometry.linear_index(cand)
                if lin != t:
                    nbrs.add(lin)
            elif all(0 <= x < d for x, d in zip(cand, dims)):
                nbrs.add(geometry.linear_index(cand))
        out.append(sorted(nbrs))
    return out


def _reassign(comm, cfg: CAConfig, col: int, grid, neighbors: list[list[int]],
              block: ParticleSet, leaders: list[int] | None = None):
    """Exchange migrating particles between neighboring team leaders.

    ``leaders`` overrides the destination rank per team (acting leaders
    when deaths have shifted leadership); default is each team's row-0
    leader.
    """
    geometry = cfg.geometry
    teams = team_of_positions(block.pos, geometry)
    keep = block.subset(teams == col)
    my_neighbors = neighbors[col]
    outgoing = {}
    claimed = teams == col
    for nb in my_neighbors:
        sel = teams == nb
        outgoing[nb] = block.subset(sel)
        claimed |= sel
    if not claimed.all():
        stray = np.unique(teams[~claimed])
        raise RuntimeError(
            f"team {col}: particles jumped past neighbor regions (to teams "
            f"{stray.tolist()}); reduce dt or coarsen the team grid"
        )
    reqs = []
    for nb in my_neighbors:
        dest = grid.leader_of(nb) if leaders is None else leaders[nb]
        sreq = yield from comm.isend(dest, outgoing[nb], _REASSIGN_TAG)
        rreq = yield from comm.irecv(dest, _REASSIGN_TAG)
        reqs.extend((sreq, rreq))
    payloads = yield from comm.wait(*reqs)
    incoming = []
    for pl in payloads[1::2]:
        if pl is None:
            continue
        if isinstance(pl, Tombstone):
            # The partner died after this step's failure-sync point: its
            # outbound migrants are gone and no survivor replays them here,
            # so silent continuation would lose particles.  Fail loudly —
            # this is the documented unrecoverable window.
            raise RuntimeError(
                f"team {col}: re-assign partner (rank {pl.rank}) died "
                "mid-step, outside the recoverable window — see "
                "docs/fault-model.md"
            )
        if len(pl) > 0:
            incoming.append(pl)
    if incoming:
        return concat_sets([keep, *incoming])
    return keep


def run_simulation(
    machine,
    scfg: SimulationConfig,
    initial_blocks: list[ParticleSet] | None = None,
    *,
    kernel=None,
    sample_every: int = 0,
    faults: FaultSchedule | None = None,
    engine_opts: dict | None = None,
    checkpoint: CheckpointPolicy | None = None,
    resume_from: str | None = None,
    metrics=None,
    schedule=None,
) -> SimulationRun:
    """Run ``scfg.nsteps`` timesteps functionally on ``machine``.

    ``initial_blocks`` is the per-team particle distribution (spatial for
    cutoff configurations, arbitrary for all-pairs).  Returns the final
    globally-ordered particle state and last-step forces.

    ``sample_every = k > 0`` records a trajectory: the initial state and
    every k-th step's state are gathered to the first team leader (the
    gather is real communication, charged to the ``sample`` phase) and
    returned as :class:`~repro.analysis.trajectory.Trajectory`.

    ``faults`` injects a :class:`~repro.simmpi.faults.FaultSchedule`: the
    resilient interaction step runs, rank deaths are absorbed by the
    surviving team members (``c >= 2``), and leadership of a bereaved team
    migrates to its lowest surviving row for the rest of the run.  Fault
    injection currently requires the Euler integrator and no trajectory
    sampling (Verlet's extra half-kick state and the sampling gather have
    no recovery path).

    ``engine_opts`` forwards extra keyword arguments to the
    :class:`~repro.simmpi.engine.Engine` constructor (e.g.
    ``{"fast_path": False}`` to run the reference scheduler loop, or
    ``{"record_events": True}`` for a timeline) without widening this
    signature per engine knob.

    ``checkpoint`` installs a :class:`~repro.core.checkpoint.CheckpointPolicy`:
    after each completed step the policy selects, the per-team leader state
    is written atomically (with per-array checksums) to the policy's
    directory; the paths come back in :attr:`SimulationRun.checkpoints`.
    Checkpoint I/O is out-of-band and costs zero virtual time, so a
    checkpointed run's clocks and trajectory are bitwise-identical to an
    uncheckpointed one.

    ``metrics`` threads a :class:`~repro.metrics.registry.MetricsRegistry`
    through the run: the engine records communication/time/fault metrics
    (accumulated across all steps), a default-constructed kernel counts
    ``kernel.pairs``, and checkpoint output is tallied as
    ``checkpoint.files`` / ``checkpoint.bytes``.  (A caller-supplied
    ``kernel`` counts pairs only if built with ``metrics=`` itself.)

    ``resume_from`` restarts from such a file instead of ``initial_blocks``
    (which may then be omitted): the saved blocks, step counter and — for
    velocity Verlet — carried forces are restored, and steps
    ``ckpt.step .. nsteps-1`` are replayed.  The checkpoint's configuration
    fingerprint must match ``scfg`` or the load is refused.  A resumed run
    reproduces the uninterrupted run's final state bitwise (under faults:
    the fault-free reference's — op indices and channel sequence numbers
    restart from zero, so a schedule's faults re-fire relative to the
    resume point).

    ``schedule`` perturbs the engine's scheduler free choices with a
    :class:`~repro.simmpi.schedule.SchedulePolicy` (or spec string such as
    ``"random:7"``).  The trajectory, clocks and traffic are bitwise
    identical under every policy; the knob lets the schedule fuzzer and
    the soak harness prove that multi-step recovery paths are
    interleaving-independent (see ``docs/schedule-fuzzing.md``).
    """
    from repro.physics.kernels import RealKernel

    cfg = scfg.cfg
    grid = cfg.grid
    check_fault_replication(faults, grid.c, grid=grid)
    if faults is not None:
        require(scfg.integrator == "euler",
                "fault injection supports only the Euler integrator")
        require(sample_every == 0,
                "fault injection cannot be combined with trajectory sampling")
    start_step = 0
    resume_forces = None
    if resume_from is not None:
        ckpt = load_checkpoint(resume_from,
                               expect_fingerprint=simulation_fingerprint(scfg))
        require(len(ckpt.blocks) == grid.nteams,
                f"checkpoint has {len(ckpt.blocks)} team blocks, "
                f"configuration has {grid.nteams} teams")
        require(ckpt.step < scfg.nsteps,
                f"checkpoint is already at step {ckpt.step}; nothing to do "
                f"for nsteps={scfg.nsteps} (extend nsteps to continue)")
        initial_blocks = ckpt.blocks
        start_step = ckpt.step
        if scfg.integrator == "verlet":
            require(ckpt.forces is not None,
                    "checkpoint carries no forces (written by an Euler run); "
                    "cannot resume a velocity-Verlet simulation from it")
            resume_forces = ckpt.forces
    require(initial_blocks is not None,
            "initial_blocks is required unless resume_from is given")
    writer = None
    if checkpoint is not None:
        writer = _CheckpointWriter(
            checkpoint, simulation_fingerprint(scfg), grid.nteams, scfg.dt,
            with_forces=scfg.integrator == "verlet",
        )
    if kernel is None:
        law = scfg.law if cfg.rcut is None else scfg.law.with_rcut(cfg.rcut)
        if scfg.periodic:
            law = law.with_box(scfg.box_length)
        kernel = RealKernel(law=law, metrics=metrics)
    neighbors = _region_neighbors(cfg.geometry) if cfg.rcut is not None else None

    def _boundary(block):
        if scfg.periodic:
            wrap_periodic(block.pos, scfg.box_length)
        else:
            reflect(block.pos, block.vel, scfg.box_length)

    leader_ranks = [grid.leader_of(col) for col in range(grid.nteams)]

    def _sample(comm, lcomm, traj, t, block):
        with comm.phase("sample"):
            gathered = yield from lcomm.gather(block, root=0)
        if gathered is not None:
            traj.append(t, concat_sets(gathered))

    def program(comm):
        from repro.analysis.trajectory import Trajectory

        row = grid.row_of(comm.rank)
        col = grid.col_of(comm.rank)
        block = initial_blocks[col].copy() if row == 0 else None
        forces = None
        known_dead = frozenset()
        recov: list = []
        traj = Trajectory()
        lcomm = comm.sub(leader_ranks) if sample_every > 0 else None
        step_no = start_step
        if lcomm is not None and row == 0 and step_no % sample_every == 0:
            yield from _sample(comm, lcomm, traj, step_no * scfg.dt, block)
        if scfg.integrator == "verlet":
            if resume_forces is None:
                # Velocity Verlet needs forces at the initial positions.
                res = yield from ca_interaction_step(comm, cfg, kernel, block)
                if row == 0:
                    forces = res.home.forces
            elif row == 0:
                # Resuming: the checkpoint carries the forces at the saved
                # positions, so the extra interaction step is skipped.
                forces = resume_forces[col].copy()
        for _ in range(scfg.nsteps - start_step):
            if scfg.integrator == "verlet":
                if row == 0:
                    # Copy-on-write: the previous interaction step handed
                    # zero-copy views of this block's arrays to the whole
                    # team (and to circulating travel blocks); ranks that
                    # have not finished that step yet may still read them,
                    # so integrate on private storage.
                    block = block.detached()
                    kick(block.vel, forces, scfg.dt / 2, scfg.mass)
                    drift(block.pos, block.vel, scfg.dt)
                    _boundary(block)
                if cfg.rcut is not None:
                    if row == 0:
                        with comm.phase("reassign"):
                            block = yield from _reassign(
                                comm, cfg, col, grid, neighbors, block
                            )
                res = yield from ca_interaction_step(comm, cfg, kernel, block)
                if row == 0:
                    forces = res.home.forces
                    kick(block.vel, forces, scfg.dt / 2, scfg.mass)
                step_no += 1
                if writer is not None and row == 0:
                    # Post-step block and the forces at its positions (the
                    # next step's first half-kick input).  Deposited arrays
                    # are never mutated afterwards — integration detaches.
                    writer.deposit(step_no, col, block, forces)
                if lcomm is not None and row == 0 and step_no % sample_every == 0:
                    yield from _sample(comm, lcomm, traj, step_no * scfg.dt,
                                       block)
            else:
                if faults is None:
                    res = yield from ca_interaction_step(comm, cfg, kernel,
                                                         block)
                else:
                    res, known_dead = yield from ca_interaction_step_resilient(
                        comm, cfg, kernel, block, known_dead=known_dead
                    )
                    recov.extend(res.recovered)
                i_lead = comm.rank == acting_leader_of(grid, col, known_dead)
                if i_lead:
                    # Leadership may have migrated to this rank mid-step;
                    # the broadcast copy it holds is the authoritative
                    # pre-step state, and the reduced forces were installed
                    # here by the resilient step.
                    # Copy-on-write: the broadcast block and the zero-copy
                    # travel views alias these arrays on ranks that may
                    # not have finished the step yet, so integrate on
                    # private storage.
                    block = res.home.particles.detached()
                    forces = res.home.forces
                    euler_step(block.pos, block.vel, forces, scfg.dt,
                               scfg.mass)
                    _boundary(block)
                    if cfg.rcut is not None:
                        leaders = [
                            acting_leader_of(grid, t, known_dead)
                            for t in range(grid.nteams)
                        ] if known_dead else None
                        with comm.phase("reassign"):
                            block = yield from _reassign(
                                comm, cfg, col, grid, neighbors, block,
                                leaders=leaders,
                            )
                        forces = None  # rows no longer match after exchange
                else:
                    block = None
                step_no += 1
                if writer is not None and i_lead:
                    writer.deposit(step_no, col, block)
                if lcomm is not None and row == 0 and step_no % sample_every == 0:
                    yield from _sample(comm, lcomm, traj, step_no * scfg.dt,
                                       block)
        i_lead = comm.rank == acting_leader_of(grid, col, known_dead)
        if not i_lead:
            return None
        return block, forces, traj if len(traj) else None, tuple(recov)

    opts = dict(engine_opts or {})
    if schedule is not None:
        opts["schedule"] = schedule
    run = Engine(machine, faults=faults, metrics=metrics,
                 **opts).run(program)

    if metrics is not None and writer is not None and writer.written:
        import os

        for _step, path in writer.written:
            metrics.counter("checkpoint.files").inc()
            metrics.counter("checkpoint.bytes").inc(os.path.getsize(path))

    dead = frozenset(run.deaths)
    leaders = [acting_leader_of(grid, col, dead) for col in range(grid.nteams)]
    parts = []
    force_parts = []
    leader_results = []
    for col in range(grid.nteams):
        res = run.results[leaders[col]]
        if res is None:
            raise ValueError(
                f"team {col}'s acting leader returned no state (a rank died "
                "after the failure-sync point, outside the recoverable "
                "window — see docs/fault-model.md)"
            )
        leader_results.append(res)
    trajectory = leader_results[0][2]
    recovered: list = []
    for col in range(grid.nteams):
        block, forces, _, recov = leader_results[col]
        parts.append(block)
        recovered.extend(recov)
        if forces is not None:
            force_parts.append((block.ids, forces))
    final = concat_sets(parts)
    order = np.argsort(final.ids, kind="stable")
    final = final.subset(order)
    if force_parts and len(force_parts) == grid.nteams:
        ids = np.concatenate([i for i, _ in force_parts])
        fr = np.concatenate([f for _, f in force_parts])
        fr = fr[np.argsort(ids, kind="stable")]
    else:
        fr = np.zeros_like(final.pos)
    return SimulationRun(particles=final, forces=fr, run=run,
                         trajectory=trajectory,
                         recovered=tuple(sorted(
                             recovered, key=lambda e: (e.death_time, e.rank))),
                         checkpoints=tuple(writer.written) if writer else ())


def run_simulation_virtual(
    machine,
    cfg: CAConfig,
    n: int,
    nsteps: int,
    *,
    dim: int = 1,
    migrate_fraction: float = 0.05,
) -> RunResult:
    """Modeled multi-step run: phantom blocks, modeled re-assignment.

    Each step performs the CA interaction step, then leaders exchange a
    ``migrate_fraction`` share of their block with each neighbor leader —
    the paper's per-step re-assignment traffic under a near-uniform,
    slowly-mixing particle distribution.
    """
    from repro.core.decomposition import virtual_team_blocks
    from repro.physics.kernels import VirtualKernel

    grid = cfg.grid
    kernel = VirtualKernel(dim=dim)
    blocks = virtual_team_blocks(n, grid.nteams)
    neighbors = _region_neighbors(cfg.geometry) if cfg.rcut is not None else None

    def program(comm):
        row = grid.row_of(comm.rank)
        col = grid.col_of(comm.rank)
        block = blocks[col] if row == 0 else None
        for _ in range(nsteps):
            res = yield from ca_interaction_step(comm, cfg, kernel, block)
            del res
            if row == 0 and cfg.rcut is not None:
                with comm.phase("reassign"):
                    reqs = []
                    migrants = VirtualBlock(
                        count=max(1, int(block.count * migrate_fraction)),
                        team=col,
                    )
                    for nb in neighbors[col]:
                        dest = grid.leader_of(nb)
                        sreq = yield from comm.isend(dest, migrants, _REASSIGN_TAG)
                        rreq = yield from comm.irecv(dest, _REASSIGN_TAG)
                        reqs.extend((sreq, rreq))
                    if reqs:
                        yield from comm.wait(*reqs)
        return None

    return Engine(machine).run(program)

"""The algorithm registry and the single run pipeline.

Every single-step interaction algorithm in :mod:`repro.core` — the CA
all-pairs and cutoff algorithms, the symmetric variant, the midpoint
method, the four baselines, and their modeled (virtual) twins — plugs into
one orchestration pipeline:

1. **validate** — a :class:`RunSpec` is checked against the registered
   algorithm's declared capabilities (replication support, cutoff
   requirement, fault-recovery mode);
2. **prepare** — the algorithm's registered adapter builds its
   configuration, distributes particle blocks, and returns the rank
   program plus a force-collection strategy;
3. **execute** — one :class:`~repro.simmpi.engine.Engine` is constructed
   (threading ``faults``, ``eager_threshold`` and ``engine_opts``
   uniformly) and runs the program;
4. **collect** — leader forces are gathered and ordered by particle id
   into a uniform :class:`Run` result.

Because the engine construction and the kernel options live in the
pipeline, every registered algorithm accepts a
:class:`~repro.simmpi.faults.FaultSchedule`, ``engine_opts`` and the
kernel ``scratch`` toggle for free — algorithms only declare whether they
can *recover* from rank kills (``fault_mode="kills"``) or merely tolerate
transient transfer faults (``"transient"``, the engine's retry protocol).

New algorithms register with :func:`register_algorithm` and are picked up
automatically by ``python -m repro algorithms``, the ``compare``
subcommand, the cross-algorithm equivalence test matrix, and
``tools/check_registry.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.ca_step import check_fault_replication
from repro.physics.forces import ForceLaw
from repro.physics.particles import ParticleSet
from repro.simmpi.engine import Engine, RunResult
from repro.simmpi.faults import FaultSchedule
from repro.util import require

__all__ = [
    "Algorithm",
    "Prepared",
    "Run",
    "RunSpec",
    "fault_compat",
    "get_algorithm",
    "list_algorithms",
    "register_algorithm",
    "run",
]


@dataclass
class RunSpec:
    """Everything needed to run one registered algorithm once.

    The spec is algorithm-agnostic: fields an algorithm does not use are
    ignored by its adapter (and flagged by :func:`run`'s validation where
    they would be misleading, e.g. ``c != 1`` for an algorithm without a
    replication knob).

    Parameters
    ----------
    machine:
        Machine model supplying the rank count and the cost model.
    algorithm:
        Registry name (see :func:`list_algorithms`).
    particles:
        The workload for functional algorithms.  May be omitted if ``n``
        (+ ``seed``) is given — then a uniform random workload is drawn.
    n:
        Particle count: the workload size for modeled (virtual)
        algorithms, or the size of the synthesized workload when
        ``particles`` is omitted.
    c:
        Replication factor for the CA family (ignored by baselines, which
        require ``c = 1``).
    hyper_k:
        Hyper-systolic replication parameter K (the number of systolic
        strides; the family's analogue of ``c``).  ``None`` (default)
        picks the regular base ``K = ceil(sqrt(p)) + ceil(p /
        ceil(sqrt(p))) - 1``; only the ``hyper_systolic`` algorithm reads
        it.
    law:
        Force law; defaults to :class:`~repro.physics.forces.ForceLaw()`.
        Cutoff algorithms force the law's cutoff to ``rcut``.
    rcut, box_length, dim, team_dims, periodic, geometry:
        Spatial parameters for cutoff-windowed algorithms (``rcut`` is
        required exactly by the algorithms whose registry entry says so).
    layout:
        Rank layout of the replicated grid (``rows``/``teams``).
    use_tree:
        Particle-allgather baseline: post the allgather on the machine's
        dedicated hardware collective network.
    pair_counter:
        Optional global pair-coverage matrix (exactly-once instrumentation).
    eager_threshold, faults, engine_opts:
        Engine construction knobs, threaded uniformly through every
        algorithm: eager/rendezvous protocol switch-over, fault schedule,
        and extra :class:`~repro.simmpi.engine.Engine` keyword arguments
        (e.g. ``{"fast_path": False}``).
    scratch:
        Kernel scratch-pool toggle (``False`` selects the allocating
        reference path; bitwise-identical forces either way).
    metrics:
        Optional :class:`~repro.metrics.registry.MetricsRegistry`.  Threaded
        to both the engine (communication / time / fault metrics, recorded
        once after the run) and the force kernel (the ``kernel.pairs``
        interaction counter).  ``None`` (default) records nothing and adds
        no work.
    schedule:
        Optional :class:`~repro.simmpi.schedule.SchedulePolicy` or spec
        string (``"fifo"``, ``"random:SEED"``, ``"adversarial[:SEED]"``)
        perturbing the engine's scheduler free choices.  Forces, clocks
        and traffic are bitwise identical under every policy — the knob
        exists so the schedule fuzzer (and any suspicious test) can prove
        it.  ``None`` (default) keeps the FIFO fast path.
    engine_tier:
        Which simulator executes the run.  ``"event"`` (default): the
        exact generator-coroutine engine — required for faults, schedule
        perturbation, pair coverage and functional force output.
        ``"heuristic"``: the vectorized phase-advance tier
        (:mod:`repro.simmpi.fastsim`) — same ``RunResult`` schema with
        bit-exact per-rank/per-phase traffic but approximate clocks and
        no forces; orders of magnitude faster at large ``p``.  See
        ``docs/performance.md`` for the selection matrix.
    seed:
        Seed for the synthesized workload when ``particles`` is omitted.
    """

    machine: Any
    algorithm: str
    particles: ParticleSet | None = None
    n: int | None = None
    c: int = 1
    hyper_k: int | None = None
    law: ForceLaw | None = None
    rcut: float | None = None
    box_length: float = 1.0
    dim: int | None = None
    team_dims: tuple[int, ...] | None = None
    periodic: bool = False
    geometry: Any = None
    layout: str = "rows"
    use_tree: bool = False
    pair_counter: np.ndarray | None = None
    eager_threshold: int = 0
    scratch: bool = True
    faults: FaultSchedule | None = None
    engine_opts: dict | None = None
    metrics: Any = None
    schedule: Any = None
    engine_tier: str = "event"
    seed: int | None = None

    def workload(self) -> ParticleSet:
        """The functional particle workload (synthesized if not given)."""
        if self.particles is not None:
            return self.particles
        require(self.n is not None,
                f"algorithm {self.algorithm!r} needs particles (or n to "
                "synthesize a workload)")
        dim = 2 if self.dim is None else self.dim
        return ParticleSet.uniform_random(
            self.n, dim, self.box_length,
            seed=0 if self.seed is None else self.seed,
        )

    def count(self) -> int:
        """The workload size (for modeled runs: block-size accounting)."""
        if self.n is not None:
            return self.n
        require(self.particles is not None,
                f"algorithm {self.algorithm!r} needs n (or particles)")
        return len(self.particles)

    def resolved_law(self) -> ForceLaw:
        """The force law the run computes with: base law, with the spec's
        cutoff and (when periodic) minimum-image box applied."""
        law = self.law or ForceLaw()
        if self.rcut is not None:
            law = law.with_rcut(self.rcut)
            if self.periodic:
                law = law.with_box(self.box_length)
        return law


@dataclass
class Run:
    """Uniform outcome of one pipeline run — every algorithm returns this.

    Functional algorithms carry globally id-ordered ``ids``/``forces``;
    modeled (virtual) algorithms carry ``None`` for both and are consumed
    through :attr:`report`/:attr:`run`.
    """

    #: Registry name of the algorithm that produced this result.
    algorithm: str
    #: Global particle ids, ascending (``None`` for modeled runs).
    ids: np.ndarray | None
    #: Forces ordered to match ``ids`` (``None`` for modeled runs).
    forces: np.ndarray | None
    #: Raw engine result (timings, traces, deaths, per-rank results).
    run: RunResult
    #: The spec this run executed.
    spec: RunSpec | None = None

    @property
    def report(self):
        """Per-phase time/traffic accounting (``RunResult.report``)."""
        return self.run.report

    @property
    def trace(self):
        """Timestamped engine events (``engine_opts={"record_events": True}``)."""
        return self.run.events

    @property
    def coverage(self) -> np.ndarray | None:
        """The pair-coverage matrix the run accumulated into, if any."""
        return None if self.spec is None else self.spec.pair_counter

    @property
    def elapsed(self) -> float:
        return self.run.elapsed


@dataclass
class Prepared:
    """What an algorithm adapter hands the pipeline: the rank program and
    (for functional algorithms) the force-collection strategy."""

    #: ``program(comm)`` generator factory for the engine.
    program: Callable
    #: ``collect(run_result) -> (ids, forces)``; ``None`` for modeled runs.
    collect: Callable | None = None


@dataclass(frozen=True)
class Algorithm:
    """One registry entry: the adapter plus its declared capabilities."""

    name: str
    #: ``prepare(spec) -> Prepared``.
    prepare: Callable
    #: Moves real particle data (vs a modeled/virtual twin).
    functional: bool = True
    #: Has a replication knob ``c`` (baselines run at an implicit c=1).
    supports_c: bool = True
    #: ``"kills"`` — replication-aware recovery absorbs rank deaths;
    #: ``"transient"`` — only delay/drop/corrupt faults (engine retry).
    fault_mode: str = "transient"
    #: Requires ``spec.rcut`` (cutoff-windowed algorithms).
    needs_rcut: bool = False
    #: Requires a square rank count (Plimpton force decomposition).
    square_p: bool = False
    #: One-line description for ``python -m repro algorithms``.
    summary: str = ""


_REGISTRY: dict[str, Algorithm] = {}


def register_algorithm(
    name: str,
    *,
    functional: bool = True,
    supports_c: bool = True,
    fault_mode: str = "transient",
    needs_rcut: bool = False,
    square_p: bool = False,
    summary: str = "",
):
    """Decorator registering ``prepare(spec) -> Prepared`` under ``name``."""
    require(fault_mode in ("kills", "transient"),
            f"fault_mode must be 'kills' or 'transient', got {fault_mode!r}")

    def deco(prepare: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"algorithm {name!r} registered twice")
        _REGISTRY[name] = Algorithm(
            name=name, prepare=prepare, functional=functional,
            supports_c=supports_c, fault_mode=fault_mode,
            needs_rcut=needs_rcut, square_p=square_p, summary=summary,
        )
        return prepare

    return deco


def _load_builtins() -> None:
    """Import the core algorithm modules so their registrations run."""
    import repro.core.allpairs  # noqa: F401
    import repro.core.baselines  # noqa: F401
    import repro.core.cutoff  # noqa: F401
    import repro.core.midpoint  # noqa: F401
    import repro.core.symmetric  # noqa: F401
    import repro.core.systolic  # noqa: F401


def get_algorithm(name: str) -> Algorithm:
    """Look up a registry entry (imports the built-ins on first use)."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown algorithm {name!r} (known: {known})") from None


def list_algorithms(*, functional: bool | None = None) -> list[str]:
    """Registered algorithm names, sorted; optionally filtered by kind."""
    _load_builtins()
    return sorted(
        name for name, alg in _REGISTRY.items()
        if functional is None or alg.functional == functional
    )


def fault_compat(alg: Algorithm, faults, c: int = 1) -> str | None:
    """Why ``alg`` cannot absorb ``faults`` at replication ``c``, or ``None``.

    The shared predicate behind :func:`run`'s validation and the comparison
    harness's skip-with-reason path: kill schedules need a ``fault_mode ==
    "kills"`` algorithm and ``c >= 2``; kill-free schedules (delay / drop /
    corrupt) run on everything.
    """
    if faults is None or not faults.has_kills:
        return None
    if alg.fault_mode != "kills":
        return ("has no kill-recovery path; use a kill-free fault schedule "
                "(delay/drop/corrupt only)")
    if c < 2:
        return "kill recovery needs replication c >= 2"
    return None


def _validate(spec: RunSpec, alg: Algorithm) -> None:
    p = spec.machine.nranks
    if not alg.supports_c:
        require(spec.c == 1,
                f"algorithm {alg.name!r} has no replication knob; got c={spec.c}")
    if alg.needs_rcut:
        require(spec.rcut is not None,
                f"algorithm {alg.name!r} needs a cutoff radius (spec.rcut)")
    if alg.square_p:
        q = int(round(p ** 0.5))
        require(q * q == p,
                f"algorithm {alg.name!r} needs a square rank count, got {p}")
    if spec.faults is not None and spec.faults.has_kills:
        if alg.fault_mode != "kills":
            raise ValueError(
                f"algorithm {alg.name!r} has no kill-recovery path; use a "
                "kill-free fault schedule (delay/drop/corrupt only)"
            )
        check_fault_replication(spec.faults, spec.c)


def run(spec: RunSpec) -> Run:
    """The single run pipeline: validate, prepare, execute, collect."""
    alg = get_algorithm(spec.algorithm)
    _validate(spec, alg)
    if spec.engine_tier != "event":
        if spec.engine_tier != "heuristic":
            raise ValueError(
                f"unknown engine_tier {spec.engine_tier!r}; choose 'event' "
                "(exact simulator) or 'heuristic' (vectorized phase-advance "
                "tier)")
        from repro.simmpi.fastsim import run_heuristic

        return run_heuristic(spec, alg)
    prep = alg.prepare(spec)
    opts = dict(spec.engine_opts or {})
    if spec.schedule is not None:
        # The explicit field wins over an engine_opts entry.
        opts["schedule"] = spec.schedule
    engine = Engine(
        spec.machine,
        eager_threshold=spec.eager_threshold,
        faults=spec.faults,
        metrics=spec.metrics,
        **opts,
    )
    result = engine.run(prep.program)
    if prep.collect is not None:
        ids, forces = prep.collect(result)
    else:
        ids, forces = None, None
    return Run(algorithm=alg.name, ids=ids, forces=forces, run=result,
               spec=spec)

"""Baseline decompositions the paper compares against or degenerates into.

* :func:`run_particle_allgather` — the naive particle decomposition
  (Section II-B): every processor owns ``n/p`` particles and obtains all
  others, here via an allgather.  On Intrepid this collective can ride the
  dedicated tree network (the paper's "c=1 (tree)" runs) or be forced onto
  the torus ("c=1 (no-tree)").  Costs: ``S = O(p)`` software /
  ``O(log p)`` hardware, ``W = O(n)``.
* :func:`run_particle_ring` — the same decomposition with a systolic ring
  of shifts; identical to the CA algorithm at ``c = 1``.
* :func:`run_force_decomposition` — Plimpton's force decomposition
  (Section II-B): a ``sqrt(p) x sqrt(p)`` grid where processor ``(i, j)``
  computes the interactions of particle block ``i`` with block ``j``.
  Costs: ``S = O(log p)``, ``W = O(n / sqrt(p))`` — the ``c = sqrt(p)``
  extreme of the CA family.
* :func:`run_spatial` — the classic spatial decomposition with a cutoff
  (Section II-C): every processor owns one region and exchanges halos with
  the ``O(m^d)`` neighbor regions its cutoff reaches.

All are functional: they move real particle data and must (and do, per the
tests) reproduce the serial reference forces exactly like the CA runs.
All four are registered adapters over the single run pipeline
(:mod:`repro.core.runner`): the ``run_*`` signatures survive as thin shims,
and the pipeline threads ``faults`` (transient schedules — the engine's
retry protocol; these decompositions have no kill-recovery path),
``scratch`` and ``engine_opts`` through every one uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import team_blocks_even, team_blocks_spatial
from repro.core.runner import Prepared, Run, RunSpec, register_algorithm
from repro.core.runner import run as run_pipeline
from repro.machines.torus import balanced_dims
from repro.physics.domain import TeamGeometry
from repro.physics.forces import ForceLaw
from repro.physics.kernels import kernel_for
from repro.physics.particles import HomeBlock, ParticleSet, TravelBlock
from repro.simmpi.engine import RunResult
from repro.simmpi.faults import FaultSchedule

__all__ = [
    "BaselineRun",
    "run_force_decomposition",
    "run_particle_allgather",
    "run_particle_ring",
    "run_spatial",
]

_HALO_TAG = 11

#: Deprecated alias — the per-variant result dataclasses collapsed into
#: :class:`repro.core.runner.Run`.
BaselineRun = Run


def _collect(results, owner_ranks) -> tuple[np.ndarray, np.ndarray]:
    ids = np.concatenate([results[r][0] for r in owner_ranks])
    forces = np.concatenate([results[r][1] for r in owner_ranks])
    order = np.argsort(ids, kind="stable")
    return ids[order], forces[order]


# ---------------------------------------------------------------------------
# Particle decompositions
# ---------------------------------------------------------------------------


@register_algorithm(
    "particle_allgather",
    supports_c=False,
    summary="Naive particle decomposition: allgather all blocks (tree-capable)",
)
def _prepare_particle_allgather(spec: RunSpec) -> Prepared:
    machine = spec.machine
    p = machine.nranks
    use_tree = spec.use_tree
    kernel = kernel_for(spec.law, pair_counter=spec.pair_counter,
                        scratch=spec.scratch, metrics=spec.metrics)
    blocks = team_blocks_even(spec.workload(), p)

    def program(comm):
        mine = blocks[comm.rank]
        home = HomeBlock(particles=mine)
        payload = TravelBlock(pos=mine.pos, ids=mine.ids, team=comm.rank)
        with comm.phase("allgather"):
            if use_tree:
                gathered = yield from comm.hw_coll("allgather", payload)
            else:
                gathered = yield from comm.allgather(payload)
        total_pairs = 0
        with comm.phase("compute"):
            for tb in gathered:
                total_pairs += kernel.interact(home, tb)
            yield from comm.compute(machine.interactions_time(total_pairs))
        return (mine.ids, home.forces)

    return Prepared(program=program,
                    collect=lambda run: _collect(run.results, range(p)))


@register_algorithm(
    "particle_ring",
    supports_c=False,
    summary="Particle decomposition via a systolic ring (CA at c=1)",
)
def _prepare_particle_ring(spec: RunSpec) -> Prepared:
    machine = spec.machine
    p = machine.nranks
    kernel = kernel_for(spec.law, pair_counter=spec.pair_counter,
                        scratch=spec.scratch, metrics=spec.metrics)
    blocks = team_blocks_even(spec.workload(), p)

    def program(comm):
        mine = blocks[comm.rank]
        home = HomeBlock(particles=mine)
        travel = TravelBlock(pos=mine.pos.copy(), ids=mine.ids.copy(), team=comm.rank)
        right = (comm.rank + 1) % p
        left = (comm.rank - 1) % p
        total_pairs = 0
        for _ in range(p):
            with comm.phase("shift"):
                travel = yield from comm.sendrecv(right, travel, left, _HALO_TAG)
            with comm.phase("compute"):
                n = kernel.interact(home, travel)
                total_pairs += n
                yield from comm.compute(machine.interactions_time(n))
        return (mine.ids, home.forces)

    return Prepared(program=program,
                    collect=lambda run: _collect(run.results, range(p)))


# ---------------------------------------------------------------------------
# Plimpton force decomposition
# ---------------------------------------------------------------------------


@register_algorithm(
    "force_decomposition",
    supports_c=False,
    square_p=True,
    summary="Plimpton force decomposition on a sqrt(p) x sqrt(p) grid",
)
def _prepare_force_decomposition(spec: RunSpec) -> Prepared:
    machine = spec.machine
    p = machine.nranks
    q = int(round(p**0.5))
    kernel = kernel_for(spec.law, pair_counter=spec.pair_counter,
                        scratch=spec.scratch, metrics=spec.metrics)
    blocks = team_blocks_even(spec.workload(), q)

    def program(comm):
        i, j = divmod(comm.rank, q)
        row_comm = comm.sub([i * q + jj for jj in range(q)])
        col_comm = comm.sub([ii * q + j for ii in range(q)])
        diag_block = blocks[i] if i == j else None

        with comm.phase("bcast"):
            # Block i travels along grid row i (diagonal rank (i, i) owns it).
            bi = yield from row_comm.bcast(
                TravelBlock(pos=diag_block.pos, ids=diag_block.ids, team=i)
                if diag_block is not None else None,
                root=i,
            )
            # Block j travels along grid column j (diagonal rank (j, j)).
            bj = yield from col_comm.bcast(
                TravelBlock(pos=diag_block.pos, ids=diag_block.ids, team=j)
                if diag_block is not None else None,
                root=j,
            )
        home = HomeBlock(particles=ParticleSet(bi.pos, np.zeros_like(bi.pos), bi.ids))
        with comm.phase("compute"):
            n = kernel.interact(home, bj)
            yield from comm.compute(machine.interactions_time(n))
        with comm.phase("reduce"):
            total = yield from row_comm.reduce(home.forces, kernel.reduce_op, root=i)
        if i == j:
            return (blocks[i].ids, total)
        return None

    return Prepared(
        program=program,
        collect=lambda run: _collect(run.results,
                                     [i * q + i for i in range(q)]),
    )


# ---------------------------------------------------------------------------
# Spatial decomposition with cutoff (halo exchange)
# ---------------------------------------------------------------------------


@register_algorithm(
    "spatial",
    supports_c=False,
    needs_rcut=True,
    summary="Spatial decomposition: one region per rank, cutoff halo exchange",
)
def _prepare_spatial(spec: RunSpec) -> Prepared:
    machine = spec.machine
    p = machine.nranks
    particles = spec.workload()
    dim = particles.dim if spec.dim is None else spec.dim
    rcut = spec.rcut
    geometry = TeamGeometry(box_length=spec.box_length,
                            team_dims=balanced_dims(p, dim))
    kernel = kernel_for(spec.law, rcut=rcut, pair_counter=spec.pair_counter,
                        scratch=spec.scratch, metrics=spec.metrics)
    blocks = team_blocks_spatial(particles, geometry)

    # Precompute each region's in-cutoff neighbor list (symmetric).
    neighbors: list[list[int]] = []
    for a in range(p):
        neighbors.append(
            [b for b in range(p) if b != a and geometry.team_distance_ok(a, b, rcut)]
        )

    def program(comm):
        mine = blocks[comm.rank]
        home = HomeBlock(particles=mine)
        payload = TravelBlock(pos=mine.pos, ids=mine.ids, team=comm.rank)
        # Exchange with every reachable neighbor (pairwise sendrecv, ordered
        # by neighbor rank to stay deadlock-free: both sides post both ops).
        received = []
        with comm.phase("halo"):
            reqs = []
            for b in neighbors[comm.rank]:
                sreq = yield from comm.isend(b, payload, _HALO_TAG)
                rreq = yield from comm.irecv(b, _HALO_TAG)
                reqs.extend((sreq, rreq))
            payloads = yield from comm.wait(*reqs)
            received = [x for x in payloads[1::2]]
        total_pairs = 0
        with comm.phase("compute"):
            n = kernel.interact(home, payload)  # own region self-interactions
            total_pairs += n
            for tb in received:
                total_pairs += kernel.interact(home, tb)
            yield from comm.compute(machine.interactions_time(total_pairs))
        return (mine.ids, home.forces)

    return Prepared(program=program,
                    collect=lambda run: _collect(run.results, range(p)))


def run_particle_allgather(
    machine,
    particles: ParticleSet,
    *,
    law: ForceLaw | None = None,
    use_tree: bool = False,
    pair_counter=None,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """Naive particle decomposition via allgather of all particle blocks.

    ``use_tree=True`` posts the allgather on the machine's dedicated
    collective network (requires a machine with hardware collectives, e.g.
    :func:`~repro.machines.Intrepid`); otherwise the software
    recursive-doubling/ring allgather runs over the torus.

    Shim over the registry pipeline (algorithm ``"particle_allgather"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="particle_allgather",
        particles=particles, law=law, use_tree=use_tree,
        pair_counter=pair_counter, eager_threshold=eager_threshold,
        faults=faults, scratch=scratch, engine_opts=engine_opts,
    ))


def run_particle_ring(
    machine,
    particles: ParticleSet,
    *,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """Particle decomposition with a systolic ring of ``p`` shifts.

    This is exactly the CA algorithm at ``c = 1`` (each team is one
    processor); provided standalone for clarity and as an independent
    implementation the equivalence tests compare against.

    Shim over the registry pipeline (algorithm ``"particle_ring"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="particle_ring", particles=particles,
        law=law, pair_counter=pair_counter,
        eager_threshold=eager_threshold, faults=faults, scratch=scratch,
        engine_opts=engine_opts,
    ))


def run_force_decomposition(
    machine,
    particles: ParticleSet,
    *,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """Plimpton's force decomposition on a ``sqrt(p) x sqrt(p)`` grid.

    Processor ``(i, j)`` receives particle block ``i`` (broadcast along
    grid row ``i`` from the diagonal owner) and block ``j`` (broadcast
    along grid column ``j``), computes the forces of block ``j`` on block
    ``i``, and row-reduces the partial forces back to the diagonal.

    Shim over the registry pipeline (algorithm ``"force_decomposition"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="force_decomposition",
        particles=particles, law=law, pair_counter=pair_counter,
        eager_threshold=eager_threshold, faults=faults, scratch=scratch,
        engine_opts=engine_opts,
    ))


def run_spatial(
    machine,
    particles: ParticleSet,
    *,
    rcut: float,
    box_length: float,
    dim: int | None = None,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """Spatial decomposition: one region per processor, halo exchange.

    Every processor owns the particles of its region and point-to-point
    exchanges blocks with each of the ``O(m^d)`` neighbor regions within
    the cutoff (no replication, ``M = O(n/p)`` — the minimal-memory point
    of the lower bound, Section II-C).

    Shim over the registry pipeline (algorithm ``"spatial"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="spatial", particles=particles,
        rcut=rcut, box_length=box_length, dim=dim, law=law,
        pair_counter=pair_counter, eager_threshold=eager_threshold,
        faults=faults, scratch=scratch, engine_opts=engine_opts,
    ))

"""Baseline decompositions the paper compares against or degenerates into.

* :func:`run_particle_allgather` — the naive particle decomposition
  (Section II-B): every processor owns ``n/p`` particles and obtains all
  others, here via an allgather.  On Intrepid this collective can ride the
  dedicated tree network (the paper's "c=1 (tree)" runs) or be forced onto
  the torus ("c=1 (no-tree)").  Costs: ``S = O(p)`` software /
  ``O(log p)`` hardware, ``W = O(n)``.
* :func:`run_particle_ring` — the same decomposition with a systolic ring
  of shifts; identical to the CA algorithm at ``c = 1``.
* :func:`run_force_decomposition` — Plimpton's force decomposition
  (Section II-B): a ``sqrt(p) x sqrt(p)`` grid where processor ``(i, j)``
  computes the interactions of particle block ``i`` with block ``j``.
  Costs: ``S = O(log p)``, ``W = O(n / sqrt(p))`` — the ``c = sqrt(p)``
  extreme of the CA family.
* :func:`run_spatial` — the classic spatial decomposition with a cutoff
  (Section II-C): every processor owns one region and exchanges halos with
  the ``O(m^d)`` neighbor regions its cutoff reaches.

All are functional: they move real particle data and must (and do, per the
tests) reproduce the serial reference forces exactly like the CA runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.decomposition import team_blocks_even, team_blocks_spatial
from repro.machines.torus import balanced_dims
from repro.physics.domain import TeamGeometry
from repro.physics.forces import ForceLaw
from repro.physics.kernels import RealKernel
from repro.physics.particles import HomeBlock, ParticleSet, TravelBlock
from repro.simmpi.engine import Engine, RunResult
from repro.util import require

__all__ = [
    "BaselineRun",
    "run_force_decomposition",
    "run_particle_allgather",
    "run_particle_ring",
    "run_spatial",
]

_HALO_TAG = 11


@dataclass
class BaselineRun:
    """ids/forces (globally ordered) plus the raw engine result."""

    ids: np.ndarray
    forces: np.ndarray
    run: RunResult

    @property
    def report(self):
        return self.run.report


def _collect(results, owner_ranks) -> tuple[np.ndarray, np.ndarray]:
    ids = np.concatenate([results[r][0] for r in owner_ranks])
    forces = np.concatenate([results[r][1] for r in owner_ranks])
    order = np.argsort(ids, kind="stable")
    return ids[order], forces[order]


# ---------------------------------------------------------------------------
# Particle decompositions
# ---------------------------------------------------------------------------


def run_particle_allgather(
    machine,
    particles: ParticleSet,
    *,
    law: ForceLaw | None = None,
    use_tree: bool = False,
    pair_counter: np.ndarray | None = None,
) -> BaselineRun:
    """Naive particle decomposition via allgather of all particle blocks.

    ``use_tree=True`` posts the allgather on the machine's dedicated
    collective network (requires a machine with hardware collectives, e.g.
    :func:`~repro.machines.Intrepid`); otherwise the software
    recursive-doubling/ring allgather runs over the torus.
    """
    p = machine.nranks
    kernel = RealKernel(law=law or ForceLaw(), pair_counter=pair_counter)
    blocks = team_blocks_even(particles, p)

    def program(comm):
        mine = blocks[comm.rank]
        home = HomeBlock(particles=mine)
        payload = TravelBlock(pos=mine.pos, ids=mine.ids, team=comm.rank)
        with comm.phase("allgather"):
            if use_tree:
                gathered = yield from comm.hw_coll("allgather", payload)
            else:
                gathered = yield from comm.allgather(payload)
        total_pairs = 0
        with comm.phase("compute"):
            for tb in gathered:
                total_pairs += kernel.interact(home, tb)
            yield from comm.compute(machine.interactions_time(total_pairs))
        return (mine.ids, home.forces)

    run = Engine(machine).run(program)
    ids, forces = _collect(run.results, range(p))
    return BaselineRun(ids=ids, forces=forces, run=run)


def run_particle_ring(
    machine,
    particles: ParticleSet,
    *,
    law: ForceLaw | None = None,
    pair_counter: np.ndarray | None = None,
) -> BaselineRun:
    """Particle decomposition with a systolic ring of ``p`` shifts.

    This is exactly the CA algorithm at ``c = 1`` (each team is one
    processor); provided standalone for clarity and as an independent
    implementation the equivalence tests compare against.
    """
    p = machine.nranks
    kernel = RealKernel(law=law or ForceLaw(), pair_counter=pair_counter)
    blocks = team_blocks_even(particles, p)

    def program(comm):
        mine = blocks[comm.rank]
        home = HomeBlock(particles=mine)
        travel = TravelBlock(pos=mine.pos.copy(), ids=mine.ids.copy(), team=comm.rank)
        right = (comm.rank + 1) % p
        left = (comm.rank - 1) % p
        total_pairs = 0
        for _ in range(p):
            with comm.phase("shift"):
                travel = yield from comm.sendrecv(right, travel, left, _HALO_TAG)
            with comm.phase("compute"):
                n = kernel.interact(home, travel)
                total_pairs += n
                yield from comm.compute(machine.interactions_time(n))
        return (mine.ids, home.forces)

    run = Engine(machine).run(program)
    ids, forces = _collect(run.results, range(p))
    return BaselineRun(ids=ids, forces=forces, run=run)


# ---------------------------------------------------------------------------
# Plimpton force decomposition
# ---------------------------------------------------------------------------


def run_force_decomposition(
    machine,
    particles: ParticleSet,
    *,
    law: ForceLaw | None = None,
    pair_counter: np.ndarray | None = None,
) -> BaselineRun:
    """Plimpton's force decomposition on a ``sqrt(p) x sqrt(p)`` grid.

    Processor ``(i, j)`` receives particle block ``i`` (broadcast along
    grid row ``i`` from the diagonal owner) and block ``j`` (broadcast
    along grid column ``j``), computes the forces of block ``j`` on block
    ``i``, and row-reduces the partial forces back to the diagonal.
    """
    p = machine.nranks
    q = int(round(p**0.5))
    require(q * q == p, f"force decomposition needs a square p, got {p}")
    kernel = RealKernel(law=law or ForceLaw(), pair_counter=pair_counter)
    blocks = team_blocks_even(particles, q)

    def program(comm):
        i, j = divmod(comm.rank, q)
        row_comm = comm.sub([i * q + jj for jj in range(q)])
        col_comm = comm.sub([ii * q + j for ii in range(q)])
        diag_block = blocks[i] if i == j else None

        with comm.phase("bcast"):
            # Block i travels along grid row i (diagonal rank (i, i) owns it).
            bi = yield from row_comm.bcast(
                TravelBlock(pos=diag_block.pos, ids=diag_block.ids, team=i)
                if diag_block is not None else None,
                root=i,
            )
            # Block j travels along grid column j (diagonal rank (j, j)).
            bj = yield from col_comm.bcast(
                TravelBlock(pos=diag_block.pos, ids=diag_block.ids, team=j)
                if diag_block is not None else None,
                root=j,
            )
        home = HomeBlock(particles=ParticleSet(bi.pos, np.zeros_like(bi.pos), bi.ids))
        with comm.phase("compute"):
            n = kernel.interact(home, bj)
            yield from comm.compute(machine.interactions_time(n))
        with comm.phase("reduce"):
            total = yield from row_comm.reduce(home.forces, kernel.reduce_op, root=i)
        if i == j:
            return (blocks[i].ids, total)
        return None

    run = Engine(machine).run(program)
    ids, forces = _collect(run.results, [i * q + i for i in range(q)])
    return BaselineRun(ids=ids, forces=forces, run=run)


# ---------------------------------------------------------------------------
# Spatial decomposition with cutoff (halo exchange)
# ---------------------------------------------------------------------------


def run_spatial(
    machine,
    particles: ParticleSet,
    *,
    rcut: float,
    box_length: float,
    dim: int | None = None,
    law: ForceLaw | None = None,
    pair_counter: np.ndarray | None = None,
) -> BaselineRun:
    """Spatial decomposition: one region per processor, halo exchange.

    Every processor owns the particles of its region and point-to-point
    exchanges blocks with each of the ``O(m^d)`` neighbor regions within
    the cutoff (no replication, ``M = O(n/p)`` — the minimal-memory point
    of the lower bound, Section II-C).
    """
    p = machine.nranks
    if dim is None:
        dim = particles.dim
    geometry = TeamGeometry(box_length=box_length, team_dims=balanced_dims(p, dim))
    base_law = law or ForceLaw()
    kernel = RealKernel(law=base_law.with_rcut(rcut), pair_counter=pair_counter)
    blocks = team_blocks_spatial(particles, geometry)

    # Precompute each region's in-cutoff neighbor list (symmetric).
    neighbors: list[list[int]] = []
    for a in range(p):
        neighbors.append(
            [b for b in range(p) if b != a and geometry.team_distance_ok(a, b, rcut)]
        )

    def program(comm):
        mine = blocks[comm.rank]
        home = HomeBlock(particles=mine)
        payload = TravelBlock(pos=mine.pos, ids=mine.ids, team=comm.rank)
        # Exchange with every reachable neighbor (pairwise sendrecv, ordered
        # by neighbor rank to stay deadlock-free: both sides post both ops).
        received = []
        with comm.phase("halo"):
            reqs = []
            for b in neighbors[comm.rank]:
                sreq = yield from comm.isend(b, payload, _HALO_TAG)
                rreq = yield from comm.irecv(b, _HALO_TAG)
                reqs.extend((sreq, rreq))
            payloads = yield from comm.wait(*reqs)
            received = [x for x in payloads[1::2]]
        total_pairs = 0
        with comm.phase("compute"):
            n = kernel.interact(home, payload)  # own region self-interactions
            total_pairs += n
            for tb in received:
                total_pairs += kernel.interact(home, tb)
            yield from comm.compute(machine.interactions_time(total_pairs))
        return (mine.ids, home.forces)

    run = Engine(machine).run(program)
    ids, forces = _collect(run.results, range(p))
    return BaselineRun(ids=ids, forces=forces, run=run)

"""Runtime autotuning of the replication factor ``c``.

The paper leaves open "the question of how to select the replication factor
c, which ... can be autotuned at runtime by trying multiple factors".  This
module implements that future-work item: it enumerates the feasible
replication factors for a machine/problem, measures each with a cheap
modeled (virtual) step — or a user-supplied measurement function — and
ranks them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.allpairs import run_allpairs_virtual
from repro.core.cutoff import cutoff_config, run_cutoff_virtual
from repro.util import require

__all__ = ["TuningResult", "autotune_c", "candidate_cs"]


def candidate_cs(p: int, *, max_c: int | None = None) -> list[int]:
    """Feasible replication factors: divisors ``c`` of ``p`` with
    ``c <= sqrt(p)`` (the paper's memory-replication range), optionally
    capped at ``max_c``."""
    require(p >= 1, "p must be >= 1")
    out = []
    c = 1
    while c * c <= p:
        if p % c == 0 and (max_c is None or c <= max_c):
            out.append(c)
        c += 1
    return out


@dataclass
class TuningResult:
    """Ranked measurements from an autotuning sweep."""

    #: (c, modeled seconds per step), best first.
    ranked: list[tuple[int, float]]

    @property
    def best_c(self) -> int:
        return self.ranked[0][0]

    @property
    def best_time(self) -> float:
        return self.ranked[0][1]

    def time_of(self, c: int) -> float:
        """Modeled time per step at replication ``c`` (KeyError if unmeasured)."""
        for cc, t in self.ranked:
            if cc == c:
                return t
        raise KeyError(f"c={c} was not measured")

    def summary(self) -> str:
        """The ranked candidates as an aligned table (best-relative times)."""
        lines = [f"{'c':>6} {'time/step':>14} {'vs best':>8}"]
        best = self.best_time
        for c, t in self.ranked:
            lines.append(f"{c:>6} {t:>14.6e} {t / best:>8.2f}x")
        return "\n".join(lines)


def autotune_c(
    machine,
    n: int,
    *,
    rcut: float | None = None,
    box_length: float | None = None,
    dim: int = 2,
    candidates: list[int] | None = None,
    measure: Callable[[int], float] | None = None,
) -> TuningResult:
    """Measure every candidate ``c`` and rank them (fastest first).

    By default each candidate is timed with one modeled (virtual) CA step
    on ``machine`` — all-pairs when ``rcut`` is ``None``, cutoff otherwise
    (``box_length`` required).  Pass ``measure`` to time candidates some
    other way (e.g. a functional run); it receives ``c`` and returns
    seconds.
    """
    p = machine.nranks
    if candidates is None:
        candidates = candidate_cs(p)
    require(len(candidates) > 0, "no candidate replication factors")
    for c in candidates:
        require(p % c == 0, f"candidate c={c} does not divide p={p}")

    if measure is None:
        if rcut is None:
            def measure(c: int) -> float:
                return run_allpairs_virtual(machine, n, c, dim=dim).elapsed
        else:
            require(box_length is not None, "cutoff tuning needs box_length")

            def measure(c: int) -> float:
                return run_cutoff_virtual(
                    machine, n, c, rcut=rcut, box_length=box_length, dim=dim
                ).elapsed

    timed = sorted(((c, float(measure(c))) for c in candidates), key=lambda x: x[1])
    return TuningResult(ranked=timed)

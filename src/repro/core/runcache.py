"""Durable content-addressed cache for results that are pure in a fingerprint.

Every run in this codebase is a pure function of its configuration: the
checkpoint subsystem already derives a config *fingerprint* (PR 4,
:func:`repro.core.checkpoint.simulation_fingerprint`) and refuses to
resume across a mismatch.  :class:`RunCache` turns that same idea into a
result store: a harness computes a fingerprint string for a work unit,
asks the cache first, and only recomputes on a miss — so an interrupted
sweep resumes from whatever earlier runs already paid for, and two users
asking for the same configuration share one computation.

Design (mirrors the ``physics/io.py`` v2 checkpoint container):

* **Content addressing** — the entry path is
  ``root/<k[:2]>/<k>.rcache`` where ``k = sha256(format; namespace;
  fingerprint)``; the two-hex-digit fan-out keeps directories small on
  large sweeps.  ``namespace`` versions the *payload schema* (bump it
  when the cached value's meaning changes and old entries silently
  become stale).
* **Atomic writes** — payloads are pickled, prefixed with a one-line
  JSON header ``{format, namespace, fingerprint, nbytes, crc32}``,
  written to a uniquely-named temp file in the destination directory,
  fsynced, then ``os.replace``d into place.  Concurrent writers of the
  same key race benignly: both write identical bytes and the rename is
  atomic, so readers only ever see a complete entry.
* **Verified reads, self-healing** — :meth:`get` re-parses the header,
  checks the format tag, the stored fingerprint (guarding against hash
  collisions and foreign files), the payload length and its CRC-32.
  *Any* discrepancy — torn write, truncation, bit rot, unpicklable
  payload — evicts the entry (unlink) and reports a miss: a corrupt
  entry is recomputed, never served.

The cache is a plain directory; delete it (or :meth:`clear`) to drop
everything.  Per-instance :class:`CacheStats` count hits / misses /
stores / evictions — ``repro sweep --expect-cached`` turns "zero
recomputes on a warm cache" into a CI assertion.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import zlib
from dataclasses import dataclass

__all__ = ["MISS", "CacheStats", "RunCache", "resolve_cache"]

_FORMAT = "repro-runcache-v1"

#: Sentinel returned by :meth:`RunCache.get` on a miss — distinguishes
#: "not cached" from a legitimately cached ``None``.
MISS = object()

#: Parse/shape failures that mean "this entry is corrupt", internal.
_BAD = object()


@dataclass
class CacheStats:
    """Counters for one :class:`RunCache` instance's lifetime.

    The accounting contract (the service layer and ``repro sweep
    --expect-cached`` treat these as the source of truth): every
    :meth:`RunCache.get` increments exactly one of ``hits`` / ``misses``,
    every :meth:`RunCache.put` increments ``stores`` exactly once, and a
    computation must never read back the entry it just stored to serve
    its own caller — doing so would double-count the lookup as a hit
    (``tests/experiments/test_sweep.py::TestCacheAccounting`` locks
    this).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when none)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """Plain-data snapshot — what ``/stats`` and dashboards serve."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions,
                "hit_rate": self.hit_rate}

    def describe(self) -> str:
        """One log line: ``hits=.. misses=.. stores=.. evictions=..``."""
        return (f"hits={self.hits} misses={self.misses} "
                f"stores={self.stores} evictions={self.evictions}")


class RunCache:
    """Content-addressed on-disk result cache; see the module docstring."""

    def __init__(self, root: str, *, namespace: str = ""):
        self.root = os.fspath(root)
        self.namespace = namespace
        self.stats = CacheStats()
        os.makedirs(self.root, exist_ok=True)

    def key(self, fingerprint: str) -> str:
        """The sha256 content address of a fingerprint in this namespace."""
        material = f"{_FORMAT};{self.namespace};{fingerprint}"
        return hashlib.sha256(material.encode()).hexdigest()

    def path_for(self, fingerprint: str) -> str:
        """Where the entry for ``fingerprint`` lives (may not exist)."""
        k = self.key(fingerprint)
        return os.path.join(self.root, k[:2], k + ".rcache")

    def get(self, fingerprint: str, default=MISS):
        """The cached value for ``fingerprint``, or ``default`` on a miss.

        A present-but-corrupt entry (torn write, truncation, CRC or
        fingerprint mismatch, unpicklable payload) counts as a miss and
        is evicted so the recomputed value can be stored cleanly.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except (FileNotFoundError, IsADirectoryError):
            self.stats.misses += 1
            return default
        except OSError:
            self.stats.misses += 1
            return default
        value = self._decode(blob, fingerprint)
        if value is _BAD:
            self._evict(path)
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return value

    def _decode(self, blob: bytes, fingerprint: str):
        """Verify and unpickle an entry; ``_BAD`` on any discrepancy."""
        newline = blob.find(b"\n")
        if newline < 0:
            return _BAD
        try:
            header = json.loads(blob[:newline])
        except (ValueError, UnicodeDecodeError):
            return _BAD
        if not isinstance(header, dict) or header.get("format") != _FORMAT:
            return _BAD
        if header.get("namespace") != self.namespace:
            return _BAD
        if header.get("fingerprint") != fingerprint:
            return _BAD
        payload = blob[newline + 1:]
        if len(payload) != header.get("nbytes"):
            return _BAD
        if zlib.crc32(payload) != header.get("crc32"):
            return _BAD
        try:
            return pickle.loads(payload)
        except Exception:
            return _BAD

    def put(self, fingerprint: str, value) -> str:
        """Store ``value`` under ``fingerprint`` atomically; returns the path.

        Safe under concurrent writers: each writes its own temp file and
        the final ``os.replace`` is atomic, so a reader sees either the
        old complete entry or the new complete entry, never a mix.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "format": _FORMAT,
            "namespace": self.namespace,
            "fingerprint": fingerprint,
            "nbytes": len(payload),
            "crc32": zlib.crc32(payload),
        }
        path = self.path_for(fingerprint)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".rcache-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(json.dumps(header, sort_keys=True).encode() + b"\n")
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        self.stats.stores += 1
        return path

    def _evict(self, path: str) -> None:
        """Remove a corrupt entry (best effort — a racer may have won)."""
        try:
            os.unlink(path)
        except OSError:
            pass
        self.stats.evictions += 1

    def __len__(self) -> int:
        """Number of entries currently on disk (walks the root)."""
        count = 0
        for _dir, _subdirs, files in os.walk(self.root):
            count += sum(1 for f in files if f.endswith(".rcache"))
        return count

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for dirpath, _subdirs, files in os.walk(self.root):
            for f in files:
                if f.endswith(".rcache"):
                    try:
                        os.unlink(os.path.join(dirpath, f))
                        removed += 1
                    except OSError:
                        pass
        return removed


def resolve_cache(cache, *, namespace: str = "") -> RunCache | None:
    """Normalize a ``--cache`` value: None / a directory path / a RunCache.

    A :class:`RunCache` instance passes through unchanged (its own
    namespace wins — it was constructed deliberately); a string or path
    becomes a :class:`RunCache` rooted there under ``namespace``.
    """
    if cache is None:
        return None
    if isinstance(cache, RunCache):
        return cache
    return RunCache(cache, namespace=namespace)

"""Algorithm 2 and its multi-dimensional generalization: CA interactions
with a finite cutoff radius.

Teams own spatial regions of the box (1-D slabs, 2-D tiles, ...); the shift
schedule walks the cutoff window (all team offsets within ``m`` cells per
axis, Equation 6) instead of the full ring, and block pairs whose regions
cannot contain interacting particles are pruned — including pairs that the
window's ring arithmetic wraps across the (reflective, non-periodic) box
boundary.  That pruning is what creates the boundary load imbalance the
paper reports for its cutoff experiments.

Both entry points are registered adapters over the single run pipeline
(:mod:`repro.core.runner`); :func:`run_cutoff` / :func:`run_cutoff_virtual`
survive as thin shims over ``run(RunSpec(algorithm="cutoff", ...))``.
"""

from __future__ import annotations

from repro.core.ca_step import CAConfig, ca_program
from repro.core.decomposition import (
    collect_leader_forces,
    team_blocks_spatial,
    virtual_team_blocks,
)
from repro.core.runner import Prepared, Run, RunSpec, register_algorithm
from repro.core.runner import run as run_pipeline
from repro.core.window import cutoff_schedule
from repro.machines.torus import balanced_dims
from repro.physics.domain import TeamGeometry
from repro.physics.forces import ForceLaw
from repro.physics.kernels import VirtualKernel, kernel_for
from repro.physics.particles import ParticleSet
from repro.simmpi.engine import RunResult
from repro.simmpi.faults import FaultSchedule
from repro.simmpi.topology import ReplicatedGrid
from repro.util import require

__all__ = ["CutoffRun", "cutoff_config", "run_cutoff", "run_cutoff_virtual"]

#: Deprecated alias — the per-variant result dataclasses collapsed into
#: :class:`repro.core.runner.Run`.
CutoffRun = Run


def cutoff_config(
    p: int,
    c: int,
    *,
    rcut: float,
    box_length: float,
    dim: int = 1,
    team_dims: tuple[int, ...] | None = None,
    periodic: bool = False,
    geometry: TeamGeometry | None = None,
) -> CAConfig:
    """CA cutoff configuration: ``p`` processors, replication ``c``,
    cutoff ``rcut`` in a ``[0, box_length]^dim`` box.

    ``team_dims`` overrides the team-grid shape (default: near-square
    factorization of ``p/c`` into ``dim`` factors).  The per-axis window
    span ``m`` follows the paper's Equation 6 (``m = ceil(rcut /
    cell_width)`` cells per axis).  ``periodic=True`` selects the
    periodic-box extension (wrap-around team neighborhoods; the paper's
    box is reflective/non-periodic).
    """
    require(rcut > 0, f"rcut must be positive, got {rcut}")
    require(rcut <= box_length, f"rcut={rcut} cannot exceed the box {box_length}")
    grid = ReplicatedGrid(p=p, c=c)
    if geometry is not None:
        require(geometry.nteams == grid.nteams,
                f"geometry has {geometry.nteams} teams, need {grid.nteams}")
        require(abs(geometry.box_length - box_length) < 1e-12,
                "geometry box must match box_length")
        m = geometry.spanned_cells(rcut)
        schedule = cutoff_schedule(geometry.team_dims, m, c)
        return CAConfig(grid=grid, schedule=schedule, rcut=rcut,
                        geometry=geometry)
    if team_dims is None:
        team_dims = balanced_dims(grid.nteams, dim)
    else:
        team_dims = tuple(team_dims)
        prod = 1
        for d in team_dims:
            prod *= d
        require(prod == grid.nteams,
                f"team_dims {team_dims} must multiply to {grid.nteams}")
        require(len(team_dims) == dim, "team_dims must have one entry per dim")
    geometry = TeamGeometry(box_length=box_length, team_dims=team_dims,
                            periodic=periodic)
    m = geometry.spanned_cells(rcut)
    schedule = cutoff_schedule(team_dims, m, c)
    return CAConfig(grid=grid, schedule=schedule, rcut=rcut, geometry=geometry)


@register_algorithm(
    "cutoff",
    fault_mode="kills",
    needs_rcut=True,
    summary="Algorithm 2: CA cutoff interactions on a spatial team grid",
)
def _prepare_cutoff(spec: RunSpec) -> Prepared:
    particles = spec.workload()
    dim = particles.dim if spec.dim is None else spec.dim
    require(dim <= particles.dim,
            f"team-grid dim={dim} exceeds particle dimension {particles.dim} "
            "(slab/pencil decompositions use dim < particle dimension)")
    cfg = cutoff_config(
        spec.machine.nranks, spec.c, rcut=spec.rcut,
        box_length=spec.box_length, dim=dim, team_dims=spec.team_dims,
        periodic=spec.periodic, geometry=spec.geometry,
    )
    kernel = kernel_for(
        spec.law, rcut=spec.rcut,
        box=spec.box_length if spec.periodic else None,
        pair_counter=spec.pair_counter, scratch=spec.scratch,
        metrics=spec.metrics,
    )
    blocks = team_blocks_spatial(particles, cfg.geometry)

    def collect(run: RunResult):
        return collect_leader_forces(run.results, cfg.grid,
                                     dead=frozenset(run.deaths))

    return Prepared(
        program=ca_program(cfg, kernel, blocks,
                           resilient=spec.faults is not None),
        collect=collect,
    )


@register_algorithm(
    "cutoff_virtual",
    functional=False,
    fault_mode="kills",
    needs_rcut=True,
    summary="Modeled CA cutoff: phantom blocks, machine-model timing",
)
def _prepare_cutoff_virtual(spec: RunSpec) -> Prepared:
    dim = 1 if spec.dim is None else spec.dim
    cfg = cutoff_config(
        spec.machine.nranks, spec.c, rcut=spec.rcut,
        box_length=spec.box_length, dim=dim, team_dims=spec.team_dims,
        periodic=spec.periodic,
    )
    kernel = VirtualKernel(dim=dim)
    blocks = virtual_team_blocks(spec.count(), cfg.grid.nteams)
    return Prepared(program=ca_program(cfg, kernel, blocks,
                                       resilient=spec.faults is not None))


def run_cutoff(
    machine,
    particles: ParticleSet,
    c: int,
    *,
    rcut: float,
    box_length: float,
    dim: int | None = None,
    team_dims: tuple[int, ...] | None = None,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    periodic: bool = False,
    geometry: TeamGeometry | None = None,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """Compute cutoff-limited forces functionally on ``machine``.

    The force law's cutoff is forced to ``rcut`` (pairs beyond it
    contribute exactly zero).  Particles are spatially binned to team
    leaders; forces come back ordered by particle id.  With a
    :class:`~repro.simmpi.faults.FaultSchedule` the resilient step runs and
    deaths are absorbed via replication-aware recovery (``c >= 2``).
    ``scratch`` / ``engine_opts`` mirror :func:`run_allpairs`.

    Shim over the registry pipeline (algorithm ``"cutoff"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="cutoff", particles=particles, c=c,
        rcut=rcut, box_length=box_length, dim=dim, team_dims=team_dims,
        law=law, pair_counter=pair_counter, eager_threshold=eager_threshold,
        periodic=periodic, geometry=geometry, faults=faults,
        scratch=scratch, engine_opts=engine_opts,
    ))


def run_cutoff_virtual(
    machine,
    n: int,
    c: int,
    *,
    rcut: float,
    box_length: float,
    dim: int = 1,
    team_dims: tuple[int, ...] | None = None,
    eager_threshold: int = 0,
    periodic: bool = False,
    faults: FaultSchedule | None = None,
    engine_opts: dict | None = None,
) -> RunResult:
    """Modeled cutoff step: phantom uniform particle blocks, real
    communication structure, machine-model timing.

    Shim over the registry pipeline (algorithm ``"cutoff_virtual"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="cutoff_virtual", n=n, c=c, rcut=rcut,
        box_length=box_length, dim=dim, team_dims=team_dims,
        eager_threshold=eager_threshold, periodic=periodic, faults=faults,
        engine_opts=engine_opts,
    )).run

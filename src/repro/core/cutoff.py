"""Algorithm 2 and its multi-dimensional generalization: CA interactions
with a finite cutoff radius.

Teams own spatial regions of the box (1-D slabs, 2-D tiles, ...); the shift
schedule walks the cutoff window (all team offsets within ``m`` cells per
axis, Equation 6) instead of the full ring, and block pairs whose regions
cannot contain interacting particles are pruned — including pairs that the
window's ring arithmetic wraps across the (reflective, non-periodic) box
boundary.  That pruning is what creates the boundary load imbalance the
paper reports for its cutoff experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ca_step import (
    CAConfig,
    ca_interaction_step,
    ca_interaction_step_resilient,
    check_fault_replication as _check_fault_replication,
)
from repro.core.decomposition import (
    collect_leader_forces,
    team_blocks_spatial,
    virtual_team_blocks,
)
from repro.core.window import cutoff_schedule
from repro.machines.torus import balanced_dims
from repro.physics.domain import TeamGeometry
from repro.physics.forces import ForceLaw
from repro.physics.kernels import RealKernel, VirtualKernel
from repro.physics.particles import ParticleSet
from repro.simmpi.engine import Engine, RunResult
from repro.simmpi.faults import FaultSchedule
from repro.simmpi.topology import ReplicatedGrid
from repro.util import require

__all__ = ["CutoffRun", "cutoff_config", "run_cutoff", "run_cutoff_virtual"]


def cutoff_config(
    p: int,
    c: int,
    *,
    rcut: float,
    box_length: float,
    dim: int = 1,
    team_dims: tuple[int, ...] | None = None,
    periodic: bool = False,
    geometry: TeamGeometry | None = None,
) -> CAConfig:
    """CA cutoff configuration: ``p`` processors, replication ``c``,
    cutoff ``rcut`` in a ``[0, box_length]^dim`` box.

    ``team_dims`` overrides the team-grid shape (default: near-square
    factorization of ``p/c`` into ``dim`` factors).  The per-axis window
    span ``m`` follows the paper's Equation 6 (``m = ceil(rcut /
    cell_width)`` cells per axis).  ``periodic=True`` selects the
    periodic-box extension (wrap-around team neighborhoods; the paper's
    box is reflective/non-periodic).
    """
    require(rcut > 0, f"rcut must be positive, got {rcut}")
    require(rcut <= box_length, f"rcut={rcut} cannot exceed the box {box_length}")
    grid = ReplicatedGrid(p=p, c=c)
    if geometry is not None:
        require(geometry.nteams == grid.nteams,
                f"geometry has {geometry.nteams} teams, need {grid.nteams}")
        require(abs(geometry.box_length - box_length) < 1e-12,
                "geometry box must match box_length")
        m = geometry.spanned_cells(rcut)
        schedule = cutoff_schedule(geometry.team_dims, m, c)
        return CAConfig(grid=grid, schedule=schedule, rcut=rcut,
                        geometry=geometry)
    if team_dims is None:
        team_dims = balanced_dims(grid.nteams, dim)
    else:
        team_dims = tuple(team_dims)
        prod = 1
        for d in team_dims:
            prod *= d
        require(prod == grid.nteams,
                f"team_dims {team_dims} must multiply to {grid.nteams}")
        require(len(team_dims) == dim, "team_dims must have one entry per dim")
    geometry = TeamGeometry(box_length=box_length, team_dims=team_dims,
                            periodic=periodic)
    m = geometry.spanned_cells(rcut)
    schedule = cutoff_schedule(team_dims, m, c)
    return CAConfig(grid=grid, schedule=schedule, rcut=rcut, geometry=geometry)


@dataclass
class CutoffRun:
    """Outcome of a functional cutoff step."""

    ids: np.ndarray
    forces: np.ndarray
    run: RunResult

    @property
    def report(self):
        return self.run.report


def run_cutoff(
    machine,
    particles: ParticleSet,
    c: int,
    *,
    rcut: float,
    box_length: float,
    dim: int | None = None,
    team_dims: tuple[int, ...] | None = None,
    law: ForceLaw | None = None,
    pair_counter: np.ndarray | None = None,
    eager_threshold: int = 0,
    periodic: bool = False,
    geometry: TeamGeometry | None = None,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> CutoffRun:
    """Compute cutoff-limited forces functionally on ``machine``.

    The force law's cutoff is forced to ``rcut`` (pairs beyond it
    contribute exactly zero).  Particles are spatially binned to team
    leaders; forces come back ordered by particle id.  With a
    :class:`~repro.simmpi.faults.FaultSchedule` the resilient step runs and
    deaths are absorbed via replication-aware recovery (``c >= 2``).
    ``scratch`` / ``engine_opts`` mirror :func:`run_allpairs`.
    """
    if dim is None:
        dim = particles.dim
    require(dim <= particles.dim,
            f"team-grid dim={dim} exceeds particle dimension {particles.dim} "
            "(slab/pencil decompositions use dim < particle dimension)")
    cfg = cutoff_config(
        machine.nranks, c, rcut=rcut, box_length=box_length, dim=dim,
        team_dims=team_dims, periodic=periodic, geometry=geometry,
    )
    _check_fault_replication(faults, c)
    base_law = law or ForceLaw()
    run_law = base_law.with_rcut(rcut)
    if periodic:
        run_law = run_law.with_box(box_length)
    kernel = RealKernel(law=run_law, pair_counter=pair_counter,
                        scratch=scratch)
    blocks = team_blocks_spatial(particles, cfg.geometry)

    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        leader_block = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        if faults is None:
            result = yield from ca_interaction_step(comm, cfg, kernel,
                                                    leader_block)
        else:
            result, _ = yield from ca_interaction_step_resilient(
                comm, cfg, kernel, leader_block
            )
        return result

    run = Engine(machine, eager_threshold=eager_threshold, faults=faults,
                 **(engine_opts or {})).run(program)
    ids, forces = collect_leader_forces(run.results, cfg.grid,
                                        dead=frozenset(run.deaths))
    return CutoffRun(ids=ids, forces=forces, run=run)


def run_cutoff_virtual(
    machine,
    n: int,
    c: int,
    *,
    rcut: float,
    box_length: float,
    dim: int = 1,
    team_dims: tuple[int, ...] | None = None,
    eager_threshold: int = 0,
    periodic: bool = False,
    faults: FaultSchedule | None = None,
) -> RunResult:
    """Modeled cutoff step: phantom uniform particle blocks, real
    communication structure, machine-model timing."""
    cfg = cutoff_config(
        machine.nranks, c, rcut=rcut, box_length=box_length, dim=dim,
        team_dims=team_dims, periodic=periodic,
    )
    _check_fault_replication(faults, c)
    kernel = VirtualKernel(dim=dim)
    blocks = virtual_team_blocks(n, cfg.grid.nteams)

    def program(comm):
        col = cfg.grid.col_of(comm.rank)
        leader_block = blocks[col] if cfg.grid.row_of(comm.rank) == 0 else None
        if faults is None:
            result = yield from ca_interaction_step(comm, cfg, kernel,
                                                    leader_block)
        else:
            result, _ = yield from ca_interaction_step_resilient(
                comm, cfg, kernel, leader_block
            )
        return result

    return Engine(machine, eager_threshold=eager_threshold, faults=faults).run(program)

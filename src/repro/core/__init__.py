"""The paper's contribution: communication-avoiding N-body algorithms.

* :mod:`repro.core.window` — the shift schedules behind Algorithms 1 and 2;
* :mod:`repro.core.ca_step` — the unified CA interaction step;
* :mod:`repro.core.runner` — the algorithm registry and the single run
  pipeline every entry point executes through;
* :mod:`repro.core.allpairs` / :mod:`repro.core.cutoff` — user-facing
  entry points (functional and modeled);
* :mod:`repro.core.baselines` — particle/force/spatial decompositions;
* :mod:`repro.core.midpoint` — the neutral-territory midpoint baseline;
* :mod:`repro.core.driver` — multi-timestep simulations with spatial
  re-assignment;
* :mod:`repro.core.tuning` — runtime autotuner for the replication factor.
"""

from repro.core.allpairs import (
    AllPairsRun,
    allpairs_config,
    run_allpairs,
    run_allpairs_virtual,
)
from repro.core.runner import (
    Algorithm,
    Prepared,
    Run,
    RunSpec,
    fault_compat,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    run,
)
from repro.core.checkpoint import CheckpointPolicy, simulation_fingerprint
from repro.core.baselines import (
    BaselineRun,
    run_force_decomposition,
    run_particle_allgather,
    run_particle_ring,
    run_spatial,
)
from repro.core.ca_step import CAConfig, CAStepResult, ca_interaction_step
from repro.core.commsched import (
    CommSchedule,
    default_hyper_k,
    half_systolic_rounds,
    hyper_strides,
    hyper_systolic_rounds,
    rounds_for_schedule,
    scheduled_step,
    systolic_ring_rounds,
)
from repro.core.cutoff import (
    CutoffRun,
    cutoff_config,
    run_cutoff,
    run_cutoff_virtual,
)
from repro.core.decomposition import (
    collect_leader_forces,
    distribute_from_root,
    gather_to_root,
    team_blocks_even,
    team_blocks_spatial,
    virtual_team_blocks,
)
from repro.core.midpoint import run_midpoint
from repro.core.driver import (
    SimulationConfig,
    SimulationRun,
    run_simulation,
    run_simulation_virtual,
)
from repro.core.symmetric import (
    SymmetricRun,
    ca_symmetric_step,
    run_symmetric,
    run_symmetric_virtual,
    symmetric_config,
)
from repro.core.systolic import (
    run_half_systolic,
    run_hyper_systolic,
    run_systolic_ring,
)
from repro.core.tuning import TuningResult, autotune_c, candidate_cs
from repro.core.window import (
    ShiftSchedule,
    all_pairs_schedule,
    cutoff_schedule,
    half_ring_schedule,
)

__all__ = [
    "Algorithm",
    "AllPairsRun",
    "BaselineRun",
    "CAConfig",
    "CAStepResult",
    "CheckpointPolicy",
    "CommSchedule",
    "CutoffRun",
    "Prepared",
    "Run",
    "RunSpec",
    "ShiftSchedule",
    "SimulationConfig",
    "SimulationRun",
    "all_pairs_schedule",
    "allpairs_config",
    "autotune_c",
    "ca_interaction_step",
    "candidate_cs",
    "collect_leader_forces",
    "distribute_from_root",
    "gather_to_root",
    "cutoff_config",
    "cutoff_schedule",
    "default_hyper_k",
    "fault_compat",
    "get_algorithm",
    "list_algorithms",
    "register_algorithm",
    "run",
    "run_allpairs",
    "run_allpairs_virtual",
    "run_cutoff",
    "run_cutoff_virtual",
    "run_force_decomposition",
    "run_half_systolic",
    "run_hyper_systolic",
    "run_particle_allgather",
    "run_midpoint",
    "run_particle_ring",
    "run_simulation",
    "run_simulation_virtual",
    "run_spatial",
    "run_symmetric",
    "run_symmetric_virtual",
    "run_systolic_ring",
    "simulation_fingerprint",
    "SymmetricRun",
    "ca_symmetric_step",
    "half_ring_schedule",
    "half_systolic_rounds",
    "hyper_strides",
    "hyper_systolic_rounds",
    "rounds_for_schedule",
    "scheduled_step",
    "symmetric_config",
    "systolic_ring_rounds",
    "team_blocks_even",
    "team_blocks_spatial",
    "virtual_team_blocks",
]

"""The communication-avoiding interaction step (Algorithms 1 and 2).

One generator program, :func:`ca_interaction_step`, implements both of the
paper's algorithms; they differ only in the :class:`~repro.core.window.
ShiftSchedule` (full ring vs cutoff window) and in whether a cutoff
reachability test prunes physically-impossible block pairs.

Per the paper's pseudocode, a step is:

1. **broadcast** — the team leader broadcasts its block ``S_t`` to the
   ``c`` team members (phase ``bcast``);
2. **skew** — each row-``k`` processor shifts its exchange buffer by ``k``
   along the row (charged to phase ``shift``);
3. **shift loop** — ``w/c`` iterations of: shift the exchange buffer by
   ``c`` (phase ``shift``), then accumulate the visiting block's effect on
   the home block (phase ``compute``);
4. **reduce** — sum-reduce the per-row partial forces within the team down
   to the leader (phase ``reduce``).

The program asserts the structural invariant that the block arriving at
each update is exactly the one the schedule predicts, and counts scanned
pairs so the machine model can charge computation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.window import ShiftSchedule
from repro.physics.domain import TeamGeometry
from repro.simmpi.topology import ReplicatedGrid

__all__ = ["CAConfig", "CAStepResult", "ca_interaction_step"]

#: User tag for exchange-buffer traffic.
SHIFT_TAG = 7


@dataclass(frozen=True)
class CAConfig:
    """Static configuration of a CA N-body run.

    Attributes
    ----------
    grid:
        The ``c x (p/c)`` replicated processor grid.
    schedule:
        Shift schedule (all-pairs ring or cutoff window).
    rcut:
        Cutoff radius; ``None`` for all-pairs interactions.
    geometry:
        Spatial team decomposition; required when ``rcut`` is set (the
        reachability pruning needs team regions).
    """

    grid: ReplicatedGrid
    schedule: ShiftSchedule
    rcut: float | None = None
    geometry: TeamGeometry | None = None

    def __post_init__(self):
        if self.grid.nteams != self.schedule.nteams:
            raise ValueError(
                f"grid has {self.grid.nteams} teams but schedule covers "
                f"{self.schedule.nteams}"
            )
        if self.grid.c != self.schedule.c:
            raise ValueError(
                f"grid c={self.grid.c} but schedule c={self.schedule.c}"
            )
        if self.rcut is not None and self.geometry is None:
            raise ValueError("cutoff runs need a TeamGeometry for reachability")
        if self.geometry is not None and self.geometry.nteams != self.grid.nteams:
            raise ValueError(
                f"geometry has {self.geometry.nteams} teams, grid has "
                f"{self.grid.nteams}"
            )

    def reachable(self, col: int, visitor_team: int) -> bool:
        """Can blocks of teams ``col`` and ``visitor_team`` interact?"""
        if self.rcut is None:
            return True
        return self.geometry.team_distance_ok(col, visitor_team, self.rcut)


@dataclass
class CAStepResult:
    """Per-rank outcome of one interaction step."""

    row: int
    col: int
    #: Candidate pairs this rank scanned (compute cost it was charged).
    npairs: int
    #: Number of update steps actually executed (not skipped).
    updates: int
    #: The home block with final reduced forces — team leaders only.
    home: Any = None
    #: Peak particle-buffer bytes this rank held (home + exchange buffer)
    #: — the algorithm's memory footprint, Equation 4's M = O(c n / p).
    memory_bytes: int = 0


def _shift(comm, grid: ReplicatedGrid, sched: ShiftSchedule, row: int,
           col: int, travel, move: tuple[int, ...]):
    """Uniform exchange-buffer move by ``move`` columns within the row."""
    if not any(move):
        return travel
    dest_col = sched.displace(col, move)
    src_col = sched.displace(col, tuple(-x for x in move))
    dest = grid.rank_at(row, dest_col)
    src = grid.rank_at(row, src_col)
    received = yield from comm.sendrecv(dest, travel, src, SHIFT_TAG)
    return received


def ca_interaction_step(comm, cfg: CAConfig, kernel, leader_block):
    """One CA interaction step; generator program for the simulated MPI.

    Parameters
    ----------
    comm:
        World communicator (``comm.size`` must equal ``cfg.grid.p``).
    cfg:
        Algorithm configuration.
    kernel:
        Interaction kernel (:class:`~repro.physics.kernels.RealKernel` or
        :class:`~repro.physics.kernels.VirtualKernel`).
    leader_block:
        On team leaders (row 0): this team's particle block
        (:class:`~repro.physics.particles.ParticleSet` or
        :class:`~repro.physics.particles.VirtualBlock`).  Ignored elsewhere.

    Returns
    -------
    CAStepResult
        Leaders carry the home block with the reduced forces installed.
    """
    grid = cfg.grid
    sched = cfg.schedule
    if comm.size != grid.p:
        raise ValueError(f"program needs {grid.p} ranks, engine has {comm.size}")
    row = grid.row_of(comm.rank)
    col = grid.col_of(comm.rank)
    team = grid.team_comm(comm)
    machine = comm.engine.machine

    # 1. Broadcast S_t from the team leader (team rank 0 == row 0).
    with comm.phase("bcast"):
        block = yield from team.bcast(leader_block if row == 0 else None, root=0)
    home = kernel.home_of(block)

    # 2. Copy to the exchange buffer and skew row-wise.
    travel = kernel.travel_of(home, col)
    memory_bytes = home.wire_nbytes + travel.wire_nbytes
    with comm.phase("shift"):
        travel = yield from _shift(comm, grid, sched, row, col, travel,
                                   sched.skew_move(row))

    # 3. Shift-and-update loop.
    npairs_total = 0
    updates = 0
    for i in range(sched.steps):
        with comm.phase("shift"):
            travel = yield from _shift(comm, grid, sched, row, col, travel,
                                       sched.step_move(row, i))
        memory_bytes = max(memory_bytes,
                           home.wire_nbytes + travel.wire_nbytes)
        u = sched.update_position(row, i)
        expected = sched.visitor_of(col, u)
        if travel.team != expected:
            raise AssertionError(
                f"rank {comm.rank} (row {row}, col {col}) step {i}: schedule "
                f"predicts visitor {expected}, buffer belongs to {travel.team}"
            )
        if sched.skip[u] or not cfg.reachable(col, travel.team):
            continue
        with comm.phase("compute"):
            npairs = kernel.interact(home, travel)
            npairs_total += npairs
            updates += 1
            yield from comm.compute(machine.interactions_time(npairs))

    # 4. Sum-reduce partial forces within the team, down to the leader.
    with comm.phase("reduce"):
        reduced = yield from team.reduce(
            kernel.forces_payload(home), kernel.reduce_op, root=0
        )
    if row == 0:
        kernel.install_forces(home, reduced)

    return CAStepResult(
        row=row,
        col=col,
        npairs=npairs_total,
        updates=updates,
        home=home if row == 0 else None,
        memory_bytes=memory_bytes,
    )

"""The communication-avoiding interaction step (Algorithms 1 and 2).

One generator program, :func:`ca_interaction_step`, implements both of the
paper's algorithms; they differ only in the :class:`~repro.core.window.
ShiftSchedule` (full ring vs cutoff window) and in whether a cutoff
reachability test prunes physically-impossible block pairs.

Per the paper's pseudocode, a step is:

1. **broadcast** — the team leader broadcasts its block ``S_t`` to the
   ``c`` team members (phase ``bcast``);
2. **skew** — each row-``k`` processor shifts its exchange buffer by ``k``
   along the row (charged to phase ``shift``);
3. **shift loop** — ``w/c`` iterations of: shift the exchange buffer by
   ``c`` (phase ``shift``), then accumulate the visiting block's effect on
   the home block (phase ``compute``);
4. **reduce** — sum-reduce the per-row partial forces within the team down
   to the leader (phase ``reduce``).

The program asserts the structural invariant that the block arriving at
each update is exactly the one the schedule predicts, and counts scanned
pairs so the machine model can charge computation time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commsched import (
    StepResult,
    rounds_for_schedule,
    scheduled_step,
)
from repro.core.window import ShiftSchedule
from repro.physics.domain import TeamGeometry
from repro.simmpi.collectives import binomial_fold
from repro.simmpi.errors import RecoveredRankEvent, SimMPIError
from repro.simmpi.faults import Tombstone
from repro.simmpi.topology import ReplicatedGrid
from repro.simmpi.tracing import RECOVER_PHASE

__all__ = ["CAConfig", "CAStepResult", "acting_leader_of",
           "ca_interaction_step", "ca_interaction_step_resilient",
           "ca_program", "check_fault_replication"]

#: User tag for exchange-buffer traffic.
SHIFT_TAG = 7

#: User tags for the recovery round (hole-map circulation, block re-fetch,
#: degraded in-team reduction).
RECOVER_SYNC_TAG = 11
RECOVER_FETCH_TAG = 12
RECOVER_REDUCE_TAG = 13


@dataclass(frozen=True)
class CAConfig:
    """Static configuration of a CA N-body run.

    Attributes
    ----------
    grid:
        The ``c x (p/c)`` replicated processor grid.
    schedule:
        Shift schedule (all-pairs ring or cutoff window).
    rcut:
        Cutoff radius; ``None`` for all-pairs interactions.
    geometry:
        Spatial team decomposition; required when ``rcut`` is set (the
        reachability pruning needs team regions).
    """

    grid: ReplicatedGrid
    schedule: ShiftSchedule
    rcut: float | None = None
    geometry: TeamGeometry | None = None

    def __post_init__(self):
        if self.grid.nteams != self.schedule.nteams:
            raise ValueError(
                f"grid has {self.grid.nteams} teams but schedule covers "
                f"{self.schedule.nteams}"
            )
        if self.grid.c != self.schedule.c:
            raise ValueError(
                f"grid c={self.grid.c} but schedule c={self.schedule.c}"
            )
        if self.rcut is not None and self.geometry is None:
            raise ValueError("cutoff runs need a TeamGeometry for reachability")
        if self.geometry is not None and self.geometry.nteams != self.grid.nteams:
            raise ValueError(
                f"geometry has {self.geometry.nteams} teams, grid has "
                f"{self.grid.nteams}"
            )

    def reachable(self, col: int, visitor_team: int) -> bool:
        """Can blocks of teams ``col`` and ``visitor_team`` interact?"""
        if self.rcut is None:
            return True
        return self.geometry.team_distance_ok(col, visitor_team, self.rcut)


#: Per-rank outcome of one interaction step — the shared scheduled-step
#: result (:class:`repro.core.commsched.StepResult`) under its historic
#: name.  ``memory_bytes`` is the algorithm's peak buffer residency,
#: Equation 4's M = O(c n / p); the resilient step below fills
#: ``recovered`` on replacement ranks.
CAStepResult = StepResult


def _shift(comm, grid: ReplicatedGrid, sched: ShiftSchedule, row: int,
           col: int, travel, move: tuple[int, ...]):
    """Uniform exchange-buffer move by ``move`` columns within the row."""
    if not any(move):
        return travel
    dest_col = sched.displace(col, move)
    src_col = sched.displace(col, tuple(-x for x in move))
    dest = grid.rank_at(row, dest_col)
    src = grid.rank_at(row, src_col)
    received = yield from comm.sendrecv(dest, travel, src, SHIFT_TAG)
    return received


def ca_interaction_step(comm, cfg: CAConfig, kernel, leader_block):
    """One CA interaction step; generator program for the simulated MPI.

    Parameters
    ----------
    comm:
        World communicator (``comm.size`` must equal ``cfg.grid.p``).
    cfg:
        Algorithm configuration.
    kernel:
        Interaction kernel (:class:`~repro.physics.kernels.RealKernel` or
        :class:`~repro.physics.kernels.VirtualKernel`).
    leader_block:
        On team leaders (row 0): this team's particle block
        (:class:`~repro.physics.particles.ParticleSet` or
        :class:`~repro.physics.particles.VirtualBlock`).  Ignored elsewhere.

    Returns
    -------
    CAStepResult
        Leaders carry the home block with the reduced forces installed.

    The schedule is lowered once (cached) into the shared communication-
    schedule IR — :func:`repro.core.commsched.rounds_for_schedule` — and
    executed by the generic :func:`repro.core.commsched.scheduled_step`;
    cutoff reachability stays a runtime gate supplied by ``cfg``.
    """
    cs = rounds_for_schedule(cfg.schedule)
    result = yield from scheduled_step(comm, cfg.grid, cs, kernel,
                                       leader_block,
                                       reachable=cfg.reachable)
    return result


def ca_program(cfg: CAConfig, kernel, blocks, *, resilient: bool = False):
    """Rank-program factory for one CA step over pre-distributed blocks.

    ``blocks[col]`` is team ``col``'s leader block (a
    :class:`~repro.physics.particles.ParticleSet` or
    :class:`~repro.physics.particles.VirtualBlock`); every non-leader rank
    starts empty and receives its copy in the broadcast phase.
    ``resilient=True`` selects the fault-tolerant step variant
    (:func:`ca_interaction_step_resilient`), which absorbs rank deaths via
    replication-aware recovery.

    The all-pairs, cutoff and virtual runners all execute exactly this
    program — only their configurations and block distributions differ.
    """
    grid = cfg.grid

    def program(comm):
        col = grid.col_of(comm.rank)
        leader_block = blocks[col] if grid.row_of(comm.rank) == 0 else None
        if resilient:
            result, _ = yield from ca_interaction_step_resilient(
                comm, cfg, kernel, leader_block
            )
        else:
            result = yield from ca_interaction_step(comm, cfg, kernel,
                                                    leader_block)
        return result

    return program


# ---------------------------------------------------------------------------
# Replication-aware recovery (the fault-tolerant step variant).
# ---------------------------------------------------------------------------


def check_fault_replication(faults, c: int, grid: ReplicatedGrid | None = None) -> None:
    """Reject rank-kill schedules that replication cannot absorb.

    Recovery sources every lost block and every lost partial sum from a
    surviving team member, so a schedule containing kills needs ``c >= 2``
    (at ``c = 1`` each block has exactly one copy and a death is
    unrecoverable data loss).  With the ``grid`` the check is sharper: the
    kills are mapped onto teams upfront, and a schedule that would wipe out
    *every* member of some team is refused before the run starts instead of
    failing mid-recovery.
    """
    if faults is None or not faults.has_kills:
        return
    if c < 2:
        raise ValueError(
            "fault schedules that kill ranks need replication c >= 2; "
            f"c={c} leaves no surviving copy of a dead rank's block"
        )
    if grid is not None:
        victims_per_team: dict[int, list[int]] = {}
        for rank in faults.killed_ranks:
            if 0 <= rank < grid.p:
                victims_per_team.setdefault(grid.col_of(rank), []).append(rank)
        for col, victims in sorted(victims_per_team.items()):
            if len(victims) >= grid.c:
                raise ValueError(
                    f"fault schedule kills every member of team {col} "
                    f"(ranks {victims}); replication c={grid.c} cannot "
                    "recover a team with no survivors"
                )


def acting_leader_of(grid: ReplicatedGrid, col: int, dead) -> int:
    """World rank of team ``col``'s acting leader: its lowest surviving row.

    With no deaths this is :meth:`~repro.simmpi.topology.ReplicatedGrid.
    leader_of`; when the leader died, leadership falls to the next
    replication layer — possible precisely because the broadcast left every
    surviving teammate a full copy of the block.
    """
    for r in range(grid.c):
        rank = grid.rank_at(r, col)
        if rank not in dead:
            return rank
    raise ValueError(f"team {col} lost all {grid.c} members; unrecoverable")


def _alive_team_ranks(grid: ReplicatedGrid, col: int, dead) -> list[int]:
    return [r for r in grid.team_ranks(col) if r not in dead]


def _survivor_ring_allgather(comm, alive: list[int], value):
    """Allgather ``value`` over the sorted survivor list via a plain ring.

    Collectives over the full communicator would route through dead ranks;
    this O(len(alive)) ring touches only survivors, which is acceptable for
    the (rare) recovery path.  Returns ``{world_rank: value}``.
    """
    k = len(alive)
    held = {comm.rank: value}
    if k == 1:
        return held
    idx = alive.index(comm.rank)
    nxt = alive[(idx + 1) % k]
    prv = alive[(idx - 1) % k]
    carry = (comm.rank, value)
    for _ in range(k - 1):
        carry = yield from comm.sendrecv(nxt, carry, prv, RECOVER_SYNC_TAG)
        if isinstance(carry, Tombstone):
            # A survivor died *during* recovery — after the failure-sync
            # point, so no replacement was arranged for it this step.
            raise RuntimeError(
                f"rank {carry.rank} died during recovery (inside the "
                "survivor ring), after the failure-sync point — "
                "unrecoverable this step; see docs/fault-model.md"
            )
        held[carry[0]] = carry[1]
    return held


def _replay_steps(cfg: CAConfig, row: int, col: int) -> list[int]:
    """All update steps rank ``(row, col)`` must execute (non-skip,
    reachable), in schedule order — the full workload a replacement rank
    recomputes for a dead teammate."""
    sched = cfg.schedule
    out = []
    for i in range(sched.steps):
        u = sched.update_position(row, i)
        if sched.skip[u]:
            continue
        if not cfg.reachable(col, sched.visitor_of(col, u)):
            continue
        out.append(i)
    return out


def ca_interaction_step_resilient(comm, cfg: CAConfig, kernel, leader_block,
                                  known_dead: frozenset = frozenset()):
    """One CA interaction step that survives rank deaths via replication.

    The optimistic path mirrors :func:`ca_interaction_step`; the
    differences are all on the failure path:

    * team collectives run over the *surviving* team members (the block
      broadcast roots at the acting leader — the lowest surviving row);
    * a shift ``sendrecv`` whose peer died delivers a
      :class:`~repro.simmpi.faults.Tombstone`; the affected rank records
      the missed updates (*holes*) and keeps shifting so the rest of the
      row stays in lockstep;
    * after the shift loop all survivors agree on the failure set
      (:meth:`~repro.simmpi.comm.Comm.sync_failures`), circulate their
      hole maps, re-fetch the lost visitor blocks from surviving copies
      (any teammate of the block's team holds it, by construction of the
      ``c x p/c`` grid), and **replay** the missed updates in schedule
      order — so every accumulator ends bitwise-identical to the
      fault-free run;
    * a team that lost a member reduces degraded: survivors ship their
      accumulators (plus the replacement's recomputed dead-slot
      accumulator) to the acting leader, which folds all ``c`` logical
      slots locally in the exact association order of the fault-free
      binomial reduction (:func:`~repro.simmpi.collectives.binomial_fold`).

    All recovery time and traffic is charged to the ``recover`` phase.
    Limitations: a rank that dies *before* finishing the team broadcast is
    unrecoverable (its teammates have no copy yet); deaths must leave every
    team at least one survivor.

    Parameters are those of :func:`ca_interaction_step` plus ``known_dead``
    (world ranks already dead when the step starts — multi-step drivers
    thread the set through).  Returns ``(CAStepResult, dead)`` where
    ``dead`` is the failure set agreed at the end of the step.
    """
    grid = cfg.grid
    sched = cfg.schedule
    if comm.size != grid.p:
        raise ValueError(f"program needs {grid.p} ranks, engine has {comm.size}")
    row = grid.row_of(comm.rank)
    col = grid.col_of(comm.rank)
    machine = comm.engine.machine
    team_alive = comm.sub(_alive_team_ranks(grid, col, known_dead))

    # 1. Broadcast from the acting leader (lowest surviving row).
    with comm.phase("bcast"):
        block = yield from team_alive.bcast(leader_block, root=0)
    if isinstance(block, Tombstone):
        raise SimMPIError(
            f"team {col}'s block lost: rank {block.rank} died during the "
            f"team broadcast, before replication completed"
        )
    home = kernel.home_of(block)

    # 2. Skew.  A tombstone here costs the whole shift sequence (recorded
    # as holes below); keep moving so the row stays uniform.
    travel = kernel.travel_of(home, col)
    memory_bytes = home.wire_nbytes + travel.wire_nbytes
    with comm.phase("shift"):
        travel = yield from _shift(comm, grid, sched, row, col, travel,
                                   sched.skew_move(row))

    # 3. Shift-and-update loop; missed updates become holes.
    npairs_total = 0
    updates = 0
    holes: list[int] = []
    for i in range(sched.steps):
        with comm.phase("shift"):
            travel = yield from _shift(comm, grid, sched, row, col, travel,
                                       sched.step_move(row, i))
        u = sched.update_position(row, i)
        expected = sched.visitor_of(col, u)
        if isinstance(travel, Tombstone):
            if not sched.skip[u] and cfg.reachable(col, expected):
                holes.append(i)
            continue
        memory_bytes = max(memory_bytes,
                           home.wire_nbytes + travel.wire_nbytes)
        if travel.team != expected:
            raise AssertionError(
                f"rank {comm.rank} (row {row}, col {col}) step {i}: schedule "
                f"predicts visitor {expected}, buffer belongs to {travel.team}"
            )
        if sched.skip[u] or not cfg.reachable(col, travel.team):
            continue
        with comm.phase("compute"):
            npairs = kernel.interact(home, travel)
            npairs_total += npairs
            updates += 1
            yield from comm.compute(machine.interactions_time(npairs))

    # 4. Agree on the failure set; recover if anything died.
    with comm.phase(RECOVER_PHASE):
        dead = yield from comm.sync_failures()
    dead = frozenset(dead)
    recovered: tuple = ()

    if dead:
        (npairs_rec, updates_rec, dead_payloads, recovered
         ) = yield from _recover(comm, cfg, kernel, home, col, dead, holes)
        npairs_total += npairs_rec
        updates += updates_rec
    else:
        dead_payloads = {}

    # 5. In-team reduction: degraded for teams that lost a member.
    alive_team = _alive_team_ranks(grid, col, dead)
    acting = alive_team[0]
    if any(grid.col_of(d) == col for d in dead):
        reduced = yield from _degraded_reduce(
            comm, grid, kernel, home, col, dead, dead_payloads, alive_team
        )
    else:
        team_now = comm.sub(alive_team)
        with comm.phase("reduce"):
            reduced = yield from team_now.reduce(
                kernel.forces_payload(home),
                _tombstone_guard(kernel.reduce_op, col, "in-team reduce"),
                root=0,
            )
    i_am_acting = comm.rank == acting
    if i_am_acting:
        kernel.install_forces(home, reduced)

    result = CAStepResult(
        row=row,
        col=col,
        npairs=npairs_total,
        updates=updates,
        home=home if i_am_acting else None,
        memory_bytes=memory_bytes,
        recovered=recovered,
    )
    return result, dead


#: Job mode: rebuild the executor's own accumulator slot from scratch.
_REBUILD = object()


def _recover(comm, cfg: CAConfig, kernel, home, col: int, dead: frozenset,
             holes: list[int]):
    """The collective recovery round (all survivors participate).

    Circulates hole maps, computes the deterministic damage plan, re-fetches
    lost visitor blocks from surviving replicas, and replays missed updates
    in schedule order.  Returns ``(npairs, updates, dead_payloads,
    recovered_events)`` where ``dead_payloads`` maps a dead teammate's row
    to its recomputed force payload (non-empty only on replacement ranks).
    """
    grid = cfg.grid
    sched = cfg.schedule
    machine = comm.engine.machine
    alive = [r for r in range(comm.size) if r not in dead]

    with comm.phase(RECOVER_PHASE):
        hole_map = yield from _survivor_ring_allgather(
            comm, alive, tuple(holes)
        )

    # Damage plan — a pure function of (dead, hole_map, cfg), so every
    # survivor derives the identical transfer and replay lists.
    # Jobs: (executor, target_row, target_col, steps, mode) where mode is
    # None (append missed updates to the live accumulator), _REBUILD
    # (recompute the executor's own slot from scratch) or a dead rank id
    # (recompute that rank's lost slot).
    jobs = []
    for rank in alive:
        rank_holes = hole_map.get(rank, ())
        if rank_holes:
            trow, tcol = grid.row_of(rank), grid.col_of(rank)
            full = _replay_steps(cfg, trow, tcol)
            suffix = [i for i in full if i >= min(rank_holes)]
            if tuple(sorted(rank_holes)) == tuple(suffix):
                # The holes are a suffix of the rank's update schedule:
                # appending the missed updates reproduces the fault-free
                # accumulation order exactly.
                jobs.append((rank, trow, tcol, tuple(sorted(rank_holes)),
                             None))
            else:
                # The tombstone bubble interleaved with live buffers, so
                # some updates landed *after* a hole.  Appending would
                # permute the float summation; rebuild the whole slot in
                # schedule order instead.
                jobs.append((rank, trow, tcol, tuple(full), _REBUILD))
    for d in sorted(dead):
        jd = grid.col_of(d)
        replacement = acting_leader_of(grid, jd, dead)
        jobs.append((replacement, grid.row_of(d), jd,
                     tuple(_replay_steps(cfg, grid.row_of(d), jd)), d))

    transfers = set()
    for executor, trow, tcol, steps, _d in jobs:
        for i in steps:
            team = sched.visitor_of(tcol, sched.update_position(trow, i))
            if team != tcol:
                provider = acting_leader_of(grid, team, dead)
                transfers.add((executor, provider, team))

    # Block re-fetch: requester/provider pairs in one deterministic order.
    fetched = {}
    reqs = []
    recv_teams = []
    with comm.phase(RECOVER_PHASE):
        for requester, provider, team in sorted(transfers):
            if provider == comm.rank:
                payload = kernel.travel_of(home, team)
                sreq = yield from comm.isend(requester, payload,
                                             RECOVER_FETCH_TAG)
                reqs.append(sreq)
            elif requester == comm.rank:
                rreq = yield from comm.irecv(provider, RECOVER_FETCH_TAG)
                reqs.append(rreq)
                recv_teams.append(team)
        if reqs:
            payloads = yield from comm.wait(*reqs)
            got = [p for q, p in zip(reqs, payloads) if q.kind == "recv"]
            fetched = dict(zip(recv_teams, got))

    # Replay missed updates, oldest first, so accumulator association
    # order matches the fault-free execution bit for bit.
    npairs_total = 0
    updates = 0
    dead_payloads = {}
    recovered = []
    for executor, trow, tcol, steps, mode in jobs:
        if executor != comm.rank:
            continue
        acc = home if mode is None else kernel.home_of(home)
        for i in steps:
            team = sched.visitor_of(tcol, sched.update_position(trow, i))
            travel = (kernel.travel_of(home, team) if team == tcol
                      else fetched[team])
            with comm.phase(RECOVER_PHASE):
                npairs = kernel.interact(acc, travel)
                npairs_total += npairs
                updates += 1
                yield from comm.compute(machine.interactions_time(npairs))
        if mode is _REBUILD:
            kernel.install_forces(home, kernel.forces_payload(acc))
        elif mode is not None:
            d = mode
            dead_payloads[grid.row_of(d)] = kernel.forces_payload(acc)
            recovered.append(RecoveredRankEvent(
                rank=d,
                death_time=comm.engine.death_time(d),
                recovered_by=comm.rank,
                replayed_updates=len(steps),
            ))
    return npairs_total, updates, dead_payloads, tuple(recovered)


def _tombstone_guard(op, col: int, where: str):
    """Wrap a reduction operator so that a :class:`Tombstone` arriving from a
    rank that died after the failure-sync point fails loudly instead of being
    fed into arithmetic."""

    def guarded(a, b):
        for operand in (a, b):
            if isinstance(operand, Tombstone):
                raise RuntimeError(
                    f"team {col}: rank {operand.rank} died during the {where},"
                    " after the failure-sync point — unrecoverable this step;"
                    " see docs/fault-model.md"
                )
        return op(a, b)

    return guarded


def _degraded_reduce(comm, grid: ReplicatedGrid, kernel, home, col: int,
                     dead: frozenset, dead_payloads: dict, alive_team: list[int]):
    """In-team reduction for a team that lost members: survivors ship their
    accumulators (and recomputed dead-slot accumulators) to the acting
    leader, which folds all ``c`` logical slots in the fault-free
    association order.  Returns the folded payload on the acting leader,
    ``None`` elsewhere."""
    acting = alive_team[0]
    my_slots = {grid.row_of(comm.rank): kernel.forces_payload(home)}
    my_slots.update(dead_payloads)
    with comm.phase(RECOVER_PHASE):
        if comm.rank != acting:
            yield from comm.send(acting, my_slots, RECOVER_REDUCE_TAG)
            return None
        slots = dict(my_slots)
        reqs = []
        for member in alive_team[1:]:
            req = yield from comm.irecv(member, RECOVER_REDUCE_TAG)
            reqs.append(req)
        if reqs:
            payloads = yield from comm.wait(*reqs)
            for part in payloads:
                if isinstance(part, Tombstone):
                    raise RuntimeError(
                        f"team {col}: rank {part.rank} died during the "
                        "degraded reduce, after the failure-sync point — "
                        "unrecoverable this step; see docs/fault-model.md"
                    )
                slots.update(part)
    missing = [r for r in range(grid.c) if r not in slots]
    if missing:
        raise AssertionError(
            f"team {col}: no accumulator for rows {missing} after recovery"
        )
    return binomial_fold([slots[r] for r in range(grid.c)], kernel.reduce_op)

"""The systolic / hyper-systolic algorithm family — registry extensions.

Three classic communication schedules from the N-body literature, built
directly on the shared communication-schedule IR
(:mod:`repro.core.commsched`) and registered as first-class algorithms:

* ``systolic_ring`` — the standard systolic loop (Dorband, Hemsendorf &
  Merritt, astro-ph/0112092): one exchange buffer circulates the full
  ring, every processor computes against each visiting block.
  ``S = p - 1`` messages, ``W ~ n (p-1)/p`` words per rank.
* ``half_systolic`` — the half-ring variant exploiting Newton's third
  law: the buffer carries a reaction accumulator, travels ``floor(p/2)``
  hops, and one return message carries the reactions home.
  ``S = floor(p/2) + 1``, half the compute.
* ``hyper_systolic`` — Lippert et al.'s hyper-systolic routing
  (hep-lat/9512020): ``K - 1 = O(sqrt(p))`` replicated registers are
  filled by a distribution cascade, every ring distance is computed
  between two *resident* registers, and a collection cascade folds the
  partial forces home.  ``S = 2 (K - 1)`` messages moving
  ``O(sqrt(p) n / p)`` words per rank — the same replication-for-
  bandwidth trade the source paper's ``c`` explores, reached with a
  different schedule.

All three run at ``c = 1`` (every rank is its own team leader — no
broadcast or reduction phases); ``hyper_systolic`` instead spends its
memory on the ``K - 1`` registers, tunable via ``RunSpec.hyper_k``.
Closed forms live in :mod:`repro.theory.costs`; the heuristic tier
replays the identical IR (:mod:`repro.simmpi.fastsim`).
"""

from __future__ import annotations

from repro.core.commsched import (
    default_hyper_k,
    half_systolic_rounds,
    hyper_systolic_rounds,
    scheduled_program,
    systolic_ring_rounds,
)
from repro.core.decomposition import collect_leader_forces, team_blocks_even
from repro.core.runner import Prepared, Run, RunSpec, register_algorithm
from repro.core.runner import run as run_pipeline
from repro.physics.forces import ForceLaw
from repro.physics.kernels import kernel_for
from repro.physics.particles import ParticleSet
from repro.simmpi.faults import FaultSchedule
from repro.simmpi.topology import ReplicatedGrid

__all__ = [
    "run_half_systolic",
    "run_hyper_systolic",
    "run_systolic_ring",
]


def _prepare(spec: RunSpec, cs) -> Prepared:
    """Shared adapter body: grid, kernel, blocks, scheduled program."""
    grid = ReplicatedGrid(p=spec.machine.nranks, c=1)
    kernel = kernel_for(spec.law, pair_counter=spec.pair_counter,
                        scratch=spec.scratch, metrics=spec.metrics)
    blocks = team_blocks_even(spec.workload(), grid.nteams)

    def collect(run):
        """Gather per-rank leader forces into id-ordered global arrays."""
        return collect_leader_forces(run.results, grid)

    return Prepared(program=scheduled_program(grid, cs, kernel, blocks),
                    collect=collect)


@register_algorithm(
    "systolic_ring",
    supports_c=False,
    summary="systolic ring: one buffer circulates all p ranks "
            "(Dorband et al.)",
)
def _prepare_systolic_ring(spec: RunSpec) -> Prepared:
    """Adapter for the full systolic ring."""
    return _prepare(spec, systolic_ring_rounds(spec.machine.nranks))


@register_algorithm(
    "half_systolic",
    supports_c=False,
    summary="half-ring systolic with Newton's-third-law reactions "
            "returned home",
)
def _prepare_half_systolic(spec: RunSpec) -> Prepared:
    """Adapter for the half-ring systolic variant."""
    return _prepare(spec, half_systolic_rounds(spec.machine.nranks))


@register_algorithm(
    "hyper_systolic",
    supports_c=False,
    summary="hyper-systolic: K=O(sqrt p) replicated registers, "
            "O(sqrt p * n/p) words (Lippert et al.)",
)
def _prepare_hyper_systolic(spec: RunSpec) -> Prepared:
    """Adapter for the hyper-systolic schedule (``spec.hyper_k`` = K)."""
    return _prepare(
        spec, hyper_systolic_rounds(spec.machine.nranks, spec.hyper_k))


def run_systolic_ring(
    machine,
    particles: ParticleSet,
    *,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """All-pairs forces via the systolic ring; functional end to end.

    ``faults`` accepts transient (delay/drop/corrupt) schedules — the
    engine's retry protocol absorbs them; rank kills are rejected (the
    ring has no replication to recover from).

    Shim over the registry pipeline (algorithm ``"systolic_ring"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="systolic_ring", particles=particles,
        law=law, pair_counter=pair_counter, eager_threshold=eager_threshold,
        faults=faults, scratch=scratch, engine_opts=engine_opts,
    ))


def run_half_systolic(
    machine,
    particles: ParticleSet,
    *,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """All-pairs forces via the half-ring systolic variant.

    Shim over the registry pipeline (algorithm ``"half_systolic"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="half_systolic", particles=particles,
        law=law, pair_counter=pair_counter, eager_threshold=eager_threshold,
        faults=faults, scratch=scratch, engine_opts=engine_opts,
    ))


def run_hyper_systolic(
    machine,
    particles: ParticleSet,
    *,
    hyper_k: int | None = None,
    law: ForceLaw | None = None,
    pair_counter=None,
    eager_threshold: int = 0,
    faults: FaultSchedule | None = None,
    scratch: bool = True,
    engine_opts: dict | None = None,
) -> Run:
    """All-pairs forces via hyper-systolic routing with K = ``hyper_k``.

    ``hyper_k=None`` picks the regular ``O(sqrt(p))`` base.

    Shim over the registry pipeline (algorithm ``"hyper_systolic"``).
    """
    return run_pipeline(RunSpec(
        machine=machine, algorithm="hyper_systolic", particles=particles,
        hyper_k=hyper_k, law=law, pair_counter=pair_counter,
        eager_threshold=eager_threshold, faults=faults, scratch=scratch,
        engine_opts=engine_opts,
    ))

"""Shift schedules: who holds which exchange buffer, when.

This module is the combinatorial heart of both CA algorithms.  It turns the
paper's prose — "shift by ``k`` along the row", "shift by ``c`` modulo the
cutoff window" — into an explicit, testable schedule.

Model
-----
Teams form a d-dimensional grid ``team_dims`` (all-pairs: a 1-D ring of all
``T = p/c`` teams).  A **window** is an ordered list of team-offset vectors
``off(0), ..., off(w-1)`` with ``off(z) = 0`` for the *zero index* ``z``.
The exchange buffer of team ``b`` sitting at *window position* ``u`` is
physically held by the column (team slot) ``b - off(u)`` (component-wise,
modulo ``team_dims``).

The CA schedule is: row ``k`` starts its buffer at position ``z`` (at its
home column), skews to position ``(z + k) mod w``, then performs
``w / c`` shift steps, each advancing the position by ``c``.  Row ``k``
therefore *updates* with window positions ``(z + k + c·(i+1)) mod w`` for
``i = 0..w/c-1`` — the residue class ``k (mod c)``, so the ``c`` rows of a
team jointly cover every window position exactly once.  Because every
buffer in a row advances identically, the physical data movement at each
step is one uniform ``sendrecv`` per processor, exactly as in the paper's
Figures 1, 4 and 5.

Padding and aliasing
--------------------
The window length must be a multiple of ``c`` for the residue classes to
tile it.  The construction pads the physical window (all offsets within the
cutoff span ``m``; the full ring for all-pairs) with extra trailing offsets
and marks as ``skip`` every position that is padding-aliased — i.e. whose
offset, wrapped into the team grid, repeats the wrapped offset of an
earlier position.  Skipped positions still shift (uniformity) but never
update, which preserves the *exactly-once* interaction guarantee for any
``c`` dividing ``p`` — a strict generalization of the paper's
``c <= 2m``, power-of-two setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product

from repro.util import require

__all__ = [
    "ShiftSchedule",
    "all_pairs_schedule",
    "cutoff_schedule",
    "half_ring_schedule",
]


@dataclass(frozen=True)
class ShiftSchedule:
    """A complete, uniform shift schedule for one CA configuration.

    Attributes
    ----------
    team_dims:
        Shape of the team grid (teams are numbered row-major over it).
    c:
        Replication factor (number of rows executing the schedule).
    offsets:
        Window offset vectors ``off(u)``; ``len(offsets) = w``.
    zero_index:
        Index ``z`` with ``off(z) == 0``.
    skip:
        ``skip[u]`` is True when position ``u`` must not update (padding or
        wrap-alias of an earlier position).
    """

    team_dims: tuple[int, ...]
    c: int
    offsets: tuple[tuple[int, ...], ...]
    zero_index: int
    skip: tuple[bool, ...]

    def __hash__(self) -> int:
        # The memoized schedule queries hash ``self`` on every lookup; the
        # dataclass-generated hash walks every offset tuple each time, so
        # cache it (all fields are frozen — the hash cannot go stale).
        h = self.__dict__.get("_hash_cache")
        if h is None:
            h = hash((self.team_dims, self.c, self.offsets,
                      self.zero_index, self.skip))
            object.__setattr__(self, "_hash_cache", h)
        return h

    # -- derived sizes ------------------------------------------------------

    @property
    def nteams(self) -> int:
        """Total team count (product of the team-grid dimensions)."""
        n = 1
        for d in self.team_dims:
            n *= d
        return n

    @property
    def window(self) -> int:
        """Window length ``w`` (a multiple of ``c``)."""
        return len(self.offsets)

    @property
    def steps(self) -> int:
        """Number of shift-update steps, ``w / c``."""
        return len(self.offsets) // self.c

    # -- team-grid arithmetic ----------------------------------------------------

    def wrap_offset(self, off: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(o % d for o, d in zip(off, self.team_dims))

    @lru_cache(maxsize=None)
    def team_multi(self, team: int) -> tuple[int, ...]:
        """Multi-index of a linear team id on the team grid (row-major)."""
        out = []
        for d in reversed(self.team_dims):
            team, r = divmod(team, d)
            out.append(r)
        return tuple(reversed(out))

    def team_linear(self, mi: tuple[int, ...]) -> int:
        """Linear team id of a multi-index, wrapping each coordinate."""
        t = 0
        for x, d in zip(mi, self.team_dims):
            t = t * d + x % d
        return t

    # Memoized: the shift loop asks for the same few thousand
    # (team, offset) displacements every step of every row.  The schedule
    # is a frozen (hashable) dataclass, so caching on it is sound.
    @lru_cache(maxsize=None)
    def displace(self, team: int, off: tuple[int, ...]) -> int:
        """Team at ``team``'s multi-index plus ``off`` (wrapped)."""
        mi = self.team_multi(team)
        return self.team_linear(tuple(a + b for a, b in zip(mi, off)))

    # -- schedule queries ---------------------------------------------------------

    def position(self, row: int, i: int) -> int:
        """Window position row ``row``'s buffer occupies after update ``i``.

        ``i = -1`` denotes the post-skew state (before any shift).
        """
        return (self.zero_index + row + self.c * (i + 1)) % self.window

    @lru_cache(maxsize=None)
    def holder_of(self, team: int, u: int) -> int:
        """Column that holds team ``team``'s buffer at window position ``u``."""
        neg = tuple(-o for o in self.offsets[u])
        return self.displace(team, neg)

    @lru_cache(maxsize=None)
    def visitor_of(self, col: int, u: int) -> int:
        """Team whose buffer column ``col`` holds at window position ``u``."""
        return self.displace(col, self.offsets[u])

    def skew_move(self, row: int) -> tuple[int, ...]:
        """Column displacement applied to a row-``row`` buffer by the skew.

        A buffer moving from position ``u`` to ``u'`` is displaced by
        ``-(off(u') - off(u))`` in column space.
        """
        u0 = self.zero_index
        u1 = (self.zero_index + row) % self.window
        return tuple(a - b for a, b in zip(self.offsets[u0], self.offsets[u1]))

    @lru_cache(maxsize=None)
    def step_move(self, row: int, i: int) -> tuple[int, ...]:
        """Column displacement of a row-``row`` buffer at shift step ``i``."""
        u0 = self.position(row, i - 1)
        u1 = self.position(row, i)
        return tuple(a - b for a, b in zip(self.offsets[u0], self.offsets[u1]))

    def update_position(self, row: int, i: int) -> int:
        """Window position used by row ``row``'s update number ``i``."""
        return self.position(row, i)

    # -- global validation (used by tests) ------------------------------------------

    def covered_positions(self, row: int) -> list[int]:
        return [self.position(row, i) for i in range(self.steps)]

    def validate(self) -> None:
        """Check the invariants the algorithms rely on."""
        w = self.window
        require(w % self.c == 0, f"window {w} must be a multiple of c={self.c}")
        require(self.offsets[self.zero_index] == (0,) * len(self.team_dims),
                "zero_index must map to the zero offset")
        seen: set[int] = set()
        for k in range(self.c):
            for u in self.covered_positions(k):
                require(u not in seen, f"position {u} scheduled twice")
                seen.add(u)
        require(len(seen) == w, "schedule does not cover the window")
        # Every non-skipped wrapped offset occurs exactly once.
        wrapped: set[tuple[int, ...]] = set()
        for u in range(w):
            if self.skip[u]:
                continue
            wo = self.wrap_offset(self.offsets[u])
            require(wo not in wrapped, f"wrapped offset {wo} not deduplicated")
            wrapped.add(wo)


def _build(team_dims: tuple[int, ...], c: int,
           physical: list[tuple[int, ...]],
           zero_pos: int) -> ShiftSchedule:
    """Assemble a schedule from the physical offset list, padding to c."""
    w = len(physical)
    pad = (-w) % c
    offsets = list(physical)
    if pad:
        # Continue the enumeration past the end of the last axis: strictly
        # new (unwrapped) offsets that are marked skip if they alias.
        last = physical[-1]
        for j in range(1, pad + 1):
            offsets.append(last[:-1] + (last[-1] + j,))
    skip = []
    seen: set[tuple[int, ...]] = set()
    for idx, off in enumerate(offsets):
        wo = tuple(o % d for o, d in zip(off, team_dims))
        if idx >= w or wo in seen:
            # Padding positions exist only to keep the shifts uniform; they
            # never update.  Wrap-aliases of earlier positions are deduped.
            skip.append(True)
        else:
            seen.add(wo)
            skip.append(False)
    return ShiftSchedule(
        team_dims=team_dims,
        c=c,
        offsets=tuple(offsets),
        zero_index=zero_pos,
        skip=tuple(skip),
    )


def all_pairs_schedule(nteams: int, c: int) -> ShiftSchedule:
    """Algorithm 1's schedule: the window is the full ring of teams.

    With ``c | nteams`` this reproduces the paper exactly: ``nteams/c =
    p/c^2`` shift steps, skew magnitude ``k`` for row ``k``.  Other
    divisors of ``p`` work through padding.
    """
    require(nteams >= 1, "need at least one team")
    require(1 <= c, f"c must be >= 1, got {c}")
    physical = [(u,) for u in range(nteams)]
    return _build((nteams,), c, physical, zero_pos=0)


def half_ring_schedule(nteams: int, c: int) -> ShiftSchedule:
    """Window of the symmetric (Newton's-third-law) all-pairs variant.

    Offsets ``0 .. floor(T/2)``: each unordered team pair appears once,
    so with reaction forces accumulated on the traveling buffer the compute
    volume halves and the shift loop shortens to ~``T/(2c)`` steps.  The
    paper explicitly does *not* apply this optimization ("the force is
    symmetric, but ... we do not apply optimizations to exploit the
    symmetry"); it is implemented here as an extension.

    For even ``T`` the antipodal offset ``T/2`` pairs every column with its
    opposite twice (once from each side); the algorithm engages it only on
    the lower-indexed column.
    """
    require(nteams >= 1, "need at least one team")
    require(c >= 1, f"c must be >= 1, got {c}")
    physical = [(u,) for u in range(nteams // 2 + 1)]
    return _build((nteams,), c, physical, zero_pos=0)


def cutoff_schedule(team_dims: tuple[int, ...], m: tuple[int, ...], c: int) -> ShiftSchedule:
    """Algorithm 2's schedule (any dimension): window of offsets within
    ``m`` cells per axis, linearized row-major as the paper's Section IV-C
    recommends ("linearize the high-dimensional space, calculate shifts in
    1D, and map the pattern back").

    The physical window is ``prod(2 m_k + 1)`` offset vectors; positions
    whose wrapped offset aliases an earlier one (small grids, padding) are
    marked ``skip``.
    """
    require(len(team_dims) == len(m), "m must give a span per team dimension")
    for mk in m:
        require(mk >= 0, f"cutoff span must be >= 0, got {m}")
    ranges = [range(-mk, mk + 1) for mk in m]
    physical = [tuple(v) for v in product(*ranges)]
    zero_pos = physical.index((0,) * len(team_dims))
    return _build(tuple(team_dims), c, physical, zero_pos)

"""Distributing particles to teams, and collecting results back.

Two distribution styles appear in the paper:

* **even** (all-pairs, Section III): particles are divided evenly among the
  ``p/c`` team leaders, irrespective of position;
* **spatial** (cutoff, Section IV): each team leader owns the particles in
  its team's region of the box.

Both return one block per team, indexed by team id; leaders feed them into
the algorithm programs.  ``virtual_team_blocks`` builds the phantom
equivalents for modeled runs.
"""

from __future__ import annotations

import numpy as np

from repro.physics.domain import TeamGeometry, team_of_positions
from repro.physics.particles import ParticleSet, VirtualBlock, concat_sets
from repro.util import even_blocks

__all__ = [
    "collect_leader_forces",
    "distribute_from_root",
    "gather_to_root",
    "team_blocks_even",
    "team_blocks_spatial",
    "virtual_team_blocks",
]


def team_blocks_even(particles: ParticleSet, nteams: int) -> list[ParticleSet]:
    """Evenly split ``particles`` into ``nteams`` contiguous blocks."""
    return [particles.subset(slice(lo, hi)) for lo, hi in even_blocks(len(particles), nteams)]


def team_blocks_spatial(
    particles: ParticleSet, geometry: TeamGeometry
) -> list[ParticleSet]:
    """Bin ``particles`` into the team regions of ``geometry``."""
    team = team_of_positions(particles.pos, geometry)
    return [particles.subset(team == t) for t in range(geometry.nteams)]


def virtual_team_blocks(n: int, nteams: int) -> list[VirtualBlock]:
    """Phantom blocks with the even-split sizes of ``n`` particles."""
    return [
        VirtualBlock(count=hi - lo, team=t)
        for t, (lo, hi) in enumerate(even_blocks(n, nteams))
    ]


def distribute_from_root(comm, grid, particles: ParticleSet | None,
                         geometry: TeamGeometry | None = None):
    """Scatter team blocks from world rank 0 to the team leaders.

    Generator (``yield from``).  Rank 0 supplies the full particle set and
    splits it evenly (or spatially when ``geometry`` is given); each team
    leader returns its block, everyone else ``None``.  The paper's cost
    analysis assumes the particles start distributed; this helper is the
    realistic on-ramp from a file loaded on one rank, with its scatter
    cost charged to the ``distribute`` phase.
    """
    leaders = [grid.leader_of(col) for col in range(grid.nteams)]
    lcomm = comm.sub(leaders)
    block = None
    with comm.phase("distribute"):
        if lcomm is not None:
            if lcomm.rank == 0:
                if particles is None:
                    raise ValueError("rank 0 must supply the particle set")
                blocks = (team_blocks_spatial(particles, geometry)
                          if geometry is not None
                          else team_blocks_even(particles, grid.nteams))
            else:
                blocks = None
            block = yield from lcomm.scatter(blocks, root=0)
    return block


def gather_to_root(comm, grid, block: ParticleSet | None):
    """Gather the leaders' blocks back to world rank 0 (id-sorted).

    Generator.  Returns the full :class:`ParticleSet` on world rank 0 and
    ``None`` elsewhere; cost charged to the ``collect`` phase.
    """
    leaders = [grid.leader_of(col) for col in range(grid.nteams)]
    lcomm = comm.sub(leaders)
    result = None
    with comm.phase("collect"):
        if lcomm is not None:
            gathered = yield from lcomm.gather(block, root=0)
            if gathered is not None:
                result = concat_sets(list(gathered)).sorted_by_id()
    return result


def collect_leader_forces(results: list, grid,
                          dead=frozenset()) -> tuple[np.ndarray, np.ndarray]:
    """Assemble (ids, forces) sorted by id from per-rank step results.

    ``results`` is the engine's per-rank result list from a CA step program;
    leaders (row 0) carry their team's home block with installed forces.
    When ``dead`` names failed world ranks, each team's block is taken from
    its *acting* leader instead — the lowest surviving row, where the
    resilient step installs the reduced forces.
    """
    ids_parts = []
    force_parts = []
    for col in range(grid.nteams):
        leader = next(
            (grid.rank_at(r, col) for r in range(grid.c)
             if grid.rank_at(r, col) not in dead),
            None,
        )
        if leader is None:
            raise ValueError(f"team {col} lost all {grid.c} members")
        res = results[leader]
        home = res.home
        if home is None:
            hint = (
                " (a rank died after the failure-sync point, outside the "
                "recoverable window — see docs/fault-model.md)"
            ) if dead else ""
            raise ValueError(
                f"leader of team {col} returned no home block{hint}"
            )
        ids_parts.append(home.particles.ids)
        force_parts.append(home.forces)
    ids = np.concatenate(ids_parts)
    forces = np.concatenate(force_parts)
    order = np.argsort(ids, kind="stable")
    return ids[order], forces[order]

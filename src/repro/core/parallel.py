"""Process-parallel map over pure work units.

The sweep harnesses (chaos soak, schedule fuzz, the comparison matrix,
model validation) all share one shape: a list of tasks, each a pure
function of plain-data inputs such as ``(seed, index)``, whose results
are merged in task order.  :func:`parallel_map` executes that shape over
a ``multiprocessing`` pool of **spawned** worker processes and keeps the
semantics of the serial loop:

* **Determinism** — results come back in task order regardless of which
  worker finished first, and tasks carry their own seeds (derive them
  with :func:`spawn_seeds` or ``numpy.random.SeedSequence([seed, index])``),
  so ``workers=0`` and ``workers=8`` produce bitwise-identical output.
* **Purity contract** — the task function must be a module-level callable
  and tasks/results must be picklable; workers share nothing with the
  parent (the ``spawn`` start method re-imports modules from scratch, so
  no inherited global state can leak into a task, unlike ``fork``).
* **Loud failures** — a task that raises in a worker surfaces in the
  parent as :class:`WorkerError` naming the task index and carrying the
  full remote traceback, instead of a bare ``Pool`` re-raise that loses
  the task identity.
* **Serial fallback** — ``workers=0`` (the default) runs the plain list
  comprehension in-process: no pool, no pickling, exceptions propagate
  natively.  Every harness keeps this as its reference path.

``spawn`` is deliberate: it is the only start method that is both
portable (fork is unavailable on Windows and unsound with threads) and
faithful to the purity contract.  Its per-worker interpreter start-up
(~0.5 s with NumPy) is amortized by batching enough work per call —
see ``docs/performance.md``.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Callable, Iterable, Sequence

__all__ = ["WorkerError", "parallel_map", "spawn_seeds"]


class WorkerError(RuntimeError):
    """A task raised inside a worker process.

    The message names the failing task index and embeds the worker's full
    traceback; :attr:`index` carries the task index programmatically so a
    harness can replay exactly the failed unit.
    """

    def __init__(self, index: int, remote_traceback: str):
        super().__init__(
            f"parallel_map task {index} failed in a worker process; "
            f"remote traceback:\n{remote_traceback.rstrip()}"
        )
        self.index = index
        self.remote_traceback = remote_traceback


def spawn_seeds(seed: int, n: int) -> list[int]:
    """``n`` independent, reproducible child seeds derived from ``seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so the children are
    statistically independent of each other *and* of ``seed``'s own
    stream, and the mapping is a pure function — the same ``(seed, n)``
    always yields the same list.
    """
    import numpy as np

    return [int(child.generate_state(1)[0])
            for child in np.random.SeedSequence(seed).spawn(n)]


def _invoke(payload: tuple[Callable, int, Any]) -> tuple[str, int, Any]:
    """Worker-side shim: run one task, never raise across the pipe."""
    fn, index, task = payload
    try:
        return ("ok", index, fn(task))
    except Exception:
        return ("err", index, traceback.format_exc())


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    *,
    workers: int = 0,
    chunksize: int = 1,
) -> list[Any]:
    """Map ``fn`` over ``tasks``, optionally across worker processes.

    Parameters
    ----------
    fn:
        A module-level callable of one argument (must be picklable by
        reference when ``workers > 0``).  Each task should be pure in its
        argument — no reliance on parent-process state.
    tasks:
        The work units; materialized to a list up front so the result
        order is the task order.
    workers:
        ``0`` (default) runs serially in-process.  ``>= 1`` runs a
        ``spawn``-context pool of ``min(workers, len(tasks))`` processes.
    chunksize:
        Tasks handed to a worker per round-trip; raise it for many tiny
        tasks to cut IPC overhead.

    Returns
    -------
    list:
        ``[fn(t) for t in tasks]``, in task order.

    Raises
    ------
    WorkerError:
        When a task raises inside a worker; the error names the task
        index and carries the remote traceback.  (In serial mode the
        original exception propagates unchanged.)
    """
    tasks = list(tasks)
    if workers <= 0 or not tasks:
        return [fn(t) for t in tasks]
    nproc = min(int(workers), len(tasks))
    ctx = multiprocessing.get_context("spawn")
    payloads = [(fn, i, t) for i, t in enumerate(tasks)]
    with ctx.Pool(processes=nproc) as pool:
        outcomes = pool.map(_invoke, payloads, chunksize=max(1, chunksize))
    results: list[Any] = []
    for status, index, value in outcomes:
        if status != "ok":
            raise WorkerError(index, value)
        results.append(value)
    return results


def _pool_size(workers: int | None) -> int:
    """Normalize a ``--workers`` CLI value (``None`` -> serial)."""
    return 0 if workers is None else max(0, int(workers))

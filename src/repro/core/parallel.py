"""Supervised process-parallel execution over pure work units.

The sweep harnesses (chaos soak, schedule fuzz, the comparison matrix,
model validation, ``repro sweep``) all share one shape: a list of tasks,
each a pure function of plain-data inputs such as ``(seed, index)``,
whose results are merged in task order.  This module executes that shape
over a fleet of **spawned** worker processes and keeps the semantics of
the serial loop:

* **Determinism** — results come back in task order regardless of which
  worker finished first, and tasks carry their own seeds (derive them
  with :func:`spawn_seeds` or ``numpy.random.SeedSequence([seed, index])``),
  so ``workers=0`` and ``workers=8`` produce bitwise-identical output —
  even when tasks are retried, time out, or their worker is killed
  mid-flight (a retried pure task recomputes the same bits).
* **Purity contract** — the task function must be a module-level callable
  and tasks/results must be picklable; workers share nothing with the
  parent (the ``spawn`` start method re-imports modules from scratch, so
  no inherited global state can leak into a task, unlike ``fork``).
* **Loud failures** — a task that raises in a worker surfaces in the
  parent as :class:`WorkerError` naming *every* failed task index and
  carrying the remote tracebacks, instead of a bare ``Pool`` re-raise
  that loses the task identity.
* **Crash containment** — each worker is an individually supervised
  process with its own pipe.  A worker that is SIGKILLed (OOM, host
  chaos) or hangs past ``task_timeout`` is detected, killed, and
  replaced, and its task is re-dispatched to a fresh worker — unlike
  ``multiprocessing.Pool.map``, which hangs forever on a lost worker.
* **Serial fallback** — ``workers=0`` (the default) runs the plain list
  comprehension in-process: no pool, no pickling, exceptions propagate
  natively.  Every harness keeps this as its reference path.

Three layers, lowest first:

* :func:`run_supervised` — the executor.  Never raises on task failure;
  returns one :class:`TaskOutcome` per task (``ok`` / ``failed`` /
  ``timeout`` / ``crashed``), honoring a :class:`RetryPolicy` and
  optionally writing tasks that failed every attempt to a replayable
  JSON **quarantine** artifact (:func:`write_quarantine` /
  :func:`load_quarantine`).
* :func:`parallel_map` — the historical map API, now built on the
  supervisor.  ``on_error="raise"`` (default) keeps the PR-7 contract
  (a plain result list, :class:`WorkerError` on failure);
  ``on_error="collect"`` returns the outcome list instead.
* The harnesses thread ``retry=`` / ``task_timeout=`` through from their
  ``--retry`` / ``--task-timeout`` CLI flags.

``spawn`` is deliberate: it is the only start method that is both
portable (fork is unavailable on Windows and unsound with threads) and
faithful to the purity contract.  Its per-worker interpreter start-up
(~0.5 s with NumPy) is amortized by batching enough work per call —
see ``docs/performance.md``.  The task function is shipped **once per
worker** (as the worker process's constructor argument), not once per
task, so a large closure costs one pickle per worker, not per task.

For chaos drills CI sets ``REPRO_HOST_CHAOS`` (e.g.
``"p=0.4,seed=7,mode=kill"``): each worker then deterministically
injects a failure — SIGKILL itself, hang, or raise — on matching
``(task index, attempt)`` pairs before running the task, which exercises
the crash-recovery path end to end (see ``tools/host_chaos.py``).  The
hook only ever fires inside spawned workers, never in the parent.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import os
import signal
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as _mpconn
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "QUARANTINE_FORMAT",
    "RetryPolicy",
    "TaskOutcome",
    "WorkerError",
    "as_retry_policy",
    "load_quarantine",
    "parallel_map",
    "run_supervised",
    "spawn_seeds",
    "write_quarantine",
]

#: Format tag written into (and demanded from) quarantine artifacts.
QUARANTINE_FORMAT = "repro-quarantine-v1"

#: Environment variable holding the host-chaos injection spec.
HOST_CHAOS_ENV = "REPRO_HOST_CHAOS"


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a task gets and how long to back off between them.

    ``max_attempts`` counts *every* attempt including the first, so
    ``max_attempts=1`` means "no retries".  The delay before attempt
    ``a >= 2`` of task ``i`` is ``base_delay * backoff**(a - 2)``
    perturbed by a deterministic seeded jitter of up to ``±jitter``
    (relative): :meth:`delay` is a pure function of
    ``(seed, index, attempt)``, so two runs of the same sweep back off
    identically — retry timing never becomes a hidden source of
    nondeterminism in budgeted campaigns.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        """Reject nonsensical policies up front, not mid-sweep."""
        problems = []
        if self.max_attempts < 1:
            problems.append(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            problems.append(f"base_delay must be >= 0, got {self.base_delay}")
        if self.backoff < 1:
            problems.append(f"backoff must be >= 1, got {self.backoff}")
        if not 0 <= self.jitter <= 1:
            problems.append(f"jitter must be in [0, 1], got {self.jitter}")
        if problems:
            raise ValueError("bad RetryPolicy: " + "; ".join(problems))

    def delay(self, index: int, attempt: int) -> float:
        """Seconds to wait before running ``attempt`` of task ``index``.

        Attempt 1 (the first try) never waits.  Jitter is drawn from
        ``SeedSequence([seed, index, attempt])``, so it is reproducible
        and decorrelated across tasks (no retry thundering herd).
        """
        if attempt <= 1 or self.base_delay == 0:
            return 0.0
        import numpy as np

        raw = self.base_delay * self.backoff ** (attempt - 2)
        if self.jitter == 0:
            return raw
        u = (np.random.SeedSequence([self.seed, index, attempt])
             .generate_state(1)[0] / 2.0**32)
        return raw * (1.0 + self.jitter * (2.0 * u - 1.0))


def as_retry_policy(retry) -> RetryPolicy:
    """Normalize a ``--retry`` value: None / int attempts / a policy."""
    if retry is None:
        return RetryPolicy(max_attempts=1)
    if isinstance(retry, RetryPolicy):
        return retry
    return RetryPolicy(max_attempts=int(retry))


@dataclass
class TaskOutcome:
    """One task's final verdict after supervision.

    ``status`` is ``"ok"`` (value present), ``"failed"`` (the task raised
    on its last attempt), ``"timeout"`` (last attempt exceeded
    ``task_timeout`` and its worker was killed), ``"crashed"`` (the
    worker died mid-task on the last attempt — SIGKILL/OOM),
    ``"cached"`` (served from a :class:`~repro.core.runcache.RunCache`
    without executing; ``attempts == 0``), or ``"coalesced"``
    (single-flight: a duplicate of another task in the same batch,
    served that task's in-memory result without recomputing or
    re-reading the cache; ``attempts == 0``).  ``attempts`` counts
    attempts actually consumed; crashes and timeouts consume an attempt
    just like a raise, so a task whose worker is killed on attempt 1
    retries as attempt 2.
    """

    index: int
    status: str
    value: Any = None
    error: str | None = None
    attempts: int = 0
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        """Whether this task produced a (computed, cached or shared) value."""
        return self.status in ("ok", "cached", "coalesced")


class WorkerError(RuntimeError):
    """One or more tasks failed in worker processes.

    Aggregates *every* failed :class:`TaskOutcome` of the map — a sweep
    that loses tasks 2, 5 and 9 reports all three, not just the first.
    :attr:`failures` holds the outcomes, :attr:`indices` the failed task
    indices in task order.  For replay compatibility with the PR-7 API,
    :attr:`index` and :attr:`remote_traceback` carry the *first* failure.

    The legacy single-failure constructor ``WorkerError(index, tb)`` is
    still accepted.
    """

    def __init__(self, failures, remote_traceback: str | None = None):
        if isinstance(failures, int):
            failures = [TaskOutcome(index=failures, status="failed",
                                    error=remote_traceback or "", attempts=1)]
        self.failures: list[TaskOutcome] = list(failures)
        if not self.failures:
            raise ValueError("WorkerError needs at least one failed outcome")
        self.indices = [f.index for f in self.failures]
        first = self.failures[0]
        self.index = first.index
        self.remote_traceback = first.error or ""
        if len(self.failures) == 1:
            head = (f"parallel_map task {first.index} failed in a worker "
                    f"process")
        else:
            head = (f"parallel_map: {len(self.failures)} tasks failed in "
                    f"worker processes (indices {self.indices})")
        body = "\n".join(
            f"[task {f.index}: {f.status} after {f.attempts} attempt(s)]\n"
            f"{(f.error or '').rstrip()}"
            for f in self.failures
        )
        super().__init__(f"{head}; remote traceback:\n{body}")


def spawn_seeds(seed: int, n: int) -> list[int]:
    """``n`` independent, reproducible child seeds derived from ``seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so the children are
    statistically independent of each other *and* of ``seed``'s own
    stream, and the mapping is a pure function — the same ``(seed, n)``
    always yields the same list.
    """
    import numpy as np

    return [int(child.generate_state(1)[0])
            for child in np.random.SeedSequence(seed).spawn(n)]


class _HostChaosError(RuntimeError):
    """Injected transient failure (``REPRO_HOST_CHAOS`` mode=raise)."""


def _host_chaos(index: int, attempt: int) -> None:
    """Deterministic failure injection for chaos drills (workers only).

    Reads ``REPRO_HOST_CHAOS`` — a spec like ``"p=0.4,seed=7,mode=kill"``
    (optional ``attempts=K`` bounds which attempts may be hit, default 1
    so retries always survive).  Whether a given ``(index, attempt)`` is
    hit is a pure function of the spec, so chaos runs replay exactly.
    Modes: ``kill`` (SIGKILL the worker — exercises crash recovery),
    ``hang`` (sleep forever — exercises ``task_timeout``), ``raise``
    (transient task failure — exercises retry).
    """
    spec = os.environ.get(HOST_CHAOS_ENV)
    if not spec:
        return
    fields = dict(part.split("=", 1) for part in spec.split(",") if part)
    if attempt > int(fields.get("attempts", 1)):
        return
    import numpy as np

    prob = float(fields.get("p", 0.5))
    seed = int(fields.get("seed", 0))
    u = (np.random.SeedSequence([seed, index, attempt])
         .generate_state(1)[0] / 2.0**32)
    if u >= prob:
        return
    mode = fields.get("mode", "kill")
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "hang":
        time.sleep(3600.0)
    elif mode == "raise":
        raise _HostChaosError(
            f"host chaos: injected transient failure "
            f"(task {index}, attempt {attempt})")
    else:
        raise ValueError(f"unknown {HOST_CHAOS_ENV} mode {mode!r} "
                         f"(kill | hang | raise)")


def _worker_main(fn: Callable[[Any], Any], conn) -> None:
    """Worker process body: serve tasks off ``conn`` until told to stop.

    ``fn`` arrives once, as this process's constructor argument — not
    re-pickled per task.  Each request is ``(index, attempt, task)``;
    each reply ``(status, index, attempt, value_or_traceback)``.  A task
    that raises is reported, never re-raised across the pipe; a result
    that fails to pickle is reported as a failure too (the supervisor
    would otherwise see a crashed worker).
    """
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            conn.close()
            return
        index, attempt, task = item
        try:
            _host_chaos(index, attempt)
            reply = ("ok", index, attempt, fn(task))
        except BaseException:
            reply = ("err", index, attempt, traceback.format_exc())
        try:
            conn.send(reply)
        except Exception:
            conn.send(("err", index, attempt, traceback.format_exc()))


class _Worker:
    """One supervised worker: its process, its pipe, its current job."""

    __slots__ = ("proc", "conn", "job")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        #: ``(task index, attempt, deadline or None)`` while busy.
        self.job: tuple[int, int, float | None] | None = None


def _serial_attempts(fn, index: int, task, retry: RetryPolicy) -> TaskOutcome:
    """In-process execution of one task under the retry policy."""
    error = ""
    for attempt in range(1, retry.max_attempts + 1):
        wait = retry.delay(index, attempt)
        if wait > 0:
            time.sleep(wait)
        try:
            return TaskOutcome(index=index, status="ok", value=fn(task),
                               attempts=attempt)
        except Exception:
            error = traceback.format_exc()
    return TaskOutcome(index=index, status="failed", error=error,
                       attempts=retry.max_attempts)


def run_supervised(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    *,
    workers: int = 0,
    retry: RetryPolicy | int | None = None,
    task_timeout: float | None = None,
    quarantine: str | None = None,
    task_json: Callable[[Any], Any] | None = None,
    poll_interval: float = 0.05,
) -> list[TaskOutcome]:
    """Execute every task under supervision; never raise on task failure.

    Returns one :class:`TaskOutcome` per task, in task order.  With
    ``workers > 0`` each worker is an individually supervised spawned
    process: a worker that dies mid-task (SIGKILL/OOM) is detected and
    replaced and the task re-dispatched; a task still running after
    ``task_timeout`` seconds has its worker killed and replaced.  Both
    count as a consumed attempt under ``retry`` (an int is shorthand for
    ``RetryPolicy(max_attempts=n)``; ``None`` means one attempt).

    ``workers=0`` runs serially in-process, honoring ``retry`` —
    ``task_timeout`` is not enforceable there (nothing can preempt the
    parent) and is ignored.

    ``quarantine`` names a JSON file: tasks that failed every attempt are
    written there via :func:`write_quarantine` (replayable with
    :func:`load_quarantine`) and flagged ``quarantined=True``.
    ``task_json`` converts a task to its JSON form for that artifact.
    """
    tasks = list(tasks)
    policy = as_retry_policy(retry)
    outcomes: list[TaskOutcome | None] = [None] * len(tasks)
    if workers <= 0 or len(tasks) == 0:
        for i, t in enumerate(tasks):
            outcomes[i] = _serial_attempts(fn, i, t, policy)
    else:
        _supervise(fn, tasks, outcomes, workers=int(workers), retry=policy,
                   task_timeout=task_timeout, poll_interval=poll_interval)
    done: list[TaskOutcome] = outcomes  # type: ignore[assignment]
    if quarantine:
        write_quarantine(quarantine, tasks, done, task_json=task_json)
    return done


def _supervise(fn, tasks: Sequence[Any], outcomes, *, workers: int,
               retry: RetryPolicy, task_timeout: float | None,
               poll_interval: float) -> None:
    """The supervisor loop behind :func:`run_supervised` (workers > 0)."""
    ctx = multiprocessing.get_context("spawn")
    nproc = min(workers, len(tasks))
    # (eligible-at, task index, attempt) — a heap so backoff delays pick
    # the earliest-eligible retry first, FIFO by index at equal times.
    pending: list[tuple[float, int, int]] = [
        (0.0, i, 1) for i in range(len(tasks))]
    heapq.heapify(pending)
    fleet: list[_Worker] = []
    idle: list[_Worker] = []
    busy: list[_Worker] = []
    done = 0

    def _spawn() -> _Worker:
        parent, child = ctx.Pipe(duplex=True)
        proc = ctx.Process(target=_worker_main, args=(fn, child), daemon=True)
        proc.start()
        child.close()
        w = _Worker(proc, parent)
        fleet.append(w)
        return w

    def _retire(w: _Worker) -> None:
        """Remove a dead or condemned worker from the fleet, hard."""
        fleet.remove(w)
        try:
            w.conn.close()
        except OSError:
            pass
        if w.proc.is_alive():
            w.proc.kill()
        w.proc.join()

    def _replace() -> None:
        """Top the fleet back up if outstanding work still needs it."""
        if pending and len(fleet) < nproc:
            idle.append(_spawn())

    def _settle(index: int, attempt: int, status: str, error: str) -> None:
        """Record a failed attempt: schedule a retry or finalize."""
        nonlocal done
        if attempt < retry.max_attempts:
            eligible = time.monotonic() + retry.delay(index, attempt + 1)
            heapq.heappush(pending, (eligible, index, attempt + 1))
        else:
            outcomes[index] = TaskOutcome(index=index, status=status,
                                          error=error, attempts=attempt)
            done += 1

    for _ in range(nproc):
        idle.append(_spawn())
    try:
        while done < len(tasks):
            now = time.monotonic()
            # Dispatch every eligible pending task to an idle worker.
            while idle and pending and pending[0][0] <= now:
                _, index, attempt = heapq.heappop(pending)
                w = idle.pop()
                try:
                    w.conn.send((index, attempt, tasks[index]))
                except (BrokenPipeError, OSError):
                    # The worker died while idle; this is not the task's
                    # fault — requeue the same attempt on a fresh worker.
                    _retire(w)
                    heapq.heappush(pending, (now, index, attempt))
                    idle.append(_spawn())
                    continue
                except Exception:
                    # The task payload itself would not pickle; retrying
                    # cannot help, fail it outright.
                    outcomes[index] = TaskOutcome(
                        index=index, status="failed",
                        error=traceback.format_exc(), attempts=attempt)
                    done += 1
                    idle.append(w)
                    continue
                deadline = None if task_timeout is None else now + task_timeout
                w.job = (index, attempt, deadline)
                busy.append(w)
            if done >= len(tasks):
                break
            if not busy:
                # Only backoff-delayed retries remain; sleep until the
                # earliest becomes eligible.
                wake = pending[0][0] if pending else now + poll_interval
                time.sleep(max(0.0, min(wake - time.monotonic(),
                                        poll_interval)))
                continue
            # Wake on the first result, the nearest deadline, the next
            # retry becoming eligible, or the poll tick.
            timeout = poll_interval
            if pending and idle:
                timeout = min(timeout, max(0.0, pending[0][0] - now))
            for w in busy:
                if w.job[2] is not None:
                    timeout = min(timeout, max(0.0, w.job[2] - now))
            ready = _mpconn.wait([w.conn for w in busy], timeout=timeout)
            by_conn = {w.conn: w for w in busy}
            for conn in ready:
                w = by_conn[conn]
                index, attempt, _ = w.job
                try:
                    status, _ri, _ra, payload = conn.recv()
                except (EOFError, OSError):
                    # The worker died mid-task (SIGKILL / OOM): recover
                    # by re-dispatching instead of hanging the sweep.
                    busy.remove(w)
                    exitcode = w.proc.exitcode
                    _retire(w)
                    _settle(index, attempt, "crashed",
                            f"worker died while running task {index} "
                            f"(attempt {attempt}/{retry.max_attempts}, "
                            f"exitcode {exitcode})")
                    _replace()
                    continue
                busy.remove(w)
                w.job = None
                idle.append(w)
                if status == "ok":
                    outcomes[index] = TaskOutcome(index=index, status="ok",
                                                  value=payload,
                                                  attempts=attempt)
                    done += 1
                else:
                    _settle(index, attempt, "failed", payload)
            # Hung-worker detection: kill and replace anyone past their
            # deadline whose result has not reached the pipe.
            now = time.monotonic()
            for w in list(busy):
                index, attempt, deadline = w.job
                if deadline is None or now <= deadline or w.conn.poll():
                    continue
                busy.remove(w)
                _retire(w)
                _settle(index, attempt, "timeout",
                        f"task {index} still running after "
                        f"task_timeout={task_timeout}s (attempt {attempt}/"
                        f"{retry.max_attempts}); worker killed")
                _replace()
    finally:
        for w in fleet:
            try:
                w.conn.send(None)
            except Exception:
                pass
            try:
                w.conn.close()
            except Exception:
                pass
        for w in fleet:
            w.proc.join(timeout=5.0)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join()


def _default_task_json(task) -> Any:
    """Best-effort JSON form of a task for the quarantine artifact."""
    try:
        json.dumps(task)
        return task
    except (TypeError, ValueError):
        return repr(task)


def write_quarantine(path: str, tasks: Sequence[Any],
                     outcomes: Sequence[TaskOutcome | None], *,
                     task_json: Callable[[Any], Any] | None = None,
                     context: dict | None = None) -> str | None:
    """Persist failed-beyond-retry tasks as a replayable JSON artifact.

    Each entry records the task (via ``task_json``, default: the task
    itself if JSON-serializable else its ``repr``), its index, final
    status, attempt count and last error — enough to replay exactly the
    poisoned units (see :func:`load_quarantine`).  Written atomically
    (tmp + rename).  Returns the path, or ``None`` when nothing failed
    (no artifact is written).  Failed outcomes are flagged
    ``quarantined=True`` in place.
    """
    failed = [o for o in outcomes if o is not None and not o.ok]
    if not failed:
        return None
    encode = task_json or _default_task_json
    payload = {
        "format": QUARANTINE_FORMAT,
        "context": context or {},
        "entries": [
            {
                "index": o.index,
                "status": o.status,
                "attempts": o.attempts,
                "error": o.error,
                "task": encode(tasks[o.index]),
            }
            for o in failed
        ],
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".quarantine-")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    for o in failed:
        o.quarantined = True
    return path


def load_quarantine(path: str) -> list[dict]:
    """Read a quarantine artifact back; returns its entry dicts.

    Raises ``ValueError`` when the file is not a quarantine artifact
    (wrong or missing format tag), so a stale path fails loudly rather
    than replaying garbage.
    """
    with open(path) as fh:
        data = json.load(fh)
    if data.get("format") != QUARANTINE_FORMAT:
        raise ValueError(
            f"{path} is not a quarantine artifact "
            f"(format {data.get('format')!r}, expected {QUARANTINE_FORMAT!r})")
    return list(data["entries"])


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    *,
    workers: int = 0,
    chunksize: int = 1,
    retry: RetryPolicy | int | None = None,
    task_timeout: float | None = None,
    on_error: str = "raise",
    quarantine: str | None = None,
    task_json: Callable[[Any], Any] | None = None,
) -> list[Any]:
    """Map ``fn`` over ``tasks``, optionally across worker processes.

    Parameters
    ----------
    fn:
        A module-level callable of one argument (must be picklable by
        reference when ``workers > 0``).  Each task should be pure in its
        argument — no reliance on parent-process state.  Shipped once per
        worker, not once per task.
    tasks:
        The work units; materialized to a list up front so the result
        order is the task order.
    workers:
        ``0`` (default) runs serially in-process.  ``>= 1`` runs a
        supervised fleet of ``min(workers, len(tasks))`` spawned
        processes (see :func:`run_supervised`).
    chunksize:
        Accepted for backward compatibility; the supervised executor
        dispatches per task (its round-trip is one pipe message, and
        per-task dispatch is what makes kill/replace recovery possible).
    retry:
        A :class:`RetryPolicy`, an int (max attempts), or ``None`` (one
        attempt).  Worker crashes and timeouts consume attempts too.
    task_timeout:
        Seconds before a running task's worker is killed and the attempt
        counted as ``timeout`` (workers > 0 only).
    on_error:
        ``"raise"`` (default): return plain results; if any task failed
        every attempt, raise :class:`WorkerError` aggregating *all*
        failures.  ``"collect"``: never raise on task failure; return
        the full :class:`TaskOutcome` list instead.
    quarantine, task_json:
        Forwarded to :func:`run_supervised` — tasks that failed every
        attempt land in this replayable JSON artifact.

    Returns
    -------
    list:
        ``[fn(t) for t in tasks]`` in task order (``on_error="raise"``),
        or one :class:`TaskOutcome` per task (``on_error="collect"``).

    Raises
    ------
    WorkerError:
        With ``on_error="raise"``, when tasks fail beyond retry; names
        every failed index and carries the remote tracebacks.  (In the
        plain serial mode — no retry, no quarantine — the original
        exception propagates natively, unchanged from PR 7.)
    """
    if on_error not in ("raise", "collect"):
        raise ValueError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}")
    tasks = list(tasks)
    if (workers <= 0 and retry is None and quarantine is None
            and on_error == "raise"):
        return [fn(t) for t in tasks]
    outcomes = run_supervised(fn, tasks, workers=workers, retry=retry,
                              task_timeout=task_timeout,
                              quarantine=quarantine, task_json=task_json)
    if on_error == "collect":
        return outcomes
    failures = [o for o in outcomes if not o.ok]
    if failures:
        raise WorkerError(failures)
    return [o.value for o in outcomes]


def _pool_size(workers: int | None) -> int:
    """Normalize a ``--workers`` CLI value (``None`` -> serial)."""
    return 0 if workers is None else max(0, int(workers))

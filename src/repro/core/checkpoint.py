"""Checkpoint/restart policy for the multi-timestep simulation driver.

Why this is cheap here: between steps, the authoritative state of the whole
simulation is exactly the per-team leader blocks (plus the carried forces
for velocity Verlet) — the deterministic engine has no other hidden state.
A *consistent global snapshot* therefore needs no coordination protocol:
each leader deposits a reference to its block as it enters a step, and once
every team has deposited for the same step number the host writes one file.
Because the driver integrates on detached (copy-on-write) storage, the
deposited arrays are immutable from the moment they are deposited, so the
references stay valid however far ahead other ranks have raced.

Checkpoint writes happen on the host and are charged **zero virtual time**:
they model out-of-band I/O (burst buffers, a dedicated I/O partition), not
machine traffic, so checkpointed and checkpoint-free runs have identical
virtual clocks and trajectories.

Files are written by :func:`repro.physics.io.save_checkpoint` — atomic
write-then-rename with per-array CRC-32 checksums — and stamped with a
configuration fingerprint so a checkpoint can never silently resume under
different physics (see :func:`simulation_fingerprint`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.physics.io import Checkpoint, save_checkpoint
from repro.util import require

__all__ = ["CheckpointPolicy", "simulation_fingerprint"]


def simulation_fingerprint(scfg) -> str:
    """A short string pinning everything that shapes a run's trajectory.

    Two :class:`~repro.core.driver.SimulationConfig`\\ s produce the same
    fingerprint exactly when a checkpoint from one can resume under the
    other bitwise-faithfully: processor grid, cutoff, spatial decomposition,
    force law, timestep, box, boundary handling, mass and integrator all
    participate.  ``nsteps`` deliberately does not — resuming with a longer
    (or shorter) horizon is legitimate.
    """
    cfg = scfg.cfg
    grid = cfg.grid
    parts = [
        f"p={grid.p}",
        f"c={grid.c}",
        f"layout={grid.layout}",
        f"rcut={cfg.rcut}",
        f"law={scfg.law!r}",
        f"dt={scfg.dt!r}",
        f"box={scfg.box_length!r}",
        f"mass={scfg.mass!r}",
        f"periodic={scfg.periodic}",
        f"integrator={scfg.integrator}",
    ]
    geo = cfg.geometry
    if geo is not None:
        parts.append(f"teams={geo.team_dims}")
        if geo.edges is not None:
            edges = tuple(tuple(float(x) for x in e) for e in geo.edges)
            parts.append(f"edges={edges}")
    return ";".join(parts)


@dataclass
class CheckpointPolicy:
    """When and where the driver writes checkpoints.

    A checkpoint is written after step ``s`` (counting completed steps,
    so ``s`` runs from 1 to ``nsteps``) when any of the triggers fires:

    * ``every = k > 0``: every ``k``-th step;
    * ``at_steps``: an explicit step set;
    * ``trigger``: an arbitrary predicate on the step number;
    * :meth:`request`: an out-of-band one-shot flag — the SIGTERM-style
      "snapshot at the next completed step, I am about to be preempted"
      path (call it from a signal handler or a watchdog thread; it is a
      plain attribute write, safe from async context).

    Attributes
    ----------
    directory:
        Where checkpoint files go (created on first write).
    every:
        Write every ``every`` completed steps (0 disables the cadence).
    at_steps:
        Also write after each of these step numbers.
    trigger:
        Optional ``step -> bool`` predicate evaluated per completed step.
    keep:
        Retain only the newest ``keep`` files written by this policy
        (0 keeps everything).
    """

    directory: str | os.PathLike
    every: int = 0
    at_steps: tuple[int, ...] = ()
    trigger: Callable[[int], bool] | None = None
    keep: int = 0
    _requested: bool = field(default=False, init=False, repr=False)

    def __post_init__(self):
        require(self.every >= 0, "every must be >= 0")
        require(self.keep >= 0, "keep must be >= 0")
        self.at_steps = tuple(int(s) for s in self.at_steps)

    def request(self) -> None:
        """Ask for one checkpoint at the next completed step (one-shot)."""
        self._requested = True

    def due(self, step: int) -> bool:
        """Should a checkpoint be written after completed step ``step``?"""
        if self._requested:
            return True
        if step in self.at_steps:
            return True
        if self.every > 0 and step > 0 and step % self.every == 0:
            return True
        return self.trigger is not None and bool(self.trigger(step))

    def path_for(self, step: int) -> str:
        return os.path.join(os.fspath(self.directory),
                            f"checkpoint-step{step:06d}.npz")


class _CheckpointWriter:
    """Host-side deposit collector the driver feeds from rank programs.

    Leaders call :meth:`deposit` with *references* to their post-step block
    (and carried forces, for Verlet).  A step's bucket completes when all
    ``nteams`` teams have deposited; the policy then decides whether to
    write.  A leader that dies before depositing leaves its step's bucket
    forever incomplete — that step is simply never checkpointable, and the
    stale bucket is dropped as soon as a later step completes (its
    successor deposits from the recovered block onward).
    """

    def __init__(self, policy: CheckpointPolicy, fingerprint: str,
                 nteams: int, dt: float, with_forces: bool):
        self.policy = policy
        self.fingerprint = fingerprint
        self.nteams = nteams
        self.dt = dt
        self.with_forces = with_forces
        self._buckets: dict[int, dict] = {}
        #: ``(step, path)`` for every checkpoint actually written, in order.
        self.written: list[tuple[int, str]] = []

    def deposit(self, step: int, col: int, block, forces=None) -> None:
        bucket = self._buckets.setdefault(step, {})
        bucket[col] = (block, forces)
        if len(bucket) < self.nteams:
            return
        del self._buckets[step]
        for stale in [s for s in self._buckets if s < step]:
            del self._buckets[stale]
        if self.policy.due(step):
            self._write(step, bucket)

    def _write(self, step: int, bucket: dict) -> None:
        blocks = [bucket[col][0] for col in range(self.nteams)]
        forces = ([bucket[col][1] for col in range(self.nteams)]
                  if self.with_forces else None)
        ckpt = Checkpoint(step=step, time=step * self.dt,
                          fingerprint=self.fingerprint,
                          blocks=blocks, forces=forces)
        os.makedirs(os.fspath(self.policy.directory), exist_ok=True)
        path = save_checkpoint(self.policy.path_for(step), ckpt)
        self.written.append((step, path))
        self.policy._requested = False
        if self.policy.keep > 0:
            while len(self.written) > self.policy.keep:
                _, old = self.written.pop(0)
                try:
                    os.unlink(old)
                except OSError:
                    pass

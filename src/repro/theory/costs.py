"""Asymptotic communication-cost expressions of the algorithms analysed in
the paper (Sections II-IV), as evaluable formulas.

Each function returns a (messages, words) pair for the *critical path* of
one interaction timestep, matching the paper's big-O expressions with unit
constants.  The tests check (a) that the implementations' measured traffic
matches these shapes and (b) that each algorithm meets its lower bound
(:mod:`repro.theory.optimality`).
"""

from __future__ import annotations

import math

from repro.theory.bounds import LowerBound
from repro.util import require

__all__ = [
    "ca_allpairs_cost",
    "ca_cutoff_cost",
    "force_decomposition_cost",
    "half_systolic_cost",
    "hyper_systolic_cost",
    "interactions_per_particle",
    "neutral_territory_cost",
    "particle_decomposition_cost",
    "spatial_decomposition_cost",
    "systolic_ring_cost",
]


def particle_decomposition_cost(n: int, p: int) -> LowerBound:
    """Naive particle decomposition: ``S = O(p)``, ``W = O(n)``."""
    return LowerBound(messages=float(p), words=float(n))


def force_decomposition_cost(n: int, p: int) -> LowerBound:
    """Plimpton's force decomposition: ``S = O(log p)``,
    ``W = O(n / sqrt(p))``."""
    require(p >= 1, "p must be >= 1")
    return LowerBound(
        messages=max(1.0, math.log2(p)), words=n / math.sqrt(p)
    )


def ca_allpairs_cost(n: int, p: int, c: int) -> LowerBound:
    """Equation 5: the CA all-pairs algorithm,
    ``S = O(p / c^2)``, ``W = O(n / c)``."""
    require(1 <= c <= p and p % c == 0, f"c={c} must divide p={p}")
    return LowerBound(messages=p / c**2, words=n / c)


def interactions_per_particle(n: int, p: int, c: int, m: float) -> float:
    """Equation 7: ``k = (2 r_c / l) n = O(m c n / p)`` interactions each
    particle needs under a cutoff spanning ``m`` team regions."""
    return m * c * n / p


def ca_cutoff_cost(n: int, p: int, c: int, m: float) -> LowerBound:
    """Section IV-B: the 1-D cutoff CA algorithm,
    ``S = O(m / c)``, ``W = O(m n / p)``."""
    require(1 <= c <= p and p % c == 0, f"c={c} must divide p={p}")
    require(m >= 0, "m must be non-negative")
    return LowerBound(messages=m / c, words=m * n / p)


def systolic_ring_cost(n: int, p: int) -> LowerBound:
    """The full systolic ring (Dorband et al.): the exchange buffer makes
    ``p - 1`` hops, each carrying one ``n/p`` block —
    ``S = p - 1``, ``W = n (p - 1) / p = O(n)``."""
    require(p >= 1, "p must be >= 1")
    return LowerBound(messages=float(p - 1), words=n * (p - 1) / p)


def half_systolic_cost(n: int, p: int) -> LowerBound:
    """The half-ring systolic variant (Newton's third law): the buffer
    makes ``floor(p/2)`` hops plus one reaction-return message —
    ``S = floor(p/2) + 1``, ``W = (floor(p/2) + 1) n / p = O(n / 2)``.

    For ``p = 1`` there is no communication at all.
    """
    require(p >= 1, "p must be >= 1")
    hops = p // 2 + 1 if p > 1 else 0
    return LowerBound(messages=float(hops), words=hops * n / p)


def hyper_systolic_cost(n: int, p: int, k: int) -> LowerBound:
    """Lippert et al.'s hyper-systolic schedule with replication ``K = k``:
    a ``K - 1``-hop distribution cascade moving blocks plus a ``K - 1``-hop
    collection cascade moving forces —
    ``S = 2 (K - 1)``, ``W = 2 (K - 1) n / p = O(sqrt(p) n / p)`` at the
    regular base's ``K = O(sqrt(p))``."""
    require(p >= 1, "p must be >= 1")
    require(k >= 1, f"hyper replication K must be >= 1, got {k}")
    return LowerBound(messages=2.0 * (k - 1), words=2 * (k - 1) * n / p)


def spatial_decomposition_cost(n: int, p: int, m_proc: float, d: int) -> LowerBound:
    """Section II-C: spatial decomposition with a cutoff spanning
    ``m_proc`` processor boxes per axis:
    ``S = O(m^d)``, ``W = O(n m^d / p)``."""
    vol = m_proc**d
    return LowerBound(messages=vol, words=n * vol / p)


def neutral_territory_cost(n: int, p: int, m_proc: float, d: int) -> LowerBound:
    """Section II-D: neutral-territory methods,
    ``S = O(1)``, ``W = O(n m^d / p^{1.5})``."""
    return LowerBound(messages=1.0, words=n * m_proc**d / p**1.5)

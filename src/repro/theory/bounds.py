"""Communication lower bounds (Section II of the paper).

The general Ballard-et-al form (Equation 1): with memory ``M`` per
processor, ``F`` operations in total and at most ``H(M)`` operations
executable on ``M`` operands,

    S = Omega(F / H),        W = Omega(S * M) = Omega(M F / H).

For direct N-body interactions ``H(M) = O(M^2)`` (every pair of resident
particles can interact), so with ``F/p`` operations per processor
(Equation 2):

    S_direct = Omega(n^2 / (p M^2)),    W_direct = Omega(n^2 / (p M)).

With a cutoff the total work is ``F = n k`` (Equation 3):

    S_cutoff = Omega(n k / (p M^2)),    W_cutoff = Omega(n k / (p M)).

These functions return the bound *expressions* (without the hidden
constant); the optimality checks in :mod:`repro.theory.optimality` compare
algorithm costs against them as ratios that must stay bounded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import require

__all__ = [
    "LowerBound",
    "direct_bounds",
    "cutoff_bounds",
    "general_bounds",
    "memory_per_rank",
]


@dataclass(frozen=True)
class LowerBound:
    """A latency/bandwidth lower-bound pair (message count, word count)."""

    messages: float  # S: messages along the critical path
    words: float  # W: words along the critical path


def general_bounds(F_per_proc: float, M: float, H: float) -> LowerBound:
    """Equation 1: bounds from per-processor work, memory, and reuse cap."""
    require(F_per_proc >= 0, "work must be non-negative")
    require(M > 0, "memory must be positive")
    require(H > 0, "reuse bound must be positive")
    S = F_per_proc / H
    return LowerBound(messages=S, words=S * M)


def direct_bounds(n: int, p: int, M: float) -> LowerBound:
    """Equation 2: all-pairs interactions, ``F = n^2``, ``H = M^2``."""
    require(n >= 0 and p >= 1, "need n >= 0, p >= 1")
    return general_bounds(n * n / p, M, M * M)


def cutoff_bounds(n: int, k: float, p: int, M: float) -> LowerBound:
    """Equation 3: cutoff interactions, ``F = n k`` with ``k`` interactions
    needed per particle."""
    require(k >= 0, "k must be non-negative")
    return general_bounds(n * k / p, M, M * M)


def memory_per_rank(n: int, p: int, c: int) -> float:
    """Equation 4/8: the CA algorithm's memory footprint ``M = c n / p``
    particles per processor (home block + exchange buffer, times the
    replication of the particle set across the ``c`` rows)."""
    require(1 <= c <= p, "need 1 <= c <= p")
    return c * n / p

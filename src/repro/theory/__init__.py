"""Communication lower bounds, algorithm cost formulas, and optimality
checks (the paper's Sections II, III-B and IV-B as executable code)."""

from repro.theory.bounds import (
    LowerBound,
    cutoff_bounds,
    direct_bounds,
    general_bounds,
    memory_per_rank,
)
from repro.theory.costs import (
    ca_allpairs_cost,
    ca_cutoff_cost,
    force_decomposition_cost,
    half_systolic_cost,
    hyper_systolic_cost,
    interactions_per_particle,
    neutral_territory_cost,
    particle_decomposition_cost,
    spatial_decomposition_cost,
    systolic_ring_cost,
)
from repro.theory.optimality import OptimalityReport, check_allpairs, check_cutoff

__all__ = [
    "LowerBound",
    "OptimalityReport",
    "ca_allpairs_cost",
    "ca_cutoff_cost",
    "check_allpairs",
    "check_cutoff",
    "cutoff_bounds",
    "direct_bounds",
    "force_decomposition_cost",
    "general_bounds",
    "half_systolic_cost",
    "hyper_systolic_cost",
    "interactions_per_particle",
    "memory_per_rank",
    "neutral_territory_cost",
    "particle_decomposition_cost",
    "spatial_decomposition_cost",
    "systolic_ring_cost",
]

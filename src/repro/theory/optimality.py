"""Optimality checks: algorithm costs vs communication lower bounds.

Section III-B (all-pairs) and IV-B (cutoff) prove the CA algorithm meets
the lower bounds once ``M = c n / p`` is substituted.  These helpers make
the substitution explicit and compute the cost/bound ratios — which must be
bounded by a constant across the whole parameter range for the proof to
hold.  The theory test-suite sweeps (n, p, c, m) and asserts exactly that;
it also checks the paper's "lower lower bound" observation (the bound
itself decreases as memory grows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.theory.bounds import cutoff_bounds, direct_bounds, memory_per_rank
from repro.theory.costs import (
    ca_allpairs_cost,
    ca_cutoff_cost,
    interactions_per_particle,
)

__all__ = ["OptimalityReport", "check_allpairs", "check_cutoff"]


@dataclass(frozen=True)
class OptimalityReport:
    """Cost/bound ratios for one configuration (must be O(1))."""

    latency_ratio: float  # S_algorithm / S_lower_bound
    bandwidth_ratio: float  # W_algorithm / W_lower_bound

    @property
    def is_optimal(self) -> bool:
        """Ratios within a generous constant (the proofs give small
        constants; 8 leaves room for the integrality of window padding)."""
        return self.latency_ratio <= 8.0 and self.bandwidth_ratio <= 8.0


def check_allpairs(n: int, p: int, c: int) -> OptimalityReport:
    """Ratios of Equation 5's costs to Equation 2's bounds at
    ``M = c n / p``.

    Substituting: ``S_bound = n^2 / (p M^2) = p / c^2`` and
    ``W_bound = n^2 / (p M) = n / c`` — identical shapes, so the ratios are
    exactly 1 for all valid (n, p, c).
    """
    M = memory_per_rank(n, p, c)
    bound = direct_bounds(n, p, M)
    cost = ca_allpairs_cost(n, p, c)
    return OptimalityReport(
        latency_ratio=cost.messages / bound.messages,
        bandwidth_ratio=cost.words / bound.words,
    )


def check_cutoff(n: int, p: int, c: int, m: float) -> OptimalityReport:
    """Ratios of the 1-D cutoff algorithm's costs to Equation 3's bounds.

    With ``k = m c n / p`` (Equation 7) and ``M = c n / p`` (Equation 8):
    ``S_bound = n k / (p M^2) = m / c`` and ``W_bound = n k / (p M) =
    m n / p`` — again matching the algorithm exactly.
    """
    M = memory_per_rank(n, p, c)
    k = interactions_per_particle(n, p, c, m)
    bound = cutoff_bounds(n, k, p, M)
    cost = ca_cutoff_cost(n, p, c, m)
    return OptimalityReport(
        latency_ratio=cost.messages / bound.messages,
        bandwidth_ratio=cost.words / bound.words,
    )

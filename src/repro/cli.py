"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``figures [IDS...]``
    Regenerate evaluation figure panels (default: all of 2a-7d) at the
    paper's scale and print the plotted series as tables.
``validate FIGURE [--ranks P] [--particles N] [--cs C,C,...]``
    Re-run a figure's experiment at event-simulation scale (real message
    passing) and print the resulting breakdown.
``tune [--machine M] [--ranks P] [--particles N] [--rcut R] [--dim D]``
    Autotune the replication factor for a machine/problem and print the
    ranked candidates.
``simulate [--ranks P] [-c C] [--particles N] [--steps S] ...``
    Run a small functional MD simulation end to end and report physics
    (energy drift) plus the simulated-machine phase breakdown.
``algorithms``
    List every algorithm in the registry with its capabilities (modeled vs
    functional, replication knob, fault-recovery mode, requirements).
``compare [--ranks P] [-c C] [--particles N] [--algorithms A,B,...] ...``
    Run registered algorithms on one shared workload/machine and tabulate
    phase times, message/byte counts and force agreement side by side
    (``--workers N`` parallelizes the rows; ``--engine-tier heuristic``
    swaps in the vectorized phase-advance simulator).
``profile --algo NAME [--p P] [-c C] [--n N] ...``
    Run one algorithm with full observability: write its metrics registry
    as JSON and its timeline as a Chrome trace (loadable in Perfetto /
    ``chrome://tracing``), and print the metrics summary.
``soak [--trials N] [--seed S] [--schedule POLICY] [--workers N] ...``
    Randomized chaos campaign (faults + checkpoint/resume), asserting
    bitwise agreement with fault-free references; ``--schedule`` runs the
    chaos legs under a perturbed engine interleaving and ``--workers``
    fans the trials out over worker processes.
``schedfuzz [--algorithms A,B,...] [--schedules N] [--workers N] ...``
    Interleaving fuzzer: run every registered algorithm under N explored
    scheduler policies and assert bitwise-identical forces, virtual times
    and communication volumes; failures dump replayable JSON artifacts.
    ``--workers`` fans the campaign out over worker processes.
``sweep --algorithms A,B,... [--ranks P,P,...] [--cache DIR] ...``
    Resilient configuration sweep: expand a grid of run descriptors and
    execute them through the supervised executor (``--retry`` /
    ``--task-timeout`` recover crashed and hung workers) with a durable
    content-addressed run cache consulted first — re-running an
    identical sweep is served from cache with zero engine recomputes.
    Tasks that fail every attempt land in a replayable ``--quarantine``
    JSON artifact.
``serve [--host H] [--port P] [--cache DIR] [--workers N] ...``
    Boot the sweep-orchestration service: a localhost HTTP daemon that
    accepts batches of sweep descriptors (``POST /jobs``), deduplicates
    them against the durable run cache and against identical in-flight
    jobs (single-flight coalescing), executes cold work through the
    supervised executor, and serves per-job status (``GET /jobs/<id>``),
    service counters (``GET /stats``) and an HTML dashboard
    (``GET /dashboard``).  See ``docs/service.md``.

``compare``, ``soak`` and ``schedfuzz`` accept the same ``--retry`` /
``--task-timeout`` / ``--cache`` resilience flags when running with
``--workers``; cached or retried runs stay bitwise identical to serial.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["build_parser", "main", "parse_faults"]


def parse_faults(spec: str):
    """Parse a ``--faults`` specification into a
    :class:`~repro.simmpi.faults.FaultSchedule`.

    The spec is a comma-separated list of events:

    ==================  ====================================================
    ``kill:R@T``        kill rank ``R`` at virtual time ``T`` seconds
    ``kill:R#N``        kill rank ``R`` once it has executed ``N`` ops
    ``delay:S>D:SEC``   delay the next ``S -> D`` transfer by ``SEC`` seconds
    ``drop:S>D[:K]``    drop the next ``S -> D`` transfer ``K`` times
                        (default 1; each drop costs a retry round-trip)
    ``corrupt:S>D``     flip one payload bit on the next ``S -> D`` transfer
    ``seed:N``          seed the schedule's per-channel random streams
    ``drop_prob:P``     random model: drop each transfer with prob. ``P``
    ``delay_prob:P``    random model: delay each transfer with prob. ``P``
    ``corrupt_prob:P``  random model: corrupt each transfer with prob. ``P``
    ``checksum:on``     verify payload CRCs; caught corruption is
                        retransmitted instead of delivered (``on``/``off``)
    ``backoff:B``       multiply the retry timeout by ``B`` per attempt
    ``retries:N``       retransmit budget before a transfer times out
    ==================  ====================================================

    Example: ``kill:3@1e-4,drop:0>1:2,seed:7`` or
    ``corrupt_prob:0.01,checksum:on,backoff:2,seed:7``.
    """
    from repro.simmpi.faults import (CorruptTransfer, DelayTransfer,
                                     DropTransfer, FaultSchedule, KillRank)

    def _flag(text: str) -> bool:
        low = text.strip().lower()
        if low in ("on", "true", "1", "yes"):
            return True
        if low in ("off", "false", "0", "no"):
            return False
        raise ValueError(f"expected on/off, got {text!r}")

    def _channel(text: str) -> tuple[int, int]:
        src, sep, dst = text.partition(">")
        if not sep:
            raise ValueError(
                f"fault channel must look like SRC>DST, got {text!r}"
            )
        return int(src), int(dst)

    events = []
    kwargs: dict = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        kind, sep, rest = item.partition(":")
        if not sep:
            raise ValueError(f"malformed fault event {item!r}")
        if kind == "seed":
            kwargs["seed"] = int(rest)
        elif kind in ("drop_prob", "delay_prob", "corrupt_prob"):
            kwargs[kind] = float(rest)
        elif kind == "checksum":
            kwargs["checksum"] = _flag(rest)
        elif kind == "backoff":
            kwargs["retry_backoff"] = float(rest)
        elif kind == "retries":
            kwargs["max_retries"] = int(rest)
        elif kind == "kill":
            if "@" in rest:
                rank, at = rest.split("@", 1)
                events.append(KillRank(int(rank), at_time=float(at)))
            elif "#" in rest:
                rank, ops = rest.split("#", 1)
                events.append(KillRank(int(rank), after_ops=int(ops)))
            else:
                raise ValueError(
                    f"kill needs R@TIME or R#OPS, got {rest!r}"
                )
        elif kind == "delay":
            chan, sep2, sec = rest.rpartition(":")
            if not sep2:
                raise ValueError(f"delay needs S>D:SECONDS, got {rest!r}")
            src, dst = _channel(chan)
            events.append(DelayTransfer(src, dst, seconds=float(sec)))
        elif kind == "drop":
            if rest.count(":"):
                chan, _, times = rest.rpartition(":")
                src, dst = _channel(chan)
                events.append(DropTransfer(src, dst, times=int(times)))
            else:
                src, dst = _channel(rest)
                events.append(DropTransfer(src, dst))
        elif kind == "corrupt":
            src, dst = _channel(rest)
            events.append(CorruptTransfer(src, dst))
        else:
            raise ValueError(
                f"unknown fault kind {kind!r} (expected kill, delay, drop, "
                "corrupt, seed, drop_prob, delay_prob, corrupt_prob, "
                "checksum, backoff or retries)"
            )
    return FaultSchedule(events=tuple(events), **kwargs)


def _add_resilience_flags(p) -> None:
    """Attach the shared executor-resilience flags to a subparser."""
    p.add_argument("--retry", type=int, default=0, metavar="K",
                   help="retry each failed/crashed/hung task up to K more "
                        "times with exponential backoff (default 0: one "
                        "attempt only)")
    p.add_argument("--retry-delay", type=float, default=0.05,
                   metavar="SECONDS",
                   help="base backoff delay before the first retry "
                        "(doubles per attempt; default 0.05)")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="kill and retry any task still running after this "
                        "many seconds (default: no timeout)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="durable content-addressed run cache: results of "
                        "identical earlier runs are served from DIR "
                        "instead of recomputed, and new results stored")


def _retry_policy(args):
    """``--retry``/``--retry-delay`` flags -> RetryPolicy (or None)."""
    if not getattr(args, "retry", 0):
        return None
    from repro.core.parallel import RetryPolicy

    return RetryPolicy(max_attempts=args.retry + 1,
                       base_delay=args.retry_delay)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Communication-Optimal N-Body "
                    "Algorithm for Direct Interactions' (IPDPS 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate evaluation figures")
    p_fig.add_argument("ids", nargs="*", metavar="FIG",
                       help="panel ids like 2a 3b 6c (default: all)")
    p_fig.add_argument("--chart", action="store_true",
                       help="render ASCII charts instead of tables")
    p_fig.add_argument("--format", dest="fmt", default="table",
                       choices=["table", "csv", "json"],
                       help="output format (overridden by --chart)")

    p_val = sub.add_parser("validate",
                           help="scaled-down event-simulation of a figure")
    p_val.add_argument("figure", metavar="FIG", help="panel id, e.g. 2a")
    p_val.add_argument("--ranks", type=int, default=64)
    p_val.add_argument("--particles", type=int, default=4096)
    p_val.add_argument("--cs", default="1,2,4,8",
                       help="comma-separated replication factors")

    p_tune = sub.add_parser("tune", help="autotune the replication factor")
    p_tune.add_argument("--machine", default="generic",
                        choices=["generic", "hopper", "intrepid"])
    p_tune.add_argument("--ranks", type=int, default=64)
    p_tune.add_argument("--particles", type=int, default=4096)
    p_tune.add_argument("--rcut", type=float, default=None,
                        help="cutoff radius (omit for all-pairs)")
    p_tune.add_argument("--dim", type=int, default=2)

    p_sim = sub.add_parser("simulate", help="run a functional MD simulation")
    p_sim.add_argument("--ranks", type=int, default=16)
    p_sim.add_argument("-c", "--replication", type=int, default=2)
    p_sim.add_argument("--particles", type=int, default=256)
    p_sim.add_argument("--steps", type=int, default=10)
    p_sim.add_argument("--dt", type=float, default=1e-3)
    p_sim.add_argument("--rcut", type=float, default=None)
    p_sim.add_argument("--dim", type=int, default=2)
    p_sim.add_argument("--integrator", default="euler",
                       choices=["euler", "verlet"])
    p_sim.add_argument("--periodic", action="store_true")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject faults, e.g. 'kill:3#20' or 'drop:0>1:2,seed:7' "
             "(kill:R@T | kill:R#N | delay:S>D:SEC | drop:S>D[:K] | "
             "corrupt:S>D | seed:N | drop_prob:P | checksum:on | backoff:B "
             "| retries:N, comma-separated); rank kills need "
             "replication c >= 2",
    )
    p_sim.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="write checkpoints to DIR during the run")
    p_sim.add_argument("--checkpoint-every", type=int, default=1,
                       metavar="K",
                       help="checkpoint cadence in steps (with "
                            "--checkpoint-dir; default 1)")
    p_sim.add_argument("--resume-from", default=None, metavar="FILE",
                       help="resume from a checkpoint file instead of a "
                            "fresh initial state (the configuration must "
                            "match the run that wrote it)")

    sub.add_parser("algorithms",
                   help="list the registered algorithms and capabilities")

    p_cmp = sub.add_parser(
        "compare",
        help="run registered algorithms side by side on one workload")
    p_cmp.add_argument("--machine", default="generic",
                       choices=["generic", "hopper", "intrepid"])
    p_cmp.add_argument("--ranks", type=int, default=16)
    p_cmp.add_argument("--particles", type=int, default=128)
    p_cmp.add_argument("-c", "--replication", type=int, default=2,
                       help="replication factor where the algorithm has one")
    p_cmp.add_argument("--algorithms", default=None, metavar="A,B,...",
                       help="comma-separated registry names "
                            "(default: every functional algorithm)")
    p_cmp.add_argument("--rcut", type=float, default=None,
                       help="cutoff radius (required by cutoff-windowed "
                            "algorithms; omit to skip them)")
    p_cmp.add_argument("--dim", type=int, default=2)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault schedule applied to every run (same grammar as "
             "simulate --faults); schedules that kill ranks run only on "
             "algorithms with kill recovery — the rest are skipped with "
             "the reason listed",
    )
    p_cmp.add_argument(
        "--schedule", default=None, metavar="POLICY",
        help="scheduler policy for every run: fifo | random[:SEED] | "
             "adversarial[:SEED] (forces must be bitwise identical to "
             "the default FIFO schedule)",
    )
    p_cmp.add_argument(
        "--engine-tier", default="event", choices=["event", "heuristic"],
        help="simulator tier: 'event' (exact, per-message) or 'heuristic' "
             "(vectorized phase-advance; same traffic, no forces — see "
             "docs/performance.md)",
    )
    p_cmp.add_argument("--workers", type=int, default=0, metavar="N",
                       help="run the per-algorithm rows across N worker "
                            "processes (0 = serial, the default)")
    _add_resilience_flags(p_cmp)

    p_prof = sub.add_parser(
        "profile",
        help="run one algorithm and export metrics JSON + a Chrome trace")
    p_prof.add_argument("--algo", required=True, metavar="NAME",
                        help="registry name or canonical alias "
                             "(e.g. ca_allpairs, allpairs, particle_ring)")
    p_prof.add_argument("--p", "--ranks", dest="ranks", type=int, default=16,
                        help="rank count of the simulated machine")
    p_prof.add_argument("-c", "--c", "--replication", dest="replication",
                        type=int, default=1)
    p_prof.add_argument("--n", "--particles", dest="particles", type=int,
                        default=256)
    p_prof.add_argument("--machine", default="generic",
                        choices=["generic", "hopper", "intrepid"])
    p_prof.add_argument("--rcut", type=float, default=None,
                        help="cutoff radius (required by cutoff-windowed "
                             "algorithms)")
    p_prof.add_argument("--dim", type=int, default=None)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--out-dir", default=".", metavar="DIR",
                        help="directory for the exported files (default: .)")

    p_soak = sub.add_parser(
        "soak",
        help="randomized chaos campaign: faults + checkpoint/resume, "
             "asserting bitwise agreement with fault-free references")
    p_soak.add_argument("--trials", type=int, default=10)
    p_soak.add_argument("--seed", type=int, default=0)
    p_soak.add_argument("--first-trial", type=int, default=0, metavar="I",
                        help="start at trial index I (replay a failure "
                             "from a longer campaign)")
    p_soak.add_argument("--no-kills", action="store_true",
                        help="restrict the schedules to transient faults")
    p_soak.add_argument("--out-dir", default=None, metavar="DIR",
                        help="directory for failure artifacts "
                             "(default: a temp dir)")
    p_soak.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop early after this much wall time")
    p_soak.add_argument(
        "--schedule", default=None, metavar="POLICY",
        help="scheduler policy for the chaos/resume runs: fifo | "
             "random[:SEED] | adversarial[:SEED]; the fault-free "
             "reference stays FIFO, so the bitwise check also proves "
             "schedule independence (recorded in failure artifacts)",
    )
    p_soak.add_argument("--workers", type=int, default=0, metavar="N",
                        help="run trials across N worker processes "
                             "(0 = serial; results are bitwise identical)")
    _add_resilience_flags(p_soak)

    p_fuzz = sub.add_parser(
        "schedfuzz",
        help="interleaving fuzzer: explore perturbed engine schedules per "
             "algorithm and assert bitwise-identical forces and traffic")
    p_fuzz.add_argument("--algorithms", default=None, metavar="A,B,...",
                        help="comma-separated registry names "
                             "(default: the whole registry)")
    p_fuzz.add_argument("--schedules", type=int, default=100,
                        help="explored schedules per algorithm (default 100)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (schedule i is a pure function "
                             "of (seed, i))")
    p_fuzz.add_argument("--first-schedule", type=int, default=0, metavar="I",
                        help="start at schedule index I (replay a failure "
                             "from a longer campaign)")
    p_fuzz.add_argument("--out-dir", default=None, metavar="DIR",
                        help="directory for bad-trace artifacts "
                             "(default: a temp dir)")
    p_fuzz.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop early after this much wall time")
    p_fuzz.add_argument("--workers", type=int, default=0, metavar="N",
                        help="fan the campaign out over N worker processes "
                             "(0 = serial; verdicts are identical)")
    _add_resilience_flags(p_fuzz)

    p_sweep = sub.add_parser(
        "sweep",
        help="resilient configuration sweep: supervised executor with "
             "retry/timeout, poison-task quarantine, and a durable "
             "content-addressed run cache")
    p_sweep.add_argument("--algorithms", default=None, metavar="A,B,...",
                         help="comma-separated registry names "
                              "(default: every functional algorithm)")
    p_sweep.add_argument("--machine", default="generic",
                         choices=["generic", "torus", "hopper", "intrepid"])
    p_sweep.add_argument("--ranks", default="16", metavar="P,P,...",
                         help="comma-separated rank counts (default 16)")
    p_sweep.add_argument("--cs", default="1", metavar="C,C,...",
                         help="comma-separated replication factors "
                              "(default 1; clamped to 1 for algorithms "
                              "without a replication knob)")
    p_sweep.add_argument("--particles", default="64", metavar="N,N,...",
                         help="comma-separated particle counts (default 64)")
    p_sweep.add_argument("--seeds", default="0", metavar="S,S,...",
                         help="comma-separated workload seeds (default 0)")
    p_sweep.add_argument("--rcut", type=float, default=None,
                         help="cutoff radius (required by cutoff-windowed "
                              "algorithms; omit to skip them)")
    p_sweep.add_argument("--dim", type=int, default=None)
    p_sweep.add_argument("--hyper-k", type=int, default=None,
                         help="hypercube fan-out k where applicable")
    p_sweep.add_argument(
        "--engine-tier", default="event", choices=["event", "heuristic"],
        help="simulator tier for every sweep point")
    p_sweep.add_argument("--workers", type=int, default=0, metavar="N",
                         help="run sweep points across N supervised worker "
                              "processes (0 = serial, the default)")
    _add_resilience_flags(p_sweep)
    p_sweep.add_argument("--quarantine", default=None, metavar="FILE",
                         help="write tasks that failed every attempt to a "
                              "replayable JSON artifact at FILE")
    p_sweep.add_argument("--out", default=None, metavar="FILE",
                         help="write the sweep records as JSON to FILE")
    p_sweep.add_argument("--expect-cached", action="store_true",
                         help="fail (exit 1) if any sweep point was NOT "
                              "served from the cache — CI uses this to "
                              "prove a warm cache does zero recomputation")

    p_serve = sub.add_parser(
        "serve",
        help="run the sweep-orchestration service: an HTTP job queue "
             "that dedupes against the run cache and in-flight jobs, "
             "with /stats counters and an HTML /dashboard")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1; the "
                              "service has no auth — keep it local)")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="listen port (default 8321; 0 picks an "
                              "ephemeral port and prints it)")
    p_serve.add_argument("--workers", type=int, default=0, metavar="N",
                         help="run cold jobs across N supervised worker "
                              "processes (0 = serial, the default)")
    _add_resilience_flags(p_serve)
    p_serve.add_argument("--quarantine", default=None, metavar="FILE",
                         help="write jobs that failed every attempt to a "
                              "replayable JSON artifact at FILE")

    return parser


def _machine(name: str, p: int):
    from repro.machines import GenericTorus, Hopper, Intrepid

    if name == "hopper":
        cpn = 24 if p % 24 == 0 else _small_cpn(p)
        return Hopper(p, cores_per_node=cpn)
    if name == "intrepid":
        return Intrepid(p, cores_per_node=4 if p % 4 == 0 else 1)
    return GenericTorus(p, cores_per_node=4 if p % 4 == 0 else 1)


def _small_cpn(p: int) -> int:
    for cpn in (12, 8, 6, 4, 2, 1):
        if p % cpn == 0:
            return cpn
    return 1


def _cmd_figures(args, out) -> int:
    from repro.experiments import (PAPER_FIGURES, chart_figure, export_csv,
                                   export_json, render_figure, run_figure)

    ids = args.ids or sorted(PAPER_FIGURES)
    unknown = [f for f in ids if f not in PAPER_FIGURES]
    if unknown:
        print(f"unknown figure ids: {', '.join(unknown)} "
              f"(known: {', '.join(sorted(PAPER_FIGURES))})", file=sys.stderr)
        return 2
    if args.chart:
        renderer = chart_figure
    else:
        renderer = {"table": render_figure, "csv": export_csv,
                    "json": export_json}[args.fmt]
    for fid in ids:
        print(renderer(run_figure(PAPER_FIGURES[fid])), file=out)
        print(file=out)
    return 0


def _cmd_validate(args, out) -> int:
    from repro.experiments import PAPER_FIGURES, render_figure, validate_figure

    if args.figure not in PAPER_FIGURES:
        print(f"unknown figure id {args.figure!r}", file=sys.stderr)
        return 2
    cs = tuple(int(x) for x in args.cs.split(","))
    res = validate_figure(PAPER_FIGURES[args.figure], p=args.ranks,
                          n=args.particles, cs=cs)
    print(f"[event simulation: {args.ranks} ranks, {args.particles} "
          f"particles]", file=out)
    print(render_figure(res), file=out)
    return 0


def _cmd_tune(args, out) -> int:
    from repro.core import autotune_c

    machine = _machine(args.machine, args.ranks)
    kwargs = {}
    if args.rcut is not None:
        kwargs = dict(rcut=args.rcut, box_length=1.0, dim=args.dim)
    result = autotune_c(machine, args.particles, **kwargs)
    print(machine.describe(), file=out)
    print(result.summary(), file=out)
    print(f"chosen replication factor: c = {result.best_c}", file=out)
    return 0


def _cmd_simulate(args, out) -> int:
    import numpy as np

    from repro.core import (
        SimulationConfig,
        allpairs_config,
        cutoff_config,
        run_simulation,
        team_blocks_even,
        team_blocks_spatial,
    )
    from repro.physics import (
        ForceLaw,
        ParticleSet,
        kinetic_energy,
        potential_energy,
    )

    machine = _machine("generic", args.ranks)
    law = ForceLaw(k=1e-5, softening=5e-3)
    particles = ParticleSet.uniform_random(
        args.particles, args.dim, 1.0, max_speed=0.02, seed=args.seed
    )
    if args.rcut is None:
        cfg = allpairs_config(args.ranks, args.replication)
        blocks = team_blocks_even(particles, cfg.grid.nteams)
        elaw = law
    else:
        cfg = cutoff_config(args.ranks, args.replication, rcut=args.rcut,
                            box_length=1.0, dim=args.dim,
                            periodic=args.periodic)
        blocks = team_blocks_spatial(particles, cfg.geometry)
        elaw = law.with_rcut(args.rcut)
        if args.periodic:
            elaw = elaw.with_box(1.0)
    scfg = SimulationConfig(cfg=cfg, law=law, dt=args.dt, nsteps=args.steps,
                            box_length=1.0, periodic=args.periodic,
                            integrator=args.integrator)

    faults = parse_faults(args.faults) if args.faults else None
    policy = None
    if args.checkpoint_dir is not None:
        from repro.core import CheckpointPolicy

        policy = CheckpointPolicy(directory=args.checkpoint_dir,
                                  every=args.checkpoint_every)

    e0 = kinetic_energy(particles.vel) + potential_energy(elaw, particles.pos)
    result = run_simulation(machine, scfg, blocks if args.resume_from is None
                            else None, faults=faults, checkpoint=policy,
                            resume_from=args.resume_from)
    final = result.particles
    e1 = kinetic_energy(final.vel) + potential_energy(elaw, final.pos)

    print(f"{args.steps} steps of {len(final)} particles on "
          f"{machine.describe()}", file=out)
    if faults is not None:
        deaths = result.run.deaths
        if deaths:
            print(f"rank deaths absorbed: "
                  + ", ".join(f"rank {r} at t={t:.3e}s"
                              for r, t in sorted(deaths.items())), file=out)
            for ev in result.recovered:
                print(f"  recovered by rank {ev.recovered_by} "
                      f"({ev.replayed_updates} updates replayed)", file=out)
        else:
            print("fault schedule injected; no rank deaths triggered",
                  file=out)
    for step, path in result.checkpoints:
        print(f"checkpoint after step {step}: {path}", file=out)
    if args.resume_from is not None:
        print(f"resumed from {args.resume_from}", file=out)
    print(f"energy drift: {100 * abs(e1 - e0) / max(abs(e0), 1e-30):.4f}%",
          file=out)
    print(f"simulated machine time: {result.run.elapsed * 1e3:.3f} ms",
          file=out)
    print(result.report.summary(), file=out)
    assert np.isfinite(final.pos).all()
    return 0


def _cmd_algorithms(args, out) -> int:
    from repro.core import get_algorithm, list_algorithms

    print(f"{'name':<22} {'kind':<10} {'c':<5} {'faults':<10} requirements",
          file=out)
    for name in list_algorithms():
        alg = get_algorithm(name)
        needs = []
        if alg.needs_rcut:
            needs.append("rcut")
        if alg.square_p:
            needs.append("square p")
        print(
            f"{name:<22} "
            f"{'functional' if alg.functional else 'modeled':<10} "
            f"{'yes' if alg.supports_c else 'no':<5} "
            f"{alg.fault_mode:<10} "
            f"{', '.join(needs) if needs else '-'}",
            file=out,
        )
        if alg.summary:
            print(f"    {alg.summary}", file=out)
    return 0


def _cmd_compare(args, out) -> int:
    from repro.experiments import compare_algorithms, render_comparison
    from repro.physics import ParticleSet

    machine = _machine(args.machine, args.ranks)
    particles = ParticleSet.uniform_random(args.particles, args.dim, 1.0,
                                           seed=args.seed)
    names = (None if args.algorithms is None
             else [a.strip() for a in args.algorithms.split(",") if a.strip()])
    faults = parse_faults(args.faults) if args.faults else None
    result = compare_algorithms(
        machine, particles, algorithms=names, c=args.replication,
        rcut=args.rcut, faults=faults, schedule=args.schedule,
        engine_tier=args.engine_tier, workers=args.workers,
        retry=_retry_policy(args), task_timeout=args.task_timeout,
        cache=args.cache,
    )
    print(f"{len(result.entries)} algorithms on {machine.describe()}, "
          f"{args.particles} particles, c={args.replication}", file=out)
    print(render_comparison(result), file=out)
    return 0


def _cmd_profile(args, out) -> int:
    import os

    from repro.core.runner import RunSpec, get_algorithm, run
    from repro.metrics import (MetricsRegistry, resolve_algorithm,
                               write_chrome_trace)

    name = resolve_algorithm(args.algo)
    try:
        alg = get_algorithm(name)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    if alg.needs_rcut and args.rcut is None:
        print(f"algorithm {name!r} needs a cutoff radius: pass --rcut",
              file=sys.stderr)
        return 2

    machine = _machine(args.machine, args.ranks)
    metrics = MetricsRegistry()
    spec = RunSpec(
        machine=machine, algorithm=name, n=args.particles,
        c=args.replication if alg.supports_c else 1,
        rcut=args.rcut, dim=args.dim, seed=args.seed, metrics=metrics,
        engine_opts={"record_events": True},
    )
    result = run(spec)

    os.makedirs(args.out_dir, exist_ok=True)
    stem = os.path.join(args.out_dir, f"profile_{args.algo}")
    metrics_path = f"{stem}.metrics.json"
    with open(metrics_path, "w") as fh:
        fh.write(metrics.to_json())
        fh.write("\n")
    trace_path = write_chrome_trace(
        f"{stem}.trace.json", result.trace,
        process_name=f"repro {args.algo} p={args.ranks} "
                     f"c={spec.c} n={args.particles}",
    )

    print(f"{args.algo} on {machine.describe()}, n={args.particles}, "
          f"c={spec.c}", file=out)
    print(metrics.summary(), file=out)
    print(f"metrics JSON:  {metrics_path}", file=out)
    print(f"chrome trace:  {trace_path}  "
          "(load in https://ui.perfetto.dev or chrome://tracing)", file=out)
    return 0


def _cmd_soak(args, out) -> int:
    from repro.experiments.soak import run_soak

    report = run_soak(
        trials=args.trials,
        seed=args.seed,
        first_trial=args.first_trial,
        with_kills=not args.no_kills,
        out_dir=args.out_dir,
        time_budget=args.time_budget,
        schedule=args.schedule,
        workers=args.workers,
        retry=_retry_policy(args),
        task_timeout=args.task_timeout,
        cache=args.cache,
    )
    print(report.summary(), file=out)
    if not report.ok:
        print(f"SOAK FAILED (seed={args.seed})", file=sys.stderr)
        return 1
    return 0


def _cmd_schedfuzz(args, out) -> int:
    from repro.experiments.schedfuzz import run_schedfuzz

    names = (None if args.algorithms is None
             else [a.strip() for a in args.algorithms.split(",") if a.strip()])
    report = run_schedfuzz(
        names,
        schedules=args.schedules,
        seed=args.seed,
        first_schedule=args.first_schedule,
        out_dir=args.out_dir,
        time_budget=args.time_budget,
        workers=args.workers,
        retry=_retry_policy(args),
        task_timeout=args.task_timeout,
        cache=args.cache,
    )
    print(report.summary(), file=out)
    if not report.ok:
        print(f"SCHEDULE FUZZ FAILED (seed={args.seed})", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args, out) -> int:
    import json

    from repro.core.runner import list_algorithms
    from repro.experiments.sweep import expand_grid, run_sweep

    def _ints(text: str) -> list[int]:
        return [int(x) for x in text.split(",") if x.strip()]

    names = ([a.strip() for a in args.algorithms.split(",") if a.strip()]
             if args.algorithms is not None
             else list_algorithms(functional=True))
    try:
        tasks, skipped = expand_grid(
            names, ps=_ints(args.ranks), cs=_ints(args.cs),
            ns=_ints(args.particles), seeds=_ints(args.seeds),
            rcut=args.rcut, dim=args.dim, hyper_k=args.hyper_k,
            engine_tier=args.engine_tier, machine=args.machine,
        )
    except KeyError as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    for name, reason in skipped.items():
        print(f"skipped {name}: {reason}", file=out)
    if not tasks:
        print("sweep: nothing to run (every algorithm was skipped)",
              file=sys.stderr)
        return 2
    if args.expect_cached and not args.cache:
        print("sweep: --expect-cached needs --cache DIR (without a cache "
              "nothing can be served, so the assertion can never hold)",
              file=sys.stderr)
        return 2
    report = run_sweep(
        tasks, workers=args.workers, retry=_retry_policy(args),
        task_timeout=args.task_timeout, cache=args.cache,
        quarantine=args.quarantine,
    )
    print(report.summary(), file=out)
    if args.out:
        records = [
            {"task": d,
             "status": o.status,
             "attempts": o.attempts,
             "elapsed": None if o.value is None else o.value["elapsed"],
             "critical_messages": (None if o.value is None
                                   else o.value["critical_messages"]),
             "critical_bytes": (None if o.value is None
                                else o.value["critical_bytes"]),
             "error": o.error}
            for d, o in zip(report.tasks, report.outcomes)
        ]
        with open(args.out, "w") as fh:
            json.dump({"format": "repro-sweep-v1", "records": records},
                      fh, indent=2)
            fh.write("\n")
        print(f"records JSON: {args.out}", file=out)
    if args.expect_cached:
        # "coalesced" outcomes never touched an engine either — they
        # shared an in-batch duplicate's (cached) result, so only
        # computed/failed points break the zero-recompute promise.
        recomputed = [o for o in report.outcomes
                      if o.status not in ("cached", "coalesced")]
        if recomputed:
            print(f"SWEEP NOT FULLY CACHED: {len(recomputed)} of "
                  f"{len(report.outcomes)} points recomputed "
                  f"(indices {[o.index for o in recomputed]})",
                  file=sys.stderr)
            return 1
    if not report.ok:
        print(f"SWEEP FAILED: {len(report.failures)} of "
              f"{len(report.outcomes)} points produced no result",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args, out) -> int:
    import asyncio

    from repro.service import JobQueue, serve

    queue = JobQueue(
        cache=args.cache, workers=args.workers, retry=_retry_policy(args),
        task_timeout=args.task_timeout, quarantine=args.quarantine,
    )
    announce = (lambda line: print(line, file=out, flush=True))
    try:
        asyncio.run(serve(queue, host=args.host, port=args.port,
                          announce=announce))
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", file=out)
    except OSError as exc:
        print(f"repro serve: cannot bind {args.host}:{args.port} ({exc})",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = sys.stdout if out is None else out
    args = build_parser().parse_args(argv)
    handler = {
        "figures": _cmd_figures,
        "validate": _cmd_validate,
        "tune": _cmd_tune,
        "simulate": _cmd_simulate,
        "algorithms": _cmd_algorithms,
        "compare": _cmd_compare,
        "profile": _cmd_profile,
        "soak": _cmd_soak,
        "schedfuzz": _cmd_schedfuzz,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

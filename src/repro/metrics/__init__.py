"""Structured metrics and model-validation observability.

The tracing layer (:mod:`repro.simmpi.tracing`) records *what happened*
per rank and phase; this package turns that record into first-class
observability:

* :mod:`repro.metrics.registry` — counters / gauges / histograms in a
  :class:`MetricsRegistry`, the object a run populates
  (``RunSpec(metrics=...)``, ``Engine(metrics=...)``);
* :mod:`repro.metrics.collect` — projection of engine results into the
  metric schema (messages, words, per-phase virtual time, retries,
  checkpoint bytes, ...), applied once per run so the hot path pays
  nothing;
* :mod:`repro.metrics.chrometrace` — Chrome-trace / Perfetto export of
  recorded timelines (``python -m repro profile`` writes these);
* :mod:`repro.metrics.validate` — the model-validation pass: measured S
  (messages) and W (words) per algorithm against the closed forms in
  :mod:`repro.theory`, across a (p, c, n) sweep, with constant-factor
  tolerance bands.  ``tools/metrics_gate.py`` enforces it in CI;
* :mod:`repro.metrics.service` — the service-layer counter/gauge schema
  (submitted / cache-hit / coalesced / computed / failed jobs, queue
  depth) that ``python -m repro serve`` maintains and ``/stats`` serves.

See `docs/observability.md` for the full tour.
"""

from repro.metrics.chrometrace import chrome_trace, write_chrome_trace
from repro.metrics.collect import collect_run_metrics, record_engine_run
from repro.metrics.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.metrics.service import (
    SERVICE_COUNTERS,
    SERVICE_GAUGES,
    install_service_metrics,
    service_snapshot,
)
from repro.metrics.validate import (
    ALGORITHM_ALIASES,
    MODEL_CASES,
    CaseValidation,
    ModelCase,
    PointResult,
    ValidationReport,
    resolve_algorithm,
    validate_case,
    validate_models,
)

__all__ = [
    "ALGORITHM_ALIASES",
    "CaseValidation",
    "Counter",
    "Gauge",
    "Histogram",
    "MODEL_CASES",
    "MetricsRegistry",
    "ModelCase",
    "PointResult",
    "SERVICE_COUNTERS",
    "SERVICE_GAUGES",
    "ValidationReport",
    "chrome_trace",
    "collect_run_metrics",
    "install_service_metrics",
    "record_engine_run",
    "resolve_algorithm",
    "service_snapshot",
    "validate_case",
    "validate_models",
    "write_chrome_trace",
]

"""The metric primitives: counters, gauges, histograms, and their registry.

Everything here is deterministic plain data — a metric is a named,
optionally labeled accumulator, and a :class:`MetricsRegistry` is the
container a run populates.  There is no background thread, no clock, no
global state: callers create a registry, thread it through a run
(``RunSpec(metrics=...)``), and read it back afterwards.  Two runs that
perform the same simulated work therefore produce *identical* registries
(modulo the host wall-time gauges, which are the only nondeterministic
entries and are named ``*.wall_s`` so they are easy to exclude) — the
fast-path parity tests lock exactly this.

Naming convention: dotted lowercase names (``comm.messages``,
``kernel.pairs``), with dimensions such as the phase expressed as labels
(``comm.messages{phase=shift}``), mirroring the Prometheus data model so
exports stay mechanically translatable.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (messages, bytes, pairs, ...)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "labels": self.labels,
                "value": self.value}


class Gauge:
    """A point-in-time value (makespan, rank count, peak RSS, ...)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum (first observation always wins)."""
        if value > self.value:
            self.value = value

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "labels": self.labels,
                "value": self.value}


class Histogram:
    """A distribution summary with power-of-two buckets.

    Observations land in the bucket ``2^k`` that is the smallest power of
    two >= the value (non-positive values land in bucket ``0``), so the
    bucket layout is fixed and deterministic without pre-declaring bounds.
    ``count``/``total``/``vmin``/``vmax`` summarize the raw stream.
    """

    __slots__ = ("name", "labels", "count", "total", "vmin", "vmax",
                 "buckets")

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total: float = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None
        self.buckets: dict[float, int] = {}

    def observe(self, value: float) -> None:
        """Add one observation: update count/total/min/max and its bucket."""
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        bound = 0.0
        if value > 0:
            bound = 1.0
            while bound < value:
                bound *= 2.0
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name, "kind": self.kind, "labels": self.labels,
            "count": self.count, "total": self.total,
            "min": self.vmin, "max": self.vmax, "mean": self.mean,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """A run's worth of metrics: get-or-create accessors plus exports.

    The registry is the unit that moves through the system — the engine,
    the force kernel and the simulation driver each populate the one they
    are handed (``None`` anywhere means "off" and costs nothing on the hot
    path).  Metric identity is ``(name, labels)``; asking twice returns
    the same accumulator, and asking for an existing name with a different
    metric kind raises.
    """

    def __init__(self):
        self._metrics: dict[tuple[str, tuple], Any] = {}

    def _get(self, cls, name: str, labels: dict) -> Any:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, {
                str(k): str(v) for k, v in sorted(labels.items())
            })
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r}{labels or ''} already registered as "
                f"{metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """Get-or-create the counter ``name`` with ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get-or-create the gauge ``name`` with ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """Get-or-create the histogram ``name`` with ``labels``."""
        return self._get(Histogram, name, labels)

    # -- reading ------------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        """Metrics in deterministic (name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels) -> Any | None:
        """The metric under ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0, **labels) -> float:
        """Shorthand: the value of a counter/gauge, or ``default``."""
        metric = self.get(name, **labels)
        return default if metric is None else metric.value

    def values(self, name: str) -> dict[tuple[tuple[str, str], ...], Any]:
        """Every labeled series of ``name``: label-key -> metric."""
        return {key[1]: m for key, m in sorted(self._metrics.items())
                if key[0] == name}

    # -- exports ------------------------------------------------------------

    def to_dict(self, *, exclude_wall: bool = False) -> dict:
        """Plain-data form: ``{"schema": 1, "metrics": [...]}``.

        ``exclude_wall=True`` drops the host wall-time gauges (every
        metric whose name ends in ``.wall_s``) — the determinism tests
        compare registries this way.
        """
        rows = [m.to_dict() for m in self
                if not (exclude_wall and m.name.endswith(".wall_s"))]
        return {"schema": 1, "metrics": rows}

    def to_json(self, *, indent: int = 1, exclude_wall: bool = False) -> str:
        """The :meth:`to_dict` form serialized as JSON."""
        return json.dumps(self.to_dict(exclude_wall=exclude_wall),
                          indent=indent, sort_keys=True)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (counters add, gauges take the
        max, histograms concatenate their streams)."""
        for m in other:
            if isinstance(m, Counter):
                self.counter(m.name, **m.labels).inc(m.value)
            elif isinstance(m, Gauge):
                self.gauge(m.name, **m.labels).max(m.value)
            else:
                mine = self.histogram(m.name, **m.labels)
                mine.count += m.count
                mine.total += m.total
                if m.vmin is not None and (mine.vmin is None
                                           or m.vmin < mine.vmin):
                    mine.vmin = m.vmin
                if m.vmax is not None and (mine.vmax is None
                                           or m.vmax > mine.vmax):
                    mine.vmax = m.vmax
                for b, n in m.buckets.items():
                    mine.buckets[b] = mine.buckets.get(b, 0) + n

    def summary(self) -> str:
        """A human-readable listing, one metric per line."""
        lines = []
        for m in self:
            labels = ",".join(f"{k}={v}" for k, v in m.labels.items())
            tag = f"{m.name}{{{labels}}}" if labels else m.name
            if isinstance(m, Histogram):
                lines.append(f"{tag:<44} n={m.count} mean={m.mean:.6g} "
                             f"min={m.vmin} max={m.vmax}")
            else:
                val = m.value
                shown = f"{val:.6g}" if isinstance(val, float) else str(val)
                lines.append(f"{tag:<44} {shown}")
        return "\n".join(lines)

"""The service-layer metric schema: job counters and queue gauges.

:mod:`repro.service` accounts for every submission it sees with the same
:class:`~repro.metrics.registry.MetricsRegistry` primitives runs use, so
one ``/stats`` snapshot (or a dashboard render) is a plain registry
export.  This module pins the schema — names are part of the service's
API surface (tests and the CI smoke assert on them), so they live here
rather than as string literals inside the queue:

==============================  =========================================
``service.jobs.submitted``      every job descriptor received, valid or
                                duplicate (labeled ``algorithm=``)
``service.jobs.cache_hits``     submissions served O(1) from the durable
                                run cache or an already-completed job
``service.jobs.coalesced``      submissions attached to an identical
                                in-flight job (single-flight dedup)
``service.jobs.computed``       jobs that actually executed an engine run
``service.jobs.failed``         jobs whose every attempt failed
``service.queue.depth``         gauge: jobs currently queued or running
==============================  =========================================

The determinism contract means the counters partition perfectly: every
submission is exactly one of cache-hit, coalesced, or the head of a job
that ends computed or failed.  ``served_without_compute = cache_hits +
coalesced`` is the number a production deployment wants to maximize.
"""

from __future__ import annotations

from repro.metrics.registry import Counter, Gauge, MetricsRegistry

__all__ = [
    "SERVICE_COUNTERS",
    "SERVICE_GAUGES",
    "install_service_metrics",
    "service_snapshot",
]

#: Counter names the service maintains, in reporting order.
SERVICE_COUNTERS = (
    "service.jobs.submitted",
    "service.jobs.cache_hits",
    "service.jobs.coalesced",
    "service.jobs.computed",
    "service.jobs.failed",
)

#: Gauge names the service maintains.
SERVICE_GAUGES = ("service.queue.depth",)


def install_service_metrics(metrics: MetricsRegistry) -> MetricsRegistry:
    """Pre-register every service series at zero so exports are stable.

    A registry only contains series that were touched; pre-registering
    means an idle service still exports the full schema (a dashboard or
    scraper never has to special-case "counter missing vs. zero").
    Returns the registry for chaining.
    """
    for name in SERVICE_COUNTERS:
        metrics.counter(name)
    for name in SERVICE_GAUGES:
        metrics.gauge(name)
    return metrics


def service_snapshot(metrics: MetricsRegistry) -> dict:
    """The unlabeled service series as a flat ``{name: value}`` dict.

    Per-algorithm labeled series (``service.jobs.submitted{algorithm=…}``)
    are summarized separately by the dashboard; this flat form is what
    ``/stats`` serves and what the smoke gate asserts on.
    """
    snap: dict = {}
    for name in SERVICE_COUNTERS + SERVICE_GAUGES:
        metric = metrics.get(name)
        if metric is None or not isinstance(metric, (Counter, Gauge)):
            snap[name] = 0
        else:
            snap[name] = metric.value
    return snap

"""Chrome-trace export of a recorded engine timeline.

The engine's optional timeline (``engine_opts={"record_events": True}``)
is a list of :class:`~repro.simmpi.tracing.TimelineEvent` records on the
simulated machine's *virtual* clock.  This module serializes them in the
Chrome Trace Event Format (the JSON array-of-events flavor), which loads
directly in ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:

* one track (``tid``) per simulated rank, named ``rank N``;
* one complete (``"ph": "X"``) slice per event, named after its phase,
  categorized by its kind (``compute`` / ``wait`` / ``xfer`` / ``hwcoll``),
  with byte counts and the peer rank in ``args``;
* virtual seconds are mapped to trace microseconds, so one simulated
  microsecond reads as one microsecond in the viewer.

``python -m repro profile`` and ``examples/profile_run.py`` produce these
files; `docs/observability.md` walks through loading one.
"""

from __future__ import annotations

import json
from typing import Iterable

__all__ = ["chrome_trace", "write_chrome_trace"]

#: Virtual seconds -> trace timestamp units (Chrome traces use microseconds).
_US_PER_S = 1e6


def chrome_trace(events: Iterable, *, process_name: str = "repro") -> dict:
    """Build the Chrome Trace Event Format document for ``events``.

    Events are emitted sorted by start time then rank (matching
    :func:`~repro.simmpi.tracing.timeline_to_json`), preceded by metadata
    records naming the process and one thread per rank.  The result is a
    plain dict — pass it to :func:`json.dump` or use
    :func:`write_chrome_trace`.
    """
    events = sorted(events, key=lambda e: (e.t_start, e.rank, e.t_end))
    ranks = sorted({e.rank for e in events})
    rows: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for r in ranks:
        rows.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": r,
            "args": {"name": f"rank {r}"},
        })
        rows.append({
            "name": "thread_sort_index", "ph": "M", "pid": 0, "tid": r,
            "args": {"sort_index": r},
        })
    for e in events:
        row = {
            "name": e.phase,
            "cat": e.kind,
            "ph": "X",
            "pid": 0,
            "tid": e.rank,
            "ts": e.t_start * _US_PER_S,
            "dur": (e.t_end - e.t_start) * _US_PER_S,
            "args": {"kind": e.kind},
        }
        if e.nbytes:
            row["args"]["nbytes"] = e.nbytes
        if e.peer >= 0:
            row["args"]["peer"] = e.peer
        rows.append(row)
    return {"traceEvents": rows, "displayTimeUnit": "ms",
            "otherData": {"clock": "virtual", "ts_unit": "us"}}


def write_chrome_trace(path, events: Iterable, *,
                       process_name: str = "repro") -> str:
    """Write :func:`chrome_trace` of ``events`` to ``path``; returns the
    path as a string (for log lines)."""
    doc = chrome_trace(events, process_name=process_name)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return str(path)

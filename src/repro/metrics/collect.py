"""Populating a :class:`~repro.metrics.registry.MetricsRegistry` from runs.

The accounting itself already exists — the engine's per-rank, per-phase
:class:`~repro.simmpi.tracing.TraceReport` and its op histogram are kept on
every run.  This module is the bridge: it projects that accounting into
named metrics once, after the run, so enabling metrics adds **zero** work
to the engine's hot loop (pay-for-use, like the tracer itself).

Metric schema (all populated by :func:`record_engine_run`):

=============================  ==========================================
``engine.ops{kind}``           engine operations by kind (compute, isend,
                               irecv, wait, hwcoll, fsync)
``comm.messages{phase}``       messages sent, summed over ranks, per phase
``comm.bytes{phase}``          bytes sent, summed over ranks, per phase
``comm.words{phase}``          the same traffic in 52-byte particle words
                               (the paper's W unit)
``comm.max_messages{phase}``   max over ranks of messages sent in a phase
                               — the latency cost S of that phase
``comm.max_bytes{phase}``      max over ranks of bytes sent in a phase —
                               the bandwidth cost W of that phase
``comm.critical_messages``     max over ranks of total messages sent
``comm.critical_bytes``        max over ranks of total bytes sent
``time.virtual_s{phase}``      max over ranks of virtual seconds per phase
``faults.retries``             retransmitted transfers (drop/corrupt)
``faults.redelivered``         checksum-caught corruptions redelivered
``faults.deaths``              ranks killed by the fault schedule
``rank.messages`` (histogram)  per-rank total messages sent
``rank.bytes`` (histogram)     per-rank total bytes sent
``run.ranks``                  rank count of the simulated machine
``run.nops``                   engine operations processed
``run.elapsed_virtual_s``      virtual makespan of the run
``run.wall_s``                 host wall-clock seconds of the engine loop
                               (the only nondeterministic entry)
``kernel.pairs``               interactions computed by the force kernel
                               (populated by the kernel, not here)
``checkpoint.bytes/files``     checkpoint output (populated by the driver)
=============================  ==========================================
"""

from __future__ import annotations

from repro.machines.base import PARTICLE_BYTES
from repro.metrics.registry import MetricsRegistry

__all__ = ["collect_run_metrics", "record_engine_run"]


def record_engine_run(metrics: MetricsRegistry, result, *,
                      op_histogram: dict | None = None,
                      wall_s: float | None = None) -> MetricsRegistry:
    """Project one engine :class:`~repro.simmpi.engine.RunResult` into
    ``metrics``.

    Called by the engine itself at the end of :meth:`Engine.run` when it
    was constructed with a registry; also usable directly on any saved
    result.  Counter entries *accumulate*, so recording several runs into
    one registry (a multi-step simulation, a sweep) sums their traffic,
    while gauges keep the maximum.
    """
    report = result.report
    for tr in report.traces:
        total_msgs = 0
        total_bytes = 0
        for label, tot in tr.phases.items():
            if tot.messages_sent:
                metrics.counter("comm.messages", phase=label).inc(
                    tot.messages_sent)
                metrics.counter("comm.bytes", phase=label).inc(tot.bytes_sent)
            if tot.retries:
                metrics.counter("faults.retries").inc(tot.retries)
            if tot.redelivered:
                metrics.counter("faults.redelivered").inc(tot.redelivered)
            total_msgs += tot.messages_sent
            total_bytes += tot.bytes_sent
        metrics.histogram("rank.messages").observe(total_msgs)
        metrics.histogram("rank.bytes").observe(total_bytes)
    for label in report.phase_labels():
        msgs = report.max_messages(label)
        nbytes = report.max_bytes(label)
        secs = report.max_time(label)
        if msgs:
            metrics.gauge("comm.max_messages", phase=label).max(msgs)
        if nbytes:
            metrics.gauge("comm.max_bytes", phase=label).max(nbytes)
        if secs:
            metrics.gauge("time.virtual_s", phase=label).max(secs)
        sent = metrics.value("comm.bytes", phase=label)
        if sent:
            metrics.gauge("comm.words", phase=label).set(
                sent / PARTICLE_BYTES)
    metrics.gauge("comm.critical_messages").max(report.critical_messages())
    metrics.gauge("comm.critical_bytes").max(report.critical_bytes())
    if result.deaths:
        metrics.counter("faults.deaths").inc(len(result.deaths))
    if op_histogram:
        for kind, count in op_histogram.items():
            if count:
                metrics.counter("engine.ops", kind=kind).inc(count)
    metrics.counter("run.nops").inc(result.nops)
    metrics.gauge("run.ranks").max(len(result.clocks))
    metrics.gauge("run.elapsed_virtual_s").max(result.elapsed)
    if wall_s is not None:
        metrics.gauge("run.wall_s").max(wall_s)
    return metrics


def collect_run_metrics(run, metrics: MetricsRegistry | None = None,
                        ) -> MetricsRegistry:
    """Metrics for an already-finished pipeline :class:`~repro.core.runner.Run`
    (or raw engine :class:`~repro.simmpi.engine.RunResult`).

    The after-the-fact twin of passing ``RunSpec(metrics=...)``: useful
    when the run object is all you have.  Kernel pair counts cannot be
    reconstructed post hoc, so ``kernel.pairs`` stays absent — thread a
    registry through the spec to get it.
    """
    if metrics is None:
        metrics = MetricsRegistry()
    result = getattr(run, "run", run)  # pipeline Run or raw RunResult
    return record_engine_run(metrics, result)

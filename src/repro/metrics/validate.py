"""Measured-vs-modeled communication validation (the observability gate).

The paper's central claim is quantitative: the CA all-pairs algorithm
sends ``S = O(p/c**2)`` messages and ``W = O(n/c)`` words per step, the
cutoff variant ``S = O(m/c)`` / ``W = O(mn/p)``, and the baselines their
classic costs.  :mod:`repro.theory.costs` states those closed forms;
*this* module closes the loop by running each algorithm on the event
simulator, measuring the actual per-rank message/word maxima of the
phases the expression models, and failing loudly when measurement drifts
from theory beyond constant-factor tolerance bands.

Method
------
For every :class:`ModelCase` a (p, c, n) sweep runs through the registry
pipeline.  Per point, the measured latency cost ``S`` is the max over
ranks of messages sent in the case's modeled phases, and the bandwidth
cost ``W`` is the max over ranks of bytes sent there, in 52-byte particle
words.  Each is divided by the theory prediction with unit constants; the
case passes when

* every ratio lies inside an absolute band (default ``[0.25, 4]`` —
  the implementation constant vs the big-O constant), and
* the ratios' max/min spread across the sweep stays below a bound
  (default ``2.5``) — the sharp test: a constant factor cancels in the
  spread, so drift *with* p, c or n (the wrong asymptotic shape) fails
  even when every individual ratio looks plausible.

``tools/metrics_gate.py`` runs this in CI; ``ValidationReport.summary()``
prints the full measured/predicted table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.machines.base import PARTICLE_BYTES
from repro.theory.bounds import LowerBound
from repro.theory.costs import (
    ca_allpairs_cost,
    ca_cutoff_cost,
    force_decomposition_cost,
    half_systolic_cost,
    hyper_systolic_cost,
    particle_decomposition_cost,
    systolic_ring_cost,
)

__all__ = [
    "ALGORITHM_ALIASES",
    "CaseValidation",
    "MODEL_CASES",
    "ModelCase",
    "PointResult",
    "ValidationReport",
    "resolve_algorithm",
    "validate_case",
    "validate_models",
]

#: Canonical paper-facing names -> registry names.  The observability
#: layer (profile CLI, validation, the metrics gate) accepts either.
ALGORITHM_ALIASES = {
    "ca_allpairs": "allpairs",
    "ca_cutoff": "cutoff",
    "ca_symmetric": "symmetric",
}


def resolve_algorithm(name: str) -> str:
    """Map a canonical/paper name (``ca_allpairs``) to its registry name."""
    return ALGORITHM_ALIASES.get(name, name)


@dataclass(frozen=True)
class ModelCase:
    """One algorithm's measured-vs-modeled contract.

    ``phases`` names the trace phases the closed form models (the paper's
    cost expressions cover the shift/exchange traffic, not the O(log)
    bcast/reduce bookkeeping around it, so each case measures exactly the
    phases its expression is about).  ``predict(n, p, c)`` returns the
    theory :class:`~repro.theory.bounds.LowerBound` with unit constants.
    """

    name: str
    algorithm: str
    phases: tuple[str, ...]
    predict: Callable[[int, int, int], LowerBound]
    sweep: tuple[tuple[int, int, int], ...]  # (p, c, n) points
    band: tuple[float, float] = (0.25, 4.0)
    spread: float = 2.5
    rcut: float | None = None
    dim: int = 1


@dataclass(frozen=True)
class PointResult:
    """Measured and predicted costs of one sweep point."""

    p: int
    c: int
    n: int
    s_measured: float
    w_measured: float  # in particle words
    s_predicted: float
    w_predicted: float

    @property
    def s_ratio(self) -> float:
        return self.s_measured / self.s_predicted

    @property
    def w_ratio(self) -> float:
        return self.w_measured / self.w_predicted


@dataclass
class CaseValidation:
    """One case's sweep results plus every tolerance violation found."""

    case: ModelCase
    points: list[PointResult] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class ValidationReport:
    """All validated cases; ``ok`` only when every case passed."""

    cases: list[CaseValidation]

    @property
    def ok(self) -> bool:
        return all(cv.ok for cv in self.cases)

    def summary(self) -> str:
        """The measured/predicted table plus any failures, as text."""
        lines = [
            f"{'case':<22} {'p':>4} {'c':>3} {'n':>6} "
            f"{'S meas':>8} {'S pred':>8} {'ratio':>6}  "
            f"{'W meas':>9} {'W pred':>9} {'ratio':>6}"
        ]
        for cv in self.cases:
            for pt in cv.points:
                lines.append(
                    f"{cv.case.name:<22} {pt.p:>4} {pt.c:>3} {pt.n:>6} "
                    f"{pt.s_measured:>8.1f} {pt.s_predicted:>8.2f} "
                    f"{pt.s_ratio:>6.2f}  "
                    f"{pt.w_measured:>9.1f} {pt.w_predicted:>9.2f} "
                    f"{pt.w_ratio:>6.2f}"
                )
            status = "OK" if cv.ok else "FAIL"
            lines.append(f"{cv.case.name:<22} -> {status}")
            for msg in cv.failures:
                lines.append(f"    {msg}")
        verdict = "all models validated" if self.ok else "MODEL DRIFT DETECTED"
        lines.append(verdict)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The registered model cases.
# ---------------------------------------------------------------------------


def _cutoff_m(p: int, c: int, rcut: float, box: float = 1.0) -> int:
    """Equation 6's window span for a 1-D team grid of ``p/c`` cells."""
    nteams = p // c
    return math.ceil(rcut * nteams / box - 1e-12)


def _predict_cutoff(rcut: float):
    def predict(n: int, p: int, c: int) -> LowerBound:
        return ca_cutoff_cost(n, p, c, _cutoff_m(p, c, rcut))

    return predict


def _predict_allgather(n: int, p: int, c: int) -> LowerBound:
    # The software allgather here is recursive doubling: log2(p) rounds,
    # each doubling the held data — O(log p) messages but the same O(n)
    # words as the classic O(p)-message ring form the paper's expression
    # (particle_decomposition_cost) describes.
    return LowerBound(messages=max(1.0, math.log2(p)),
                      words=particle_decomposition_cost(n, p).words)


def _predict_hyper(n: int, p: int, c: int) -> LowerBound:
    # The sweep runs with RunSpec.hyper_k = None, i.e. the regular
    # O(sqrt(p)) base; the closed form takes the same K.
    from repro.core.commsched import default_hyper_k

    return hyper_systolic_cost(n, p, default_hyper_k(p))


def _predict_force_decomposition(n: int, p: int, c: int) -> LowerBound:
    # Plimpton's S = O(log p) carries over directly; the W = O(n/sqrt(p))
    # closed form assumes a bandwidth-optimal (pipelined) broadcast,
    # whereas the implementation uses binomial trees whose roots send
    # log2(sqrt(p)) copies of each of the two blocks (row + column) a
    # rank needs — an extra 2 log2(sqrt(p)) factor on the critical rank.
    base = force_decomposition_cost(n, p)
    tree = 2.0 * max(1.0, math.log2(math.sqrt(p)))
    return LowerBound(messages=base.messages, words=base.words * tree)


#: The validated algorithms.  Names are canonical (paper-facing); the
#: ``algorithm`` field is the registry entry that actually runs.
MODEL_CASES: dict[str, ModelCase] = {
    "ca_allpairs": ModelCase(
        name="ca_allpairs",
        algorithm="allpairs",
        phases=("shift",),
        predict=lambda n, p, c: ca_allpairs_cost(n, p, c),
        sweep=((16, 1, 256), (16, 2, 256), (16, 4, 256),
               (32, 2, 256), (32, 4, 256), (16, 2, 512)),
    ),
    "ca_cutoff": ModelCase(
        name="ca_cutoff",
        algorithm="cutoff",
        phases=("shift",),
        predict=_predict_cutoff(0.3),
        sweep=((16, 1, 256), (16, 2, 256), (32, 1, 256),
               (32, 2, 256), (16, 1, 512)),
        rcut=0.3,
        dim=1,
    ),
    "particle_ring": ModelCase(
        name="particle_ring",
        algorithm="particle_ring",
        phases=("shift",),
        predict=lambda n, p, c: particle_decomposition_cost(n, p),
        sweep=((8, 1, 256), (16, 1, 256), (32, 1, 256), (16, 1, 512)),
    ),
    "particle_allgather": ModelCase(
        name="particle_allgather",
        algorithm="particle_allgather",
        phases=("allgather",),
        predict=_predict_allgather,
        sweep=((8, 1, 256), (16, 1, 256), (32, 1, 256), (16, 1, 512)),
    ),
    "force_decomposition": ModelCase(
        name="force_decomposition",
        algorithm="force_decomposition",
        phases=("bcast", "reduce"),
        predict=_predict_force_decomposition,
        sweep=((16, 1, 256), (64, 1, 256), (16, 1, 512)),
    ),
    "systolic_ring": ModelCase(
        name="systolic_ring",
        algorithm="systolic_ring",
        phases=("shift",),
        predict=lambda n, p, c: systolic_ring_cost(n, p),
        sweep=((8, 1, 256), (16, 1, 256), (32, 1, 256), (16, 1, 512)),
    ),
    "half_systolic": ModelCase(
        name="half_systolic",
        algorithm="half_systolic",
        # The closed form counts particle blocks; the wire additionally
        # carries the reaction accumulator (d doubles per particle), a
        # constant factor (52+8d)/52 well inside the band.
        phases=("shift", "return"),
        predict=lambda n, p, c: half_systolic_cost(n, p),
        sweep=((8, 1, 256), (16, 1, 256), (32, 1, 256), (16, 1, 512)),
    ),
    "hyper_systolic": ModelCase(
        name="hyper_systolic",
        algorithm="hyper_systolic",
        # Distribution moves blocks, collection moves force arrays — the
        # blended bytes-per-word sit below 1 but constant across the sweep.
        phases=("shift", "collect"),
        predict=_predict_hyper,
        sweep=((16, 1, 256), (32, 1, 256), (64, 1, 256), (16, 1, 512)),
    ),
}


# ---------------------------------------------------------------------------
# Measurement and judgment.
# ---------------------------------------------------------------------------


def _measure_point(case: ModelCase, p: int, c: int, n: int,
                   machine_factory=None,
                   engine_tier: str = "event") -> PointResult:
    """Run one sweep point through the pipeline and read S and W back."""
    from repro.core.runner import RunSpec, run
    from repro.machines import GenericMachine

    factory = machine_factory or (lambda ranks: GenericMachine(nranks=ranks))
    spec = RunSpec(
        machine=factory(p), algorithm=case.algorithm, n=n, seed=0, c=c,
        rcut=case.rcut, dim=case.dim if case.rcut is not None else None,
        engine_tier=engine_tier,
    )
    report = run(spec).report
    s_meas = 0.0
    w_bytes = 0.0
    for tr in report.traces:
        msgs = sum(tr.phases[ph].messages_sent
                   for ph in case.phases if ph in tr.phases)
        nbytes = sum(tr.phases[ph].bytes_sent
                     for ph in case.phases if ph in tr.phases)
        s_meas = max(s_meas, msgs)
        w_bytes = max(w_bytes, nbytes)
    pred = case.predict(n, p, c)
    return PointResult(
        p=p, c=c, n=n,
        s_measured=s_meas, w_measured=w_bytes / PARTICLE_BYTES,
        s_predicted=pred.messages, w_predicted=pred.words,
    )


def _point_task(task: tuple) -> PointResult:
    """Parallel work unit: one sweep point of a *registered* model case.

    Cases are looked up by name in :data:`MODEL_CASES` because their
    ``predict`` closures are not picklable — only registered cases with
    the default machine factory fan out; everything else measures
    serially.
    """
    case_name, p, c, n, engine_tier = task
    return _measure_point(MODEL_CASES[case_name], p, c, n,
                          engine_tier=engine_tier)


def _parallelizable(case: ModelCase, machine_factory) -> bool:
    """Whether a case's points may run in worker processes."""
    return machine_factory is None and MODEL_CASES.get(case.name) is case


def _judge_case(case: ModelCase, points: list[PointResult], *,
                band: tuple[float, float] | None = None,
                spread: float | None = None) -> CaseValidation:
    """Judge measured sweep points against the case's tolerance bands."""
    band = band or case.band
    spread = spread or case.spread
    cv = CaseValidation(case=case, points=list(points))
    lo, hi = band
    for label, ratios in (
        ("S", [pt.s_ratio for pt in cv.points]),
        ("W", [pt.w_ratio for pt in cv.points]),
    ):
        for pt, r in zip(cv.points, ratios):
            if not lo <= r <= hi:
                cv.failures.append(
                    f"{label} at (p={pt.p}, c={pt.c}, n={pt.n}): measured/"
                    f"predicted = {r:.3f} outside band [{lo}, {hi}]"
                )
        rmin, rmax = min(ratios), max(ratios)
        if rmin > 0 and rmax / rmin > spread:
            cv.failures.append(
                f"{label} ratio drifts across the sweep: spread "
                f"{rmax / rmin:.2f}x exceeds {spread}x — measured cost does "
                f"not scale as the model predicts"
            )
    return cv


#: Run-cache namespace for measured sweep points (bump on schema change).
VALIDATE_NAMESPACE = "modelcase-v1"


def _point_key(case_name: str, p: int, c: int, n: int,
               engine_tier: str) -> str:
    """Cache fingerprint of one measured sweep point."""
    return f"point;case={case_name};p={p};c={c};n={n};tier={engine_tier}"


def validate_case(case: ModelCase, *, machine_factory=None,
                  band: tuple[float, float] | None = None,
                  spread: float | None = None,
                  engine_tier: str = "event",
                  workers: int = 0, retry=None,
                  task_timeout: float | None = None,
                  cache=None) -> CaseValidation:
    """Sweep one case and judge every ratio against its tolerance bands.

    ``engine_tier`` selects the simulator the sweep runs on (``"event"``
    or ``"heuristic"`` — both must satisfy the same closed forms).
    ``workers > 0`` measures the sweep points in spawned worker
    processes; this only applies to cases registered in
    :data:`MODEL_CASES` under the default machine factory (ad-hoc cases
    carry unpicklable closures and measure serially).  ``retry`` /
    ``task_timeout`` add executor-level crash/hang recovery to that
    fleet (:func:`repro.core.parallel.run_supervised`).

    ``cache`` (a directory path or
    :class:`~repro.core.runcache.RunCache`) serves previously measured
    points keyed on ``(case, p, c, n, engine_tier)``; judgement always
    re-runs against the current bands, so a cached sweep still fails a
    tightened tolerance.  Like the fan-out, caching only applies to
    registered cases under the default machine factory — an ad-hoc
    case's closures are not represented in the key.
    """
    from repro.core.parallel import parallel_map
    from repro.core.runcache import MISS, resolve_cache

    store = (resolve_cache(cache, namespace=VALIDATE_NAMESPACE)
             if _parallelizable(case, machine_factory) else None)
    sweep = list(case.sweep)
    points: list = [None] * len(sweep)
    todo: list[int] = []
    for i, (p, c, n) in enumerate(sweep):
        if store is not None:
            hit = store.get(_point_key(case.name, p, c, n, engine_tier))
            if hit is not MISS:
                points[i] = hit
                continue
        todo.append(i)
    if todo:
        if workers > 0 and _parallelizable(case, machine_factory):
            measured = parallel_map(
                _point_task,
                [(case.name, *sweep[i], engine_tier) for i in todo],
                workers=workers, retry=retry, task_timeout=task_timeout)
        else:
            measured = [_measure_point(case, *sweep[i],
                                       machine_factory=machine_factory,
                                       engine_tier=engine_tier)
                        for i in todo]
        for i, pt in zip(todo, measured):
            points[i] = pt
            if store is not None:
                store.put(_point_key(case.name, *sweep[i], engine_tier), pt)
    return _judge_case(case, points, band=band, spread=spread)


def validate_models(names: list[str] | None = None, *,
                    machine_factory=None, engine_tier: str = "event",
                    workers: int = 0, retry=None,
                    task_timeout: float | None = None,
                    cache=None) -> ValidationReport:
    """Validate the named model cases (default: all of :data:`MODEL_CASES`).

    ``names`` accepts canonical names (``ca_allpairs``) or registry names
    (``allpairs``).  ``machine_factory(p)`` overrides the machine model
    (default: a flat :class:`~repro.machines.GenericMachine`).
    ``engine_tier`` selects the simulator ("event" or "heuristic") — the
    closed forms must hold on both.  ``workers > 0`` measures every sweep
    point of every registered case in one flat fan-out over spawned
    worker processes; each point is a pure function of
    ``(case, p, c, n)``, so the report matches the serial run exactly.
    ``retry`` / ``task_timeout`` / ``cache`` behave as on
    :func:`validate_case` (with a ``cache``, lookups happen per case and
    only the missing points fan out).
    """
    from repro.core.parallel import parallel_map

    if names is None:
        selected = list(MODEL_CASES.values())
    else:
        by_alg = {case.algorithm: case for case in MODEL_CASES.values()}
        selected = []
        for name in names:
            case = MODEL_CASES.get(name) or by_alg.get(resolve_algorithm(name))
            if case is None:
                known = ", ".join(sorted(MODEL_CASES))
                raise KeyError(f"no model case for {name!r} (known: {known})")
            selected.append(case)

    if (cache is None and workers > 0
            and all(_parallelizable(c, machine_factory) for c in selected)):
        tasks = [(case.name, p, c, n, engine_tier)
                 for case in selected for p, c, n in case.sweep]
        flat = parallel_map(_point_task, tasks, workers=workers,
                            retry=retry, task_timeout=task_timeout)
        cases = []
        pos = 0
        for case in selected:
            take = len(case.sweep)
            cases.append(_judge_case(case, flat[pos:pos + take]))
            pos += take
        return ValidationReport(cases=cases)

    return ValidationReport(cases=[
        validate_case(case, machine_factory=machine_factory,
                      engine_tier=engine_tier, workers=workers,
                      retry=retry, task_timeout=task_timeout, cache=cache)
        for case in selected
    ])

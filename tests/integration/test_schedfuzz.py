"""The interleaving fuzzer itself: clean campaigns, bug detection, replay.

Three properties are pinned here:

1. A short campaign over real registry algorithms comes back clean (the
   engine's schedule-independence contract holds).
2. A deliberately schedule-dependent algorithm — one whose forces encode
   the global execution order — is *detected*, and the failure artifact
   carries the replayable ``(algorithm, seed, schedule_seed)`` triple.
3. Campaigns and individual schedules are pure functions of their seeds,
   so every REPLAY hint in a failure report actually reproduces.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.runner import _REGISTRY, Prepared, register_algorithm
from repro.experiments.schedfuzz import derive_schedule, run_schedfuzz

pytestmark = pytest.mark.slow


class TestCleanCampaign:
    def test_short_campaign_over_real_algorithms_passes(self, tmp_path):
        report = run_schedfuzz(["allpairs", "midpoint", "particle_ring"],
                               schedules=4, seed=0, out_dir=str(tmp_path))
        assert report.ok, report.summary()
        assert len(report.checks) == 12
        assert not report.artifacts
        assert not list(tmp_path.iterdir())

    def test_summary_tallies_the_campaign(self):
        report = run_schedfuzz(["symmetric"], schedules=3, seed=2)
        text = report.summary()
        assert "3 schedules explored over 1 algorithms (0 failed)" in text

    def test_time_budget_records_skips(self):
        report = run_schedfuzz(["allpairs", "cutoff"], schedules=2, seed=0,
                               time_budget=0.0)
        assert report.ok
        assert report.skipped


class TestScheduleDerivation:
    def test_schedule_is_pure_in_seed_and_index(self):
        assert derive_schedule(0, 5) == derive_schedule(0, 5)
        assert derive_schedule(0, 5) != derive_schedule(1, 5)

    def test_every_third_schedule_is_adversarial(self):
        kinds = [derive_schedule(0, i).split(":")[0] for i in range(9)]
        assert kinds == ["random", "random", "adversarial"] * 3

    def test_first_schedule_replays_the_same_specs(self):
        full = [derive_schedule(3, i) for i in range(6)]
        assert [derive_schedule(3, i) for i in range(4, 6)] == full[4:]


@pytest.fixture
def schedule_dependent_algorithm():
    """Register an algorithm whose forces leak the execution order."""
    name = "_fuzz_canary"

    @register_algorithm(name, supports_c=False,
                        summary="deliberately schedule-dependent (test only)")
    def _prepare(spec):
        n = spec.count()
        order: list[int] = []  # fresh per run; records who ran first

        def program(comm):
            order.append(comm.rank)
            yield from comm.barrier()
            return (np.arange(n, dtype=np.int64),
                    np.full((n, 2), float(order[0])))

        def collect(result):
            for r in result.results:
                if r is not None:
                    return r

        return Prepared(program=program, collect=collect)

    yield name
    del _REGISTRY[name]


class TestBugDetection:
    def test_schedule_dependent_forces_are_caught(
            self, tmp_path, schedule_dependent_algorithm):
        report = run_schedfuzz([schedule_dependent_algorithm], schedules=6,
                               seed=0, out_dir=str(tmp_path))
        assert not report.ok
        assert report.failures and report.artifacts
        first = report.failures[0]
        assert "forces diverged" in first.detail
        # The replay handle is the documented triple.
        assert first.triple == (schedule_dependent_algorithm, 0,
                                first.schedule_seed)
        text = report.summary()
        assert "REPLAY" in text and "--first-schedule" in text

    def test_artifact_carries_the_replay_triple(
            self, tmp_path, schedule_dependent_algorithm):
        report = run_schedfuzz([schedule_dependent_algorithm], schedules=3,
                               seed=4, out_dir=str(tmp_path))
        assert report.artifacts
        art = json.loads(open(report.artifacts[0]).read())
        check = report.failures[0]
        assert art["algorithm"] == schedule_dependent_algorithm
        assert art["seed"] == 4
        assert art["schedule_seed"] == check.schedule_seed
        assert art["schedule"] == check.schedule
        assert "schedfuzz" in art["replay"]
        # Both run signatures are embedded for offline diffing.
        assert art["baseline"]["forces"]["values"]
        assert art["perturbed"]["forces"]["values"]

    def test_failing_schedule_replays_alone(
            self, tmp_path, schedule_dependent_algorithm):
        full = run_schedfuzz([schedule_dependent_algorithm], schedules=6,
                             seed=0, out_dir=str(tmp_path / "full"))
        bad = full.failures[0]
        replay = run_schedfuzz([schedule_dependent_algorithm], schedules=1,
                               seed=0, first_schedule=bad.index,
                               out_dir=str(tmp_path / "replay"))
        assert not replay.ok
        assert replay.failures[0].schedule == bad.schedule
        assert replay.failures[0].schedule_seed == bad.schedule_seed


class TestCliSmoke:
    def test_schedfuzz_subcommand(self, capsys):
        from repro.cli import main

        rc = main(["schedfuzz", "--algorithms", "allpairs",
                   "--schedules", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 schedules explored over 1 algorithms (0 failed)" in out

    def test_schedfuzz_subcommand_fails_loudly(
            self, capsys, tmp_path, schedule_dependent_algorithm):
        from repro.cli import main

        rc = main(["schedfuzz", "--algorithms", schedule_dependent_algorithm,
                   "--schedules", "4", "--out-dir", str(tmp_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REPLAY" in out and "artifact:" in out

"""End-to-end tests for ``repro.service`` over real HTTP.

Every test boots a live :class:`ServiceThread` (its own event loop on a
daemon thread, ephemeral port) and drives it through
:class:`ServiceClient` — the same stdlib-urllib path an external caller
uses — so the wire format, the routing, and the queue semantics are all
exercised together.  The assertions mirror the service's contract:

* submit -> poll -> record round trip, with the record **bitwise
  identical** to a direct in-process :func:`sweep_task` call;
* cache-hit short-circuit, both in-memory (resubmission to a live
  service) and durable (a fresh service over a pre-warmed cache dir);
* single-flight coalescing: N identical descriptors in one batch cost
  exactly one computation;
* quarantine surfacing for poisoned jobs, replayable via
  :func:`repro.experiments.sweep.replay_quarantine`;
* the counter partition: submitted == cache_hits + coalesced +
  computed + failed (+ still-pending heads, of which these tests leave
  none).
"""

import pytest

from repro.core.runcache import RunCache
from repro.experiments.sweep import (
    SWEEP_NAMESPACE, normalize_task, replay_quarantine, sweep_task,
    task_fingerprint,
)
from repro.service import ServiceClient, ServiceError, ServiceThread, job_id

ALLPAIRS = {"algorithm": "allpairs", "p": 4, "c": 2, "n": 16}
RING = {"algorithm": "particle_ring", "p": 4, "n": 16}
POISON = {"algorithm": "no_such_algorithm", "p": 4, "n": 16}

WAIT = 120.0


@pytest.fixture
def service(tmp_path):
    """A live service (durable cache + quarantine) and its client."""
    with ServiceThread(cache=str(tmp_path / "cache"),
                       quarantine=str(tmp_path / "quarantine.json")) as st:
        yield st, ServiceClient(st.base_url)


def _counters(client) -> dict:
    """The unlabeled service counters, short names."""
    snap = client.stats()["service"]
    return {name.rsplit(".", 1)[1]: snap[name] for name in snap}


class TestRoundTrip:
    def test_submit_poll_record(self, service):
        st, client = service
        assert client.health() == {"ok": True}
        (entry,) = client.submit([ALLPAIRS])
        assert entry["status"] == "queued"
        assert not entry["cached"] and not entry["coalesced"]
        assert entry["id"] == job_id(task_fingerprint(ALLPAIRS))

        snap = client.wait(entry["id"], timeout=WAIT)
        assert snap["status"] == "done"
        assert snap["source"] == "computed"
        assert snap["task"] == normalize_task(ALLPAIRS)
        assert snap["result"]["critical_messages"] > 0

        served = client.record(entry["id"])["record"]
        direct = sweep_task(normalize_task(ALLPAIRS))
        assert served == direct  # bitwise: bytes fields compare equal

    def test_job_listing_in_submission_order(self, service):
        st, client = service
        entries = client.submit([ALLPAIRS, RING])
        for e in entries:
            client.wait(e["id"], timeout=WAIT)
        listed = client.jobs()
        assert [j["id"] for j in listed] == [e["id"] for e in entries]

    def test_error_paths(self, service):
        st, client = service
        with pytest.raises(ServiceError) as exc:
            client.submit([{"algorithm": "allpairs", "bogus": 1}])
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client.job("0" * 16)
        assert exc.value.status == 404
        # a record for an unfinished/unknown state is a 409
        (entry,) = client.submit([POISON])
        client.wait(entry["id"], timeout=WAIT)
        with pytest.raises(ServiceError) as exc:
            client.record(entry["id"])
        assert exc.value.status == 409


class TestCacheDedup:
    def test_resubmission_served_from_memory_not_the_store(self, service):
        st, client = service
        (entry,) = client.submit([ALLPAIRS])
        client.wait(entry["id"], timeout=WAIT)
        before = _counters(client)
        cache_before = client.stats()["cache"]
        assert before["computed"] == 1

        (again,) = client.submit([ALLPAIRS])
        assert again["cached"] is True
        assert again["status"] == "done"
        after = _counters(client)
        assert after["computed"] == 1  # nothing recomputed
        assert after["cache_hits"] == before["cache_hits"] + 1
        # the durable store was NOT re-read to serve the duplicate — the
        # double-count regression ``CacheStats`` documents
        assert client.stats()["cache"] == cache_before

    def test_durable_cache_survives_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with ServiceThread(cache=cache_dir) as st:
            client = ServiceClient(st.base_url)
            (entry,) = client.submit([ALLPAIRS])
            cold = client.wait(entry["id"], timeout=WAIT)
            assert cold["source"] == "computed"
        with ServiceThread(cache=cache_dir) as st:
            client = ServiceClient(st.base_url)
            (entry,) = client.submit([ALLPAIRS])
            assert entry["cached"] is True
            warm = client.job(entry["id"])
            assert warm["status"] == "done" and warm["source"] == "cache"
            stats = client.stats()
            assert stats["cache"]["hits"] == 1
            assert stats["cache"]["misses"] == 0
            assert _counters(client)["computed"] == 0

    def test_prewarmed_by_run_sweep(self, tmp_path):
        # repro sweep and repro serve share the cache namespace: a sweep
        # warms the service.
        from repro.experiments.sweep import run_sweep

        cache_dir = str(tmp_path / "cache")
        swept = run_sweep([ALLPAIRS],
                          cache=RunCache(cache_dir,
                                         namespace=SWEEP_NAMESPACE))
        with ServiceThread(cache=cache_dir) as st:
            client = ServiceClient(st.base_url)
            (entry,) = client.submit([ALLPAIRS])
            assert entry["cached"] is True
            record = client.record(entry["id"])["record"]
            assert record == swept.outcomes[0].value


class TestCoalescing:
    def test_identical_batch_costs_one_computation(self, service):
        st, client = service
        n = 5
        entries = client.submit([dict(ALLPAIRS)] * n)
        assert len({e["id"] for e in entries}) == 1
        assert [e["coalesced"] for e in entries] == [False] + [True] * (n - 1)
        client.wait(entries[0]["id"], timeout=WAIT)
        counters = _counters(client)
        assert counters["submitted"] == n
        assert counters["computed"] == 1
        assert counters["coalesced"] == n - 1
        assert counters["cache_hits"] == 0
        # the one job records every submission
        assert client.job(entries[0]["id"])["submissions"] == n

    def test_counters_partition_submissions(self, service):
        st, client = service
        batch = [ALLPAIRS, dict(ALLPAIRS), RING, POISON]
        entries = client.submit(batch)
        for e in entries:
            client.wait(e["id"], timeout=WAIT)
        client.submit([RING])  # a cache hit on the completed job
        counters = _counters(client)
        assert counters["submitted"] == 5
        assert (counters["cache_hits"] + counters["coalesced"]
                + counters["computed"] + counters["failed"]) == 5
        assert counters["failed"] == 1
        assert client.stats()["jobs"]["failed"] == 1


class TestBitwiseParity:
    def test_cold_cached_coalesced_serve_identical_bits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with ServiceThread(cache=cache_dir) as st:
            client = ServiceClient(st.base_url)
            first, dup = client.submit([dict(ALLPAIRS), dict(ALLPAIRS)])
            client.wait(first["id"], timeout=WAIT)
            cold = client.record(first["id"])
            assert cold["source"] == "computed"
            assert dup["id"] == first["id"]  # coalesced onto the same job
        with ServiceThread(cache=cache_dir) as st:
            client = ServiceClient(st.base_url)
            (entry,) = client.submit([ALLPAIRS])
            cached = client.record(entry["id"])
            assert cached["source"] == "cache"
        direct = sweep_task(normalize_task(ALLPAIRS))
        assert cold["record"] == direct
        assert cached["record"] == direct
        assert cold["record"]["forces"] == cached["record"]["forces"]

    def test_summary_digests_match_record_bytes(self, service):
        import hashlib

        st, client = service
        (entry,) = client.submit([ALLPAIRS])
        snap = client.wait(entry["id"], timeout=WAIT)
        record = client.record(entry["id"])["record"]
        assert (snap["result"]["forces_sha256"]
                == hashlib.sha256(record["forces"]).hexdigest())
        assert (snap["result"]["ids_sha256"]
                == hashlib.sha256(record["ids"]).hexdigest())


class TestQuarantine:
    def test_poisoned_job_surfaces_and_replays(self, service, tmp_path):
        st, client = service
        (entry,) = client.submit([POISON])
        snap = client.wait(entry["id"], timeout=WAIT)
        assert snap["status"] == "failed"
        assert snap["failure"] == "failed"
        assert snap["quarantined"] is True
        assert "no_such_algorithm" in snap["error"]
        assert _counters(client)["failed"] == 1
        # the artifact replays exactly the poisoned descriptor
        qpath = str(tmp_path / "quarantine.json")
        replayed = replay_quarantine(qpath)
        assert len(replayed.tasks) == 1
        assert replayed.tasks[0]["algorithm"] == "no_such_algorithm"
        assert not replayed.ok

    def test_failed_job_resubmission_requeues(self, service):
        st, client = service
        (entry,) = client.submit([POISON])
        client.wait(entry["id"], timeout=WAIT)
        (again,) = client.submit([POISON])
        assert again["status"] == "queued"
        assert not again["cached"] and not again["coalesced"]
        snap = client.wait(again["id"], timeout=WAIT)
        assert snap["status"] == "failed"  # still poisoned, fails again
        assert _counters(client)["failed"] == 2


class TestDashboard:
    def test_dashboard_renders_live_state(self, service):
        st, client = service
        entries = client.submit([ALLPAIRS, dict(ALLPAIRS), RING, POISON])
        for e in entries:
            client.wait(e["id"], timeout=WAIT)
        html = client.dashboard()
        assert html.startswith("<!doctype html>")
        assert "served without compute" in html
        assert "allpairs" in html and "particle_ring" in html
        assert "✕ failed" in html and "(quarantined)" in html
        assert "Completed jobs by algorithm" in html
        # self-contained: no external fetches, no scripts
        assert "<script" not in html and "http://" not in html.replace(
            st.base_url, "")

"""The chaos soak harness itself: short campaigns must come back clean."""

import pytest

from repro.experiments.soak import run_soak

pytestmark = [pytest.mark.slow, pytest.mark.faults]


class TestSoakCampaign:
    def test_short_campaign_passes(self):
        report = run_soak(trials=3, seed=0)
        assert report.ok, report.summary()
        assert len(report.trials) == 3
        assert all(t.outcome in ("ok", "declared") for t in report.trials)
        assert not report.artifacts

    def test_no_kill_campaign_has_no_deaths(self):
        report = run_soak(trials=2, seed=1, with_kills=False)
        assert report.ok, report.summary()
        assert all(t.deaths == 0 for t in report.trials)

    def test_summary_names_every_trial(self):
        report = run_soak(trials=2, seed=0)
        text = report.summary()
        assert "trial   0" in text and "trial   1" in text
        assert "soak seed=0: 2 trials" in text


class TestSoakDeterminism:
    def test_campaign_is_pure_in_seed(self):
        a = run_soak(trials=2, seed=4)
        b = run_soak(trials=2, seed=4)
        assert a.summary() == b.summary()

    def test_trial_is_pure_in_seed_and_index(self):
        """``first_trial`` replays exactly the trial a longer campaign ran —
        the property every REPLAY hint in a failure report relies on."""
        full = run_soak(trials=3, seed=5)
        replay = run_soak(trials=1, seed=5, first_trial=2)
        assert replay.trials[0].describe() == full.trials[2].describe()


class TestSoakBudget:
    def test_time_budget_skips_remaining_trials(self):
        report = run_soak(trials=3, seed=2, time_budget=0.0)
        assert all(t.outcome == "skipped" for t in report.trials)
        assert report.ok  # skipped is not failed

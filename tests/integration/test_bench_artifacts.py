"""Perf guards over the committed ``benchmarks/BENCH_pr7.json`` artifact.

The PR's scaling claims are recorded in a committed benchmark report;
these tests read that artifact (not the live machine) so the claims are
reviewable and can't silently rot:

* the heuristic engine tier advanced a p=10^4-rank, n=2*10^4-particle
  all-pairs run in seconds — the order-of-magnitude scaling target;
* the parallel soak bench recorded both serial and fleet walls plus the
  host's CPU count.  The >=3x speedup assertion only binds when the
  recording host actually had >=4 CPUs — on a single-core host a spawn
  fleet cannot beat serial, and the artifact honestly records that
  instead of faking a multiplier;
* the PR-9 ``BENCH_pr9.json`` artifact additionally records the
  run-cache bench: a warm (100% cache-served) sweep must be far faster
  than the cold compute — that multiplier is CPU-count independent, so
  it binds unconditionally.
"""

import json
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
BENCH = _BENCH_DIR / "BENCH_pr7.json"
BENCH_PR9 = _BENCH_DIR / "BENCH_pr9.json"


@pytest.fixture(scope="module")
def report():
    return json.loads(BENCH.read_text())


@pytest.fixture(scope="module")
def report_pr9():
    return json.loads(BENCH_PR9.read_text())


class TestArtifactShape:
    def test_full_mode_with_environment_stamp(self, report):
        assert report["mode"] == "full"
        assert report["env"]["cpu_count"] >= 1
        assert "numpy" in report["env"]

    def test_legacy_benches_still_present(self, report):
        # The regression gate needs overlap with earlier baselines.
        for name in ("engine_ring", "engine_collectives",
                     "kernel_pairwise", "simulate_e2e"):
            assert name in report["benches"], name


class TestHeuristicScaling:
    def test_p_10k_run_completes_in_seconds(self, report):
        bench = report["benches"]["heuristic_phase_advance"]
        assert bench["ranks"] == 10_000
        assert bench["particles"] == 20_000
        assert bench["wall_s"] <= 5.0, (
            "p=10^4 heuristic advance should take seconds, recorded "
            f"{bench['wall_s']:.2f}s")
        assert bench["virtual_elapsed_s"] > 0

    def test_throughput_recorded(self, report):
        bench = report["benches"]["heuristic_phase_advance"]
        assert bench["metric"] == "ranks_per_s"
        assert bench["rate"] > 1_000


class TestParallelSoak:
    def test_serial_and_fleet_walls_recorded(self, report):
        bench = report["benches"]["parallel_soak"]
        assert bench["trials"] >= 32
        assert bench["workers"] >= 4
        assert bench["serial_wall_s"] > 0
        assert bench["wall_s"] > 0
        assert bench["speedup_vs_serial"] == pytest.approx(
            bench["serial_wall_s"] / bench["wall_s"])

    def test_speedup_on_multicore_recordings(self, report):
        # Binding only where physics allows: a 1-core host cannot give a
        # spawn fleet a real speedup, and the artifact says which it was.
        if report["env"]["cpu_count"] < 4:
            pytest.skip(
                f"artifact recorded on a {report['env']['cpu_count']}-CPU "
                "host; the >=3x multi-core claim does not bind")
        assert report["benches"]["parallel_soak"]["speedup_vs_serial"] >= 3.0


class TestRunCacheArtifact:
    """PR-9 artifact: the warm-cache sweep claim, reviewable from git."""

    def test_pr9_keeps_the_shared_bench_set(self, report_pr9):
        assert report_pr9["mode"] == "full"
        for name in ("engine_ring", "engine_collectives", "kernel_pairwise",
                     "simulate_e2e", "parallel_soak",
                     "heuristic_phase_advance", "runcache_hit"):
            assert name in report_pr9["benches"], name

    def test_cold_and_warm_walls_recorded(self, report_pr9):
        bench = report_pr9["benches"]["runcache_hit"]
        assert bench["tasks"] >= 10
        assert bench["cold_wall_s"] > 0
        assert bench["wall_s"] > 0
        assert bench["speedup_vs_cold"] == pytest.approx(
            bench["cold_wall_s"] / bench["wall_s"])

    def test_warm_sweep_is_dramatically_faster_than_cold(self, report_pr9):
        # Unlike the spawn-fleet speedup this needs no spare CPUs: a
        # cache hit replaces an engine run with a file read, so even a
        # 1-CPU recording host must show a large multiplier.
        bench = report_pr9["benches"]["runcache_hit"]
        assert bench["speedup_vs_cold"] >= 5.0, (
            "warm cache-served sweep should be far faster than cold "
            f"compute, recorded {bench['speedup_vs_cold']:.1f}x")

"""Property fuzzing of whole simulations: conservation and containment.

Hypothesis drives random workloads, decompositions, integrators and
boundary conditions through the full distributed driver; every run must
conserve the particle set, keep positions inside the box, and remain
finite.  Trajectory equality with the serial reference is covered
elsewhere — these tests hammer breadth instead.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SimulationConfig,
    allpairs_config,
    cutoff_config,
    run_simulation,
    team_blocks_even,
    team_blocks_spatial,
)
from repro.machines import GenericMachine
from repro.physics import (
    ForceLaw,
    ParticleSet,
    density_gradient,
    gaussian_clusters,
    two_phase,
)

WORKLOADS = {
    "uniform": lambda n, d, seed: ParticleSet.uniform_random(
        n, d, 1.0, max_speed=0.03, seed=seed),
    "clusters": lambda n, d, seed: gaussian_clusters(
        n, d, 1.0, nclusters=3, spread=0.1, max_speed=0.03, seed=seed),
    "gradient": lambda n, d, seed: density_gradient(
        n, d, 1.0, exponent=2.0, max_speed=0.03, seed=seed),
    "two_phase": lambda n, d, seed: two_phase(
        n, d, 1.0, dense_fraction=0.7, dense_extent=0.4, max_speed=0.03,
        seed=seed),
}


@settings(max_examples=25, deadline=None)
@given(
    workload=st.sampled_from(sorted(WORKLOADS)),
    pc=st.sampled_from([(4, 1), (4, 2), (8, 2), (9, 3), (12, 2)]),
    dim=st.sampled_from([1, 2]),
    cutoff=st.booleans(),
    periodic=st.booleans(),
    integrator=st.sampled_from(["euler", "verlet"]),
    seed=st.integers(0, 1000),
)
def test_simulation_invariants(workload, pc, dim, cutoff, periodic,
                               integrator, seed):
    p, c = pc
    n = 40
    law = ForceLaw(k=5e-6, softening=5e-3)
    ps = WORKLOADS[workload](n, dim, seed)

    if cutoff:
        cfg = cutoff_config(p, c, rcut=0.3, box_length=1.0, dim=dim,
                            periodic=periodic)
        blocks = team_blocks_spatial(ps, cfg.geometry)
    else:
        cfg = allpairs_config(p, c)
        blocks = team_blocks_even(ps, cfg.grid.nteams)

    scfg = SimulationConfig(cfg=cfg, law=law, dt=1e-3, nsteps=4,
                            box_length=1.0, periodic=periodic,
                            integrator=integrator)
    out = run_simulation(GenericMachine(nranks=p), scfg, blocks)
    final = out.particles

    # Conservation: exactly the same particles, once each.
    assert np.array_equal(final.ids, np.arange(n))
    # Containment: inside the box under either boundary condition.
    assert (final.pos >= 0).all()
    assert (final.pos <= 1.0 + 1e-12).all()
    # Sanity: nothing blew up.
    assert np.isfinite(final.pos).all() and np.isfinite(final.vel).all()
    assert out.run.elapsed > 0

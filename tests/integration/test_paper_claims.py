"""The paper's headline experimental claims, checked end to end.

Each test names the claim (section / figure) it reproduces.  Paper-scale
numbers come from the analytic model (validated elsewhere against the exact
event simulator); scaled-down claims run through the simulator directly.
"""

import pytest

from repro.experiments import FIG2, FIG3, FIG6, FIG7, run_figure
from repro.machines import Hopper, Intrepid
from repro.model import (
    allgather_baseline_breakdown,
    allpairs_breakdown,
)


@pytest.fixture(scope="module")
def fig2b():
    return run_figure(FIG2["2b"])


@pytest.fixture(scope="module")
def fig2d():
    return run_figure(FIG2["2d"])


class TestFigure2Claims:
    def test_2a_communication_monotonically_decreasing(self):
        """'Figure 2a shows monotonically decreasing communication with
        increasing c, as predicted by the model.'"""
        res = run_figure(FIG2["2a"])
        comm = list(res.comm_series().values())
        assert all(a >= b * 0.999 for a, b in zip(comm, comm[1:]))

    def test_2b_more_than_halving_until_16(self, fig2b):
        """'We see communication costs more-than-halving until c = 16.'

        Reproduced for c = 2 -> 4 -> 8 -> 16.  Our model's c = 1 -> 2 step
        improves only ~1.2x (the c = 2 column ring's wrap edge crosses half
        the modeled torus and gates the rendezvous shifts); see
        EXPERIMENTS.md for the recorded deviation.
        """
        comm = fig2b.comm_series()
        assert comm["c=2"] < comm["c=1"]
        for c in (4, 8, 16):
            assert comm[f"c={c}"] < comm[f"c={c // 2}"] / 2

    def test_2b_c64_worse_than_c16(self, fig2b):
        """'When c = 64 in the larger simulation, we see a greater cost
        than when c = 16.'"""
        comm = fig2b.comm_series()
        assert comm["c=64"] > comm["c=16"]

    def test_2b_best_balance_at_16(self, fig2b):
        """'...the communication pattern at this point best balances the
        costs of collective and point-to-point communication.'"""
        comm = fig2b.comm_series()
        assert min(comm, key=comm.get) == "c=16"
        assert fig2b.best_label() == "c=16"

    def test_conclusions_best_vs_max_c_within_16_percent(self, fig2b):
        """'the best value of c differed by no more than 16% in any
        experiment' (total time, all-pairs)."""
        totals = {k: b.total for k, b in fig2b.breakdowns.items()}
        assert totals["c=64"] <= 1.16 * min(totals.values())

    def test_2cd_tree_beats_no_tree(self, fig2d):
        """'The specialized network is effective for the naive
        implementation of the interaction algorithm.'"""
        assert (fig2d.breakdowns["c=1 (tree)"].total
                < fig2d.breakdowns["c=1 (no-tree)"].total)

    def test_2cd_ca_beats_tree_hardware(self, fig2d):
        """'our algorithm eventually outperforms the hardware-assisted
        variant by using the torus intelligently.'"""
        tree_total = fig2d.breakdowns["c=1 (tree)"].total
        ca_best = min(
            b.total for k, b in fig2d.breakdowns.items() if k.startswith("c=")
            and "tree" not in k
        )
        assert ca_best < tree_total

    def test_2d_large_communication_reduction_vs_torus_naive(self, fig2d):
        """'For runs that just use the torus, we see a 99.5% reduction in
        communication time.'  (We measure 95-99% on our model; the claim's
        magnitude — two orders — is reproduced.)"""
        naive = fig2d.breakdowns["c=1 (no-tree)"].communication
        best = min(
            b.communication for k, b in fig2d.breakdowns.items()
            if k.startswith("c=") and "tree" not in k
        )
        assert 1.0 - best / naive > 0.95

    def test_speedup_over_11x_exists(self):
        """Conclusions: 'One example shows a speedup of over 11.8x from
        communication avoidance' — comparing communication time of the
        naive decomposition against the best CA configuration."""
        machine = Intrepid(32768, tree=False)
        naive = allgather_baseline_breakdown(machine, 262144, use_tree=False)
        best_comm = min(
            allpairs_breakdown(Intrepid(32768), 262144, c).communication
            for c in (16, 32, 64)
        )
        assert naive.communication / best_comm > 11.8


class TestFigure3Claims:
    def test_3a_nearly_perfect_strong_scaling_with_right_c(self):
        """'our algorithm achieves nearly perfect strong scaling with the
        right choice of c' (Hopper, 196K particles)."""
        res = run_figure(FIG3["3a"])
        best_at_24k = max(
            dict(series).get(24576, 0.0) for series in res.efficiency.values()
        )
        assert best_at_24k > 0.85

    def test_3a_c1_collapses(self):
        res = run_figure(FIG3["3a"])
        c1 = dict(res.efficiency[1])
        assert c1[24576] < 0.5
        assert c1[1536] > 0.8

    def test_3b_intrepid(self):
        res = run_figure(FIG3["3b"])
        best_at_32k = max(
            dict(series).get(32768, 0.0) for series in res.efficiency.values()
        )
        c1 = dict(res.efficiency[1])[32768]
        assert best_at_32k > 0.85
        assert best_at_32k > c1


class TestFigure6Claims:
    @pytest.fixture(scope="class")
    def fig6a(self):
        return run_figure(FIG6["6a"])

    def test_expected_decrease_for_small_c(self, fig6a):
        """'For small values of c, the plots show the expected decrease in
        communication time.'"""
        comm = fig6a.comm_series()
        assert comm["c=4"] < comm["c=1"] / 2

    def test_reduce_grows_considerably_for_large_c(self, fig6a):
        """'for large c the cost of the reduction step grows considerably.'"""
        rows = fig6a.breakdowns
        assert rows["c=64"].get("reduce") > 5 * rows["c=4"].get("reduce")

    def test_shift_stagnates_from_load_imbalance(self, fig6a):
        """'Costs due to shifting appear to stagnate after a few c values,
        unlike in Section III where they approached zero.'"""
        rows = fig6a.breakdowns
        shift_16, shift_64 = rows["c=16"].get("shift"), rows["c=64"].get("shift")
        # No c^2-like collapse between 16 and 64 (less than 4x drop over a
        # 16x c^2 ratio).
        assert shift_64 > shift_16 / 4
        # ...whereas the all-pairs shift keeps falling sharply.
        ap = run_figure(FIG2["2b"]).breakdowns
        assert ap["c=64"].get("shift") < ap["c=16"].get("shift")

    def test_intermediate_c_beats_extremes(self, fig6a):
        totals = {k: b.total for k, b in fig6a.breakdowns.items()}
        best = min(totals, key=totals.get)
        assert best not in ("c=1", "c=64")

    def test_reassignment_cost_present(self, fig6a):
        for b in fig6a.breakdowns.values():
            assert b.get("reassign") > 0

    @pytest.mark.parametrize("fig", ["6b", "6c", "6d"])
    def test_other_panels_same_shape(self, fig):
        res = run_figure(FIG6[fig])
        comm = list(res.comm_series().values())
        assert comm[0] > min(comm)  # c=1 is never the communication optimum
        labels = list(res.breakdowns)
        assert res.best_label() != labels[-1]  # largest c never best


class TestFigure7Claims:
    @pytest.mark.slow
    def test_best_c_roughly_doubles_efficiency_at_largest_size(self):
        """'the best replication of the communication-avoiding algorithm
        yields roughly double the efficiency of a non-replicating algorithm
        on the largest machine sizes.'"""
        ratios = []
        for fig, biggest in [("7a", 24576), ("7b", 24576),
                             ("7c", 32768), ("7d", 32768)]:
            res = run_figure(FIG7[fig])
            by_c = {c: dict(s) for c, s in res.efficiency.items()}
            best = max(v.get(biggest, 0.0) for v in by_c.values())
            ratios.append(best / by_c[1][biggest])
        # Hopper panels exceed 2x; the average across panels is ~2x.
        assert max(ratios) > 2.0
        assert sum(ratios) / len(ratios) > 1.5

    def test_suboptimal_on_smaller_machines(self):
        """'for a given replication factor, the algorithm exhibits
        sub-optimal performance on smaller machines due to load
        imbalance.'"""
        res = run_figure(FIG7["7b"])
        c4 = dict(res.efficiency[4])
        assert c4[96] < c4[6144]

    @pytest.mark.slow
    def test_cutoff_less_efficient_than_allpairs(self):
        """'simulations with a cutoff distance are less efficient than
        simulations without a cutoff... primarily ... load imbalance caused
        by our choice of physical domain decomposition.'

        Reproduced where the granularity and boundary effects live: away
        from the largest machine, 2-D cutoff efficiencies sit well below
        the corresponding all-pairs efficiencies.  (At the very largest
        sizes our simulator shows boundary stalls overlapping interior
        computation, so the best-c points converge; recorded in
        EXPERIMENTS.md.)"""
        ap = run_figure(FIG3["3a"])
        co = run_figure(FIG7["7b"])
        ap_c4 = dict(ap.efficiency[4])
        co_c4 = dict(co.efficiency[4])
        for p in (1536, 3072, 6144):
            assert co_c4[p] < ap_c4[p]


class TestModelPredictions:
    def test_shift_reduction_between_c_and_c_squared(self):
        """Section III-C: 'communication cost should drop by factors
        between c and c^2 for increased c ... accurate for small c.'"""
        m = Hopper(6144)
        shift1 = allpairs_breakdown(m, 24576, 1).get("shift")
        for c in (2, 4):
            shiftc = allpairs_breakdown(m, 24576, c).get("shift")
            ratio = shift1 / shiftc
            assert c * 0.9 <= ratio <= c * c * 1.6

"""Serial/parallel equivalence of every ``--workers`` harness path.

Each harness promises that ``workers > 0`` changes wall-clock shape
only: every trial / schedule / comparison row / sweep point is a pure
function of its seed-derived inputs, so the parallel report must be
*identical* to the serial one — same verdicts, same order, same bytes.
These tests pin that contract by running each harness twice (workers=0
and workers=2) and diffing the reports field by field, including under
chaos kills and perturbed-schedule policies where the RNG bookkeeping
is easiest to get wrong.

PR 9 extends the contract to the resilience paths: results must also be
bitwise identical when tasks are *retried* after injected host chaos
(``REPRO_HOST_CHAOS`` transients and worker SIGKILLs) and when they are
*served from the run cache* instead of recomputed — however a record was
produced, it is the same record.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.core.parallel import HOST_CHAOS_ENV, RetryPolicy
from repro.core.runcache import RunCache
from repro.experiments.compare import COMPARE_NAMESPACE, compare_algorithms
from repro.experiments.schedfuzz import run_schedfuzz
from repro.experiments.soak import SOAK_NAMESPACE, run_soak
from repro.experiments.sweep import expand_grid, run_sweep
from repro.machines import GenericMachine
from repro.metrics.validate import validate_models

pytestmark = pytest.mark.slow

WORKERS = 2


def _soak_digest(report):
    return {
        "seed": report.seed,
        "trials": [asdict(t) for t in report.trials],
        "artifacts": report.artifacts,
    }


class TestSoakParity:
    def test_chaos_trials_bitwise_identical(self, tmp_path):
        kw = dict(trials=4, seed=11, with_kills=True)
        serial = run_soak(out_dir=str(tmp_path / "s"), **kw)
        fleet = run_soak(out_dir=str(tmp_path / "p"), workers=WORKERS, **kw)
        assert _soak_digest(serial) == _soak_digest(fleet)
        assert {t.outcome for t in fleet.trials} <= {"ok", "declared"}

    def test_perturbed_schedule_trials_identical(self, tmp_path):
        kw = dict(trials=3, seed=5, with_kills=False,
                  schedule="adversarial")
        serial = run_soak(out_dir=str(tmp_path / "s"), **kw)
        fleet = run_soak(out_dir=str(tmp_path / "p"), workers=WORKERS, **kw)
        assert _soak_digest(serial) == _soak_digest(fleet)


class TestSchedFuzzParity:
    def test_campaign_identical_including_perturbed_runs(self, tmp_path):
        kw = dict(algorithms=["allpairs", "particle_ring"], schedules=3,
                  seed=1)
        serial = run_schedfuzz(out_dir=str(tmp_path / "s"), **kw)
        fleet = run_schedfuzz(out_dir=str(tmp_path / "p"),
                              workers=WORKERS, **kw)
        assert [asdict(c) for c in serial.checks] == \
            [asdict(c) for c in fleet.checks]
        assert serial.skipped == fleet.skipped
        assert serial.ok and fleet.ok


class TestCompareParity:
    def test_sweep_rows_identical(self):
        kw = dict(n=48, c=2, rcut=0.3, seed=0,
                  algorithms=["allpairs", "cutoff", "symmetric"])
        serial = compare_algorithms(GenericMachine(nranks=16), **kw)
        fleet = compare_algorithms(GenericMachine(nranks=16),
                                   workers=WORKERS, **kw)
        assert len(serial.entries) == len(fleet.entries) == 3
        for a, b in zip(serial.entries, fleet.entries):
            assert a.algorithm == b.algorithm
            assert a.elapsed == b.elapsed
            assert a.critical_messages == b.critical_messages
            assert a.critical_bytes == b.critical_bytes
            assert a.interactions == b.interactions
            assert a.max_abs_dev == b.max_abs_dev
            assert a.phase_table == b.phase_table
        assert serial.skipped == fleet.skipped

    def test_heuristic_tier_rows_have_nan_dev(self):
        result = compare_algorithms(
            GenericMachine(nranks=16), n=48, c=2, rcut=0.3, seed=0,
            algorithms=["allpairs", "cutoff"], engine_tier="heuristic",
            workers=WORKERS)
        assert len(result.entries) == 2
        for entry in result.entries:
            assert np.isnan(entry.max_abs_dev)
            assert entry.critical_messages > 0


class TestValidateParity:
    def test_model_sweep_identical(self):
        serial = validate_models(["allpairs", "particle_ring"])
        fleet = validate_models(["allpairs", "particle_ring"],
                                workers=WORKERS)
        assert serial.ok and fleet.ok
        assert serial.summary() == fleet.summary()

    def test_heuristic_tier_parallel(self):
        report = validate_models(["allpairs"], engine_tier="heuristic",
                                 workers=WORKERS)
        assert report.ok, report.summary()


class TestRetriedRunParity:
    """Injected host chaos + retries must not change a single bit."""

    def _tasks(self):
        tasks, _ = expand_grid(["allpairs", "symmetric"], ps=(8,),
                               cs=(1, 2), ns=(24,))
        return tasks

    def test_sweep_identical_after_injected_transients(self, monkeypatch):
        tasks = self._tasks()
        serial = run_sweep(tasks)
        monkeypatch.setenv(HOST_CHAOS_ENV, "p=0.6,seed=11,mode=raise")
        chaos = run_sweep(tasks, workers=WORKERS,
                          retry=RetryPolicy(max_attempts=3, base_delay=0.01))
        assert chaos.ok
        # the injection is deterministic in (seed, index, attempt) — with
        # this spec it provably fired, so the parity below covers retried
        # tasks, not a lucky chaos-free run
        assert any(o.attempts > 1 for o in chaos.outcomes)
        assert [o.value for o in chaos.outcomes] == \
            [o.value for o in serial.outcomes]

    def test_sweep_identical_after_worker_kills(self, monkeypatch):
        tasks = self._tasks()
        serial = run_sweep(tasks)
        monkeypatch.setenv(HOST_CHAOS_ENV, "p=0.6,seed=11,mode=kill")
        chaos = run_sweep(tasks, workers=WORKERS,
                          retry=RetryPolicy(max_attempts=3, base_delay=0.01))
        assert chaos.ok
        assert any(o.attempts > 1 for o in chaos.outcomes)
        assert [o.value for o in chaos.outcomes] == \
            [o.value for o in serial.outcomes]


class TestCacheServedParity:
    """A cache-served record equals the recomputed record, field by field."""

    def test_soak_cache_round_trip(self, tmp_path):
        cache = RunCache(str(tmp_path / "c"), namespace=SOAK_NAMESPACE)
        kw = dict(trials=3, seed=7, with_kills=True, cache=cache)
        cold = run_soak(out_dir=str(tmp_path / "a"), **kw)
        warm = run_soak(out_dir=str(tmp_path / "b"), **kw)
        assert _soak_digest(cold) == _soak_digest(warm)
        assert cache.stats.hits > 0

    def test_compare_cache_round_trip(self, tmp_path):
        cache = RunCache(str(tmp_path / "c"), namespace=COMPARE_NAMESPACE)
        kw = dict(n=48, c=2, rcut=0.3, seed=0, cache=cache,
                  algorithms=["allpairs", "cutoff"])
        cold = compare_algorithms(GenericMachine(nranks=16), **kw)
        warm = compare_algorithms(GenericMachine(nranks=16), **kw)
        assert cache.stats.hits == len(warm.entries) == 2
        for a, b in zip(cold.entries, warm.entries):
            assert a.algorithm == b.algorithm
            assert a.elapsed == b.elapsed
            assert a.critical_bytes == b.critical_bytes
            assert a.max_abs_dev == b.max_abs_dev
            assert a.phase_table == b.phase_table
            assert np.array_equal(a.run.forces, b.run.forces)

    def test_schedfuzz_cache_round_trip(self, tmp_path):
        cache = RunCache(str(tmp_path / "c"))
        kw = dict(algorithms=["allpairs"], schedules=2, seed=1, cache=cache)
        cold = run_schedfuzz(out_dir=str(tmp_path / "a"), **kw)
        warm = run_schedfuzz(out_dir=str(tmp_path / "b"), **kw)
        assert [asdict(c) for c in cold.checks] == \
            [asdict(c) for c in warm.checks]
        assert cold.ok and warm.ok
        assert cache.stats.hits > 0

    def test_validate_cache_round_trip(self, tmp_path):
        kw = dict(cache=str(tmp_path / "c"))
        cold = validate_models(["allpairs"], **kw)
        warm = validate_models(["allpairs"], **kw)
        assert cold.ok and warm.ok
        assert cold.summary() == warm.summary()

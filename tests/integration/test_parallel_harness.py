"""Serial/parallel equivalence of every ``--workers`` harness path.

Each harness promises that ``workers > 0`` changes wall-clock shape
only: every trial / schedule / comparison row / sweep point is a pure
function of its seed-derived inputs, so the parallel report must be
*identical* to the serial one — same verdicts, same order, same bytes.
These tests pin that contract by running each harness twice (workers=0
and workers=2) and diffing the reports field by field, including under
chaos kills and perturbed-schedule policies where the RNG bookkeeping
is easiest to get wrong.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.experiments.compare import compare_algorithms
from repro.experiments.schedfuzz import run_schedfuzz
from repro.experiments.soak import run_soak
from repro.machines import GenericMachine
from repro.metrics.validate import validate_models

pytestmark = pytest.mark.slow

WORKERS = 2


def _soak_digest(report):
    return {
        "seed": report.seed,
        "trials": [asdict(t) for t in report.trials],
        "artifacts": report.artifacts,
    }


class TestSoakParity:
    def test_chaos_trials_bitwise_identical(self, tmp_path):
        kw = dict(trials=4, seed=11, with_kills=True)
        serial = run_soak(out_dir=str(tmp_path / "s"), **kw)
        fleet = run_soak(out_dir=str(tmp_path / "p"), workers=WORKERS, **kw)
        assert _soak_digest(serial) == _soak_digest(fleet)
        assert {t.outcome for t in fleet.trials} <= {"ok", "declared"}

    def test_perturbed_schedule_trials_identical(self, tmp_path):
        kw = dict(trials=3, seed=5, with_kills=False,
                  schedule="adversarial")
        serial = run_soak(out_dir=str(tmp_path / "s"), **kw)
        fleet = run_soak(out_dir=str(tmp_path / "p"), workers=WORKERS, **kw)
        assert _soak_digest(serial) == _soak_digest(fleet)


class TestSchedFuzzParity:
    def test_campaign_identical_including_perturbed_runs(self, tmp_path):
        kw = dict(algorithms=["allpairs", "particle_ring"], schedules=3,
                  seed=1)
        serial = run_schedfuzz(out_dir=str(tmp_path / "s"), **kw)
        fleet = run_schedfuzz(out_dir=str(tmp_path / "p"),
                              workers=WORKERS, **kw)
        assert [asdict(c) for c in serial.checks] == \
            [asdict(c) for c in fleet.checks]
        assert serial.skipped == fleet.skipped
        assert serial.ok and fleet.ok


class TestCompareParity:
    def test_sweep_rows_identical(self):
        kw = dict(n=48, c=2, rcut=0.3, seed=0,
                  algorithms=["allpairs", "cutoff", "symmetric"])
        serial = compare_algorithms(GenericMachine(nranks=16), **kw)
        fleet = compare_algorithms(GenericMachine(nranks=16),
                                   workers=WORKERS, **kw)
        assert len(serial.entries) == len(fleet.entries) == 3
        for a, b in zip(serial.entries, fleet.entries):
            assert a.algorithm == b.algorithm
            assert a.elapsed == b.elapsed
            assert a.critical_messages == b.critical_messages
            assert a.critical_bytes == b.critical_bytes
            assert a.interactions == b.interactions
            assert a.max_abs_dev == b.max_abs_dev
            assert a.phase_table == b.phase_table
        assert serial.skipped == fleet.skipped

    def test_heuristic_tier_rows_have_nan_dev(self):
        result = compare_algorithms(
            GenericMachine(nranks=16), n=48, c=2, rcut=0.3, seed=0,
            algorithms=["allpairs", "cutoff"], engine_tier="heuristic",
            workers=WORKERS)
        assert len(result.entries) == 2
        for entry in result.entries:
            assert np.isnan(entry.max_abs_dev)
            assert entry.critical_messages > 0


class TestValidateParity:
    def test_model_sweep_identical(self):
        serial = validate_models(["allpairs", "particle_ring"])
        fleet = validate_models(["allpairs", "particle_ring"],
                                workers=WORKERS)
        assert serial.ok and fleet.ok
        assert serial.summary() == fleet.summary()

    def test_heuristic_tier_parallel(self):
        report = validate_models(["allpairs"], engine_tier="heuristic",
                                 workers=WORKERS)
        assert report.ok, report.summary()

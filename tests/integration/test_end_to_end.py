"""End-to-end runs through the public API only."""

import numpy as np
import pytest

from repro.core import (
    SimulationConfig,
    allpairs_config,
    autotune_c,
    cutoff_config,
    run_allpairs,
    run_cutoff,
    run_simulation,
    team_blocks_even,
    team_blocks_spatial,
)
from repro.machines import GenericTorus, Hopper, Intrepid
from repro.physics import (
    ForceLaw,
    ParticleSet,
    kinetic_energy,
    potential_energy,
    reference_forces,
)

from tests.conftest import assert_forces_close


class TestQuickstartFlow:
    """The README quickstart, as a test."""

    def test_forces_and_report(self):
        particles = ParticleSet.uniform_random(256, 2, 1.0, seed=0)
        machine = GenericTorus(nranks=16, cores_per_node=4)
        out = run_allpairs(machine, particles, c=4)
        assert out.forces.shape == (256, 2)
        ref = reference_forces(ForceLaw(), particles)
        assert_forces_close(out.forces, ref)
        text = out.report.summary()
        for phase in ("bcast", "shift", "compute", "reduce"):
            assert phase in text


class TestMDWorkflow:
    def test_small_md_run_conserves_energy(self):
        """A short MD simulation with cutoff, reassignment and reflective
        walls stays physical."""
        law = ForceLaw(k=1e-5, softening=5e-3)
        particles = ParticleSet.uniform_random(128, 2, 1.0, max_speed=0.02,
                                               seed=3)
        cfg = cutoff_config(16, 2, rcut=0.3, box_length=1.0, dim=2)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=1e-3, nsteps=10,
                                box_length=1.0)
        blocks = team_blocks_spatial(particles, cfg.geometry)

        e0 = kinetic_energy(particles.vel) + potential_energy(
            law.with_rcut(0.3), particles.pos
        )
        out = run_simulation(GenericTorus(nranks=16, cores_per_node=4), scfg,
                             blocks)
        final = out.particles
        e1 = kinetic_energy(final.vel) + potential_energy(
            law.with_rcut(0.3), final.pos
        )
        assert abs(e1 - e0) / max(abs(e0), 1e-12) < 0.05
        assert (final.pos >= 0).all() and (final.pos <= 1).all()

    def test_allpairs_md_on_hopper_model(self):
        law = ForceLaw(k=1e-5)
        particles = ParticleSet.uniform_random(96, 2, 1.0, max_speed=0.05,
                                               seed=4)
        cfg = allpairs_config(48, 4)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=1e-3, nsteps=3,
                                box_length=1.0)
        out = run_simulation(Hopper(48, cores_per_node=12), scfg,
                             team_blocks_even(particles, cfg.grid.nteams))
        assert len(out.particles) == 96
        assert out.run.elapsed > 0


class TestTuningWorkflow:
    def test_autotune_then_run(self):
        machine = GenericTorus(nranks=32, cores_per_node=4, alpha=2e-5,
                               pair_time=2e-9)
        tuned = autotune_c(machine, 2048)
        particles = ParticleSet.uniform_random(128, 2, 1.0, seed=5)
        out = run_allpairs(machine, particles, tuned.best_c)
        ref = reference_forces(ForceLaw(), particles)
        assert_forces_close(out.forces, ref)


class TestCrossMachineConsistency:
    def test_same_physics_on_all_machines(self):
        """Forces are machine-independent; only timings change."""
        law = ForceLaw()
        ps = ParticleSet.uniform_random(64, 2, 1.0, seed=6)
        outs = [
            run_allpairs(m, ps, 2, law=law)
            for m in (
                GenericTorus(nranks=8, cores_per_node=2),
                Hopper(8, cores_per_node=2),
                Intrepid(8, cores_per_node=2),
            )
        ]
        for out in outs[1:]:
            assert np.allclose(out.forces, outs[0].forces)
        times = [out.run.elapsed for out in outs]
        assert len(set(times)) > 1  # machines do differ in time

    def test_cutoff_same_physics_across_c_and_dims(self):
        law = ForceLaw()
        ps = ParticleSet.uniform_random(80, 2, 1.0, seed=7)
        ref = reference_forces(law.with_rcut(0.3), ps)
        for c, team_dims in [(1, (8,)), (2, (2, 2)), (4, (2,))]:
            out = run_cutoff(GenericTorus(nranks=8, cores_per_node=2), ps, c,
                             rcut=0.3, box_length=1.0, law=law,
                             team_dims=team_dims, dim=len(team_dims))
            assert_forces_close(out.forces, ref)

"""The ``perftrack --compare`` regression gate, exercised on synthetic
reports.

``tools/perftrack.py --compare A B`` is what CI runs to decide whether a
PR regressed the committed baselines, so its arithmetic and exit codes
are pinned here without running any real benches: speedups are wall-time
ratios of B over A, only shared benches are compared, a slowdown past
``--regress-tol`` exits 1, and disjoint reports exit 2 rather than
silently passing.
"""

import io
import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

from perftrack import _resolve_report, compare_reports  # noqa: E402


def _report(path, benches, mode="full"):
    payload = {
        "schema": 1,
        "mode": mode,
        "repeats": 1,
        "env": {"cpu_count": 1},
        "benches": {
            name: {"wall_s": wall, "wall_s_all": [wall],
                   "ops": 1, "rate": 1.0 / wall, "metric": "ops_per_s"}
            for name, wall in benches.items()
        },
    }
    path.write_text(json.dumps(payload))
    return path


class TestResolveReport:
    def test_literal_path_wins(self, tmp_path):
        path = _report(tmp_path / "custom.json", {"a": 1.0})
        assert _resolve_report(str(path)) == path

    def test_tag_maps_into_bench_dir(self, tmp_path):
        path = _report(tmp_path / "BENCH_pr99.json", {"a": 1.0})
        assert _resolve_report("pr99", bench_dir=tmp_path) == path

    def test_unknown_tag_names_the_miss(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="BENCH_nope.json"):
            _resolve_report("nope", bench_dir=tmp_path)


class TestCompareReports:
    def test_speedup_table_and_clean_exit(self, tmp_path):
        _report(tmp_path / "BENCH_old.json", {"ring": 2.0, "kernel": 1.0})
        _report(tmp_path / "BENCH_new.json", {"ring": 1.0, "kernel": 0.5})
        out = io.StringIO()
        rc = compare_reports("old", "new", regress_tol=1.1,
                             bench_dir=tmp_path, out=out)
        assert rc == 0
        assert "2.00x" in out.getvalue()

    def test_regression_past_tolerance_exits_one(self, tmp_path):
        _report(tmp_path / "BENCH_old.json", {"ring": 1.0})
        _report(tmp_path / "BENCH_new.json", {"ring": 1.6})
        out = io.StringIO()
        rc = compare_reports("old", "new", regress_tol=1.5,
                             bench_dir=tmp_path, out=out)
        assert rc == 1
        assert "REGRESSION" in out.getvalue()
        assert "1.60x" in out.getvalue()

    def test_slowdown_inside_tolerance_passes(self, tmp_path):
        _report(tmp_path / "BENCH_old.json", {"ring": 1.0})
        _report(tmp_path / "BENCH_new.json", {"ring": 1.2})
        rc = compare_reports("old", "new", regress_tol=1.5,
                             bench_dir=tmp_path, out=io.StringIO())
        assert rc == 0

    def test_one_sided_benches_cannot_regress(self, tmp_path):
        # A bench only present in one report is listed, not compared.
        _report(tmp_path / "BENCH_old.json", {"ring": 1.0, "retired": 0.1})
        _report(tmp_path / "BENCH_new.json", {"ring": 1.0, "added": 99.0})
        out = io.StringIO()
        rc = compare_reports("old", "new", regress_tol=1.01,
                             bench_dir=tmp_path, out=out)
        assert rc == 0
        assert "only in old" in out.getvalue()
        assert "only in new" in out.getvalue()

    def test_disjoint_reports_exit_two(self, tmp_path):
        _report(tmp_path / "BENCH_old.json", {"ring": 1.0})
        _report(tmp_path / "BENCH_new.json", {"other": 1.0})
        rc = compare_reports("old", "new", bench_dir=tmp_path,
                             out=io.StringIO())
        assert rc == 2

    def test_mode_mismatch_warns(self, tmp_path):
        _report(tmp_path / "BENCH_old.json", {"ring": 1.0}, mode="smoke")
        _report(tmp_path / "BENCH_new.json", {"ring": 1.0}, mode="full")
        out = io.StringIO()
        compare_reports("old", "new", bench_dir=tmp_path, out=out)
        assert "WARNING" in out.getvalue()

    def test_committed_baselines_compare_cleanly(self):
        # The real committed artifacts must stay loadable and comparable.
        rc = compare_reports("pr3", "pr7", regress_tol=float("inf"),
                             out=io.StringIO())
        assert rc == 0

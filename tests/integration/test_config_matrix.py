"""Systematic configuration matrix: every algorithm variant against the
serial reference over a grid of machine shapes, replication factors,
dimensionalities, boundary conditions and layouts.

Each cell is a distinct code path (different schedules, windows, layouts,
kernels); the assertion is always the same: forces equal the serial
reference, which the pair-coverage tests elsewhere tie to the exactly-once
property.
"""

import numpy as np
import pytest

from repro.core import (
    run_allpairs,
    run_cutoff,
    run_midpoint,
    run_spatial,
    run_symmetric,
)
from repro.machines import GenericMachine
from repro.physics import ForceLaw, ParticleSet, reference_forces

from tests.conftest import assert_forces_close

LAW = ForceLaw(k=1e-4, softening=2e-3)
N = 44


def particles(dim, seed):
    return ParticleSet.uniform_random(N, dim, 1.0, max_speed=0.05, seed=seed)


def all_divisor_cs(p):
    return [c for c in range(1, p + 1) if p % c == 0]


class TestAllPairsMatrix:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18,
                                   20, 24])
    def test_every_divisor_c(self, p):
        ps = particles(2, seed=p)
        ref = reference_forces(LAW, ps)
        for c in all_divisor_cs(p):
            out = run_allpairs(GenericMachine(nranks=p), ps, c, law=LAW)
            assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("p,c", [(8, 2), (12, 3), (18, 3)])
    @pytest.mark.parametrize("layout", ["rows", "teams"])
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_layouts_and_dimensions(self, p, c, layout, dim):
        ps = particles(dim, seed=100 + dim)
        ref = reference_forces(LAW, ps)
        out = run_allpairs(GenericMachine(nranks=p), ps, c, law=LAW,
                           layout=layout)
        assert_forces_close(out.forces, ref)


class TestSymmetricMatrix:
    @pytest.mark.parametrize("p", [2, 4, 6, 8, 10, 12, 16, 18])
    def test_every_divisor_c(self, p):
        ps = particles(2, seed=200 + p)
        ref = reference_forces(LAW, ps)
        for c in all_divisor_cs(p):
            out = run_symmetric(GenericMachine(nranks=p), ps, c, law=LAW)
            assert_forces_close(out.forces, ref)


class TestCutoffMatrix:
    @pytest.mark.parametrize("p", [4, 6, 8, 9, 12, 16, 20])
    @pytest.mark.parametrize("rcut", [0.12, 0.3, 0.7])
    @pytest.mark.parametrize("periodic", [False, True])
    def test_1d_grid(self, p, rcut, periodic):
        if periodic and rcut > 0.5:
            pytest.skip("minimum image needs rcut <= L/2")
        ps = particles(1, seed=300 + p)
        law = LAW.with_rcut(rcut)
        if periodic:
            law = law.with_box(1.0)
        ref = reference_forces(law, ps)
        for c in [c for c in all_divisor_cs(p) if c * c <= 4 * p][:4]:
            out = run_cutoff(GenericMachine(nranks=p), ps, c, rcut=rcut,
                             box_length=1.0, law=LAW, periodic=periodic)
            assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("p,c", [(8, 2), (16, 2), (16, 4), (12, 3)])
    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("periodic", [False, True])
    def test_multi_d_grids(self, p, c, dim, periodic):
        ps = particles(dim, seed=400 + dim * p)
        rcut = 0.3
        law = LAW.with_rcut(rcut)
        if periodic:
            law = law.with_box(1.0)
        ref = reference_forces(law, ps)
        out = run_cutoff(GenericMachine(nranks=p), ps, c, rcut=rcut,
                         box_length=1.0, dim=dim, law=LAW, periodic=periodic)
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("team_dims", [(8,), (4, 2), (2, 2, 2)])
    def test_team_shapes_for_same_p(self, team_dims):
        """The same p decomposed as slabs, pencils or cubes."""
        ps = particles(3, seed=500)
        rcut = 0.35
        ref = reference_forces(LAW.with_rcut(rcut), ps)
        out = run_cutoff(GenericMachine(nranks=16), ps, 2, rcut=rcut,
                         box_length=1.0, dim=len(team_dims),
                         team_dims=team_dims, law=LAW)
        assert_forces_close(out.forces, ref)


class TestBaselineMatrix:
    @pytest.mark.parametrize("p", [4, 9, 16, 25])
    def test_force_decomposition_squares(self, p):
        ps = particles(2, seed=600 + p)
        ref = reference_forces(LAW, ps)
        from repro.core import run_force_decomposition

        out = run_force_decomposition(GenericMachine(nranks=p), ps, law=LAW)
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("p", [4, 8, 12, 16])
    @pytest.mark.parametrize("rcut", [0.2, 0.45])
    def test_spatial_and_midpoint_agree(self, p, rcut):
        ps = particles(2, seed=700 + p)
        ref = reference_forces(LAW.with_rcut(rcut), ps)
        sp = run_spatial(GenericMachine(nranks=p), ps, rcut=rcut,
                         box_length=1.0, law=LAW)
        mp = run_midpoint(GenericMachine(nranks=p), ps, rcut=rcut,
                          box_length=1.0, law=LAW)
        assert_forces_close(sp.forces, ref)
        assert_forces_close(mp.forces, ref)
        assert np.allclose(sp.forces, mp.forces, atol=1e-12)

"""The shared communication-schedule IR: lowering, builders, invariants."""

import pytest

from repro.core.commsched import (
    HOME,
    CommSchedule,
    Interact,
    Shift,
    Update,
    default_hyper_k,
    half_systolic_rounds,
    hyper_strides,
    hyper_systolic_rounds,
    rounds_for_schedule,
    systolic_ring_rounds,
)
from repro.core.window import (
    all_pairs_schedule,
    cutoff_schedule,
    half_ring_schedule,
)


def shifts(cs):
    return [r for r in cs.rounds if isinstance(r, Shift)]


def interacts(cs):
    return [r for r in cs.rounds if isinstance(r, Interact)]


class TestCALowering:
    @pytest.mark.parametrize("T,c", [(8, 1), (8, 2), (8, 4), (12, 3)])
    def test_allpairs_round_structure(self, T, c):
        sched = all_pairs_schedule(T, c)
        cs = rounds_for_schedule(sched)
        # Skew + one shift per step; one interact per step.
        assert len(shifts(cs)) == sched.steps + 1
        assert len(interacts(cs)) == sched.steps
        assert cs.buffers == ("block",)
        assert cs.team_bcast and cs.team_reduce
        # The skew is excluded from memory measurement, the rest counted.
        assert shifts(cs)[0].measure is False
        assert all(s.measure for s in shifts(cs)[1:])

    def test_lowering_is_cached(self):
        sched = all_pairs_schedule(8, 2)
        assert rounds_for_schedule(sched) is rounds_for_schedule(sched)

    @pytest.mark.parametrize("T,c", [(8, 1), (8, 2), (16, 4)])
    def test_content_tracks_offsets(self, T, c):
        """Walking the declared moves reproduces the declared contents —
        the invariant the executors assert at runtime."""
        sched = all_pairs_schedule(T, c)
        cs = rounds_for_schedule(sched)
        for row in range(c):
            offset = (0,)
            for rnd in shifts(cs):
                offset = tuple(o - m
                               for o, m in zip(offset, rnd.moves[row]))
                assert cs.wrap((offset[0],)) == \
                    cs.wrap((rnd.content[row][0],))

    def test_ca_updates_are_gated_full(self):
        cs = rounds_for_schedule(cutoff_schedule((8,), (2,), 2))
        for rnd in interacts(cs):
            for up in rnd.updates:
                if up is not None:
                    assert up.mode == "full" and up.gated
                    assert up.target == HOME and up.source == 0

    @pytest.mark.parametrize("T,c", [(8, 1), (8, 2), (9, 1), (12, 2)])
    def test_symmetric_modes(self, T, c):
        cs = rounds_for_schedule(half_ring_schedule(T, c), symmetric=True)
        assert cs.buffers == ("block_sym",)
        ups = [up for rnd in interacts(cs) for up in rnd.updates
               if up is not None]
        assert sum(1 for up in ups if up.mode == "self_half") == 1
        halved = [up for up in ups if up.half_pair]
        # Antipodal dedup exists exactly for even team counts.
        assert bool(halved) == (T % 2 == 0)
        ret = shifts(cs)[-1]
        assert ret.phase == "return" and ret.absorb and ret.wrap_skip
        assert ret.dst == HOME


class TestValidation:
    def test_bad_buffer_kind(self):
        cs = CommSchedule(team_dims=(4,), c=1, buffers=("bogus",), rounds=())
        with pytest.raises(ValueError, match="buffer kind"):
            cs.validate()

    def test_move_arity_mismatch(self):
        cs = CommSchedule(
            team_dims=(4,), c=2, buffers=("block",),
            rounds=(Shift(phase="shift", moves=((1,),), src=0, dst=0),))
        with pytest.raises(ValueError, match="moves"):
            cs.validate()

    def test_buffer_index_out_of_range(self):
        cs = CommSchedule(
            team_dims=(4,), c=1, buffers=("block",),
            rounds=(Shift(phase="shift", moves=((1,),), src=3, dst=0),))
        with pytest.raises(ValueError, match="out of range"):
            cs.validate()

    def test_unknown_update_mode(self):
        cs = CommSchedule(
            team_dims=(4,), c=1, buffers=("block",),
            rounds=(Interact(phase="compute",
                             updates=(Update(HOME, 0, mode="sideways"),)),))
        with pytest.raises(ValueError, match="mode"):
            cs.validate()


class TestSystolicBuilders:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 16])
    def test_ring_message_count(self, p):
        cs = systolic_ring_rounds(p)
        assert len(shifts(cs)) == p - 1
        assert len(interacts(cs)) == p
        assert not cs.team_bcast and not cs.team_reduce and cs.c == 1

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 16])
    def test_half_ring_message_count(self, p):
        cs = half_systolic_rounds(p)
        # floor(p/2) hops plus the reaction return.
        expect = p // 2 + 1 if p > 1 else 0
        assert len(shifts(cs)) == expect

    def test_half_ring_antipode_only_for_even_p(self):
        even = half_systolic_rounds(8)
        odd = half_systolic_rounds(9)
        assert any(up.half_pair for rnd in interacts(even)
                   for up in rnd.updates)
        assert not any(up.half_pair for rnd in interacts(odd)
                       for up in rnd.updates)


class TestHyperSystolic:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 7, 8, 12, 16, 17, 32, 64])
    def test_strides_cover_every_distance(self, p):
        k = default_hyper_k(p)
        strides = hyper_strides(p, k)
        assert len(strides) == k
        covered = {(s - t) % p for s in strides for t in strides}
        assert covered == set(range(p))

    @pytest.mark.parametrize("p", [2, 5, 8, 16, 17])
    def test_message_count_is_2k_minus_2(self, p):
        k = default_hyper_k(p)
        cs = hyper_systolic_rounds(p)
        assert len(shifts(cs)) == 2 * (k - 1)
        collect = [s for s in shifts(cs) if s.payload == "forces"]
        assert len(collect) == k - 1

    @pytest.mark.parametrize("p", [4, 8, 16, 25, 64])
    def test_k_is_order_sqrt_p(self, p):
        assert default_hyper_k(p) <= 2 * (p ** 0.5) + 1

    def test_each_distance_computed_once(self):
        p = 16
        cs = hyper_systolic_rounds(p)
        strides = hyper_strides(p, default_hyper_k(p))
        stride_of = {HOME: 0}
        for i, s in enumerate(strides[1:]):
            stride_of[i] = s
        seen = set()
        for rnd in [r for r in cs.rounds if isinstance(r, Interact)]:
            up = rnd.updates[0]
            d = (stride_of[up.source] - stride_of[up.target]) % p
            assert d not in seen
            seen.add(d)
        assert seen == set(range(p))

    def test_explicit_k_roundtrip(self):
        cs = hyper_systolic_rounds(16, 8)
        assert len([r for r in cs.rounds
                    if isinstance(r, Shift)]) == 2 * (8 - 1)

    def test_k_too_small_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            hyper_strides(16, 3)

    def test_k_overshoot_rejected(self):
        # a*b covers p but the largest coarse stride walks past the ring.
        with pytest.raises(ValueError, match="overshoots|too small"):
            hyper_strides(3, 5)

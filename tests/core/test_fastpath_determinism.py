"""Determinism lock: the fast paths are bit-for-bit the reference paths.

The engine's dispatch-table scheduler loop (``fast_path=True``) and the
kernel's pooled scratch buffers (``scratch=True``) are pure host-side
optimizations.  This suite locks the contract that switching either off
changes *nothing observable*: forces are bitwise identical, the virtual
makespan is exactly equal, and every rank's per-phase virtual time
breakdown matches to the last bit.  Any divergence means an optimization
leaked into simulated semantics and is a bug, not noise.
"""

import numpy as np
import pytest

from repro.core import run_allpairs, run_cutoff
from repro.machines import GenericTorus
from repro.physics import ForceLaw, ParticleSet


def _phase_times(run):
    """{rank: {phase: seconds}} for the engine run's trace report."""
    return {
        t.rank: {label: pt.seconds for label, pt in t.phases.items()}
        for t in run.report.traces
    }


def _run(config: str, *, fast_path: bool, scratch: bool):
    machine = GenericTorus(nranks=16, cores_per_node=4)
    particles = ParticleSet.uniform_random(128, 2, 1.0, seed=3)
    if config == "allpairs":
        return run_allpairs(machine, particles, 4, law=ForceLaw(),
                            scratch=scratch,
                            engine_opts={"fast_path": fast_path})
    return run_cutoff(machine, particles, 2, rcut=0.3, box_length=1.0,
                      periodic=True, scratch=scratch,
                      engine_opts={"fast_path": fast_path})


@pytest.mark.parametrize("config", ["allpairs", "cutoff"])
class TestFastPathDeterminism:
    def test_engine_fast_path_is_bitwise_identical(self, config):
        fast = _run(config, fast_path=True, scratch=True)
        slow = _run(config, fast_path=False, scratch=True)
        assert np.array_equal(fast.ids, slow.ids)
        assert np.array_equal(fast.forces, slow.forces)  # bitwise
        assert fast.run.elapsed == slow.run.elapsed  # exact, not approx
        assert _phase_times(fast.run) == _phase_times(slow.run)

    def test_kernel_scratch_path_is_bitwise_identical(self, config):
        pooled = _run(config, fast_path=True, scratch=True)
        alloc = _run(config, fast_path=True, scratch=False)
        assert np.array_equal(pooled.forces, alloc.forces)  # bitwise
        assert pooled.run.elapsed == alloc.run.elapsed
        assert _phase_times(pooled.run) == _phase_times(alloc.run)

    def test_everything_off_matches_everything_on(self, config):
        on = _run(config, fast_path=True, scratch=True)
        off = _run(config, fast_path=False, scratch=False)
        assert np.array_equal(on.forces, off.forces)
        assert on.run.elapsed == off.run.elapsed
        assert _phase_times(on.run) == _phase_times(off.run)

"""Runtime autotuning of the replication factor."""

import pytest

from repro.core import autotune_c, candidate_cs
from repro.machines import GenericTorus, Hopper


class TestCandidates:
    def test_divisors_up_to_sqrt(self):
        assert candidate_cs(64) == [1, 2, 4, 8]
        assert candidate_cs(12) == [1, 2, 3]
        assert candidate_cs(7) == [1]
        assert candidate_cs(1) == [1]

    def test_max_c_cap(self):
        assert candidate_cs(64, max_c=2) == [1, 2]

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            candidate_cs(0)


class TestAutotune:
    def test_allpairs_tuning_ranks_all_candidates(self):
        m = GenericTorus(nranks=64, cores_per_node=4)
        result = autotune_c(m, 4096)
        assert sorted(c for c, _ in result.ranked) == candidate_cs(64)
        times = [t for _, t in result.ranked]
        assert times == sorted(times)
        assert result.best_time == result.time_of(result.best_c)

    def test_replication_helps_on_comm_bound_problem(self):
        """With heavy communication, the tuner must not pick c=1."""
        m = GenericTorus(nranks=64, cores_per_node=4, alpha=5e-5,
                         pair_time=1e-9)
        result = autotune_c(m, 2048)
        assert result.best_c > 1

    def test_cutoff_tuning(self):
        m = GenericTorus(nranks=64, cores_per_node=4)
        result = autotune_c(m, 4096, rcut=0.25, box_length=1.0, dim=1)
        assert result.best_c in candidate_cs(64)

    def test_cutoff_requires_box(self):
        m = GenericTorus(nranks=16)
        with pytest.raises(ValueError):
            autotune_c(m, 512, rcut=0.25)

    def test_explicit_candidates(self):
        m = GenericTorus(nranks=64, cores_per_node=4)
        result = autotune_c(m, 1024, candidates=[2, 4])
        assert {c for c, _ in result.ranked} == {2, 4}

    def test_invalid_candidate(self):
        m = GenericTorus(nranks=64, cores_per_node=4)
        with pytest.raises(ValueError):
            autotune_c(m, 1024, candidates=[5])

    def test_custom_measure(self):
        m = GenericTorus(nranks=16, cores_per_node=4)
        result = autotune_c(m, 256, measure=lambda c: 1.0 / c)
        assert result.best_c == max(candidate_cs(16))

    def test_time_of_unknown_c(self):
        m = GenericTorus(nranks=16, cores_per_node=4)
        result = autotune_c(m, 256, candidates=[1, 2])
        with pytest.raises(KeyError):
            result.time_of(4)

    def test_summary_renders(self):
        m = GenericTorus(nranks=16, cores_per_node=4)
        text = autotune_c(m, 256).summary()
        assert "time/step" in text and "1.00x" in text

    def test_paper_machine_tuning_smoke(self):
        """On a small Hopper slice, some replication should win."""
        m = Hopper(96, cores_per_node=12)
        result = autotune_c(m, 8192)
        assert result.best_c >= 2

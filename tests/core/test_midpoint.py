"""The midpoint method baseline (Section II-D related work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_midpoint, run_spatial
from repro.machines import GenericMachine, InstantMachine
from repro.physics import ForceLaw, ParticleSet, reference_forces, reference_pair_matrix

from tests.conftest import assert_forces_close


class TestCorrectness:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    @pytest.mark.parametrize("dim,rcut", [(1, 0.2), (2, 0.3)])
    def test_forces_match_reference(self, p, dim, rcut, law):
        ps = ParticleSet.uniform_random(70, dim, 1.0, seed=91)
        ref = reference_forces(law.with_rcut(rcut), ps)
        out = run_midpoint(GenericMachine(nranks=p), ps, rcut=rcut,
                           box_length=1.0, law=law)
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("p", [4, 9, 16])
    def test_each_pair_owned_by_exactly_one_midpoint(self, p, law):
        n = 60
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=92)
        rcut = 0.25
        counter = np.zeros((n, n), dtype=np.int64)
        run_midpoint(InstantMachine(nranks=p), ps, rcut=rcut, box_length=1.0,
                     law=law, pair_counter=counter)
        assert (counter == reference_pair_matrix(law.with_rcut(rcut), ps)).all()

    def test_single_rank_degenerates_to_serial(self, law):
        ps = ParticleSet.uniform_random(40, 2, 1.0, seed=93)
        out = run_midpoint(GenericMachine(nranks=1), ps, rcut=0.3,
                           box_length=1.0, law=law)
        assert_forces_close(out.forces,
                            reference_forces(law.with_rcut(0.3), ps))

    @settings(max_examples=10, deadline=None)
    @given(p=st.sampled_from([4, 8, 16]), seed=st.integers(0, 500),
           rcut=st.sampled_from([0.15, 0.3]))
    def test_coverage_property(self, p, seed, rcut):
        law = ForceLaw()
        n = 40
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=seed)
        counter = np.zeros((n, n), dtype=np.int64)
        run_midpoint(InstantMachine(nranks=p), ps, rcut=rcut, box_length=1.0,
                     law=law, pair_counter=counter)
        assert (counter == reference_pair_matrix(law.with_rcut(rcut), ps)).all()


class TestImportRegion:
    def test_smaller_import_than_spatial_decomposition(self, law):
        """Section II-D: 'a smaller import region for a typical number of
        processors' — the midpoint halo reaches r_c/2 instead of r_c."""
        ps = ParticleSet.uniform_random(200, 2, 1.0, seed=94)
        m = GenericMachine(nranks=16)
        spatial = run_spatial(m, ps, rcut=0.3, box_length=1.0, law=law)
        midpoint = run_midpoint(m, ps, rcut=0.3, box_length=1.0, law=law)
        assert (midpoint.report.max_bytes("halo")
                < spatial.report.max_bytes("halo"))
        assert (midpoint.report.max_messages("halo")
                <= spatial.report.max_messages("halo"))

    def test_has_return_phase(self, law):
        ps = ParticleSet.uniform_random(80, 2, 1.0, seed=95)
        out = run_midpoint(GenericMachine(nranks=16), ps, rcut=0.3,
                           box_length=1.0, law=law)
        assert "return" in out.report.phase_labels()

    def test_computes_on_neutral_territory(self, law):
        """Some pairs are evaluated by a processor owning neither particle
        — the defining property of neutral-territory methods."""
        # Two particles straddling a region boundary whose midpoint falls
        # in a third region cannot occur in 1D with 2 regions, so build a
        # 1D case with 4 regions: particles in regions 0 and 2, midpoint
        # in region 1.
        law2 = law.with_rcut(0.6)
        pos = np.array([[0.20], [0.60]])
        ps = ParticleSet(pos, np.zeros((2, 1)), np.arange(2))
        n = 2
        counter = np.zeros((n, n), dtype=np.int64)
        out = run_midpoint(InstantMachine(nranks=4), ps, rcut=0.6,
                           box_length=1.0, law=law, pair_counter=counter)
        assert counter.sum() == 2  # the pair, both directions
        ref = reference_forces(law2, ps)
        assert_forces_close(out.forces, ref)

"""Zero-copy / copy-on-write invariants of the CA data path.

The substrate moves payloads by reference, so particle blocks flow through
broadcast and the shift ring without copies; in exchange, any rank that
mutates positions in place must first *detach* its storage
(:meth:`ParticleSet.detached`) — the cooperative scheduler can run one
column's integration while another column still holds a travel view of the
same arrays.  These tests pin both halves of that protocol through the
real machinery, not just the kernel unit surface.
"""

import numpy as np

from repro.core import (
    SimulationConfig,
    allpairs_config,
    run_simulation,
)
from repro.core.ca_step import ca_interaction_step
from repro.core.decomposition import team_blocks_even
from repro.machines import GenericMachine
from repro.physics import ForceLaw, ParticleSet, RealKernel
from repro.simmpi import Engine


class TestDetached:
    def test_detached_copies_mutable_arrays_and_shares_ids(self):
        ps = ParticleSet.uniform_random(16, 2, 1.0, max_speed=0.1, seed=1)
        d = ps.detached()
        assert not np.shares_memory(d.pos, ps.pos)
        assert not np.shares_memory(d.vel, ps.vel)
        assert np.shares_memory(d.ids, ps.ids)
        d.pos += 1.0
        d.vel += 1.0
        assert (d.pos != ps.pos).all()
        assert (d.vel != ps.vel).all()


class _AliasCheckingKernel(RealKernel):
    """RealKernel that records the zero-copy aliasing it observes."""

    def __init__(self, law):
        super().__init__(law=law)
        self.travel_aliases = []
        self.home_pos_ids = []

    def home_of(self, block):
        home = super().home_of(block)
        self.home_pos_ids.append(id(home.particles.pos))
        return home

    def travel_of(self, home, team):
        tb = super().travel_of(home, team)
        self.travel_aliases.append(
            np.shares_memory(tb.pos, home.particles.pos)
            and np.shares_memory(tb.ids, home.particles.ids)
        )
        return tb


class TestCAStepAliasing:
    def test_travel_buffers_alias_home_storage_in_the_real_step(self):
        p, c, n = 8, 2, 64
        cfg = allpairs_config(p, c)
        particles = ParticleSet.uniform_random(n, 2, 1.0, seed=4)
        blocks = team_blocks_even(particles, cfg.grid.nteams)
        kernel = _AliasCheckingKernel(ForceLaw())

        def program(comm):
            col = cfg.grid.col_of(comm.rank)
            yield from ca_interaction_step(comm, cfg, kernel, blocks[col])
            return None

        Engine(GenericMachine(nranks=p)).run(program)
        # Every travel buffer built during the step was a zero-copy view.
        assert kernel.travel_aliases and all(kernel.travel_aliases)
        # The team broadcast moved one object per team: all c rows of a
        # team wrapped the *same* position array, nteams distinct in all.
        nteams = cfg.grid.nteams
        assert len(kernel.home_pos_ids) == p
        assert len(set(kernel.home_pos_ids)) == nteams
        counts = {i: kernel.home_pos_ids.count(i)
                  for i in set(kernel.home_pos_ids)}
        assert all(v == c for v in counts.values())


class TestCopyOnWrite:
    def test_run_simulation_does_not_mutate_caller_blocks(self):
        """The COW half: integration never writes through shared views."""
        p, c, n = 8, 2, 64
        cfg = allpairs_config(p, c)
        scfg = SimulationConfig(cfg=cfg, law=ForceLaw(), dt=1e-3, nsteps=2,
                                box_length=1.0)
        particles = ParticleSet.uniform_random(n, 2, 1.0, max_speed=0.1,
                                               seed=9)
        blocks = team_blocks_even(particles, cfg.grid.nteams)
        snapshots = [(b.pos.copy(), b.vel.copy(), b.ids.copy())
                     for b in blocks]

        machine = GenericMachine(nranks=p)
        sim = run_simulation(machine, scfg, blocks)
        assert np.abs(sim.forces).sum() > 0  # the run did real work

        for b, (pos, vel, ids) in zip(blocks, snapshots):
            assert np.array_equal(b.pos, pos)
            assert np.array_equal(b.vel, vel)
            assert np.array_equal(b.ids, ids)

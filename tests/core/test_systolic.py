"""The systolic algorithm family: correctness, coverage, costs, tiers."""

import numpy as np
import pytest

from repro.core import (
    list_algorithms,
    run_half_systolic,
    run_hyper_systolic,
    run_systolic_ring,
)
from repro.core.runner import RunSpec, run
from repro.machines import GenericMachine, InstantMachine
from repro.physics import ParticleSet, reference_forces, reference_pair_matrix
from repro.theory import (
    half_systolic_cost,
    hyper_systolic_cost,
    systolic_ring_cost,
)

from tests.conftest import assert_forces_close

RUNNERS = {
    "systolic_ring": run_systolic_ring,
    "half_systolic": run_half_systolic,
    "hyper_systolic": run_hyper_systolic,
}


class TestRegistration:
    def test_family_is_registered(self):
        names = list_algorithms()
        for name in RUNNERS:
            assert name in names

    def test_c_is_rejected(self):
        ps = ParticleSet.uniform_random(16, 2, 1.0, seed=0)
        with pytest.raises(ValueError, match="c"):
            run(RunSpec(machine=GenericMachine(nranks=4),
                        algorithm="systolic_ring", particles=ps, c=2))


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(RUNNERS))
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 16])
    def test_forces_match_reference(self, name, p, law, particles_2d):
        ref = reference_forces(law, particles_2d)
        out = RUNNERS[name](GenericMachine(nranks=p), particles_2d, law=law)
        assert np.array_equal(out.ids, np.sort(particles_2d.ids))
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("name", sorted(RUNNERS))
    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_uneven_blocks(self, name, p, law):
        ps = ParticleSet.uniform_random(4 * p + 3, 2, 1.0, seed=7)
        ref = reference_forces(law, ps)
        out = RUNNERS[name](GenericMachine(nranks=p), ps, law=law)
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("name", sorted(RUNNERS))
    @pytest.mark.parametrize("p", [2, 4, 7, 8])
    def test_every_pair_covered_exactly_once(self, name, p, law):
        n = 3 * p + 1
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=3)
        counter = np.zeros((n, n), dtype=np.int64)
        RUNNERS[name](InstantMachine(nranks=p), ps, law=law,
                      pair_counter=counter)
        assert (counter == reference_pair_matrix(law, ps)).all()

    @pytest.mark.parametrize("p,k", [(8, 5), (16, 7), (16, 8)])
    def test_hyper_explicit_k(self, p, k, law, particles_2d):
        ref = reference_forces(law, particles_2d)
        out = run_hyper_systolic(GenericMachine(nranks=p), particles_2d,
                                 hyper_k=k, law=law)
        assert_forces_close(out.forces, ref)


class TestCosts:
    @pytest.mark.parametrize("p", [2, 8, 16])
    def test_ring_shift_messages(self, p, law, particles_2d):
        out = run_systolic_ring(GenericMachine(nranks=p), particles_2d,
                                law=law)
        assert out.report.max_messages("shift") == \
            systolic_ring_cost(len(particles_2d), p).messages

    @pytest.mark.parametrize("p", [2, 8, 16])
    def test_half_ring_messages(self, p, law, particles_2d):
        out = run_half_systolic(GenericMachine(nranks=p), particles_2d,
                                law=law)
        measured = out.report.max_messages("shift") + \
            out.report.max_messages("return")
        assert measured == half_systolic_cost(len(particles_2d), p).messages

    @pytest.mark.parametrize("p", [16, 32, 64])
    def test_hyper_beats_ring_latency_and_bandwidth(self, p):
        # The K ~ 2 sqrt(p) replication only pays off once p is large
        # enough that 2(K-1) < p-1; below that the plain ring wins.
        n = 4 * p
        ring = systolic_ring_cost(n, p)
        from repro.core.commsched import default_hyper_k
        hyper = hyper_systolic_cost(n, p, default_hyper_k(p))
        assert hyper.messages < ring.messages
        assert hyper.words < ring.words

    def test_hyper_words_scale_as_sqrt_p(self):
        n = 1 << 14
        from repro.core.commsched import default_hyper_k
        w = {p: hyper_systolic_cost(n, p, default_hyper_k(p)).words
             for p in (64, 256, 1024)}
        # W ~ 2 sqrt(p) n/p = O(n/sqrt(p)): quadrupling p halves the words.
        assert w[256] == pytest.approx(w[64] / 2, rel=0.35)
        assert w[1024] == pytest.approx(w[256] / 2, rel=0.35)


class TestHeuristicTier:
    @pytest.mark.parametrize("name", sorted(RUNNERS))
    @pytest.mark.parametrize("p", [3, 8])
    def test_traffic_matches_event_tier(self, name, p):
        ps = ParticleSet.uniform_random(4 * p + 1, 2, 1.0, seed=5)
        m = GenericMachine(nranks=p)
        ev = run(RunSpec(machine=m, algorithm=name, particles=ps))
        he = run(RunSpec(machine=m, algorithm=name, particles=ps,
                         engine_tier="heuristic"))
        for ra, rb in zip(ev.run.report.traces, he.run.report.traces):
            assert set(ra.phases) == set(rb.phases)
            for ph, pa in ra.phases.items():
                pb = rb.phases[ph]
                assert (pa.messages_sent, pa.bytes_sent,
                        pa.messages_received, pa.bytes_received) == \
                    (pb.messages_sent, pb.bytes_sent,
                     pb.messages_received, pb.bytes_received)

"""The CA cutoff algorithm (Algorithm 2 and its d-dimensional form)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cutoff_config, run_cutoff, run_cutoff_virtual
from repro.machines import GenericMachine, InstantMachine
from repro.physics import ForceLaw, ParticleSet, reference_forces, reference_pair_matrix
from repro.theory import ca_cutoff_cost

from tests.conftest import assert_forces_close


CONFIGS_1D = [(4, 1), (8, 1), (8, 2), (8, 4), (12, 2), (12, 3), (16, 4), (9, 3)]
CONFIGS_2D = [(4, 1), (8, 2), (12, 3), (16, 1), (16, 2), (16, 4)]
RCUTS = [0.1, 0.25, 0.4]


class TestCorrectness1D:
    @pytest.mark.parametrize("p,c", CONFIGS_1D)
    @pytest.mark.parametrize("rcut", RCUTS)
    def test_forces_match_reference(self, p, c, rcut, law, particles_1d):
        ref = reference_forces(law.with_rcut(rcut), particles_1d)
        out = run_cutoff(GenericMachine(nranks=p), particles_1d, c,
                         rcut=rcut, box_length=1.0, law=law)
        assert_forces_close(out.forces, ref)

    def test_2d_particles_1d_team_slabs(self, law, particles_2d):
        """1-D team decomposition of a 2-D simulation (slab regions)."""
        rcut = 0.3
        ref = reference_forces(law.with_rcut(rcut), particles_2d)
        out = run_cutoff(GenericMachine(nranks=8), particles_2d, 2,
                         rcut=rcut, box_length=1.0, law=law,
                         team_dims=(4,), dim=1)
        assert_forces_close(out.forces, ref)


class TestCorrectness2D:
    @pytest.mark.parametrize("p,c", CONFIGS_2D)
    @pytest.mark.parametrize("rcut", [0.25, 0.45])
    def test_forces_match_reference(self, p, c, rcut, law, particles_2d):
        ref = reference_forces(law.with_rcut(rcut), particles_2d)
        out = run_cutoff(GenericMachine(nranks=p), particles_2d, c,
                         rcut=rcut, box_length=1.0, law=law)
        assert_forces_close(out.forces, ref)

    def test_cutoff_larger_than_box_covers_everything(self, law, particles_2d):
        ref = reference_forces(law.with_rcut(1.0), particles_2d)
        out = run_cutoff(GenericMachine(nranks=8), particles_2d, 2,
                         rcut=1.0, box_length=1.0, law=law)
        assert_forces_close(out.forces, ref)


class TestExactlyOnceCoverage:
    @pytest.mark.parametrize("p,c", CONFIGS_1D)
    def test_1d_within_cutoff_once_beyond_never(self, p, c, law):
        n = 60
        ps = ParticleSet.uniform_random(n, 1, 1.0, seed=42)
        rcut = 0.25
        counter = np.zeros((n, n), dtype=np.int64)
        run_cutoff(InstantMachine(nranks=p), ps, c, rcut=rcut, box_length=1.0,
                   law=law, pair_counter=counter)
        assert (counter == reference_pair_matrix(law.with_rcut(rcut), ps)).all()

    @pytest.mark.parametrize("p,c", CONFIGS_2D)
    def test_2d_coverage(self, p, c, law):
        n = 60
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=43)
        rcut = 0.3
        counter = np.zeros((n, n), dtype=np.int64)
        run_cutoff(InstantMachine(nranks=p), ps, c, rcut=rcut, box_length=1.0,
                   law=law, pair_counter=counter)
        assert (counter == reference_pair_matrix(law.with_rcut(rcut), ps)).all()

    @settings(max_examples=12, deadline=None)
    @given(
        pc=st.sampled_from(CONFIGS_1D + CONFIGS_2D),
        dim=st.sampled_from([1, 2]),
        rcut=st.sampled_from([0.15, 0.3, 0.6]),
        seed=st.integers(0, 500),
    )
    def test_coverage_property(self, pc, dim, rcut, seed):
        p, c = pc
        n = 40
        law = ForceLaw()
        ps = ParticleSet.uniform_random(n, dim, 1.0, seed=seed)
        counter = np.zeros((n, n), dtype=np.int64)
        run_cutoff(InstantMachine(nranks=p), ps, c, rcut=rcut, box_length=1.0,
                   law=law, pair_counter=counter)
        assert (counter == reference_pair_matrix(law.with_rcut(rcut), ps)).all()


class TestConfig:
    def test_window_span_follows_equation6(self):
        cfg = cutoff_config(16, 1, rcut=0.25, box_length=1.0, dim=1)
        # 16 teams, cell width 1/16, rcut spans ceil(0.25*16) = 4 cells.
        assert cfg.geometry.spanned_cells(0.25) == (4,)
        assert cfg.schedule.window >= 9  # 2m+1

    def test_team_dims_default_balanced(self):
        cfg = cutoff_config(16, 1, rcut=0.25, box_length=1.0, dim=2)
        assert sorted(cfg.geometry.team_dims) == [4, 4]

    def test_team_dims_override(self):
        cfg = cutoff_config(16, 2, rcut=0.25, box_length=1.0, dim=2,
                            team_dims=(8, 1))
        assert cfg.geometry.team_dims == (8, 1)

    def test_team_dims_must_multiply_to_teams(self):
        with pytest.raises(ValueError):
            cutoff_config(16, 2, rcut=0.25, box_length=1.0, dim=2,
                          team_dims=(4, 4))

    def test_rcut_validation(self):
        with pytest.raises(ValueError):
            cutoff_config(8, 1, rcut=0.0, box_length=1.0, dim=1)
        with pytest.raises(ValueError):
            cutoff_config(8, 1, rcut=2.0, box_length=1.0, dim=1)

    def test_reachability_pruning(self):
        cfg = cutoff_config(16, 1, rcut=0.1, box_length=1.0, dim=1)
        assert cfg.reachable(0, 1)
        assert not cfg.reachable(0, 8)

    def test_dim_exceeding_particles_rejected(self, law, particles_1d):
        with pytest.raises(ValueError):
            run_cutoff(GenericMachine(nranks=8), particles_1d, 1,
                       rcut=0.25, box_length=1.0, dim=2, law=law)


class TestCommunicationCosts:
    def test_messages_scale_as_m_over_c(self):
        """Shift messages follow S_1D = O(m/c) (Section IV-B)."""
        p, n = 64, 4096
        for c in (1, 2, 4):
            run = run_cutoff_virtual(GenericMachine(nranks=p), n, c,
                                     rcut=0.25, box_length=1.0, dim=1)
            got = run.report.max_messages("shift")
            T = p // c
            m = -(-T // 4)  # rcut spans T/4 cells
            expect = ca_cutoff_cost(n, p, c, m).messages
            assert got <= 3 * expect + 3
            assert got >= expect

    def test_fewer_messages_than_allpairs(self):
        from repro.core import run_allpairs_virtual

        p, n = 64, 4096
        ap = run_allpairs_virtual(GenericMachine(nranks=p), n, 1)
        co = run_cutoff_virtual(GenericMachine(nranks=p), n, 1,
                                rcut=0.1, box_length=1.0, dim=1)
        assert (co.report.max_messages("shift")
                < ap.report.max_messages("shift"))

    def test_boundary_teams_compute_less(self):
        p, n = 32, 2048
        run = run_cutoff_virtual(GenericMachine(nranks=p), n, 1,
                                 rcut=0.25, box_length=1.0, dim=1)
        pairs = {r.col: r.npairs for r in run.results}
        interior = pairs[p // 2]
        corner = pairs[0]
        assert corner < interior

    def test_scanned_pairs_bounded_by_window(self):
        p, n = 16, 1024
        run = run_cutoff_virtual(GenericMachine(nranks=p), n, 1,
                                 rcut=0.25, box_length=1.0, dim=1)
        total = sum(r.npairs for r in run.results)
        # Far fewer scans than all-pairs, at least the within-cutoff count.
        assert total < n * n
        assert total >= n * n * 0.3  # window fraction ~ 9/16

"""Memory footprint vs Equation 4: M = O(c n / p).

The replication factor is *defined* as "the number of extra copies of the
particles that will fit in memory"; these tests check the implementation's
actual buffer residency matches the equation — the home block plus one
exchange buffer, each of cn/p particles.
"""

import pytest

from repro.core import run_allpairs_virtual, run_cutoff_virtual
from repro.machines import GenericMachine
from repro.machines.base import PARTICLE_BYTES
from repro.theory import memory_per_rank


class TestAllPairsMemory:
    @pytest.mark.parametrize("c", [1, 2, 4])
    def test_matches_equation4(self, c):
        p, n = 32, 4096
        run = run_allpairs_virtual(GenericMachine(nranks=p), n, c)
        measured = max(r.memory_bytes for r in run.results)
        # Home block + exchange buffer, each cn/p particles of 52 bytes.
        expected = 2 * memory_per_rank(n, p, c) * PARTICLE_BYTES
        assert measured == pytest.approx(expected, rel=0.01)

    def test_memory_grows_linearly_with_c(self):
        p, n = 32, 4096
        mem = {}
        for c in (1, 2, 4, 8):
            run = run_allpairs_virtual(GenericMachine(nranks=p), n, c)
            mem[c] = max(r.memory_bytes for r in run.results)
        assert mem[2] == 2 * mem[1]
        assert mem[8] == 8 * mem[1]

    def test_memory_bandwidth_tradeoff(self):
        """The paper's core trade: paying c x memory buys ~c x less
        shifted bandwidth."""
        p, n = 32, 4096
        for c in (2, 4):
            run1 = run_allpairs_virtual(GenericMachine(nranks=p), n, 1)
            runc = run_allpairs_virtual(GenericMachine(nranks=p), n, c)
            m1 = max(r.memory_bytes for r in run1.results)
            mc = max(r.memory_bytes for r in runc.results)
            w1 = run1.report.max_bytes("shift")
            wc = runc.report.max_bytes("shift")
            assert mc == pytest.approx(c * m1, rel=0.01)
            # W(c) = 52 (n/c + skew block of nc/p) exactly; strictly less
            # than the non-replicated volume, approaching n/c as p >> c^2.
            assert wc < w1
            assert wc == pytest.approx(
                PARTICLE_BYTES * (n / c + n * c / p), rel=0.01
            )


class TestCutoffMemory:
    def test_same_footprint_as_allpairs(self):
        """The cutoff algorithm needs the same M = cn/p (Equation 8)."""
        p, n = 32, 4096
        for c in (1, 2):
            run = run_cutoff_virtual(GenericMachine(nranks=p), n, c,
                                     rcut=0.25, box_length=1.0, dim=1)
            measured = max(r.memory_bytes for r in run.results)
            expected = 2 * memory_per_rank(n, p, c) * PARTICLE_BYTES
            assert measured == pytest.approx(expected, rel=0.05)

    def test_memory_reported_per_rank(self):
        run = run_cutoff_virtual(GenericMachine(nranks=16), 1024, 2,
                                 rcut=0.25, box_length=1.0, dim=1)
        assert all(r.memory_bytes > 0 for r in run.results)

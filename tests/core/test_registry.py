"""The algorithm registry and the single run pipeline.

The centerpiece is the cross-algorithm equivalence matrix: every
registered *functional* algorithm, on both a uniform and a clustered
workload, must reproduce the serial reference forces and the exactly-once
pair-coverage invariant through the pipeline.  The matrix is parametrized
off the registry itself, so a newly registered algorithm is tested for
free (and a broken registration fails loudly).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Run,
    RunSpec,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    run,
)
from repro.core.runner import _REGISTRY
from repro.machines import GenericMachine
from repro.physics import ForceLaw, ParticleSet
from repro.physics.reference import reference_forces, reference_pair_matrix
from repro.physics.workloads import gaussian_clusters
from repro.simmpi.faults import DropTransfer, FaultSchedule, KillRank

from ..conftest import assert_forces_close

RCUT = 0.3
P = 16


def _workload(kind: str, n: int = 96) -> ParticleSet:
    if kind == "uniform":
        return ParticleSet.uniform_random(n, 2, 1.0, max_speed=0.1, seed=1234)
    return gaussian_clusters(n, 2, 1.0, nclusters=4, spread=0.08, seed=99)


def _spec(machine, name, particles, **overrides) -> RunSpec:
    """A spec meeting the algorithm's declared requirements."""
    alg = get_algorithm(name)
    kw = dict(
        machine=machine, algorithm=name, particles=particles,
        c=2 if alg.supports_c else 1,
        pair_counter=np.zeros((len(particles), len(particles)),
                              dtype=np.int64),
    )
    if alg.needs_rcut:
        kw.update(rcut=RCUT, box_length=1.0)
    kw.update(overrides)
    return RunSpec(**kw)


def _reference_law(name) -> ForceLaw:
    return ForceLaw().with_rcut(RCUT) if get_algorithm(name).needs_rcut \
        else ForceLaw()


FUNCTIONAL = list_algorithms(functional=True)
MODELED = list_algorithms(functional=False)


# ---------------------------------------------------------------------------
# The equivalence matrix.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["uniform", "clustered"])
@pytest.mark.parametrize("name", FUNCTIONAL)
def test_equivalence_matrix(name, workload):
    """Every functional algorithm x workload: reference forces + coverage."""
    particles = _workload(workload)
    spec = _spec(GenericMachine(nranks=P), name, particles)
    out = run(spec)

    assert isinstance(out, Run)
    assert out.algorithm == name
    assert out.spec is spec
    np.testing.assert_array_equal(out.ids, np.sort(particles.ids))

    law = _reference_law(name)
    order = np.argsort(particles.ids, kind="stable")
    assert_forces_close(out.forces, reference_forces(law, particles)[order])

    # Exactly-once: in-cutoff ordered pairs accumulated exactly once, and
    # with a cutoff no out-of-range pair ever contributes more than a scan.
    expected = reference_pair_matrix(law, particles)
    counted = spec.pair_counter
    assert (counted[expected == 1] == 1).all()
    assert (counted[np.eye(len(particles), dtype=bool)] == 0).all()
    if law.rcut is None:
        np.testing.assert_array_equal(counted, expected)


@pytest.mark.parametrize("name", MODELED)
def test_modeled_algorithms_run(name):
    """Modeled twins execute through the pipeline and carry a report."""
    alg = get_algorithm(name)
    kw = dict(machine=GenericMachine(nranks=P), algorithm=name, n=96,
              c=2 if alg.supports_c else 1)
    if alg.needs_rcut:
        kw.update(rcut=RCUT, box_length=1.0)
    spec = RunSpec(**kw)
    out = run(spec)
    assert out.ids is None and out.forces is None
    assert out.run.elapsed > 0
    assert out.report.phase_labels()


# ---------------------------------------------------------------------------
# Uniform knob threading: faults, engine_opts, scratch for EVERY functional
# algorithm (the PR-1/PR-2 coverage gap this layer closes).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", FUNCTIONAL)
def test_transient_faults_accepted_everywhere(name, particles_2d):
    """A kill-free schedule (dropped transfer -> engine retry) is accepted
    by every functional algorithm and leaves forces correct."""
    faults = FaultSchedule(events=(DropTransfer(0, 1),), seed=3)
    spec = _spec(GenericMachine(nranks=P), name, particles_2d,
                 pair_counter=None, faults=faults)
    out = run(spec)
    law = _reference_law(name)
    order = np.argsort(particles_2d.ids, kind="stable")
    assert_forces_close(out.forces,
                        reference_forces(law, particles_2d)[order])


@pytest.mark.parametrize("name", FUNCTIONAL)
def test_engine_opts_and_scratch_everywhere(name, particles_2d):
    """fast_path=False + scratch=False reproduce the default-path forces
    bitwise for every functional algorithm."""
    machine = GenericMachine(nranks=P)
    fast = run(_spec(machine, name, particles_2d, pair_counter=None))
    ref = run(_spec(machine, name, particles_2d, pair_counter=None,
                    scratch=False, engine_opts={"fast_path": False}))
    np.testing.assert_array_equal(fast.forces, ref.forces)
    assert fast.run.elapsed == ref.run.elapsed


@pytest.mark.parametrize("name", [n for n in FUNCTIONAL
                                  if get_algorithm(n).fault_mode != "kills"])
def test_kills_rejected_without_recovery_path(name, particles_2d):
    """Kill schedules are rejected up front by non-resilient algorithms."""
    faults = FaultSchedule(events=(KillRank(3, after_ops=5),))
    spec = _spec(GenericMachine(nranks=P), name, particles_2d,
                 pair_counter=None, faults=faults)
    with pytest.raises(ValueError, match="no kill-recovery path"):
        run(spec)


def test_kills_require_replication(particles_2d):
    faults = FaultSchedule(events=(KillRank(3, after_ops=5),))
    spec = RunSpec(machine=GenericMachine(nranks=P), algorithm="allpairs",
                   particles=particles_2d, c=1, faults=faults)
    with pytest.raises(ValueError, match="c >= 2"):
        run(spec)


# ---------------------------------------------------------------------------
# Registry mechanics and spec validation.
# ---------------------------------------------------------------------------


def test_unknown_algorithm_lists_known():
    with pytest.raises(KeyError, match="allpairs"):
        run(RunSpec(machine=GenericMachine(nranks=4), algorithm="nope",
                    n=8))


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="registered twice"):
        register_algorithm("allpairs")(lambda spec: None)


def test_register_and_run_custom_algorithm():
    """A third-party registration flows through the whole pipeline."""
    name = "_test_custom"

    @register_algorithm(name, supports_c=False, summary="test-only")
    def _prepare(spec):
        from repro.core import Prepared

        def program(comm):
            yield from comm.barrier()
            return (np.array([comm.rank]), np.zeros((1, 2)))

        return Prepared(program=program,
                        collect=lambda r: (np.arange(comm_size),
                                           np.zeros((comm_size, 2))))

    comm_size = 4
    try:
        out = run(RunSpec(machine=GenericMachine(nranks=comm_size),
                          algorithm=name, n=4))
        assert out.algorithm == name
        assert len(out.ids) == comm_size
        assert name in list_algorithms(functional=True)
    finally:
        _REGISTRY.pop(name, None)


def test_c_rejected_where_unsupported(particles_2d):
    spec = RunSpec(machine=GenericMachine(nranks=P),
                   algorithm="particle_ring", particles=particles_2d, c=2)
    with pytest.raises(ValueError, match="no replication knob"):
        run(spec)


def test_rcut_required_where_declared(particles_2d):
    spec = RunSpec(machine=GenericMachine(nranks=P), algorithm="spatial",
                   particles=particles_2d)
    with pytest.raises(ValueError, match="cutoff radius"):
        run(spec)


def test_square_p_required_for_force_decomposition(particles_2d):
    spec = RunSpec(machine=GenericMachine(nranks=8),
                   algorithm="force_decomposition", particles=particles_2d)
    with pytest.raises(ValueError, match="square rank count"):
        run(spec)


def test_workload_synthesis_from_n_and_seed():
    """particles may be omitted: n (+ seed) synthesizes the workload."""
    machine = GenericMachine(nranks=8)
    a = run(RunSpec(machine=machine, algorithm="particle_ring", n=64,
                    seed=5))
    b = run(RunSpec(machine=machine, algorithm="particle_ring", n=64,
                    seed=5))
    np.testing.assert_array_equal(a.forces, b.forces)
    c = run(RunSpec(machine=machine, algorithm="particle_ring", n=64,
                    seed=6))
    assert np.abs(a.forces - c.forces).max() > 0


def test_missing_workload_is_an_error():
    with pytest.raises(ValueError, match="needs particles"):
        run(RunSpec(machine=GenericMachine(nranks=8),
                    algorithm="particle_ring"))


def test_run_surface(particles_2d):
    """The uniform Run result carries report/trace/coverage/elapsed."""
    counter = np.zeros((96, 96), dtype=np.int64)
    out = run(RunSpec(machine=GenericMachine(nranks=P),
                      algorithm="allpairs", particles=particles_2d, c=2,
                      pair_counter=counter,
                      engine_opts={"record_events": True}))
    assert out.report is out.run.report
    assert out.trace, "record_events should surface timeline events"
    assert out.coverage is counter
    assert out.elapsed == out.run.elapsed


def test_deprecated_result_aliases_are_run():
    from repro.core import AllPairsRun, BaselineRun, CutoffRun, SymmetricRun

    assert AllPairsRun is Run
    assert CutoffRun is Run
    assert SymmetricRun is Run
    assert BaselineRun is Run


def test_every_core_runner_is_registered_or_exempt():
    """The CI gate's invariant, enforced from the suite as well."""
    import repro.core as core
    import sys
    from pathlib import Path

    tools = Path(__file__).resolve().parents[2] / "tools"
    sys.path.insert(0, str(tools))
    try:
        import check_registry
    finally:
        sys.path.remove(str(tools))
    registered = set(list_algorithms())
    for runner in (n for n in core.__all__ if n.startswith("run_")):
        if runner in check_registry.EXEMPT:
            continue
        assert runner[len("run_"):] in registered, runner

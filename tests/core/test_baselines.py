"""Baseline decompositions: correctness, equivalences, cost structure."""

import numpy as np
import pytest

from repro.core import (
    run_allpairs,
    run_force_decomposition,
    run_particle_allgather,
    run_particle_ring,
    run_spatial,
)
from repro.machines import GenericMachine, InstantMachine, Intrepid
from repro.physics import ParticleSet, reference_forces, reference_pair_matrix
from repro.theory import force_decomposition_cost, particle_decomposition_cost

from tests.conftest import assert_forces_close


class TestParticleDecompositions:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 12])
    def test_allgather_matches_reference(self, p, law, particles_2d):
        ref = reference_forces(law, particles_2d)
        out = run_particle_allgather(GenericMachine(nranks=p), particles_2d, law=law)
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("p", [1, 2, 4, 8, 12])
    def test_ring_matches_reference(self, p, law, particles_2d):
        ref = reference_forces(law, particles_2d)
        out = run_particle_ring(GenericMachine(nranks=p), particles_2d, law=law)
        assert_forces_close(out.forces, ref)

    def test_ring_equals_ca_c1(self, law, particles_2d):
        """The CA algorithm at c=1 degenerates into the systolic ring."""
        m = GenericMachine(nranks=8)
        ring = run_particle_ring(m, particles_2d, law=law)
        ca = run_allpairs(m, particles_2d, 1, law=law)
        assert_forces_close(ring.forces, ca.forces)
        # Same message structure: p shifts of the same block size.
        assert (ring.report.max_messages("shift")
                == ca.report.max_messages("shift"))

    def test_tree_allgather_on_intrepid(self, law, particles_2d):
        ref = reference_forces(law, particles_2d)
        out = run_particle_allgather(
            Intrepid(8, cores_per_node=4), particles_2d, law=law, use_tree=True
        )
        assert_forces_close(out.forces, ref)

    def test_tree_faster_than_software_allgather(self, law, particles_2d):
        tree = run_particle_allgather(
            Intrepid(16, cores_per_node=4), particles_2d, law=law, use_tree=True
        )
        soft = run_particle_allgather(
            Intrepid(16, cores_per_node=4, tree=False), particles_2d, law=law
        )
        assert (tree.report.max_time("allgather")
                < soft.report.max_time("allgather"))

    def test_coverage(self, law):
        n = 40
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=9)
        for fn in (run_particle_allgather, run_particle_ring):
            counter = np.zeros((n, n), dtype=np.int64)
            fn(InstantMachine(nranks=8), ps, law=law, pair_counter=counter)
            assert (counter == reference_pair_matrix(law, ps)).all()

    def test_ring_latency_linear_in_p(self, law):
        """S_particle = O(p): message count grows with machine size."""
        ps = ParticleSet.uniform_random(32, 2, 1.0, seed=1)
        m4 = run_particle_ring(GenericMachine(nranks=4), ps, law=law)
        m16 = run_particle_ring(GenericMachine(nranks=16), ps, law=law)
        s4 = m4.report.max_messages("shift")
        s16 = m16.report.max_messages("shift")
        assert s4 == particle_decomposition_cost(32, 4).messages
        assert s16 == particle_decomposition_cost(32, 16).messages


class TestForceDecomposition:
    @pytest.mark.parametrize("p", [1, 4, 9, 16])
    def test_matches_reference(self, p, law, particles_2d):
        ref = reference_forces(law, particles_2d)
        out = run_force_decomposition(GenericMachine(nranks=p), particles_2d, law=law)
        assert_forces_close(out.forces, ref)

    def test_requires_square_p(self, law, particles_2d):
        with pytest.raises(ValueError):
            run_force_decomposition(GenericMachine(nranks=8), particles_2d, law=law)

    def test_coverage(self, law):
        n = 36
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=10)
        counter = np.zeros((n, n), dtype=np.int64)
        run_force_decomposition(InstantMachine(nranks=16), ps, law=law,
                                pair_counter=counter)
        assert (counter == reference_pair_matrix(law, ps)).all()

    def test_logarithmic_latency(self, law):
        """S_force = O(log p): few messages even on larger machines."""
        ps = ParticleSet.uniform_random(64, 2, 1.0, seed=2)
        out = run_force_decomposition(GenericMachine(nranks=16), ps, law=law)
        crit = out.report.critical_messages()
        bound = force_decomposition_cost(64, 16).messages
        assert crit <= 4 * bound

    def test_less_bandwidth_than_ring(self, law):
        ps = ParticleSet.uniform_random(256, 2, 1.0, seed=3)
        ring = run_particle_ring(GenericMachine(nranks=64), ps, law=law)
        fd = run_force_decomposition(GenericMachine(nranks=64), ps, law=law)
        # W_force = O(n/sqrt(p) log p) < W_particle = O(n) at p=64.
        assert fd.report.critical_bytes() < ring.report.critical_bytes()


class TestSpatialDecomposition:
    @pytest.mark.parametrize("p", [4, 8, 16])
    @pytest.mark.parametrize("rcut", [0.15, 0.3])
    def test_matches_reference_2d(self, p, rcut, law, particles_2d):
        ref = reference_forces(law.with_rcut(rcut), particles_2d)
        out = run_spatial(GenericMachine(nranks=p), particles_2d,
                          rcut=rcut, box_length=1.0, law=law)
        assert_forces_close(out.forces, ref)

    @pytest.mark.parametrize("p", [4, 8])
    def test_matches_reference_1d(self, p, law, particles_1d):
        ref = reference_forces(law.with_rcut(0.2), particles_1d)
        out = run_spatial(GenericMachine(nranks=p), particles_1d,
                          rcut=0.2, box_length=1.0, law=law)
        assert_forces_close(out.forces, ref)

    def test_coverage(self, law):
        n = 50
        ps = ParticleSet.uniform_random(n, 2, 1.0, seed=11)
        counter = np.zeros((n, n), dtype=np.int64)
        run_spatial(InstantMachine(nranks=16), ps, rcut=0.3, box_length=1.0,
                    law=law, pair_counter=counter)
        assert (counter == reference_pair_matrix(law.with_rcut(0.3), ps)).all()

    def test_halo_message_count_is_neighborhood_size(self, law, particles_2d):
        out = run_spatial(GenericMachine(nranks=16), particles_2d,
                          rcut=0.26, box_length=1.0, law=law)
        # 4x4 regions, cutoff spans 2 cells: interior sends to its full
        # reachable neighborhood, far fewer than p-1=15 for corner ranks.
        msgs = [tr.phases["halo"].messages_sent
                for tr in out.report.traces if "halo" in tr.phases]
        assert max(msgs) < 16
        assert min(msgs) >= 3

    def test_smaller_cutoff_fewer_neighbors(self, law, particles_2d):
        small = run_spatial(GenericMachine(nranks=16), particles_2d,
                            rcut=0.1, box_length=1.0, law=law)
        big = run_spatial(GenericMachine(nranks=16), particles_2d,
                          rcut=0.6, box_length=1.0, law=law)
        assert (small.report.max_messages("halo")
                < big.report.max_messages("halo"))

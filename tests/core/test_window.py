"""Shift schedules: the combinatorics behind Algorithms 1 and 2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import all_pairs_schedule, cutoff_schedule


def divisor_pairs():
    """(nteams, c) pairs with various divisibility relations."""
    return [
        (8, 1), (8, 2), (8, 4), (8, 8),
        (6, 2), (6, 3), (5, 1), (5, 5),
        (12, 4), (7, 2), (9, 3), (16, 8),
    ]


class TestAllPairsSchedule:
    @pytest.mark.parametrize("nteams,c", divisor_pairs())
    def test_validate(self, nteams, c):
        all_pairs_schedule(nteams, c).validate()

    def test_paper_step_count(self):
        """With c | nteams, exactly nteams/c = p/c^2 steps (Algorithm 1)."""
        s = all_pairs_schedule(16, 4)
        assert s.steps == 4
        assert s.window == 16

    def test_padding_when_c_does_not_divide(self):
        s = all_pairs_schedule(7, 2)
        assert s.window == 8
        assert s.steps == 4
        assert sum(s.skip) == 1  # one padded alias

    def test_c1_is_systolic_ring(self):
        s = all_pairs_schedule(6, 1)
        assert s.steps == 6
        assert not any(s.skip)
        # Every step moves by one column.
        for i in range(s.steps):
            assert s.step_move(0, i) in [(-1,), (5,)]

    def test_skew_matches_paper(self):
        """Row k's skew magnitude is k (modulo direction convention)."""
        s = all_pairs_schedule(16, 4)
        for k in range(4):
            assert s.skew_move(k) == (-k,)

    @pytest.mark.parametrize("nteams,c", divisor_pairs())
    def test_each_column_sees_every_team_once(self, nteams, c):
        s = all_pairs_schedule(nteams, c)
        for col in range(nteams):
            seen = []
            for k in range(c):
                for i in range(s.steps):
                    u = s.update_position(k, i)
                    if not s.skip[u]:
                        seen.append(s.visitor_of(col, u))
            assert sorted(seen) == list(range(nteams))

    @pytest.mark.parametrize("nteams,c", divisor_pairs())
    def test_positions_partition_window(self, nteams, c):
        s = all_pairs_schedule(nteams, c)
        covered = [u for k in range(c) for u in s.covered_positions(k)]
        assert sorted(covered) == list(range(s.window))

    def test_holder_visitor_inverse(self):
        s = all_pairs_schedule(12, 3)
        for u in range(s.window):
            for team in range(12):
                col = s.holder_of(team, u)
                assert s.visitor_of(col, u) == team


class TestCutoffSchedule:
    @pytest.mark.parametrize("dims,m,c", [
        ((8,), (2,), 1), ((8,), (2,), 2), ((8,), (2,), 4),
        ((16,), (4,), 3), ((4, 4), (1, 1), 2), ((4, 4), (1, 1), 4),
        ((6, 4), (2, 1), 2), ((3, 3, 3), (1, 1, 1), 3),
    ])
    def test_validate(self, dims, m, c):
        cutoff_schedule(dims, m, c).validate()

    def test_window_size(self):
        s = cutoff_schedule((16,), (3,), 1)
        assert s.window == 7  # 2m+1
        assert s.steps == 7

    def test_window_padded_to_c(self):
        s = cutoff_schedule((16,), (3,), 4)
        assert s.window == 8
        assert s.steps == 2

    def test_offsets_cover_cutoff_span(self):
        s = cutoff_schedule((16,), (3,), 1)
        offs = {o[0] for o, skip in zip(s.offsets, s.skip) if not skip}
        assert offs == set(range(-3, 4))

    def test_2d_offsets_cover_box(self):
        s = cutoff_schedule((8, 8), (1, 2), 1)
        offs = {o for o, skip in zip(s.offsets, s.skip) if not skip}
        assert offs == {(a, b) for a in (-1, 0, 1) for b in (-2, -1, 0, 1, 2)}

    def test_small_grid_aliases_skipped(self):
        # Window wider than the grid: wrapped duplicates must be skipped.
        s = cutoff_schedule((3,), (2,), 1)
        s.validate()
        effective = [s.wrap_offset(o) for o, sk in zip(s.offsets, s.skip) if not sk]
        assert len(effective) == len(set(effective)) == 3

    @pytest.mark.parametrize("dims,m,c", [
        ((8,), (2,), 2), ((12,), (3,), 2), ((4, 4), (1, 1), 2),
        ((6, 6), (2, 2), 4),
    ])
    def test_each_column_sees_window_neighbors_once(self, dims, m, c):
        s = cutoff_schedule(dims, m, c)
        nteams = s.nteams
        for col in range(nteams):
            seen = []
            for k in range(c):
                for i in range(s.steps):
                    u = s.update_position(k, i)
                    if not s.skip[u]:
                        seen.append(s.visitor_of(col, u))
            assert len(seen) == len(set(seen))

    def test_requires_matching_dims(self):
        with pytest.raises(ValueError):
            cutoff_schedule((4, 4), (1,), 1)

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            cutoff_schedule((4,), (-1,), 1)

    def test_zero_span_is_self_only(self):
        s = cutoff_schedule((5,), (0,), 1)
        assert s.window == 1
        assert s.offsets == ((0,),)


class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(nteams=st.integers(1, 20), c=st.integers(1, 8))
    def test_allpairs_always_valid(self, nteams, c):
        s = all_pairs_schedule(nteams, c)
        s.validate()
        assert s.window % c == 0
        assert s.steps * c == s.window

    @settings(max_examples=40, deadline=None)
    @given(
        dims=st.sampled_from([(4,), (8,), (3, 3), (4, 2), (2, 2, 2)]),
        m_seed=st.integers(0, 3),
        c=st.integers(1, 6),
    )
    def test_cutoff_always_valid(self, dims, m_seed, c):
        m = tuple(min(m_seed, d // 2) for d in dims)
        s = cutoff_schedule(dims, m, c)
        s.validate()
        # Non-skipped wrapped offsets within the window are unique & complete
        # relative to what the grid can express.
        effective = {
            s.wrap_offset(o) for o, sk in zip(s.offsets, s.skip) if not sk
        }
        physical = {
            tuple(x % d for x, d in zip(off, dims))
            for off in __import__("itertools").product(
                *[range(-mk, mk + 1) for mk in m]
            )
        }
        assert effective == physical

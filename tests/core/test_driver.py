"""Multi-timestep simulations: trajectories, re-assignment, conservation."""

import numpy as np
import pytest

from repro.core import (
    SimulationConfig,
    allpairs_config,
    cutoff_config,
    run_simulation,
    run_simulation_virtual,
    team_blocks_even,
    team_blocks_spatial,
)
from repro.machines import GenericMachine
from repro.physics import (
    ParticleSet,
    euler_step,
    reference_forces,
    reflect,
)


def serial_trajectory(ps, law, dt, nsteps, box_length, rcut=None):
    ps = ps.copy()
    use = law if rcut is None else law.with_rcut(rcut)
    for _ in range(nsteps):
        f = reference_forces(use, ps)
        euler_step(ps.pos, ps.vel, f, dt)
        reflect(ps.pos, ps.vel, box_length)
    return ps.sorted_by_id()


class TestAllPairsSimulation:
    @pytest.mark.parametrize("p,c", [(4, 1), (8, 2), (8, 4), (12, 3)])
    def test_matches_serial_trajectory(self, p, c, law):
        ps = ParticleSet.uniform_random(48, 2, 1.0, max_speed=0.05, seed=21)
        ref = serial_trajectory(ps, law, dt=2e-3, nsteps=6, box_length=1.0)
        cfg = allpairs_config(p, c)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=2e-3, nsteps=6,
                                box_length=1.0)
        out = run_simulation(GenericMachine(nranks=p), scfg,
                             team_blocks_even(ps, cfg.grid.nteams))
        assert np.abs(out.particles.pos - ref.pos).max() < 1e-9
        assert np.abs(out.particles.vel - ref.vel).max() < 1e-9

    def test_final_forces_reported(self, law):
        ps = ParticleSet.uniform_random(32, 2, 1.0, seed=22)
        cfg = allpairs_config(8, 2)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=1e-3, nsteps=2,
                                box_length=1.0)
        out = run_simulation(GenericMachine(nranks=8), scfg,
                             team_blocks_even(ps, cfg.grid.nteams))
        assert out.forces.shape == (32, 2)
        assert np.abs(out.forces).max() > 0


class TestCutoffSimulation:
    @pytest.mark.parametrize("p,c,dim", [
        (8, 1, 1), (8, 2, 1), (8, 2, 2), (16, 4, 2), (12, 3, 2),
    ])
    def test_matches_serial_trajectory(self, p, c, dim, law):
        rcut = 0.3
        ps = ParticleSet.uniform_random(60, dim, 1.0, max_speed=0.05, seed=23)
        ref = serial_trajectory(ps, law, dt=2e-3, nsteps=5, box_length=1.0,
                                rcut=rcut)
        cfg = cutoff_config(p, c, rcut=rcut, box_length=1.0, dim=dim)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=2e-3, nsteps=5,
                                box_length=1.0)
        out = run_simulation(GenericMachine(nranks=p), scfg,
                             team_blocks_spatial(ps, cfg.geometry))
        assert np.abs(out.particles.pos - ref.pos).max() < 1e-9

    def test_particles_conserved_through_reassignment(self, law):
        ps = ParticleSet.uniform_random(80, 2, 1.0, max_speed=0.3, seed=24)
        cfg = cutoff_config(16, 2, rcut=0.3, box_length=1.0, dim=2)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=5e-3, nsteps=8,
                                box_length=1.0)
        out = run_simulation(GenericMachine(nranks=16), scfg,
                             team_blocks_spatial(ps, cfg.geometry))
        assert np.array_equal(out.particles.ids, np.arange(80))
        assert (out.particles.pos >= 0).all()
        assert (out.particles.pos <= 1.0).all()

    def test_reassignment_keeps_blocks_spatially_consistent(self, law):
        """After every step each leader holds only its region's particles —
        verified indirectly: a second run binning the final state must be a
        fixed point."""
        from repro.physics import team_of_positions

        ps = ParticleSet.uniform_random(60, 2, 1.0, max_speed=0.2, seed=25)
        cfg = cutoff_config(8, 2, rcut=0.3, box_length=1.0, dim=2)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=5e-3, nsteps=6,
                                box_length=1.0)
        out = run_simulation(GenericMachine(nranks=8), scfg,
                             team_blocks_spatial(ps, cfg.geometry))
        # All particles binned to the geometry land in valid teams.
        teams = team_of_positions(out.particles.pos, cfg.geometry)
        assert ((teams >= 0) & (teams < cfg.geometry.nteams)).all()

    def test_too_fast_particles_raise(self, law):
        ps = ParticleSet.uniform_random(40, 1, 1.0, seed=26)
        ps.vel[:] = 50.0  # crosses several regions per step
        cfg = cutoff_config(16, 1, rcut=0.25, box_length=1.0, dim=1)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=0.05, nsteps=2,
                                box_length=1.0)
        with pytest.raises(Exception, match="jumped|dt"):
            run_simulation(GenericMachine(nranks=16), scfg,
                           team_blocks_spatial(ps, cfg.geometry))

    def test_reassign_phase_traced(self, law):
        ps = ParticleSet.uniform_random(60, 2, 1.0, max_speed=0.1, seed=27)
        cfg = cutoff_config(8, 2, rcut=0.3, box_length=1.0, dim=2)
        scfg = SimulationConfig(cfg=cfg, law=law, dt=2e-3, nsteps=3,
                                box_length=1.0)
        out = run_simulation(GenericMachine(nranks=8), scfg,
                             team_blocks_spatial(ps, cfg.geometry))
        assert "reassign" in out.report.phase_labels()


class TestSimulationConfigValidation:
    def test_dt_positive(self, law):
        cfg = allpairs_config(4, 1)
        with pytest.raises(ValueError):
            SimulationConfig(cfg=cfg, law=law, dt=0.0, nsteps=1, box_length=1.0)

    def test_nsteps_positive(self, law):
        cfg = allpairs_config(4, 1)
        with pytest.raises(ValueError):
            SimulationConfig(cfg=cfg, law=law, dt=1e-3, nsteps=0, box_length=1.0)

    def test_box_must_match_geometry(self, law):
        cfg = cutoff_config(8, 1, rcut=0.25, box_length=1.0, dim=1)
        with pytest.raises(ValueError):
            SimulationConfig(cfg=cfg, law=law, dt=1e-3, nsteps=1, box_length=2.0)


class TestVirtualSimulation:
    def test_phases_include_reassign(self):
        cfg = cutoff_config(16, 2, rcut=0.25, box_length=1.0, dim=1)
        run = run_simulation_virtual(GenericMachine(nranks=16), cfg, 2048, 2,
                                     dim=1)
        labels = run.report.phase_labels()
        for lab in ("bcast", "shift", "compute", "reduce", "reassign"):
            assert lab in labels

    def test_multiple_steps_scale_time(self):
        cfg = cutoff_config(8, 2, rcut=0.25, box_length=1.0, dim=1)
        m = GenericMachine(nranks=8)
        one = run_simulation_virtual(m, cfg, 1024, 1, dim=1).elapsed
        three = run_simulation_virtual(m, cfg, 1024, 3, dim=1).elapsed
        assert three == pytest.approx(3 * one, rel=0.05)

    def test_allpairs_virtual_sim_has_no_reassign(self):
        cfg = allpairs_config(8, 2)
        run = run_simulation_virtual(GenericMachine(nranks=8), cfg, 1024, 2)
        assert "reassign" not in run.report.phase_labels()
